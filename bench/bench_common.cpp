#include "bench_common.hpp"

#include <chrono>
#include <memory>

namespace starlab::bench {

const core::Scenario& full_scenario() {
  static const auto scenario =
      std::make_unique<core::Scenario>(core::Scenario::default_config(1.0));
  return *scenario;
}

const core::Scenario& half_scenario() {
  static const auto scenario =
      std::make_unique<core::Scenario>(core::Scenario::default_config(0.5));
  return *scenario;
}

const core::CampaignData& standard_campaign() {
  static const core::CampaignData data = [] {
    Stopwatch timer;
    std::printf("[setup] running 12 h measurement campaign over %zu satellites"
                " x 4 terminals (stride 2)...\n",
                full_scenario().catalog().size());
    core::CampaignConfig cfg;
    cfg.duration_hours = 12.0;
    cfg.slot_stride = 2;
    core::CampaignData d = core::run_campaign(full_scenario(), cfg);
    std::printf("[setup] campaign done: %zu slot observations in %.1f s\n\n",
                d.slots.size(), timer.seconds());
    return d;
  }();
  return data;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_comparison(const std::string& metric, const std::string& paper,
                      const std::string& measured) {
  std::printf("  %-52s paper: %-18s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

void print_ecdf_row(const std::string& label, const analysis::Ecdf& ecdf,
                    double lo, double hi, double step) {
  std::printf("  %-28s", label.c_str());
  for (double x = lo; x <= hi + 1e-9; x += step) {
    std::printf(" %5.2f", ecdf(x));
  }
  std::printf("\n");
}

Stopwatch::Stopwatch()
    : start_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

double Stopwatch::seconds() const {
  const long long now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now - start_ns_) * 1e-9;
}

}  // namespace starlab::bench
