#include "bench_common.hpp"

#include <cstring>
#include <exception>
#include <fstream>
#include <memory>

#include "obs/config.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

#ifndef STARLAB_GIT_SHA
#define STARLAB_GIT_SHA "unknown"
#endif

namespace starlab::bench {

const core::Scenario& full_scenario() {
  static const auto scenario =
      std::make_unique<core::Scenario>(core::Scenario::default_config(1.0));
  return *scenario;
}

const core::Scenario& half_scenario() {
  static const auto scenario =
      std::make_unique<core::Scenario>(core::Scenario::default_config(0.5));
  return *scenario;
}

const core::Scenario& gen2_scenario() {
  static const auto scenario = [] {
    core::ScenarioConfig cfg = core::Scenario::default_config(1.0);
    cfg.constellation.gen2 = true;
    return std::make_unique<core::Scenario>(std::move(cfg));
  }();
  return *scenario;
}

const core::CampaignData& standard_campaign() {
  static const core::CampaignData data = [] {
    obs::Stopwatch timer;
    std::printf("[setup] running 12 h measurement campaign over %zu satellites"
                " x 4 terminals (stride 2)...\n",
                full_scenario().catalog().size());
    core::CampaignConfig cfg;
    cfg.duration_hours = 12.0;
    cfg.slot_stride = 2;
    core::CampaignData d = core::run_campaign(full_scenario(), cfg);
    std::printf("[setup] campaign done: %zu slot observations in %.1f s\n\n",
                d.slots.size(), timer.seconds());
    return d;
  }();
  return data;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_comparison(const std::string& metric, const std::string& paper,
                      const std::string& measured) {
  std::printf("  %-52s paper: %-18s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

void print_ecdf_row(const std::string& label, const analysis::Ecdf& ecdf,
                    double lo, double hi, double step) {
  std::printf("  %-28s", label.c_str());
  for (double x = lo; x <= hi + 1e-9; x += step) {
    std::printf(" %5.2f", ecdf(x));
  }
  std::printf("\n");
}

std::string git_sha() { return STARLAB_GIT_SHA; }

namespace {

/// Value of `--NAME=...` if `arg` carries it, nullptr otherwise.
const char* flag_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

}  // namespace

ReportSink::ReportSink(int& argc, char** argv, std::string default_json_path)
    : json_path_(std::move(default_json_path)) {
  obs::init_from_env();

  // Consume our flags, compacting argv so later parsers never see them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--json-out")) {
      json_path_ = v;
    } else if (const char* v2 = flag_value(argv[i], "--trace-out")) {
      trace_path_ = v2;
    } else if (const char* v3 = flag_value(argv[i], "--prof-out")) {
      prof_path_ = v3;
    } else if (const char* v4 = flag_value(argv[i], "--collapsed-out")) {
      collapsed_path_ = v4;
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      json_path_.clear();
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  obs::Config cfg = obs::config();
  if (!json_path_.empty()) cfg.metrics = true;  // stage timers need obs on
  if (!trace_path_.empty()) cfg.tracing = true;
  if (!prof_path_.empty() || !collapsed_path_.empty()) cfg.profiling = true;
  obs::set_config(cfg);
}

ReportSink::~ReportSink() {
  // An empty sink means the bench bailed before producing results (bad
  // flag, filtered-out run); keep any previous report file intact.
  if (!json_path_.empty() && !reports_.empty()) {
    for (obs::RunReport& r : reports_) {
      if (r.git_sha.empty()) r.git_sha = git_sha();
    }
    try {
      io::save_run_reports_file(json_path_, reports_);
      std::printf("\n[report] %zu run report(s) -> %s\n", reports_.size(),
                  json_path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[report] FAILED writing %s: %s\n",
                   json_path_.c_str(), e.what());
    }
  }
  if (!trace_path_.empty()) {
    std::ofstream out(trace_path_);
    if (out) {
      out << obs::TraceRecorder::instance().chrome_trace_json() << '\n';
      std::printf("[report] %zu trace span(s) -> %s (open in Perfetto)\n",
                  obs::TraceRecorder::instance().size(), trace_path_.c_str());
    } else {
      std::fprintf(stderr, "[report] FAILED opening %s\n", trace_path_.c_str());
    }
  }
  if (!prof_path_.empty()) {
    std::ofstream out(prof_path_);
    if (out) {
      out << obs::Profiler::instance().report_json() << '\n';
      std::printf("[report] %zu profiled path(s) -> %s\n",
                  obs::Profiler::instance().size(), prof_path_.c_str());
    } else {
      std::fprintf(stderr, "[report] FAILED opening %s\n", prof_path_.c_str());
    }
  }
  if (!collapsed_path_.empty()) {
    std::ofstream out(collapsed_path_);
    if (out) {
      out << obs::Profiler::instance().collapsed_stacks();
      std::printf("[report] collapsed stacks -> %s (flamegraph.pl input)\n",
                  collapsed_path_.c_str());
    } else {
      std::fprintf(stderr, "[report] FAILED opening %s\n",
                   collapsed_path_.c_str());
    }
  }
}

void ReportSink::add(obs::RunReport report) {
  reports_.push_back(std::move(report));
}

}  // namespace starlab::bench
