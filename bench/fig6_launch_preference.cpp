// Figure 6: probability of a satellite from each launch month being picked,
// normalized by availability, against the launch date. Paper headline
// numbers: positive correlation, Pearson r ~= 0.41 averaged over locations
// (New York discarded for its obstructions), and ~+0.02 pick-probability
// between the earliest and latest launches (Iowa).

#include "bench_common.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_fig6.json");
  const core::CampaignData& data = bench::standard_campaign();
  const core::SchedulerCharacterizer ch(data, bench::full_scenario().catalog());

  bench::print_header("Fig 6: pick ratio by launch month");
  double r_sum = 0.0;
  int r_count = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    const core::LaunchPreference pref = ch.launch_preference(t);
    std::printf("  %s (Pearson r = %.3f)\n", ch.terminal_name(t).c_str(),
                pref.pearson_r);
    std::printf("    month     picked/available  ratio\n");
    for (const auto& bin : pref.bins) {
      if (bin.available_slots < 10) continue;
      std::printf("    %s   %6zu / %-6zu    %.4f\n", bin.label.c_str(),
                  bin.picked_slots, bin.available_slots, bin.pick_ratio);
    }
    std::printf("\n");
    if (t != 1) {  // paper discards New York here
      r_sum += pref.pearson_r;
      ++r_count;
    }
  }

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", r_sum / r_count);
  bench::print_comparison("Pearson r, launch date vs pick ratio (excl. NY)",
                          "0.41", buf);

  // Earliest-vs-latest pick-probability delta for Iowa.
  const core::LaunchPreference iowa = ch.launch_preference(0);
  double first_ratio = -1.0, last_ratio = -1.0;
  for (const auto& bin : iowa.bins) {
    if (bin.available_slots < 10) continue;
    if (first_ratio < 0.0) first_ratio = bin.pick_ratio;
    last_ratio = bin.pick_ratio;
  }
  std::snprintf(buf, sizeof(buf), "%+.3f", last_ratio - first_ratio);
  bench::print_comparison("pick-probability delta, latest vs earliest (Iowa)",
                          "+0.02", buf);

  obs::RunReport report;
  report.kind = "bench";
  report.label = "fig6_launch_preference";
  report.add_value("launch_pearson_r", r_sum / r_count);
  report.add_value("iowa_pick_ratio_delta", last_ratio - first_ratio);
  sink.add(std::move(report));
  return 0;
}
