// §5.3 + Figure 7: the sunlit preference. Paper headline numbers: in slots
// offering both sunlit and dark satellites the scheduler picks sunlit 72.3 %
// of the time; dark satellites are only picked when the dark fraction is
// >= 35 %; picked dark satellites sit much higher than picked sunlit ones
// (82 % vs 54 % above 60 deg; median ~29 deg higher).

#include "bench_common.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_fig7.json");
  const core::CampaignData& data = bench::standard_campaign();
  const core::SchedulerCharacterizer ch(data, bench::full_scenario().catalog());

  bench::print_header("Fig 7: AOE CDFs by illumination (columns: 25,...,90)");
  double pick_rate_sum = 0.0, dark_floor_min = 1.0;
  double dark60_sum = 0.0, sunlit60_sum = 0.0, median_gap_sum = 0.0;
  int rated = 0, cdfed = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    const core::SunlitStats stats = ch.sunlit_stats(t);
    std::printf("  %s: %zu mixed slots\n", ch.terminal_name(t).c_str(),
                stats.mixed_slots);
    bench::print_ecdf_row("  dark + available", stats.aoe_dark_available, 25.0,
                          90.0, 5.0);
    bench::print_ecdf_row("  dark + chosen", stats.aoe_dark_chosen, 25.0, 90.0,
                          5.0);
    bench::print_ecdf_row("  sunlit + available", stats.aoe_sunlit_available,
                          25.0, 90.0, 5.0);
    bench::print_ecdf_row("  sunlit + chosen", stats.aoe_sunlit_chosen, 25.0,
                          90.0, 5.0);
    std::printf("\n");

    if (stats.mixed_slots > 100) {
      pick_rate_sum += stats.sunlit_pick_rate;
      ++rated;
      dark_floor_min =
          std::min(dark_floor_min, stats.min_dark_fraction_when_dark_picked);
    }
    if (stats.aoe_dark_chosen.size() > 50 &&
        stats.aoe_sunlit_chosen.size() > 50) {
      dark60_sum += stats.frac_dark_chosen_above_60;
      sunlit60_sum += stats.frac_sunlit_chosen_above_60;
      median_gap_sum +=
          stats.median_aoe_dark_chosen - stats.median_aoe_sunlit_chosen;
      ++cdfed;
    }
  }

  char buf[96];
  if (rated > 0) {
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * pick_rate_sum / rated);
    bench::print_comparison("sunlit pick rate in mixed slots", "72.3%", buf);
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * dark_floor_min);
    bench::print_comparison("min dark fraction when a dark bird is picked",
                            ">= 35%", buf);
  }
  // Diurnal context: the observable behind local_hour's §6 importance.
  bench::print_header("Diurnal profile (Iowa): why local_hour predicts");
  const core::DiurnalStats d = ch.diurnal_stats(0);
  std::printf("  local hour   slots   dark-avail  sunlit-pick  mean-pick-AOE\n");
  for (std::size_t h = 0; h < 24; h += 2) {
    const auto& bin = d.by_hour[h];
    if (bin.slots == 0) continue;
    std::printf("  %9zu   %5zu   %8.2f    %8.2f     %8.1f\n", h, bin.slots,
                bin.dark_available_fraction, bin.sunlit_pick_fraction,
                bin.mean_pick_aoe_deg);
  }

  if (cdfed > 0) {
    std::snprintf(buf, sizeof(buf), "%.0f%% dark vs %.0f%% sunlit",
                  100.0 * dark60_sum / cdfed, 100.0 * sunlit60_sum / cdfed);
    bench::print_comparison("picked satellites above 60 deg AOE",
                            "82% dark vs 54% sunlit", buf);
    std::snprintf(buf, sizeof(buf), "%.1f deg", median_gap_sum / cdfed);
    bench::print_comparison("median AOE, dark picks above sunlit picks",
                            "~29 deg", buf);
  }

  obs::RunReport report;
  report.kind = "bench";
  report.label = "fig7_sunlit_analysis";
  if (rated > 0) {
    report.add_value("sunlit_pick_rate", pick_rate_sum / rated);
    report.add_value("min_dark_fraction_when_dark_picked", dark_floor_min);
  }
  if (cdfed > 0) {
    report.add_value("frac_dark_chosen_above_60", dark60_sum / cdfed);
    report.add_value("frac_sunlit_chosen_above_60", sunlit60_sum / cdfed);
    report.add_value("median_aoe_dark_minus_sunlit_deg",
                     median_gap_sum / cdfed);
  }
  sink.add(std::move(report));
  return 0;
}
