// Figure 5: CDFs of the azimuth of available vs. selected satellites, split
// into the four compass quadrants. Paper headline numbers: picks skew north
// (58 % of availability but 82 % of picks), except Ithaca whose NW sky is
// blocked by trees (9.7 % of picks from the NW vs 55.4 % elsewhere).

#include "bench_common.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_fig5.json");
  const core::CampaignData& data = bench::standard_campaign();
  const core::SchedulerCharacterizer ch(data, bench::full_scenario().catalog());

  bench::print_header("Fig 5: azimuth CDFs (columns: 0,30,...,360 deg)");
  double north_avail_sum = 0.0, north_chosen_sum = 0.0;
  for (std::size_t t = 0; t < 4; ++t) {
    const core::AzimuthStats stats = ch.azimuth_stats(t);
    bench::print_ecdf_row(ch.terminal_name(t) + " available", stats.available,
                          0.0, 360.0, 30.0);
    bench::print_ecdf_row(ch.terminal_name(t) + " selected", stats.chosen, 0.0,
                          360.0, 30.0);
    std::printf("  %-28s quadrant shares sel (NE SE SW NW): %.2f %.2f %.2f "
                "%.2f\n\n",
                "", stats.quadrant_share_chosen[0],
                stats.quadrant_share_chosen[1], stats.quadrant_share_chosen[2],
                stats.quadrant_share_chosen[3]);
    if (t != 1) {  // the paper's north-share average excludes no one, but
      north_avail_sum += stats.north_share_available;   // Ithaca's mask makes
      north_chosen_sum += stats.north_share_chosen;     // it the outlier row
    }
  }

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.0f%% available, %.0f%% picked",
                100.0 * north_avail_sum / 3.0, 100.0 * north_chosen_sum / 3.0);
  bench::print_comparison("north share (unobstructed sites)",
                          "58% available, 82% picked", buf);

  const double ithaca_nw = ch.azimuth_stats(1).nw_share_chosen;
  const double others_nw = (ch.azimuth_stats(0).nw_share_chosen +
                            ch.azimuth_stats(2).nw_share_chosen +
                            ch.azimuth_stats(3).nw_share_chosen) /
                           3.0;
  std::snprintf(buf, sizeof(buf), "%.1f%% vs %.1f%% elsewhere",
                100.0 * ithaca_nw, 100.0 * others_nw);
  bench::print_comparison("Ithaca NW pick share (tree obstruction)",
                          "9.7% vs 55.4% elsewhere", buf);

  obs::RunReport report;
  report.kind = "bench";
  report.label = "fig5_azimuth_cdf";
  report.add_value("north_share_available", north_avail_sum / 3.0);
  report.add_value("north_share_chosen", north_chosen_sum / 3.0);
  report.add_value("ithaca_nw_share", ithaca_nw);
  report.add_value("others_nw_share", others_nw);
  sink.add(std::move(report));
  return 0;
}
