// Extension (paper §8, future work): how the global scheduler's azimuth
// preference changes with latitude. The GSO exclusion zone sits to the south
// for northern terminals and to the north for southern ones, so the paper
// predicts its ">40 degN points north" finding flips in the southern
// hemisphere and dissolves near the equator. This sweep instantiates
// terminals from 55 degS to 55 degN and measures pick-azimuth shares and
// the GSO arc's culmination at each.

#include "bench_common.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_latitude.json");
  bench::print_header(
      "Latitude sweep: pick-azimuth shares vs GSO-arc position");
  std::printf("  lat     GSOarc(az@el)   north-share  south-share  mean-AOE"
              "-gap\n");

  for (const double lat : {-55.0, -45.0, -30.0, -15.0, 0.0, 15.0, 30.0, 45.0,
                           55.0}) {
    core::ScenarioConfig cfg = core::Scenario::default_config(0.5);
    cfg.terminals.clear();
    ground::TerminalConfig tc;
    tc.name = "sweep";
    tc.site = {lat, -91.5, 0.2};
    tc.pop_site = {lat > 0 ? lat - 1.0 : lat + 1.0, -90.0, 0.1};
    cfg.terminals.push_back(tc);
    const core::Scenario scenario(std::move(cfg));

    // GSO arc culmination in this sky.
    const geo::GsoArc& arc = scenario.terminal(0).gso_arc();
    double arc_az = 0.0;
    if (!arc.samples().empty()) {
      const geo::LookAngles* best = &arc.samples().front();
      for (const geo::LookAngles& s : arc.samples()) {
        if (s.elevation_deg > best->elevation_deg) best = &s;
      }
      arc_az = best->azimuth_deg;
    }

    core::CampaignConfig cc;
    cc.duration_hours = 3.0;
    cc.slot_stride = 2;
    const core::CampaignData data = core::run_campaign(scenario, cc);
    const core::SchedulerCharacterizer ch(data, scenario.catalog());
    const core::AzimuthStats az = ch.azimuth_stats(0);
    const core::AoeStats aoe = ch.aoe_stats(0);

    const double south_share =
        az.quadrant_share_chosen[1] + az.quadrant_share_chosen[2];
    std::printf("  %+5.0f   %5.1f@%4.1f      %6.2f       %6.2f       %6.1f\n",
                lat, arc_az, arc.max_elevation().value(), az.north_share_chosen,
                south_share, aoe.median_gap_deg);

    char label[32];
    std::snprintf(label, sizeof(label), "lat_%+03.0f", lat);
    obs::RunReport report;
    report.kind = "bench";
    report.label = label;
    report.add_value("gso_arc_azimuth_deg", arc_az);
    report.add_value("north_share_chosen", az.north_share_chosen);
    report.add_value("south_share_chosen", south_share);
    report.add_value("median_aoe_gap_deg", aoe.median_gap_deg);
    sink.add(std::move(report));
  }

  std::printf(
      "\n  Two mechanisms shape these rows:\n"
      "  1. GSO exclusion: the arc culminates due south at northern sites\n"
      "     (due north at southern ones) and rises toward the equator,\n"
      "     carving picks away from that part of the sky.\n"
      "  2. Inclination envelope: beyond |lat| ~ 53 deg the dominant 53-deg\n"
      "     shells sit entirely equatorward of the terminal, so availability\n"
      "     itself collapses to one side (+55: south-heavy; -55: north-\n"
      "     heavy) regardless of scheduler preference.\n"
      "  The paper's single-latitude-band finding (>=40N points north) is\n"
      "  the +45 row; this sweep is the §8 future-work study it proposes.\n");
  return 0;
}
