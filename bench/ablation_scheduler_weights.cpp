// Ablation of the oracle's preference weights (the design choices DESIGN.md
// calls out): knock out each soft preference in turn and report how the §5
// observables move. This shows which measured statistic is driven by which
// modeled mechanism — and that none of the paper's findings is an artifact
// of one shared knob.

#include "bench_common.hpp"

using namespace starlab;

namespace {

struct Observables {
  double aoe_gap = 0.0;
  double north_share = 0.0;
  double sunlit_rate = 0.0;
  double launch_r = 0.0;
};

Observables measure(const scheduler::SchedulerWeights& weights) {
  core::ScenarioConfig cfg = core::Scenario::default_config(0.5);
  cfg.weights = weights;
  const core::Scenario scenario(std::move(cfg));

  core::CampaignConfig cc;
  cc.duration_hours = 6.0;
  cc.slot_stride = 2;
  const core::CampaignData data = core::run_campaign(scenario, cc);
  const core::SchedulerCharacterizer ch(data, scenario.catalog());

  Observables out;
  int n = 0, rated = 0, r_count = 0;
  for (const std::size_t t : {0u, 2u, 3u}) {  // unobstructed sites
    const auto aoe = ch.aoe_stats(t);
    const auto az = ch.azimuth_stats(t);
    const auto sun = ch.sunlit_stats(t);
    const auto launch = ch.launch_preference(t);
    out.aoe_gap += aoe.median_gap_deg;
    out.north_share += az.north_share_chosen;
    ++n;
    if (sun.mixed_slots > 100) {
      out.sunlit_rate += sun.sunlit_pick_rate;
      ++rated;
    }
    out.launch_r += launch.pearson_r;
    ++r_count;
  }
  out.aoe_gap /= n;
  out.north_share /= n;
  out.sunlit_rate = rated > 0 ? out.sunlit_rate / rated : -1.0;
  out.launch_r /= r_count;
  return out;
}

void report(bench::ReportSink& sink, const char* name, const Observables& o) {
  std::printf("  %-22s %8.1f %10.2f %11.2f %9.2f\n", name, o.aoe_gap,
              o.north_share, o.sunlit_rate, o.launch_r);
  obs::RunReport r;
  r.kind = "bench";
  r.label = std::string("ablation:") + name;
  r.add_value("aoe_gap_deg", o.aoe_gap);
  r.add_value("north_share", o.north_share);
  r.add_value("sunlit_pick_rate", o.sunlit_rate);
  r.add_value("launch_pearson_r", o.launch_r);
  sink.add(std::move(r));
}

}  // namespace

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_ablation.json");
  bench::print_header(
      "Scheduler-weight ablation (half-scale, 6 h campaigns)");
  std::printf("  %-22s %8s %10s %11s %9s\n", "variant", "AOEgap", "north",
              "sunlitPick", "launchR");

  const scheduler::SchedulerWeights defaults;
  report(sink, "full oracle", measure(defaults));

  {
    scheduler::SchedulerWeights w = defaults;
    w.elevation = 0.0;
    report(sink, "- elevation", measure(w));
  }
  {
    scheduler::SchedulerWeights w = defaults;
    w.north = 0.0;
    report(sink, "- north", measure(w));
  }
  {
    scheduler::SchedulerWeights w = defaults;
    w.recency = 0.0;
    report(sink, "- recency", measure(w));
  }
  {
    scheduler::SchedulerWeights w = defaults;
    w.sunlit = 0.0;
    w.dark_range_penalty = 0.0;
    report(sink, "- sunlit/energy", measure(w));
  }
  {
    scheduler::SchedulerWeights w = defaults;
    w.noise = 0.0;
    report(sink, "- decision noise", measure(w));
  }
  {
    scheduler::SchedulerWeights w = defaults;
    w.noise = 2.0;
    report(sink, "noise x4", measure(w));
  }

  std::printf("\n  Reading: each row removes one oracle mechanism; the\n"
              "  corresponding §5 observable should collapse toward its\n"
              "  availability baseline while the others persist.\n");
  return 0;
}
