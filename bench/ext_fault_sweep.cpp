// Fault-injection sweep: how gracefully does the §4/§5 stack degrade?
//
// First proves the safety property every sweep depends on — a FaultPlan at
// intensity 0 is bit-identical to running with no plan at all (same pipeline
// rows, same campaign, same §6 top-k) — then sweeps each injector's rate and
// emits accuracy-vs-fault-rate degradation curves as CSV. The headline
// acceptance row: at <=10 % frame drops the identifier abstains instead of
// mis-identifying, keeping decided-slot accuracy >=95 %.

#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace starlab;

namespace {

struct SweepRow {
  const char* injector;
  double rate;
  std::size_t slots = 0;
  std::size_t decided = 0;
  std::size_t abstained = 0;
  std::size_t degraded = 0;  ///< rows with any quality flag
  double accuracy = 0.0;     ///< on decided slots
  double mean_confidence = 0.0;
};

void print_csv(const std::vector<SweepRow>& rows) {
  std::printf(
      "injector,rate,slots,decided,abstained,degraded,"
      "accuracy_decided,mean_confidence\n");
  for (const SweepRow& r : rows) {
    std::printf("%s,%.6g,%zu,%zu,%zu,%zu,%.4f,%.4f\n", r.injector, r.rate,
                r.slots, r.decided, r.abstained, r.degraded, r.accuracy,
                r.mean_confidence);
  }
}

SweepRow pipeline_row(const core::Scenario& sc, const char* injector,
                      double rate, const fault::FaultPlan& plan,
                      double duration_sec) {
  core::PipelineConfig cfg;
  cfg.faults = plan;
  const core::InferencePipeline pipeline(sc, cfg);

  SweepRow row;
  row.injector = injector;
  row.rate = rate;
  double confidence_sum = 0.0;
  for (std::size_t t = 0; t < sc.terminals().size(); ++t) {
    const core::PipelineResult result = pipeline.run(t, duration_sec);
    // run() pre-summarizes everything into result.report — no row re-scan.
    row.slots += result.report.slots;
    row.decided += result.report.decided;
    row.abstained += result.report.abstained;
    row.degraded += result.report.degraded;
    confidence_sum += result.report.value_or("mean_confidence", 0.0) *
                      static_cast<double>(result.report.decided);
    // Pool accuracy across terminals, weighted by decided slots.
    row.accuracy += result.accuracy() * static_cast<double>(result.decided());
  }
  if (row.decided > 0) {
    row.accuracy /= static_cast<double>(row.decided);
    row.mean_confidence = confidence_sum / static_cast<double>(row.decided);
  }
  return row;
}

/// A sweep row as one RunReport line for BENCH_fault.json.
obs::RunReport row_report(const SweepRow& r) {
  char label[64];
  std::snprintf(label, sizeof(label), "%s@%g", r.injector, r.rate);
  obs::RunReport rep;
  rep.kind = "bench";
  rep.label = label;
  rep.slots = r.slots;
  rep.decided = r.decided;
  rep.abstained = r.abstained;
  rep.degraded = r.degraded;
  rep.accuracy = r.accuracy;
  rep.add_value("rate", r.rate);
  rep.add_value("mean_confidence", r.mean_confidence);
  return rep;
}

bool pipeline_results_identical(const core::PipelineResult& a,
                                const core::PipelineResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    const core::SlotIdentification& x = a.rows[i];
    const core::SlotIdentification& y = b.rows[i];
    if (x.slot != y.slot || x.truth_norad != y.truth_norad ||
        x.inferred_norad != y.inferred_norad || x.dtw != y.dtw ||
        x.quality != y.quality || x.confidence != y.confidence) {
      return false;
    }
  }
  return true;
}

bool campaigns_identical(const core::CampaignData& a,
                         const core::CampaignData& b) {
  if (a.slots.size() != b.slots.size()) return false;
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    const core::SlotObs& x = a.slots[i];
    const core::SlotObs& y = b.slots[i];
    if (x.slot != y.slot || x.chosen != y.chosen || x.quality != y.quality ||
        x.confidence != y.confidence ||
        x.available.size() != y.available.size()) {
      return false;
    }
    for (std::size_t c = 0; c < x.available.size(); ++c) {
      if (x.available[c].norad_id != y.available[c].norad_id) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_fault.json");
  const core::Scenario& sc = bench::half_scenario();
  obs::Stopwatch timer;

  // -------------------------------------------------------------------
  // Safety gate: intensity 0 must be bit-identical to "no faults at all".
  // -------------------------------------------------------------------
  bench::print_header("Fault plan at intensity 0 == unfaulted baseline");
  fault::FaultPlan loaded;
  loaded.frame.drop_rate = 0.3;
  loaded.frame.bit_flip_rate = 0.01;
  loaded.dropout.rate = 0.3;

  const core::InferencePipeline clean_pipeline(sc);
  core::PipelineConfig zero_cfg;
  zero_cfg.faults = loaded.with_intensity(0.0);
  const core::InferencePipeline zero_pipeline(sc, zero_cfg);
  const bool rows_ok = pipeline_results_identical(clean_pipeline.run(0, 1800.0),
                                                  zero_pipeline.run(0, 1800.0));
  bench::print_comparison("pipeline rows (120 slots)", "bit-identical",
                          rows_ok ? "bit-identical" : "DIVERGED");

  core::CampaignConfig camp_cfg;
  camp_cfg.duration_hours = 2.0;
  const core::CampaignData clean_campaign = core::run_campaign(sc, camp_cfg);
  core::CampaignConfig camp_zero = camp_cfg;
  camp_zero.faults = loaded.with_intensity(0.0);
  const core::CampaignData zero_campaign = core::run_campaign(sc, camp_zero);
  const bool campaign_ok = campaigns_identical(clean_campaign, zero_campaign);
  bench::print_comparison("campaign (2 h, 4 terminals)", "bit-identical",
                          campaign_ok ? "bit-identical" : "DIVERGED");

  const core::ModelEvaluation clean_model =
      core::train_scheduler_model(clean_campaign);
  const core::ModelEvaluation zero_model =
      core::train_scheduler_model(zero_campaign);
  bool topk_ok = clean_model.forest_top_k == zero_model.forest_top_k &&
                 clean_model.baseline_top_k == zero_model.baseline_top_k;
  bench::print_comparison("scheduler-model top-k", "identical",
                          topk_ok ? "identical" : "DIVERGED");
  std::printf("  (%.1f s)\n", timer.seconds());

  // -------------------------------------------------------------------
  // Degradation curves: one injector at a time, rate swept, CSV out.
  // -------------------------------------------------------------------
  std::vector<SweepRow> rows;
  const double duration = 1800.0;  // 120 slots per terminal

  for (const double rate : {0.0, 0.025, 0.05, 0.10, 0.20, 0.30}) {
    fault::FaultPlan plan;
    plan.frame.drop_rate = rate;
    rows.push_back(pipeline_row(sc, "frame_drop", rate, plan, duration));
  }
  for (const double rate : {1e-4, 5e-4, 2e-3, 1e-2}) {
    fault::FaultPlan plan;
    plan.frame.bit_flip_rate = rate;
    rows.push_back(pipeline_row(sc, "bit_flip", rate, plan, duration));
  }

  // Dropout acts on the campaign's candidate sets rather than on frames;
  // report labeling coverage and flagged fraction through the same columns.
  for (const double rate : {0.05, 0.1, 0.2, 0.4}) {
    fault::FaultPlan plan;
    plan.dropout.rate = rate;
    core::CampaignConfig cfg;
    cfg.duration_hours = 0.5;
    cfg.faults = plan;
    const core::CampaignData data = core::run_campaign(sc, cfg);
    SweepRow row;
    row.injector = "dropout";
    row.rate = rate;
    // run_campaign summarizes these into its report; only the clean-baseline
    // comparison below still needs the slot-by-slot walk.
    row.slots = data.report.slots;
    row.decided = data.report.decided;
    row.degraded = data.report.degraded;
    double confidence_sum = 0.0;
    std::size_t baseline_match = 0, checked = 0;
    for (std::size_t i = 0; i < data.slots.size(); ++i) {
      const core::SlotObs& s = data.slots[i];
      if (!s.has_choice()) continue;
      confidence_sum += s.confidence;
      // "Accuracy" for dropout: does the scheduler still pick the same
      // satellite it would have picked with the full candidate set?
      if (i < clean_campaign.slots.size() &&
          clean_campaign.slots[i].slot == s.slot &&
          clean_campaign.slots[i].has_choice()) {
        ++checked;
        if (clean_campaign.slots[i].chosen_candidate().norad_id ==
            s.chosen_candidate().norad_id) {
          ++baseline_match;
        }
      }
    }
    row.accuracy =
        checked == 0 ? 0.0
                     : static_cast<double>(baseline_match) /
                           static_cast<double>(checked);
    row.mean_confidence =
        row.decided == 0 ? 0.0
                         : confidence_sum / static_cast<double>(row.decided);
    rows.push_back(row);
  }

  bench::print_header("Degradation curves (CSV)");
  print_csv(rows);
  for (const SweepRow& r : rows) sink.add(row_report(r));

  // The acceptance bar from the robustness issue, stated explicitly.
  for (const SweepRow& r : rows) {
    if (std::string(r.injector) == "frame_drop" && r.rate == 0.10) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f%% on %zu decided slots",
                    100.0 * r.accuracy, r.decided);
      bench::print_comparison("accuracy at 10% frame drops", ">=95%", buf);
    }
  }

  {
    obs::RunReport gate;
    gate.kind = "bench";
    gate.label = "safety_gate";
    gate.add_value("pipeline_bit_identical", rows_ok ? 1.0 : 0.0);
    gate.add_value("campaign_bit_identical", campaign_ok ? 1.0 : 0.0);
    gate.add_value("model_topk_identical", topk_ok ? 1.0 : 0.0);
    gate.add_value("total_seconds", timer.seconds());
    sink.add(std::move(gate));
  }

  // -------------------------------------------------------------------
  // Measurement-side injectors: verify realized statistics match configs.
  // -------------------------------------------------------------------
  bench::print_header("RTT / clock injector calibration");
  {
    fault::FaultPlan plan;
    plan.rtt.extra_loss_rate = 0.05;
    plan.rtt.mean_burst_probes = 20.0;
    const fault::RttFaultInjector inj(plan);
    measurement::RttSeries series;
    for (int i = 0; i < 200000; ++i) {
      measurement::RttSample s;
      s.unix_sec = i * 0.02;
      s.rtt_ms = 40.0;
      series.samples.push_back(s);
    }
    inj.apply(series);
    std::vector<int> runs;
    int run = 0;
    for (const measurement::RttSample& s : series.samples) {
      if (s.lost) {
        ++run;
      } else if (run > 0) {
        runs.push_back(run);
        run = 0;
      }
    }
    double total = 0.0;
    for (const int r : runs) total += r;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "loss %.3f, mean burst %.1f probes",
                  series.loss_rate(),
                  runs.empty() ? 0.0 : total / static_cast<double>(runs.size()));
    bench::print_comparison("GE overlay (target 0.050 / 20)", "0.050 / 20.0",
                            buf);
  }
  {
    fault::FaultPlan plan;
    plan.clock.step_ms = 50.0;
    plan.clock.drift_ppm = 30.0;
    plan.clock.step_interval_sec = 3600.0;
    const fault::ClockFaultInjector inj(plan);
    double max_abs = 0.0;
    for (int t = 0; t < 24 * 3600; t += 60) {
      max_abs = std::max(max_abs, std::fabs(inj.offset_sec(t)));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f s over 24 h", max_abs);
    bench::print_comparison("clock offset bound (50 ms + 30 ppm)", "<=0.158 s",
                            buf);
  }

  std::printf("\nTotal: %.1f s\n", timer.seconds());
  return (rows_ok && campaign_ok && topk_ok) ? 0 : 1;
}
