// Figure 3: the obstruction-map pipeline's raw material. Renders (b) the
// accumulated gRPC frame after slot t-1, (c) after slot t, (d) their XOR —
// the isolated trajectory of the satellite serving slot t — and (e) a
// long-exposure frame after hours without a reset, from which §4.1's
// parameter recovery re-derives the polar-plot geometry.

#include <fstream>

#include "bench_common.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_fig3.json");
  const core::Scenario& sc = bench::full_scenario();
  const ground::Terminal& terminal = sc.terminal(0);

  bench::print_header("Fig 3b/3c: consecutive 15 s gRPC frames (ASCII, 2 px/char)");
  obsmap::MapRecorder recorder(sc.catalog(), terminal, sc.grid());

  // Accumulate a few slots of history first (a freshly reset dish).
  const time::SlotIndex first = sc.first_slot();
  for (time::SlotIndex s = first; s < first + 6; ++s) {
    recorder.record_slot(sc.global_scheduler().allocate(terminal, s));
  }
  const obsmap::ObstructionMap frame_prev = recorder.accumulated();
  const auto truth = sc.global_scheduler().allocate(terminal, first + 6);
  const obsmap::ObstructionMap frame_curr = recorder.record_slot(truth);

  std::printf("gRPC(t-1): %zu px set\n%s\n", frame_prev.popcount(),
              frame_prev.to_ascii(3).c_str());
  std::printf("gRPC(t): %zu px set\n%s\n", frame_curr.popcount(),
              frame_curr.to_ascii(3).c_str());

  bench::print_header("Fig 3d: XOR isolation of the serving trajectory");
  const obsmap::ObstructionMap isolated = frame_curr.exclusive_or(frame_prev);
  std::printf("XOR: %zu px set\n%s\n", isolated.popcount(),
              isolated.to_ascii(3).c_str());
  if (truth.has_value()) {
    std::printf("  (ground truth for slot t: NORAD %d at el %.1f, az %.1f)\n",
                truth->norad_id, truth->look.elevation_deg,
                truth->look.azimuth_deg);
  }

  // PGM exports for external viewing (same binary frames a gRPC dump gives).
  for (const auto& [name, frame] :
       {std::pair<const char*, const obsmap::ObstructionMap&>{
            "fig3b_prev.pgm", frame_prev},
        {"fig3c_curr.pgm", frame_curr},
        {"fig3d_xor.pgm", isolated}}) {
    std::ofstream out(name, std::ios::binary);
    out << frame.to_pgm();
    std::printf("  wrote %s\n", name);
  }

  bench::print_header("Fig 3e: long-exposure frame (no reset) + §4.1 recovery");
  obs::Stopwatch timer;
  const auto recovered =
      core::InferencePipeline::recover_geometry_via_fill(sc, 0, 12.0);
  std::printf("  12 h fill in %.1f s\n", timer.seconds());

  obs::RunReport report;
  report.kind = "bench";
  report.label = "fig3_obstruction_maps";
  report.add_value("xor_pixels", static_cast<double>(isolated.popcount()));
  report.add_value("fill_seconds", timer.seconds());
  if (recovered.has_value()) {
    report.add_value("recovered_center_x", recovered->geometry.center_x);
    report.add_value("recovered_center_y", recovered->geometry.center_y);
    report.add_value("recovered_radius_px", recovered->geometry.radius_px);
    report.add_value("painted_pixels",
                     static_cast<double>(recovered->painted_pixels));
  }
  sink.add(std::move(report));

  if (recovered.has_value()) {
    char measured[96];
    std::snprintf(measured, sizeof(measured),
                  "centre (%.1f,%.1f), radius %.1f px, %zu px painted",
                  recovered->geometry.center_x, recovered->geometry.center_y,
                  recovered->geometry.radius_px, recovered->painted_pixels);
    bench::print_comparison("polar plot centre", "(62,62) 1-based == (61,61)",
                            measured);
    bench::print_comparison("polar plot radius", "45 px", "see above");
    bench::print_comparison("radial axis", "AOE 25..90 deg (by hardware FoV)",
                            "assumed identically");
  } else {
    std::printf("  recovery FAILED (frame too sparse)\n");
  }
  return 0;
}
