// §4.1 validation: run the obstruction-map -> XOR -> DTW identification
// pipeline on 500 slots across all four terminals (the paper's manual pilot
// study size) and report agreement with ground truth, plus ablations over
// the DTW band width and the reset cadence.

#include "bench_common.hpp"

using namespace starlab;

namespace {

struct TrialStats {
  std::size_t decided = 0;
  std::size_t correct = 0;
  double candidate_sum = 0.0;

  [[nodiscard]] double accuracy() const {
    return decided == 0 ? 0.0 : static_cast<double>(correct) / decided;
  }
};

TrialStats run_trials(const core::Scenario& sc, const core::PipelineConfig& cfg,
                      std::size_t trials_per_terminal) {
  TrialStats stats;
  for (std::size_t t = 0; t < sc.terminals().size(); ++t) {
    const core::InferencePipeline pipeline(sc, cfg);
    // Enough slots that `trials_per_terminal` of them are decidable.
    const double duration = 15.0 * (trials_per_terminal + 20);
    const core::PipelineResult result = pipeline.run(t, duration);
    std::size_t taken = 0;
    for (const core::SlotIdentification& row : result.rows) {
      if (!row.truth_norad || !row.inferred_norad) continue;
      if (taken++ >= trials_per_terminal) break;
      ++stats.decided;
      stats.candidate_sum += row.num_candidates;
      if (row.correct()) ++stats.correct;
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_sec4.json");
  const core::Scenario& sc = bench::full_scenario();

  bench::print_header("§4.1: DTW identification vs ground truth (500 trials)");
  obs::Stopwatch timer;
  core::PipelineConfig cfg;
  const TrialStats main_run = run_trials(sc, cfg, 125);  // 125 x 4 == 500
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.1f%% over %zu trials",
                100.0 * main_run.accuracy(), main_run.decided);
  bench::print_comparison("identification agreement", ">99% of 500 outcomes",
                          buf);
  std::snprintf(buf, sizeof(buf), "%.1f per slot",
                main_run.candidate_sum / static_cast<double>(main_run.decided));
  bench::print_comparison("satellites in field of view", "~40 per slot", buf);
  std::printf("  (%.1f s)\n", timer.seconds());

  obs::RunReport report;
  report.kind = "bench";
  report.label = "sec4_dtw_validation";
  report.add_value("accuracy", main_run.accuracy());
  report.add_value("trials", static_cast<double>(main_run.decided));
  report.add_value("mean_candidates",
                   main_run.candidate_sum /
                       static_cast<double>(main_run.decided));
  report.add_value("run_seconds", timer.seconds());
  sink.add(std::move(report));

  bench::print_header("Ablation: Sakoe-Chiba band half-width");
  std::printf("  band   accuracy   (40 trials/terminal)\n");
  for (const int band : {2, 4, 8, 16, 32, -1}) {
    core::PipelineConfig ab = cfg;
    ab.identifier.dtw_band = band;
    const TrialStats s = run_trials(sc, ab, 40);
    std::printf("  %4d   %6.1f%%\n", band, 100.0 * s.accuracy());
  }

  bench::print_header("Ablation: terminal reset cadence");
  std::printf("  reset    accuracy  decided/slots   (XOR overlap risk grows "
              "with cadence)\n");
  for (const double reset_sec : {150.0, 300.0, 600.0, 1800.0}) {
    core::PipelineConfig ab = cfg;
    ab.reset_interval_sec = reset_sec;
    const TrialStats s = run_trials(sc, ab, 40);
    std::printf("  %5.0f s  %6.1f%%   %zu\n", reset_sec, 100.0 * s.accuracy(),
                s.decided);
  }
  bench::print_comparison("paper's choice", "reset every 10 min",
                          "600 s row above");
  return 0;
}
