// Checkpoint/resume overhead: what does crash safety cost?
//
// Acceptance for the resilience layer: journaled campaign execution stays
// within 5 % of the plain run_campaign wall time, and with journaling
// disabled the durable runner is bit-identical (verified here, not just in
// the unit tests). Also measures the payoff side: resuming a fully
// journaled campaign versus recomputing it. Headline rows land in
// BENCH_resilience.json for cross-commit tracking.

#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "io/campaign_io.hpp"
#include "io/journal_io.hpp"
#include "resilience/durable_campaign.hpp"

using namespace starlab;

namespace {

constexpr const char* kJournalPath = "/tmp/starlab_bench_resilience.journal";

core::CampaignConfig bench_campaign() {
  core::CampaignConfig config;
  config.duration_hours = 0.25;  // 60 recorded slots x 4 terminals
  return config;
}

std::string campaign_bytes(const core::CampaignData& data) {
  std::ostringstream out;
  io::save_campaign(out, data);
  return std::move(out).str();
}

/// Median wall time of `reps` runs of `fn`, in milliseconds.
template <typename Fn>
double median_ms(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const std::uint64_t t0 = obs::monotonic_ns();
    fn();
    times.push_back(static_cast<double>(obs::monotonic_ns() - t0) / 1e6);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_resilience.json");
  const core::Scenario& scenario = bench::half_scenario();
  const core::CampaignConfig config = bench_campaign();
  constexpr int kReps = 5;

  bench::print_header("Resilience: checkpoint overhead and resume payoff");

  // Correctness gates first: the timing comparison is meaningless if the
  // outputs diverge.
  const core::CampaignData plain = core::run_campaign(scenario, config);
  const std::string plain_bytes = campaign_bytes(plain);
  {
    const resilience::DurableCampaignResult unjournaled =
        resilience::run_campaign_durable(scenario, config,
                                         resilience::DurableCampaignConfig{});
    const bool identical = campaign_bytes(unjournaled.data) == plain_bytes;
    bench::print_comparison("durable(no journal) == plain", "bit-identical",
                            identical ? "bit-identical" : "DIVERGED");
    if (!identical) return 1;
  }
  io::remove_journal(kJournalPath);
  resilience::DurableCampaignConfig journaled;
  journaled.journal_path = kJournalPath;
  {
    const resilience::DurableCampaignResult first =
        resilience::run_campaign_durable(scenario, config, journaled);
    const bool identical = campaign_bytes(first.data) == plain_bytes;
    bench::print_comparison("durable(journaled) == plain", "bit-identical",
                            identical ? "bit-identical" : "DIVERGED");
    if (!identical) return 1;
  }

  // Overhead: plain vs journaled-from-scratch (resume disabled so every rep
  // recomputes and rewrites the full journal).
  const double plain_ms = median_ms(
      kReps, [&] { (void)core::run_campaign(scenario, config); });
  resilience::DurableCampaignConfig fresh = journaled;
  fresh.resume = false;
  const double journaled_ms = median_ms(kReps, [&] {
    (void)resilience::run_campaign_durable(scenario, config, fresh);
  });
  const double overhead_pct = (journaled_ms / plain_ms - 1.0) * 100.0;

  // Payoff: resuming the complete journal vs recomputing.
  (void)resilience::run_campaign_durable(scenario, config, journaled);
  const double resume_ms = median_ms(kReps, [&] {
    (void)resilience::run_campaign_durable(scenario, config, journaled);
  });

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f ms", plain_ms);
  bench::print_comparison("plain run_campaign", "-", buf);
  std::snprintf(buf, sizeof(buf), "%.2f ms (%+.2f %%)", journaled_ms,
                overhead_pct);
  bench::print_comparison("journaled durable run", "<= +5 %", buf);
  std::snprintf(buf, sizeof(buf), "%.2f ms (%.1fx)", resume_ms,
                plain_ms / std::max(resume_ms, 1e-9));
  bench::print_comparison("resume from full journal", "-", buf);

  obs::RunReport report;
  report.kind = "bench";
  report.label = "resilience_overhead";
  report.slots = plain.slots.size();
  report.add_value("plain_ms", plain_ms);
  report.add_value("journaled_ms", journaled_ms);
  report.add_value("overhead_pct", overhead_pct);
  report.add_value("resume_ms", resume_ms);
  sink.add(report);

  io::remove_journal(kJournalPath);
  // The 5 % gate is advisory on shared CI hardware; report, don't fail.
  return 0;
}
