// Figure 2 + §3: high-frequency RTT measurement from the EU (Madrid)
// terminal over a two-minute window, showing the global re-allocation
// signature every 15 seconds at :12/:27/:42/:57, the on-satellite MAC bands,
// the Mann-Whitney check that consecutive windows differ, and the blind
// recovery of the scheduling grid from the RTT series alone.

#include <algorithm>
#include <cmath>
#include <map>

#include "bench_common.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_fig2.json");
  const core::Scenario& sc = bench::full_scenario();
  const std::size_t madrid = 2;

  bench::print_header("Fig 2: RTT time series, EU terminal, 1 probe / 20 ms");

  const measurement::LatencyModel model(sc.catalog(), sc.mac_scheduler());
  const measurement::RttProber prober(sc.global_scheduler(), model);

  // A 2-minute figure window plus a longer 10-minute series for statistics.
  const double t0 = sc.grid().slot_start(sc.first_slot());
  const measurement::RttSeries series =
      prober.run(sc.terminal(madrid), t0, t0 + 600.0);

  // --- The figure itself: per-quarter-second min/median/max over 2 min. ---
  std::printf("  time     rtt_min  rtt_p25  rtt_med  rtt_max   (ms; 0.25 s bins"
              ", first 120 s)\n");
  std::map<int, std::vector<double>> bins;
  for (const auto& s : series.received()) {
    if (s.unix_sec - t0 >= 120.0) break;
    bins[static_cast<int>((s.unix_sec - t0) / 0.25)].push_back(s.rtt_ms);
  }
  for (auto& [bin, vals] : bins) {
    if (bin % 8 != 0) continue;  // print every 2 s to keep the table readable
    std::sort(vals.begin(), vals.end());
    const auto utc = time::UtcTime::from_unix_seconds(t0 + bin * 0.25);
    std::printf("  %s %8.2f %8.2f %8.2f %8.2f\n", utc.to_hms().c_str(),
                vals.front(), vals[vals.size() / 4], vals[vals.size() / 2],
                vals.back());
  }

  // --- MAC bands: distinct RTT levels within one slot. ---
  bench::print_header("§3: on-satellite MAC scheduler bands (one 15 s slot)");
  {
    std::map<int, int> band_census;
    const time::SlotIndex slot = sc.first_slot() + 2;
    for (const auto& s : series.received()) {
      if (s.slot != slot) continue;
      band_census[static_cast<int>(std::floor(s.rtt_ms / 1.33))] += 1;
    }
    std::printf("  RTT level (1.33 ms frame bins) -> probe count:\n");
    for (const auto& [band, count] : band_census) {
      std::printf("    %6.2f ms: %4d %s\n", band * 1.33, count,
                  std::string(static_cast<std::size_t>(count) / 4, '#').c_str());
    }
    bench::print_comparison("parallel bands a few ms apart", "observed",
                            band_census.size() >= 2 ? "observed" : "NOT OBSERVED");
  }

  // --- Mann-Whitney between consecutive 15 s windows. ---
  bench::print_header("§3: Mann-Whitney U between consecutive slots");
  std::map<time::SlotIndex, std::vector<double>> by_slot;
  for (const auto& s : series.received()) by_slot[s.slot].push_back(s.rtt_ms);

  int tested = 0, significant = 0;
  const std::vector<double>* prev = nullptr;
  for (const auto& [slot, vals] : by_slot) {
    if (prev != nullptr) {
      const auto r = analysis::mann_whitney_u(*prev, vals);
      ++tested;
      if (r.p_two_sided < 0.05) ++significant;
    }
    prev = &vals;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d/%d windows differ (p<.05)", significant,
                tested);
  bench::print_comparison("consecutive windows statistically different",
                          "all locations/periods", buf);

  // --- Blind recovery of the scheduling grid. ---
  bench::print_header("§3: scheduling epoch recovered from RTT alone");
  const auto changes = measurement::detect_change_points(series);
  const auto est = measurement::estimate_epoch(changes);
  std::snprintf(buf, sizeof(buf), "%.1f s period, offset :%02.0f, support %.2f",
                est.period_sec, std::fmod(est.offset_sec, 60.0), est.support);
  bench::print_comparison("re-allocation grid", "15 s at :12/:27/:42/:57", buf);
  std::printf("  detected %zu abrupt latency changes in 10 min\n",
              changes.size());

  // Change instants expressed as seconds-past-minute (the paper's framing).
  std::printf("  change instants (s past the minute):");
  for (std::size_t i = 0; i < changes.size() && i < 12; ++i) {
    std::printf(" %04.1f", std::fmod(changes[i].unix_sec, 60.0));
  }
  std::printf("\n");

  // --- §3: the effect is simultaneous at every vantage point — the key ---
  // --- argument that the controller is *global*, not per-satellite.     ---
  bench::print_header("§3: all four vantage points share the grid");
  std::printf("  terminal     period   offset   support  changes\n");
  for (std::size_t t = 0; t < 4; ++t) {
    const measurement::RttSeries ts =
        prober.run(sc.terminal(t), t0, t0 + 600.0);
    const auto tc = measurement::detect_change_points(ts);
    const auto te = measurement::estimate_epoch(tc);
    std::printf("  %-10s  %5.1f s   :%04.1f    %.2f    %zu\n",
                sc.terminal(t).name().c_str(), te.period_sec,
                std::fmod(te.offset_sec, 60.0), te.support, tc.size());
  }
  bench::print_comparison("same 15 s grid everywhere, simultaneously",
                          "all locations, all periods", "table above");

  obs::RunReport report;
  report.kind = "bench";
  report.label = "fig2_rtt_timeseries";
  report.add_value("mw_windows_tested", tested);
  report.add_value("mw_windows_significant", significant);
  report.add_value("epoch_period_sec", est.period_sec);
  report.add_value("epoch_support", est.support);
  report.add_value("change_points_10min", static_cast<double>(changes.size()));
  sink.add(std::move(report));
  return 0;
}
