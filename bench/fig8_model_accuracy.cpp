// Figure 8 + §6: the random-forest approximation of the global scheduler vs
// the popularity baseline, on top-k accuracy over the 20 % holdout, with
// grid-searched hyper-parameters (5-fold CV) and gini feature importances.
// Paper headline numbers: ~65 % at k=5 vs ~22 % baseline; local_hour tops
// the importances (~0.04); azimuth-sensitive tuples (±1,-1,-1,1), new-sunlit
// (x,y,-1,1) and high-AOE (x,2,y,z) clusters recur.

#include "bench_common.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_fig8.json");
  const core::CampaignData& data = bench::standard_campaign();

  bench::print_header("Fig 8: top-k accuracy, random forest vs baseline");
  core::ModelTrainConfig cfg;
  ml::GridSearchSpace grid;
  grid.num_trees = {40, 80};
  grid.max_depth = {12, 18};
  grid.min_samples_leaf = {2};
  cfg.grid = grid;

  obs::Stopwatch timer;
  const core::ModelEvaluation eval = core::train_scheduler_model(data, cfg);
  std::printf("  trained on %zu rows, held out %zu (grid search + final fit:"
              " %.0f s)\n",
              eval.train_rows, eval.holdout_rows, timer.seconds());
  std::printf("  chosen config: %d trees, depth %d, min leaf %d (CV top-1 "
              "%.3f)\n\n",
              eval.chosen_config.num_trees, eval.chosen_config.tree.max_depth,
              eval.chosen_config.tree.min_samples_leaf, eval.cv_accuracy);

  std::printf("  k    RF model   baseline\n");
  for (std::size_t k = 1; k <= eval.forest_top_k.size(); ++k) {
    std::printf("  %zu    %6.1f%%    %6.1f%%\n", k,
                100.0 * eval.forest_top_k[k - 1],
                100.0 * eval.baseline_top_k[k - 1]);
  }

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.0f%% vs %.0f%%",
                100.0 * eval.forest_top_k[4], 100.0 * eval.baseline_top_k[4]);
  bench::print_comparison("top-5 accuracy, model vs baseline", "65% vs 22%",
                          buf);

  bench::print_header("§6: gini feature importances (top 15)");
  std::printf("  %-16s importance\n", "feature");
  for (std::size_t i = 0; i < 15 && i < eval.importances.size(); ++i) {
    std::printf("  %-16s %.4f\n", eval.importances[i].first.c_str(),
                eval.importances[i].second);
  }
  // Where does local_hour rank?
  for (std::size_t i = 0; i < eval.importances.size(); ++i) {
    if (eval.importances[i].first == "local_hour") {
      std::snprintf(buf, sizeof(buf), "rank %zu, importance %.4f", i + 1,
                    eval.importances[i].second);
      bench::print_comparison("local_hour importance",
                              "stands out, ~0.04", buf);
      break;
    }
  }

  // The training run's own report (stage timings + cv/top-1 values when
  // observability is on), enriched with the Fig 8 headline numbers.
  obs::RunReport report = eval.report;
  report.label = "fig8_model_accuracy";
  report.add_value("forest_top5", eval.forest_top_k[4]);
  report.add_value("baseline_top5", eval.baseline_top_k[4]);
  sink.add(std::move(report));
  return 0;
}
