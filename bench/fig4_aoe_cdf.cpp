// Figure 4: CDFs of the angle of elevation of available vs. selected
// satellites, per vantage point. Paper headline numbers: selected satellites
// sit a median 22.9 deg higher than available ones, and while only ~30 % of
// available satellites are in the 45-90 deg range, ~80 % of the picks are.

#include <random>

#include "analysis/bootstrap.hpp"
#include "bench_common.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_fig4.json");
  const core::CampaignData& data = bench::standard_campaign();
  const core::SchedulerCharacterizer ch(data, bench::full_scenario().catalog());

  bench::print_header("Fig 4: AOE CDFs (columns: 25,30,...,90 deg)");
  double gap_sum = 0.0, avail_4590_sum = 0.0, chosen_4590_sum = 0.0;
  for (std::size_t t = 0; t < 4; ++t) {
    const core::AoeStats stats = ch.aoe_stats(t);
    bench::print_ecdf_row(ch.terminal_name(t) + " available", stats.available,
                          25.0, 90.0, 5.0);
    bench::print_ecdf_row(ch.terminal_name(t) + " selected", stats.chosen,
                          25.0, 90.0, 5.0);
    std::printf("  %-28s median avail %.1f, median sel %.1f, gap %.1f deg\n\n",
                "", stats.median_available_deg, stats.median_chosen_deg,
                stats.median_gap_deg);
    gap_sum += stats.median_gap_deg;
    avail_4590_sum += stats.frac_available_45_90;
    chosen_4590_sum += stats.frac_chosen_45_90;
  }

  char buf[96];
  {
    // Bootstrap CI on the pooled gap (how tight a 12 h campaign pins it).
    std::vector<double> avail, chosen;
    for (const core::SlotObs& slot : data.slots) {
      for (const core::CandidateObs& c : slot.available) {
        avail.push_back(c.elevation_deg);
      }
      if (slot.has_choice()) {
        chosen.push_back(slot.chosen_candidate().elevation_deg);
      }
    }
    std::mt19937_64 rng(41);
    const analysis::BootstrapCi ci =
        analysis::bootstrap_median_diff_ci(chosen, avail, rng, 600);
    std::snprintf(buf, sizeof(buf), "%.1f deg (95%% CI [%.1f, %.1f])",
                  gap_sum / 4.0, ci.lo, ci.hi);
  }
  bench::print_comparison("median AOE gap, selected - available", "22.9 deg",
                          buf);
  std::snprintf(buf, sizeof(buf), "%.0f%% available, %.0f%% selected",
                100.0 * avail_4590_sum / 4.0, 100.0 * chosen_4590_sum / 4.0);
  bench::print_comparison("share with AOE in 45-90 deg",
                          "30% available, 80% selected", buf);

  obs::RunReport report;
  report.kind = "bench";
  report.label = "fig4_aoe_cdf";
  report.add_value("median_aoe_gap_deg", gap_sum / 4.0);
  report.add_value("frac_available_45_90", avail_4590_sum / 4.0);
  report.add_value("frac_chosen_45_90", chosen_4590_sum / 4.0);
  sink.add(std::move(report));
  return 0;
}
