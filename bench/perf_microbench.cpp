// google-benchmark microbenchmarks for the hot paths: SGP4 propagation, the
// whole-sky visibility query, DTW matching, forest inference, obstruction-map
// XOR and the Mann-Whitney test. These bound the cost of scaling campaigns
// to longer durations and denser constellations. Besides the console table,
// per-section ns/op land in BENCH_perf.json (one RunReport line, git SHA
// stamped) so regressions are diffable across commits.

#include <benchmark/benchmark.h>

#include <cmath>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "constellation/ephemeris_cache.hpp"
#include "core/campaign.hpp"
#include "exec/thread_pool.hpp"

using namespace starlab;

namespace {

const core::Scenario& sc() { return bench::half_scenario(); }

void BM_Sgp4Propagate(benchmark::State& state) {
  const sgp4::Ephemeris& eph = sc().catalog().ephemeris(0);
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(sc().epoch_unix());
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(eph.state_teme(jd.plus_seconds(t)));
  }
}
BENCHMARK(BM_Sgp4Propagate);

void BM_CatalogPropagateAll(benchmark::State& state) {
  // Thread-scaling variant: the arg picks the exec pool width, so the
  // BENCH_perf.json speedup of /8 over /1 is the tentpole's scaling number.
  exec::configure({static_cast<int>(state.range(0))});
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(sc().epoch_unix());
  double t = 0.0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(sc().catalog().propagate_all(jd.plus_seconds(t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc().catalog().size()));
  exec::configure({});
}
BENCHMARK(BM_CatalogPropagateAll)->ArgName("threads")->Arg(1)->Arg(2)->Arg(8);

void BM_CampaignSlice(benchmark::State& state) {
  // End-to-end slot fan-out (propagate + candidates + allocate per slot and
  // terminal) at 1/2/8 exec threads — the run_campaign hot path.
  exec::configure({static_cast<int>(state.range(0))});
  core::CampaignConfig cfg;
  cfg.duration_hours = 0.05;  // 12 slots x 4 terminals
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_campaign(sc(), cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 12 *
                          static_cast<std::int64_t>(sc().terminals().size()));
  exec::configure({});
}
BENCHMARK(BM_CampaignSlice)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CatalogPropagateAllGen2(benchmark::State& state) {
  // Full Gen2 catalog (~9.6k satellites), single thread: the per-satellite
  // batch cost at the scale the SoA layout and spatial index target.
  exec::configure({1});
  const core::Scenario& g2 = bench::gen2_scenario();
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(g2.epoch_unix());
  double t = 0.0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(g2.catalog().propagate_all(jd.plus_seconds(t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g2.catalog().size()));
  exec::configure({});
}
BENCHMARK(BM_CatalogPropagateAllGen2)->Name("BM_CatalogPropagateAll/gen2");

void BM_EphemerisCacheLookFrom(benchmark::State& state) {
  // Steady-state cache behavior: 64 satellites x 8 on-grid instants cycle,
  // warm after the first pass. Compare with BM_Sgp4Propagate for the win.
  const constellation::EphemerisCache cache(sc().catalog());
  const geo::Geodetic site = sc().terminal(0).site();
  const double base = std::ceil(sc().epoch_unix() / 0.25) * 0.25;
  std::size_t i = 0;
  for (auto _ : state) {
    const time::JulianDate jd = time::JulianDate::from_unix_seconds(
        base + 0.25 * static_cast<double>(i % 8));
    benchmark::DoNotOptimize(cache.look_from(i % 64, site, jd));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EphemerisCacheLookFrom);

void BM_VisibleFrom(benchmark::State& state) {
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(sc().epoch_unix());
  const geo::Geodetic site = sc().terminal(0).site();
  double t = 0.0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(
        sc().catalog().visible_from(site, jd.plus_seconds(t)));
  }
}
BENCHMARK(BM_VisibleFrom);

void BM_VisibleFromGen2(benchmark::State& state) {
  // The whole-sky query at Gen2 density. The spatial index keeps this
  // O(visible): cost should track the candidate count, not the 2.3x catalog
  // growth over the Gen1 variant.
  const core::Scenario& g2 = bench::gen2_scenario();
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(g2.epoch_unix());
  const geo::Geodetic site = g2.terminal(0).site();
  double t = 0.0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(
        g2.catalog().visible_from(site, jd.plus_seconds(t)));
  }
}
BENCHMARK(BM_VisibleFromGen2)->Name("BM_VisibleFrom/gen2");

void BM_SchedulerAllocate(benchmark::State& state) {
  time::SlotIndex slot = sc().first_slot();
  for (auto _ : state) {
    ++slot;
    benchmark::DoNotOptimize(
        sc().global_scheduler().allocate(sc().terminal(0), slot));
  }
}
BENCHMARK(BM_SchedulerAllocate);

void BM_DtwDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::vector<match::Point2> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {u(rng), u(rng)};
    b[i] = {u(rng), u(rng)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::dtw_distance(a, b, 16));
  }
  // Path points consumed per second — comparable across the Arg sizes.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DtwDistance)->Arg(15)->Arg(60)->Arg(240);

void BM_ObstructionMapXor(benchmark::State& state) {
  obsmap::ObstructionMap a, b;
  for (int i = 0; i < 123; ++i) {
    a.set(i, (i * 7) % 123);
    b.set(i, (i * 13) % 123);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.exclusive_or(b));
  }
}
BENCHMARK(BM_ObstructionMapXor);

void BM_MannWhitney(benchmark::State& state) {
  std::mt19937 rng(11);
  std::normal_distribution<double> d(30.0, 2.0);
  std::vector<double> a(750), b(750);
  for (auto& x : a) x = d(rng);
  for (auto& x : b) x = d(rng) + 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::mann_whitney_u(a, b));
  }
}
BENCHMARK(BM_MannWhitney);

void BM_ForestPredict(benchmark::State& state) {
  // A small synthetic classification task resembling the §6 feature layout.
  static const ml::RandomForest forest = [] {
    ml::Dataset d(32);
    std::mt19937 rng(13);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (int i = 0; i < 2000; ++i) {
      std::vector<double> row(32);
      for (double& v : row) v = u(rng);
      d.add_row(row, row[3] > 0.5 ? 1 : 0);
    }
    ml::ForestConfig cfg;
    cfg.num_trees = 80;
    ml::RandomForest f(cfg);
    f.fit(d);
    return f;
  }();
  std::vector<double> row(32, 0.4);
  for (auto _ : state) {
    row[3] = row[3] > 0.5 ? 0.2 : 0.8;
    benchmark::DoNotOptimize(forest.predict_proba(row));
  }
}
BENCHMARK(BM_ForestPredict);

void BM_ForestFit(benchmark::State& state) {
  // Per-tree parallel training (the §6 model) at 1/2/8 exec threads.
  exec::configure({static_cast<int>(state.range(0))});
  static const ml::Dataset data = [] {
    ml::Dataset d(16);
    std::mt19937 rng(17);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (int i = 0; i < 1000; ++i) {
      std::vector<double> row(16);
      for (double& v : row) v = u(rng);
      d.add_row(row, row[2] + row[9] > 1.0 ? 1 : 0);
    }
    return d;
  }();
  ml::ForestConfig cfg;
  cfg.num_trees = 40;
  for (auto _ : state) {
    ml::RandomForest forest(cfg);
    forest.fit(data);
    benchmark::DoNotOptimize(forest.oob_accuracy());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cfg.num_trees);
  exec::configure({});
}
BENCHMARK(BM_ForestFit)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Console reporter that additionally records each benchmark's ns/op as a
/// named value on the run report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(obs::RunReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.iterations <= 0) continue;
      const double ns_per_op = run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9;
      report_.add_value(run.benchmark_name() + "_ns_per_op", ns_per_op);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::RunReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_perf.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  obs::RunReport report;
  report.kind = "bench";
  report.label = "perf_microbench";
  const obs::Stopwatch timer;
  CaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.wall_ns = timer.elapsed_ns();
  sink.add(std::move(report));

  benchmark::Shutdown();
  return 0;
}
