// google-benchmark microbenchmarks for the hot paths: SGP4 propagation, the
// whole-sky visibility query, DTW matching, forest inference, obstruction-map
// XOR and the Mann-Whitney test. These bound the cost of scaling campaigns
// to longer durations and denser constellations. Besides the console table,
// per-section ns/op land in BENCH_perf.json (one RunReport line, git SHA
// stamped) so regressions are diffable across commits.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "bench_common.hpp"

using namespace starlab;

namespace {

const core::Scenario& sc() { return bench::half_scenario(); }

void BM_Sgp4Propagate(benchmark::State& state) {
  const sgp4::Ephemeris& eph = sc().catalog().ephemeris(0);
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(sc().epoch_unix());
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(eph.state_teme(jd.plus_seconds(t)));
  }
}
BENCHMARK(BM_Sgp4Propagate);

void BM_CatalogPropagateAll(benchmark::State& state) {
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(sc().epoch_unix());
  double t = 0.0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(sc().catalog().propagate_all(jd.plus_seconds(t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc().catalog().size()));
}
BENCHMARK(BM_CatalogPropagateAll);

void BM_VisibleFrom(benchmark::State& state) {
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(sc().epoch_unix());
  const geo::Geodetic site = sc().terminal(0).site();
  double t = 0.0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(
        sc().catalog().visible_from(site, jd.plus_seconds(t)));
  }
}
BENCHMARK(BM_VisibleFrom);

void BM_SchedulerAllocate(benchmark::State& state) {
  time::SlotIndex slot = sc().first_slot();
  for (auto _ : state) {
    ++slot;
    benchmark::DoNotOptimize(
        sc().global_scheduler().allocate(sc().terminal(0), slot));
  }
}
BENCHMARK(BM_SchedulerAllocate);

void BM_DtwDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::vector<match::Point2> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {u(rng), u(rng)};
    b[i] = {u(rng), u(rng)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::dtw_distance(a, b, 16));
  }
}
BENCHMARK(BM_DtwDistance)->Arg(15)->Arg(60)->Arg(240);

void BM_ObstructionMapXor(benchmark::State& state) {
  obsmap::ObstructionMap a, b;
  for (int i = 0; i < 123; ++i) {
    a.set(i, (i * 7) % 123);
    b.set(i, (i * 13) % 123);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.exclusive_or(b));
  }
}
BENCHMARK(BM_ObstructionMapXor);

void BM_MannWhitney(benchmark::State& state) {
  std::mt19937 rng(11);
  std::normal_distribution<double> d(30.0, 2.0);
  std::vector<double> a(750), b(750);
  for (auto& x : a) x = d(rng);
  for (auto& x : b) x = d(rng) + 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::mann_whitney_u(a, b));
  }
}
BENCHMARK(BM_MannWhitney);

void BM_ForestPredict(benchmark::State& state) {
  // A small synthetic classification task resembling the §6 feature layout.
  static const ml::RandomForest forest = [] {
    ml::Dataset d(32);
    std::mt19937 rng(13);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (int i = 0; i < 2000; ++i) {
      std::vector<double> row(32);
      for (double& v : row) v = u(rng);
      d.add_row(row, row[3] > 0.5 ? 1 : 0);
    }
    ml::ForestConfig cfg;
    cfg.num_trees = 80;
    ml::RandomForest f(cfg);
    f.fit(d);
    return f;
  }();
  std::vector<double> row(32, 0.4);
  for (auto _ : state) {
    row[3] = row[3] > 0.5 ? 0.2 : 0.8;
    benchmark::DoNotOptimize(forest.predict_proba(row));
  }
}
BENCHMARK(BM_ForestPredict);

/// Console reporter that additionally records each benchmark's ns/op as a
/// named value on the run report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(obs::RunReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.iterations <= 0) continue;
      const double ns_per_op = run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9;
      report_.add_value(run.benchmark_name() + "_ns_per_op", ns_per_op);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::RunReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_perf.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  obs::RunReport report;
  report.kind = "bench";
  report.label = "perf_microbench";
  const obs::Stopwatch timer;
  CaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.wall_ns = timer.elapsed_ns();
  sink.add(std::move(report));

  benchmark::Shutdown();
  return 0;
}
