// Extensions beyond the paper's figures:
//   1. handover dynamics implied by the 15 s global re-allocation (§3) —
//      change rate, dwell lengths, sky-jump sizes;
//   2. the iPerf3 side of the paper's measurement (throughput at 50 % of
//      provisioned rate), grounded in the Ku link budget;
//   3. satellite-level prediction: the §6 cluster model converted into a
//      ranking over concrete satellites, evaluated out-of-time;
//   4. the bent-pipe gateway constraint: how pick quality degrades when the
//      gateway network thins out;
//   5. rain fade: how weather erodes the link margin, reinforcing the
//      scheduler's high-AOE preference.

#include <algorithm>

#include "bench_common.hpp"
#include "ground/gateway.hpp"
#include "rf/rain_fade.hpp"

using namespace starlab;

namespace {

void handover_section(bench::ReportSink& sink,
                      const core::CampaignData& data) {
  bench::print_header("Handover dynamics (per terminal, 12 h)");
  std::printf("  terminal     rate   mean-dwell  max-dwell  mean-jump  "
              "distinct  revisit\n");
  for (std::size_t t = 0; t < data.terminal_names.size(); ++t) {
    std::vector<analysis::AllocationStep> seq;
    for (const core::SlotObs* s : data.for_terminal(t)) {
      if (s->has_choice()) {
        const core::CandidateObs& c = s->chosen_candidate();
        seq.push_back({c.norad_id, c.azimuth_deg, c.elevation_deg});
      } else {
        seq.push_back({-1, 0.0, 0.0});
      }
    }
    const analysis::HandoverStats h = analysis::handover_stats(seq);
    std::printf("  %-10s  %5.2f   %7.1f     %6zu    %6.1f     %6zu   %6.2f\n",
                data.terminal_names[t].c_str(), h.handover_rate,
                h.mean_dwell_slots, h.max_dwell_slots, h.mean_jump_deg,
                h.distinct_satellites, h.revisit_fraction);

    obs::RunReport report;
    report.kind = "bench";
    report.label = "handover:" + data.terminal_names[t];
    report.add_value("handover_rate", h.handover_rate);
    report.add_value("mean_dwell_slots", h.mean_dwell_slots);
    report.add_value("mean_jump_deg", h.mean_jump_deg);
    report.add_value("distinct_satellites",
                     static_cast<double>(h.distinct_satellites));
    sink.add(std::move(report));
  }
  std::printf("  (stride-2 campaign: a 'slot' here spans 30 s of wall time;\n"
              "   the paper's §3 finding implies rates near 1.)\n");
}

void throughput_section() {
  bench::print_header("iPerf3-style throughput through the Ku link budget");
  const core::Scenario& sc = bench::full_scenario();
  const measurement::ThroughputProber prober(sc.global_scheduler(),
                                             sc.mac_scheduler());
  const double t0 = sc.grid().slot_start(sc.first_slot());

  std::printf("  terminal    mean goodput  saturation  (50 Mbit/s offered, "
              "10 min)\n");
  for (std::size_t t = 0; t < 4; ++t) {
    const measurement::ThroughputSeries s =
        prober.run(sc.terminal(t), t0, t0 + 600.0);
    std::printf("  %-10s  %8.1f Mb/s   %6.1f%%\n", s.terminal.c_str(),
                s.mean_goodput_mbps(), 100.0 * s.saturation_fraction());
  }

  // The link-budget curve behind the scheduler's AOE preference.
  std::printf("\n  slant range -> Shannon capacity (Ku downlink, 240 MHz):\n");
  for (const double range : {550.0, 700.0, 900.0, 1100.0, 1300.0}) {
    std::printf("    %6.0f km  %7.0f Mbit/s   (C/N %.1f dB)\n", range,
                rf::shannon_capacity_mbps(rf::ku_user_downlink(), geo::Km(range)),
                rf::cn_db(rf::ku_user_downlink(), geo::Km(range)));
  }
}

void satellite_prediction_section(bench::ReportSink& sink,
                                  const core::CampaignData& train_data) {
  bench::print_header("Satellite-level prediction (extension of Fig 8)");
  const core::ClusterFeaturizer featurizer;
  const ml::Dataset train = featurizer.build_dataset(train_data);

  ml::ForestConfig fc;
  fc.num_trees = 80;
  fc.tree.max_depth = 18;
  ml::RandomForest forest(fc);
  forest.fit(train);

  // Out-of-time evaluation: a fresh 2 h window after the training window.
  core::CampaignConfig eval_cfg;
  eval_cfg.duration_hours = 2.0;
  eval_cfg.start_offset_hours = 12.5;
  const core::CampaignData eval_data =
      core::run_campaign(bench::full_scenario(), eval_cfg);

  const core::SatellitePredictor predictor(forest);
  const std::vector<double> topk = predictor.evaluate_top_k(eval_data, 5);

  // Random baseline: expected top-k with ~36 candidates.
  double mean_candidates = 0.0;
  std::size_t n = 0;
  for (const core::SlotObs& s : eval_data.slots) {
    if (s.has_choice()) {
      mean_candidates += static_cast<double>(s.available.size());
      ++n;
    }
  }
  mean_candidates /= static_cast<double>(n);

  std::printf("  k    predictor   random-guess\n");
  for (std::size_t k = 1; k <= topk.size(); ++k) {
    std::printf("  %zu    %6.1f%%      %6.1f%%\n", k, 100.0 * topk[k - 1],
                100.0 * static_cast<double>(k) / mean_candidates);
  }
  std::printf("  (out-of-time window, %.1f candidates/slot on average)\n",
              mean_candidates);

  obs::RunReport report;
  report.kind = "bench";
  report.label = "satellite_prediction";
  report.add_value("predictor_top1", topk.front());
  report.add_value("predictor_top5", topk.back());
  report.add_value("mean_candidates", mean_candidates);
  sink.add(std::move(report));
}

void gateway_section() {
  bench::print_header("Bent-pipe gateway ablation (Iowa, 2 h)");
  const core::Scenario& sc = bench::full_scenario();
  const ground::GatewayNetwork dense =
      ground::GatewayNetwork::paper_region_network();
  const ground::GatewayNetwork sparse = ground::GatewayNetwork::sparse_network();

  struct Row {
    const char* name;
    const ground::GatewayNetwork* net;
  };
  const Row rows[] = {{"no constraint", nullptr},
                      {"dense (21 gw)", &dense},
                      {"sparse (3 gw)", &sparse}};

  std::printf("  network        served   mean-AOE  mean-candidates\n");
  for (const Row& row : rows) {
    scheduler::GlobalScheduler sched(sc.catalog());
    sched.set_gateway_network(row.net);

    int served = 0, slots = 0;
    double aoe_sum = 0.0, cand_sum = 0.0;
    for (time::SlotIndex s = sc.first_slot(); s < sc.first_slot() + 480; ++s) {
      ++slots;
      const auto alloc = sched.allocate(sc.terminal(0), s);
      if (!alloc) continue;
      ++served;
      aoe_sum += alloc->look.elevation_deg;
      cand_sum += alloc->num_available;
    }
    std::printf("  %-13s  %5.1f%%   %7.1f   %9.1f\n", row.name,
                100.0 * served / slots, aoe_sum / std::max(served, 1),
                cand_sum / std::max(served, 1));
  }
  std::printf("  (a dense network leaves the paper's analyses unaffected;\n"
              "   a sparse one shrinks the candidate pool and drags picks\n"
              "   toward gateway-visible sky.)\n");
}

void rain_section() {
  bench::print_header("Rain fade vs elevation (Ku downlink margin)");
  std::printf("  rain mm/h   fade@25deg  fade@45deg  fade@85deg   C/N left "
              "@25deg/1200km\n");
  for (const double rate : {0.0, 5.0, 12.5, 25.0, 50.0}) {
    const double f25 = rf::rain_attenuation_db(rate, geo::Deg(25.0));
    const double f45 = rf::rain_attenuation_db(rate, geo::Deg(45.0));
    const double f85 = rf::rain_attenuation_db(rate, geo::Deg(85.0));
    const double margin = rf::cn_db(rf::ku_user_downlink(), geo::Km(1200.0)) - f25;
    std::printf("  %8.1f   %8.1f dB %8.1f dB %8.1f dB   %8.1f dB\n", rate,
                f25, f45, f85, margin);
  }
  std::printf("  (heavy rain erases the low-elevation margin first — the\n"
              "   weather-side reinforcement of the Fig 4 preference.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ReportSink sink(argc, argv, "BENCH_handover.json");
  const core::CampaignData& data = bench::standard_campaign();
  handover_section(sink, data);
  throughput_section();
  satellite_prediction_section(sink, data);
  gateway_section();
  rain_section();
  return 0;
}
