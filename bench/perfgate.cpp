// perfgate — the profile half of the ctest `perfgate` label. Runs the
// identification pipeline at 1/8 scale with profiling enabled and writes
// the span Profiler's JSON report; benchdiff then checks the [span]
// ceilings in bench/budgets.toml against it (mean ns per call). Ceilings
// are deliberately ~100x the measured numbers: the gate exists to catch
// order-of-magnitude regressions (an accidentally quadratic loop, a cache
// bypass), not scheduler jitter on a loaded CI runner.
//
//   perfgate [--out=perfgate_prof.json] [--collapsed=PATH] [--gen2]
//
// --gen2 swaps in the Gen2 constellation (Gen1 shells plus the 120x45
// extension shell) at the same 1/8 scale, for the budgets_gen2.toml span
// ceilings.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/pipeline.hpp"
#include "core/scenario.hpp"
#include "obs/config.hpp"
#include "obs/prof.hpp"

namespace {

const char* flag_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starlab;

  std::string out_path = "perfgate_prof.json";
  std::string collapsed_path;
  bool gen2 = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--out")) {
      out_path = v;
    } else if (const char* v2 = flag_value(argv[i], "--collapsed")) {
      collapsed_path = v2;
    } else if (std::strcmp(argv[i], "--gen2") == 0) {
      gen2 = true;
    } else {
      std::fprintf(stderr,
                   "usage: perfgate [--out=PATH] [--collapsed=PATH] "
                   "[--gen2]\n");
      return 2;
    }
  }

  obs::Config cfg;
  cfg.metrics = true;
  cfg.profiling = true;
  obs::set_config(cfg);

  std::printf("[perfgate] building 1/8-scale %s scenario...\n",
              gen2 ? "Gen2" : "Gen1");
  core::ScenarioConfig scenario_cfg = core::Scenario::default_config(0.125);
  scenario_cfg.constellation.gen2 = gen2;
  const core::Scenario scenario(std::move(scenario_cfg));
  const core::InferencePipeline pipeline(scenario);

  std::printf("[perfgate] running pipeline (terminal 0, 15 min)...\n");
  const core::PipelineResult result = pipeline.run(0, 15.0 * 60.0);
  std::printf("[perfgate] %zu slot(s), accuracy %.3f\n", result.rows.size(),
              result.accuracy());

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[perfgate] FAILED opening %s\n", out_path.c_str());
    return 1;
  }
  out << obs::Profiler::instance().report_json() << '\n';
  std::printf("[perfgate] %zu profiled path(s) -> %s\n",
              obs::Profiler::instance().size(), out_path.c_str());

  if (!collapsed_path.empty()) {
    std::ofstream collapsed(collapsed_path);
    if (!collapsed) {
      std::fprintf(stderr, "[perfgate] FAILED opening %s\n",
                   collapsed_path.c_str());
      return 1;
    }
    collapsed << obs::Profiler::instance().collapsed_stacks();
    std::printf("[perfgate] collapsed stacks -> %s\n", collapsed_path.c_str());
  }
  return 0;
}
