#pragma once

// benchdiff — the perf side of the starlint ratchet (see
// docs/OBSERVABILITY.md, "Regression gate"). Compares the RunReport JSONL
// the benches emit (BENCH_*.json) against a committed baseline directory
// with per-metric noise thresholds, and checks declarative perf budgets
// (bench/budgets.toml) against bench values and profile reports. A library
// so tests/test_benchdiff.cpp can drive the diff logic on synthetic
// fixtures; the CLI lives in main.cpp.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/run_report.hpp"

namespace benchdiff {

/// Noise gate for one metric: a change is significant only when it exceeds
/// BOTH the relative fraction and the absolute floor (in the metric's own
/// unit, ns for the *_ns_per_op values). The floor keeps a 0.3 ns -> 0.5 ns
/// jitter on a sub-nanosecond bench from reading as a 66 % regression.
struct Thresholds {
  double rel = 0.35;
  double abs_floor = 100.0;
};

struct ThresholdConfig {
  Thresholds fallback;
  /// Overrides keyed by metric (value) name, e.g. "BM_Sgp4Propagate_ns_per_op".
  std::map<std::string, Thresholds> per_metric;

  [[nodiscard]] const Thresholds& for_metric(const std::string& name) const;
};

/// Parse the benchdiff.toml threshold file:
///   [default]
///   rel = 0.35
///   abs = 100.0
///   [metric."BM_Sgp4Propagate_ns_per_op"]
///   rel = 0.50
///   abs = 50.0
/// Throws std::runtime_error with a line number on malformed input.
[[nodiscard]] ThresholdConfig parse_thresholds(const std::string& text);
[[nodiscard]] ThresholdConfig load_thresholds(const std::string& path);

/// One comparable number extracted from a RunReport: key is
/// "<label>.<value name>" ("<value name>" when the label is empty). `gated`
/// marks lower-is-better timing metrics (name ends in _ns, _ns_per_op, _us,
/// _ms or _seconds); everything else is reported informationally but never
/// fails the gate (accuracy-style values have no universal direction).
struct Metric {
  std::string key;
  std::string name;  ///< value name without the label prefix
  double value = 0.0;
  bool gated = false;
};

[[nodiscard]] std::vector<Metric> metrics_from_reports(
    const std::vector<starlab::obs::RunReport>& reports);

enum class Status {
  kOk,          ///< within noise
  kRegression,  ///< gated metric slower beyond threshold -> fail
  kStale,       ///< gated metric faster beyond threshold -> stale baseline
  kNew,         ///< present now, absent from baseline
  kGone,        ///< baselined, absent now
  kInfo,        ///< ungated metric changed
};

struct Entry {
  std::string key;
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double delta_pct = 0.0;  ///< 100 * (current - baseline) / baseline
  Status status = Status::kOk;
};

struct Diff {
  std::vector<Entry> entries;  ///< sorted by key
  int regressions = 0;
  int stale = 0;

  /// Ratchet semantics mirroring starlint's baseline: regressions always
  /// fail; a large unexplained improvement marks the committed baseline
  /// stale and fails too unless explicitly allowed (cross-machine runs pass
  /// --allow-improvement, since a faster runner is not a stale baseline).
  [[nodiscard]] bool ok(bool allow_improvement) const {
    return regressions == 0 && (allow_improvement || stale == 0);
  }
};

[[nodiscard]] Diff diff_metrics(const std::vector<Metric>& baseline,
                                const std::vector<Metric>& current,
                                const ThresholdConfig& thresholds);

/// Plain-text summary (one line per non-OK entry, or "all within noise").
[[nodiscard]] std::string format_text(const Diff& diff);

/// Markdown table for CI logs/summaries.
[[nodiscard]] std::string format_markdown(const Diff& diff,
                                          const std::string& title);

// ---- Perf budgets (bench/budgets.toml) ----

/// Declarative ceilings. [benchmark] keys are bench value names and the
/// ceiling is in the value's own unit (ns/op for *_ns_per_op); [span] keys
/// are span names from the obs::Profiler report and the ceiling is mean
/// nanoseconds per call (total_ns / count).
struct Budgets {
  std::map<std::string, double> benchmark;
  std::map<std::string, double> span_mean_ns;
};

[[nodiscard]] Budgets parse_budgets(const std::string& text);
[[nodiscard]] Budgets load_budgets(const std::string& path);

/// One "names" rollup entry scanned out of a Profiler::report_json() file.
struct ProfileName {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Extract the "names" array of a profile report. Targeted scan of our own
/// json_writer output (same spirit as starlint's compdb scan), not a
/// general JSON parser.
[[nodiscard]] std::vector<ProfileName> parse_profile_names(
    const std::string& text);

struct BudgetCheck {
  std::vector<std::string> breaches;  ///< over ceiling, or budgeted-but-absent
  std::vector<std::string> passes;    ///< "name: value <= ceiling" lines

  [[nodiscard]] bool ok() const { return breaches.empty(); }
};

/// Every budget entry must be present and under its ceiling; a budgeted
/// metric or span that is absent is a breach (a renamed benchmark must not
/// silently disarm its budget).
[[nodiscard]] BudgetCheck check_budgets(
    const Budgets& budgets, const std::vector<Metric>& bench_metrics,
    const std::vector<ProfileName>& profile_names);

}  // namespace benchdiff
