#include "benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace benchdiff {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + why);
}

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Strip a trailing # comment (quotes-aware) and trim.
std::string strip_comment(const std::string& s) {
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_string = !in_string;
    if (s[i] == '#' && !in_string) return trim(s.substr(0, i));
  }
  return trim(s);
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

double parse_double(const std::string& s, std::size_t line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) fail(line, "trailing characters after number");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number, got '" + s + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range: '" + s + "'");
  }
}

/// Unquote `"name"`; bare keys pass through.
std::string unquote(const std::string& s, std::size_t line) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  if (s.find('"') != std::string::npos) fail(line, "malformed quoted key");
  return s;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const Thresholds& ThresholdConfig::for_metric(const std::string& name) const {
  const auto it = per_metric.find(name);
  return it == per_metric.end() ? fallback : it->second;
}

ThresholdConfig parse_thresholds(const std::string& text) {
  ThresholdConfig config;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  Thresholds* section = nullptr;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = strip_comment(line);
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']') fail(lineno, "malformed section header");
      const std::string header = trim(t.substr(1, t.size() - 2));
      if (header == "default") {
        section = &config.fallback;
      } else if (header.rfind("metric.", 0) == 0) {
        const std::string name = unquote(trim(header.substr(7)), lineno);
        if (name.empty()) fail(lineno, "empty metric name");
        section = &config.per_metric[name];
        *section = config.fallback;  // overrides start from the defaults
      } else {
        fail(lineno, "unknown section [" + header + "]");
      }
      continue;
    }
    if (section == nullptr) fail(lineno, "key outside a section");
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) fail(lineno, "expected key = value");
    const std::string key = trim(t.substr(0, eq));
    const double value = parse_double(trim(t.substr(eq + 1)), lineno);
    if (key == "rel") {
      section->rel = value;
    } else if (key == "abs") {
      section->abs_floor = value;
    } else {
      fail(lineno, "unknown key '" + key + "'");
    }
  }
  return config;
}

ThresholdConfig load_thresholds(const std::string& path) {
  try {
    return parse_thresholds(read_file(path));
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::vector<Metric> metrics_from_reports(
    const std::vector<starlab::obs::RunReport>& reports) {
  std::vector<Metric> out;
  for (const starlab::obs::RunReport& r : reports) {
    for (const auto& [name, value] : r.values) {
      Metric m;
      m.name = name;
      m.key = r.label.empty() ? name : r.label + "." + name;
      m.value = value;
      m.gated = has_suffix(name, "_ns_per_op") || has_suffix(name, "_ns") ||
                has_suffix(name, "_us") || has_suffix(name, "_ms") ||
                has_suffix(name, "_seconds");
      out.push_back(std::move(m));
    }
  }
  return out;
}

Diff diff_metrics(const std::vector<Metric>& baseline,
                  const std::vector<Metric>& current,
                  const ThresholdConfig& thresholds) {
  std::map<std::string, const Metric*> base_by_key;
  for (const Metric& m : baseline) base_by_key[m.key] = &m;
  std::map<std::string, const Metric*> cur_by_key;
  for (const Metric& m : current) cur_by_key[m.key] = &m;

  Diff diff;
  for (const auto& [key, cur] : cur_by_key) {
    Entry e;
    e.key = key;
    e.name = cur->name;
    e.current = cur->value;
    const auto base = base_by_key.find(key);
    if (base == base_by_key.end()) {
      e.status = Status::kNew;
      diff.entries.push_back(std::move(e));
      continue;
    }
    e.baseline = base->second->value;
    const double delta = e.current - e.baseline;
    e.delta_pct = e.baseline != 0.0 ? 100.0 * delta / e.baseline
                                    : (delta == 0.0 ? 0.0 : 100.0);
    if (cur->gated) {
      const Thresholds& th = thresholds.for_metric(cur->name);
      if (delta > th.rel * std::abs(e.baseline) && delta > th.abs_floor) {
        e.status = Status::kRegression;
        ++diff.regressions;
      } else if (-delta > th.rel * std::abs(e.baseline) &&
                 -delta > th.abs_floor) {
        e.status = Status::kStale;
        ++diff.stale;
      }
    } else if (e.current != e.baseline) {
      e.status = Status::kInfo;
    }
    diff.entries.push_back(std::move(e));
  }
  for (const auto& [key, base] : base_by_key) {
    if (cur_by_key.find(key) != cur_by_key.end()) continue;
    Entry e;
    e.key = key;
    e.name = base->name;
    e.baseline = base->value;
    e.status = Status::kGone;
    diff.entries.push_back(std::move(e));
  }
  std::sort(diff.entries.begin(), diff.entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  return diff;
}

namespace {

const char* status_word(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRegression:
      return "REGRESSION";
    case Status::kStale:
      return "STALE";
    case Status::kNew:
      return "new";
    case Status::kGone:
      return "gone";
    case Status::kInfo:
      return "info";
  }
  return "?";
}

}  // namespace

std::string format_text(const Diff& diff) {
  std::string out;
  for (const Entry& e : diff.entries) {
    if (e.status == Status::kOk) continue;
    char buf[256];
    if (e.status == Status::kNew) {
      std::snprintf(buf, sizeof(buf), "benchdiff: %-10s %s = %s\n",
                    status_word(e.status), e.key.c_str(),
                    format_value(e.current).c_str());
    } else if (e.status == Status::kGone) {
      std::snprintf(buf, sizeof(buf), "benchdiff: %-10s %s (baseline %s)\n",
                    status_word(e.status), e.key.c_str(),
                    format_value(e.baseline).c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "benchdiff: %-10s %s: %s -> %s (%+.1f%%)\n",
                    status_word(e.status), e.key.c_str(),
                    format_value(e.baseline).c_str(),
                    format_value(e.current).c_str(), e.delta_pct);
    }
    out += buf;
  }
  if (out.empty()) out = "benchdiff: all metrics within noise thresholds\n";
  return out;
}

std::string format_markdown(const Diff& diff, const std::string& title) {
  std::string out = "### " + title + "\n\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d regression(s), %d stale, %zu metric(s)",
                diff.regressions, diff.stale, diff.entries.size());
  out += std::string(buf) + "\n\n";
  out += "| metric | baseline | current | delta | status |\n";
  out += "|---|---:|---:|---:|---|\n";
  for (const Entry& e : diff.entries) {
    out += "| `" + e.key + "` | ";
    out += e.status == Status::kNew ? "—" : format_value(e.baseline);
    out += " | ";
    out += e.status == Status::kGone ? "—" : format_value(e.current);
    out += " | ";
    if (e.status == Status::kNew || e.status == Status::kGone) {
      out += "—";
    } else {
      std::snprintf(buf, sizeof(buf), "%+.1f%%", e.delta_pct);
      out += buf;
    }
    out += " | ";
    out += status_word(e.status);
    out += " |\n";
  }
  return out;
}

Budgets parse_budgets(const std::string& text) {
  Budgets budgets;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  std::map<std::string, double>* section = nullptr;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = strip_comment(line);
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']') fail(lineno, "malformed section header");
      const std::string header = trim(t.substr(1, t.size() - 2));
      if (header == "benchmark") {
        section = &budgets.benchmark;
      } else if (header == "span") {
        section = &budgets.span_mean_ns;
      } else {
        fail(lineno, "unknown section [" + header + "]");
      }
      continue;
    }
    if (section == nullptr) fail(lineno, "key outside a section");
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) fail(lineno, "expected key = value");
    const std::string key = unquote(trim(t.substr(0, eq)), lineno);
    if (key.empty()) fail(lineno, "empty budget key");
    (*section)[key] = parse_double(trim(t.substr(eq + 1)), lineno);
  }
  return budgets;
}

Budgets load_budgets(const std::string& path) {
  try {
    return parse_budgets(read_file(path));
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::vector<ProfileName> parse_profile_names(const std::string& text) {
  std::vector<ProfileName> out;
  const std::size_t names = text.find("\"names\":[");
  if (names == std::string::npos) return out;
  std::size_t at = names + 9;
  while (true) {
    const std::size_t name_key = text.find("\"name\":\"", at);
    if (name_key == std::string::npos) break;
    const std::size_t open = name_key + 8;
    const std::size_t close = text.find('"', open);
    if (close == std::string::npos) break;
    ProfileName p;
    p.name = text.substr(open, close - open);
    const auto number_after = [&](const char* key) -> std::uint64_t {
      const std::size_t k = text.find(key, close);
      if (k == std::string::npos) return 0;
      return std::strtoull(text.c_str() + k + std::strlen(key), nullptr, 10);
    };
    p.count = number_after("\"count\":");
    p.total_ns = number_after("\"total_ns\":");
    out.push_back(std::move(p));
    at = close + 1;
  }
  return out;
}

BudgetCheck check_budgets(const Budgets& budgets,
                          const std::vector<Metric>& bench_metrics,
                          const std::vector<ProfileName>& profile_names) {
  BudgetCheck check;
  // A budget ceiling names a bench value; the value may appear under
  // several labels (rare) — every occurrence must hold.
  for (const auto& [name, ceiling] : budgets.benchmark) {
    bool found = false;
    for (const Metric& m : bench_metrics) {
      if (m.name != name) continue;
      found = true;
      const std::string line = m.key + ": " + format_value(m.value) +
                               (m.value <= ceiling ? " <= " : " > ") +
                               format_value(ceiling);
      (m.value <= ceiling ? check.passes : check.breaches).push_back(line);
    }
    if (!found) {
      check.breaches.push_back(name + ": budgeted but absent from bench data");
    }
  }
  for (const auto& [name, ceiling] : budgets.span_mean_ns) {
    bool found = false;
    for (const ProfileName& p : profile_names) {
      if (p.name != name) continue;
      found = true;
      if (p.count == 0) {
        check.breaches.push_back("span " + name + ": zero recorded calls");
        continue;
      }
      const double mean =
          static_cast<double>(p.total_ns) / static_cast<double>(p.count);
      const std::string line = "span " + name + ": mean " +
                               format_value(mean) + " ns" +
                               (mean <= ceiling ? " <= " : " > ") +
                               format_value(ceiling) + " ns";
      (mean <= ceiling ? check.passes : check.breaches).push_back(line);
    }
    if (!found) {
      check.breaches.push_back("span " + name +
                               ": budgeted but absent from profile report");
    }
  }
  return check;
}

}  // namespace benchdiff
