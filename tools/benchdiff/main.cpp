// benchdiff — noise-aware bench regression gate and perf-budget checker.
//
//   benchdiff [--baseline DIR] [--thresholds FILE] [--markdown FILE]
//             [--budgets FILE] [--profile FILE] [--allow-improvement]
//             [--write-baseline] [--verbose] BENCH_*.json...
//
// Each positional file is RunReport JSONL as written by bench::ReportSink;
// it is compared against <baseline DIR>/<basename>. Ratchet semantics
// mirror starlint: a regression beyond the noise thresholds fails, and so
// does a large unexplained improvement (stale baseline) unless
// --allow-improvement is given (CI runners faster than the machine that
// wrote the baseline are improvements, not staleness). --write-baseline
// copies the current files into the baseline directory instead of
// comparing. --budgets checks declarative ceilings against the bench
// values and (with --profile) a Profiler::report_json() file.
//
// Exit codes: 0 clean, 1 regression/stale/budget breach, 2 usage/IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchdiff.hpp"
#include "io/report_io.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::string baseline_dir = "bench/baselines";
  std::string thresholds_path;
  std::string markdown_path;
  std::string budgets_path;
  std::string profile_path;
  bool allow_improvement = false;
  bool write_baseline = false;
  bool verbose = false;
  std::vector<std::string> files;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--baseline DIR] [--thresholds FILE] [--markdown FILE]\n"
               "       [--budgets FILE] [--profile FILE]"
               " [--allow-improvement]\n"
               "       [--write-baseline] [--verbose] BENCH_*.json...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string& into) {
      if (i + 1 >= argc) {
        std::cerr << "benchdiff: " << arg << " needs a value\n";
        std::exit(2);
      }
      into = argv[++i];
    };
    if (arg == "--baseline") {
      value(opt.baseline_dir);
    } else if (arg == "--thresholds") {
      value(opt.thresholds_path);
    } else if (arg == "--markdown") {
      value(opt.markdown_path);
    } else if (arg == "--budgets") {
      value(opt.budgets_path);
    } else if (arg == "--profile") {
      value(opt.profile_path);
    } else if (arg == "--allow-improvement") {
      opt.allow_improvement = true;
    } else if (arg == "--write-baseline") {
      opt.write_baseline = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      opt.files.push_back(arg);
    }
  }
  if (opt.files.empty() && opt.budgets_path.empty()) return usage(argv[0]);

  try {
    if (opt.write_baseline) {
      fs::create_directories(opt.baseline_dir);
      for (const std::string& file : opt.files) {
        // Round-trip through the parser: a malformed current file must not
        // become a malformed committed baseline.
        const std::vector<starlab::obs::RunReport> reports =
            starlab::io::load_run_reports_file(file);
        const std::string dest =
            (fs::path(opt.baseline_dir) / fs::path(file).filename()).string();
        starlab::io::save_run_reports_file(dest, reports);
        std::cout << "benchdiff: wrote baseline " << dest << " ("
                  << reports.size() << " report(s))\n";
      }
      return 0;
    }

    const benchdiff::ThresholdConfig thresholds =
        opt.thresholds_path.empty()
            ? benchdiff::ThresholdConfig{}
            : benchdiff::load_thresholds(opt.thresholds_path);

    bool gate_ok = true;
    std::string markdown;
    std::vector<benchdiff::Metric> all_current;

    for (const std::string& file : opt.files) {
      const std::vector<benchdiff::Metric> current =
          benchdiff::metrics_from_reports(
              starlab::io::load_run_reports_file(file));
      all_current.insert(all_current.end(), current.begin(), current.end());

      const std::string base_name = fs::path(file).filename().string();
      const fs::path base_path = fs::path(opt.baseline_dir) / base_name;
      if (!fs::exists(base_path)) {
        std::cout << "benchdiff: " << base_name
                  << ": no baseline committed (seed with --write-baseline)\n";
        markdown += "### " + base_name + "\n\nno baseline committed\n\n";
        continue;
      }
      const std::vector<benchdiff::Metric> baseline =
          benchdiff::metrics_from_reports(
              starlab::io::load_run_reports_file(base_path.string()));

      const benchdiff::Diff diff =
          benchdiff::diff_metrics(baseline, current, thresholds);
      std::cout << "== " << base_name << " vs " << base_path.string() << "\n";
      std::cout << benchdiff::format_text(diff);
      if (opt.verbose) {
        for (const benchdiff::Entry& e : diff.entries) {
          if (e.status == benchdiff::Status::kOk) {
            std::cout << "benchdiff: ok         " << e.key << ": "
                      << e.baseline << " -> " << e.current << "\n";
          }
        }
      }
      markdown += benchdiff::format_markdown(diff, base_name) + "\n";
      if (!diff.ok(opt.allow_improvement)) gate_ok = false;
    }

    if (!opt.budgets_path.empty()) {
      const benchdiff::Budgets budgets =
          benchdiff::load_budgets(opt.budgets_path);
      std::vector<benchdiff::ProfileName> names;
      if (!opt.profile_path.empty()) {
        std::ifstream in(opt.profile_path, std::ios::binary);
        if (!in) {
          throw std::runtime_error("cannot read " + opt.profile_path);
        }
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        names = benchdiff::parse_profile_names(text);
      }
      const benchdiff::BudgetCheck check =
          benchdiff::check_budgets(budgets, all_current, names);
      for (const std::string& p : check.passes) {
        std::cout << "benchdiff: budget ok   " << p << "\n";
      }
      for (const std::string& b : check.breaches) {
        std::cout << "benchdiff: BUDGET     " << b << "\n";
      }
      markdown += "### budgets\n\n";
      markdown += std::to_string(check.breaches.size()) + " breach(es), " +
                  std::to_string(check.passes.size()) + " within budget\n";
      if (!check.ok()) gate_ok = false;
    }

    if (!opt.markdown_path.empty()) {
      std::ofstream out(opt.markdown_path);
      if (!out) {
        throw std::runtime_error("cannot write " + opt.markdown_path);
      }
      out << markdown;
    }

    if (!gate_ok) {
      std::cout << "benchdiff: FAILED\n";
      return 1;
    }
    std::cout << "benchdiff: clean\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "benchdiff: " << e.what() << "\n";
    return 2;
  }
}
