#pragma once

// One analyzed source file: raw text, a scrubbed view with comments and
// string/character literals blanked (newlines preserved, so line numbers in
// the scrubbed text match the raw text), and the starlint:allow() directives
// harvested from the comments before they were blanked.
//
// The scrubber is a hand-rolled lexer over //, /* */, "...", '...', and raw
// string literals R"delim(...)delim" — enough that the regex-free rule scans
// in rules.cpp never fire inside a comment or a literal.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace starlint {

class SourceFile {
 public:
  /// @param path     path the file is reported under (repo-relative).
  /// @param content  the raw file text.
  SourceFile(std::string path, std::string content);

  /// Load from disk; throws std::runtime_error when unreadable.
  static SourceFile load(const std::string& fs_path,
                         const std::string& report_path);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& raw() const { return raw_; }
  /// Comments and string/char literal bodies replaced by spaces; same
  /// length and newline positions as raw().
  [[nodiscard]] const std::string& scrubbed() const { return scrubbed_; }

  /// 1-based line number of byte offset `pos` in raw()/scrubbed().
  [[nodiscard]] std::size_t line_of(std::size_t pos) const;

  /// Scrubbed text of 1-based line `line` ("" past the end).
  [[nodiscard]] std::string scrubbed_line(std::size_t line) const;
  /// Raw text of 1-based line `line` ("" past the end).
  [[nodiscard]] std::string raw_line(std::size_t line) const;
  [[nodiscard]] std::size_t num_lines() const { return line_starts_.size(); }

  /// True when a `starlint:allow(rule)` comment suppresses `rule` on `line`
  /// — the directive covers its own line and the line after it, so it works
  /// both trailing (`code  // starlint:allow(x)`) and preceding.
  [[nodiscard]] bool allowed(const std::string& rule, std::size_t line) const;

  /// True when a `starlint:hotpath` marker comment covers `line` (same
  /// own-line-plus-next coverage as allowed()). Marks lambdas — which cannot
  /// carry the STARLAB_HOTPATH macro in their head — as hot-path roots for
  /// the call-graph purity pass.
  [[nodiscard]] bool hotpath_marked(std::size_t line) const;

 private:
  void scrub();
  void collect_allow(const std::string& comment, std::size_t line);

  std::string path_;
  std::string raw_;
  std::string scrubbed_;
  std::vector<std::size_t> line_starts_;
  /// rule id -> lines where an allow() directive appeared.
  std::unordered_map<std::string, std::unordered_set<std::size_t>> allows_;
  /// Lines carrying a `starlint:hotpath` marker comment.
  std::unordered_set<std::size_t> hotpath_marks_;
};

}  // namespace starlint
