#include "callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <deque>
#include <functional>
#include <sstream>
#include <tuple>

namespace starlint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Same preprocessor blanking as the indexer: offsets stay valid because
/// the text keeps its length and newlines.
void blank_preprocessor_lines(std::string& text) {
  std::size_t i = 0;
  bool continued = false;
  while (i < text.size()) {
    std::size_t eol = text.find('\n', i);
    if (eol == std::string::npos) eol = text.size();
    std::size_t first = i;
    while (first < eol && (text[first] == ' ' || text[first] == '\t')) ++first;
    const bool directive = continued || (first < eol && text[first] == '#');
    continued = directive && eol > i && text[eol - 1] == '\\';
    if (directive) {
      for (std::size_t k = i; k < eol; ++k) text[k] = ' ';
    }
    i = eol + 1;
  }
}

std::size_t skip_ws_back(const std::string& text, std::size_t i) {
  while (i != std::string::npos && i < text.size() && is_space(text[i])) {
    if (i == 0) return std::string::npos;
    --i;
  }
  return i;
}

std::size_t skip_ws_fwd(const std::string& text, std::size_t i) {
  while (i < text.size() && is_space(text[i])) ++i;
  return i;
}

std::string ident_ending_at(const std::string& text, std::size_t end,
                            std::size_t& begin_out) {
  if (end == std::string::npos || end >= text.size() ||
      !is_ident_char(text[end])) {
    return "";
  }
  std::size_t b = end;
  while (b > 0 && is_ident_char(text[b - 1])) --b;
  begin_out = b;
  if (std::isdigit(static_cast<unsigned char>(text[b])) != 0) return "";
  return text.substr(b, end - b + 1);
}

std::size_t match_back(const std::string& text, std::size_t at, char open,
                       char close) {
  int depth = 0;
  for (std::size_t i = at;; --i) {
    if (text[i] == close) ++depth;
    if (text[i] == open && --depth == 0) return i;
    if (i == 0) break;
  }
  return std::string::npos;
}

/// Skip a balanced paren group starting at the '(' at `open`; returns one
/// past the matching ')'.
std::size_t skip_paren_group(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i + 1;
  }
  return text.size();
}

/// Last `::`-separated component of a name chain.
std::string last_component(const std::string& chain) {
  const std::size_t sep = chain.rfind("::");
  return sep == std::string::npos ? chain : chain.substr(sep + 2);
}

/// True when `full` equals `suffix` or ends with "::" + `suffix`.
bool suffix_on_boundary(const std::string& full, const std::string& suffix) {
  if (full == suffix) return true;
  if (full.size() <= suffix.size() + 2) return false;
  return full.compare(full.size() - suffix.size() - 2, 2, "::") == 0 &&
         full.compare(full.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Keywords that may legitimately precede `name(` without making the
/// statement a declaration of `name`.
const std::set<std::string>& decl_excluded() {
  static const std::set<std::string> kw = {
      "return",  "co_return", "co_yield", "co_await", "throw", "else",
      "do",      "case",      "goto",     "new",      "delete", "not",
      "and",     "or",        "in",
  };
  return kw;
}

/// Names followed by `(` that are flow control / builtins, never calls.
const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",    "switch",   "catch",
      "sizeof",   "alignof",  "alignas",  "decltype", "noexcept",
      "typeid",   "requires", "constexpr", "return",  "co_return",
      "assert",   "static_assert", "operator", "defined",
  };
  return kw;
}

/// Free-function / cast names the scan treats as pure leaves.
const std::set<std::string>& neutral_names() {
  static const std::set<std::string> names = {
      // casts
      "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
      // <cmath> and friends
      "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh",
      "tanh", "exp", "expm1", "log", "log2", "log10", "log1p", "pow", "sqrt",
      "cbrt", "hypot", "fmod", "remainder", "fabs", "abs", "labs", "llabs",
      "floor", "ceil", "trunc", "round", "lround", "llround", "nearbyint",
      "copysign", "signbit", "isnan", "isinf", "isfinite", "modf", "frexp",
      "ldexp", "fmin", "fmax", "fdim", "fma", "erf", "erfc", "tgamma",
      "lgamma",
      // <algorithm>/<utility>/<numeric> value plumbing
      "min", "max", "clamp", "swap", "fill", "fill_n", "copy", "copy_n",
      "sort", "stable_sort", "nth_element", "lower_bound", "upper_bound",
      "equal_range", "binary_search", "accumulate", "reduce", "transform",
      "distance", "advance", "move", "forward", "exchange", "as_const",
      "declval", "tie", "tuple_size", "make_pair", "make_tuple",
      // <cstring>/<cstdio> non-stream, non-allocating
      "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp", "strncmp",
      "snprintf", "atoi", "atol", "strtod", "strtol", "strtoul",
      // <bit>
      "popcount", "countl_zero", "countr_zero", "countl_one", "countr_one",
      "bit_cast", "bit_width", "rotl", "rotr", "has_single_bit",
      // builtin types as function-style casts / value declarations
      "void", "bool", "char", "int", "long", "short", "float", "double",
      "unsigned", "signed", "size_t", "ssize_t", "ptrdiff_t", "int8_t",
      "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t", "uint32_t",
      "uint64_t", "intptr_t", "uintptr_t", "char8_t", "char16_t", "char32_t",
      "wchar_t", "auto",
      // non-allocating std vocabulary types used as local declarations
      "pair", "tuple", "array", "span", "string_view", "optional", "atomic",
      "chrono", "duration", "nanoseconds", "microseconds", "milliseconds",
      "seconds", "initializer_list", "numeric_limits",
  };
  return names;
}

/// Member names treated as pure accessors/mutators of already-owned
/// storage. `clear`/`erase` shrink but never allocate; `at` can throw on a
/// bad key, but every use in this codebase is bounds-known — flagging it
/// drowned the signal in noise.
const std::set<std::string>& neutral_members() {
  static const std::set<std::string> names = {
      "size", "empty", "begin", "end", "cbegin", "cend", "rbegin", "rend",
      "front", "back", "data", "value", "value_or", "c_str", "length",
      "count", "find", "rfind", "find_first_of", "find_last_of", "contains",
      "at", "first", "second", "get", "has_value", "reset", "release",
      "clear", "erase", "pop_back", "pop_front", "swap", "min", "max",
      "test", "any", "all", "none", "fill", "load", "store", "fetch_add",
      "fetch_sub", "fetch_or", "fetch_and", "exchange",
      "compare_exchange_weak", "compare_exchange_strong", "compare", "substr",
      "top", "pop", "index", "type", "hash_function", "bucket_count",
  };
  return names;
}

/// Member names that grow or (re)build heap storage.
const std::set<std::string>& alloc_members() {
  static const std::set<std::string> names = {
      "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
      "emplace_hint", "insert", "insert_or_assign", "try_emplace", "resize",
      "reserve", "append", "assign", "shrink_to_fit", "push", "str",
  };
  return names;
}

/// Free functions / type names whose construction allocates.
const std::set<std::string>& alloc_names() {
  static const std::set<std::string> names = {
      "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
      "make_unique", "make_shared", "allocate_shared", "to_string",
      "stoi", "stol", "stoul", "stod", "stof",
      "vector", "string", "deque", "list", "map", "set", "multimap",
      "multiset", "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "basic_string", "function", "any", "valarray",
  };
  return names;
}

/// Type names whose constructor acquires a mutex (RAII guards).
const std::set<std::string>& lock_types() {
  static const std::set<std::string> names = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
  };
  return names;
}

/// Free functions that lock.
const std::set<std::string>& lock_names() {
  static const std::set<std::string> names = {
      "pthread_mutex_lock", "pthread_rwlock_rdlock", "pthread_rwlock_wrlock",
  };
  return names;
}

/// Stream / file types and functions.
const std::set<std::string>& io_types() {
  static const std::set<std::string> names = {
      "ifstream", "ofstream", "fstream", "ostringstream", "istringstream",
      "stringstream", "basic_ifstream", "basic_ofstream",
  };
  return names;
}

const std::set<std::string>& io_names() {
  static const std::set<std::string> names = {
      "printf", "fprintf", "vfprintf", "puts", "fputs", "putc", "fputc",
      "fopen", "fclose", "fread", "fwrite", "fflush", "fgets", "getline",
      "system", "perror", "fscanf", "scanf", "remove", "rename",
  };
  return names;
}

const std::set<std::string>& throw_names() {
  static const std::set<std::string> names = {
      "rethrow_exception", "throw_with_nested",
  };
  return names;
}

const std::set<std::string>& stream_objects() {
  static const std::set<std::string> names = {"cout", "cerr", "clog", "cin"};
  return names;
}

std::string category_name(int kind) {
  switch (kind) {
    case 1: return "alloc";
    case 2: return "lock";
    case 3: return "throw";
    case 4: return "io";
    default: return "call";
  }
}

std::string sink_rule(int kind) { return "hotpath-" + category_name(kind); }

}  // namespace

CallGraph::CallGraph(const std::vector<SourceFile>& files,
                     const HotpathConfig& config)
    : files_(files), config_(config) {
  std::vector<std::string> texts;
  texts.reserve(files.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    FileIndex index = index_file(files[f], f);
    for (FunctionDef& def : index.functions) defs_.push_back(std::move(def));
    for (MutexDecl& mu : index.mutexes) mutexes_.push_back(std::move(mu));
    std::string text = files[f].scrubbed();
    blank_preprocessor_lines(text);
    texts.push_back(std::move(text));
  }
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    by_name_[defs_[d].name].push_back(d);
  }
  texts_ = std::move(texts);
  sites_.resize(defs_.size());
  for (std::size_t d = 0; d < defs_.size(); ++d) extract_sites(d);
  // Immediately-invoked lambdas: `[]{ ... }()` executes in the enclosing
  // function, so give the enclosing def a call edge to the lambda.
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    if (!defs_[d].is_lambda) continue;
    const std::string& text = texts_[defs_[d].file_index];
    const std::size_t after = skip_ws_fwd(text, defs_[d].body_end);
    if (after < text.size() && text[after] == '(') {
      const std::size_t host =
          enclosing_def(defs_[d].file_index, defs_[d].body_begin);
      if (host != SIZE_MAX && host != d) iife_edges_[host].push_back(d);
    }
  }
}

std::size_t CallGraph::enclosing_def(std::size_t file_index,
                                     std::size_t pos) const {
  std::size_t best = SIZE_MAX;
  std::size_t best_begin = 0;
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    const FunctionDef& def = defs_[d];
    if (def.file_index != file_index) continue;
    if (def.body_begin < pos && pos < def.body_end &&
        (best == SIZE_MAX || def.body_begin > best_begin)) {
      best = d;
      best_begin = def.body_begin;
    }
  }
  return best;
}

void CallGraph::extract_sites(std::size_t def_index) {
  const FunctionDef& def = defs_[def_index];
  const std::string& text = texts_[def.file_index];
  const SourceFile& file = files_[def.file_index];
  if (def.body_begin + 1 >= def.body_end) return;
  const std::size_t begin = def.body_begin + 1;
  const std::size_t end = def.body_end - 1;

  // Extents of defs nested inside this one (lambdas, local-struct methods):
  // their bodies belong to those defs, not this one.
  std::vector<std::pair<std::size_t, std::size_t>> nested;
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    if (d == def_index || defs_[d].file_index != def.file_index) continue;
    if (defs_[d].body_begin >= begin && defs_[d].body_end <= end + 1) {
      nested.emplace_back(defs_[d].body_begin, defs_[d].body_end);
    }
  }
  std::sort(nested.begin(), nested.end());

  std::vector<Site>& out = sites_[def_index];
  std::size_t i = begin;
  std::size_t nested_at = 0;
  while (i < end) {
    while (nested_at < nested.size() && nested[nested_at].second <= i) {
      ++nested_at;
    }
    if (nested_at < nested.size() && i >= nested[nested_at].first) {
      i = nested[nested_at].second;
      continue;
    }
    const char c = text[i];
    if (!is_ident_char(c) ||
        std::isdigit(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    std::size_t e = i;
    while (e < end && is_ident_char(text[e])) ++e;
    const std::string tok = text.substr(i, e - i);
    const std::size_t tok_pos = i;
    const std::size_t next = skip_ws_fwd(text, e);

    const auto sink = [&](Site::Kind kind, const std::string& name) {
      Site s;
      s.kind = kind;
      s.name = name;
      s.pos = tok_pos;
      s.line = file.line_of(tok_pos);
      out.push_back(std::move(s));
    };
    if (tok == "throw") {
      sink(Site::Kind::kThrow, "throw");
      i = e;
      continue;
    }
    if (tok == "new") {
      sink(Site::Kind::kAlloc, "new");
      i = e;
      continue;
    }
    if (config_.macros.count(tok) != 0 && next < end && text[next] == '(') {
      i = skip_paren_group(text, next);
      continue;
    }
    if (stream_objects().count(tok) != 0) {
      sink(Site::Kind::kIo, tok);
      i = e;
      continue;
    }
    if (next >= end || text[next] != '(') {
      // `std::ostringstream os;` — a stream declared without constructor
      // parens is still I/O machinery.
      if (io_types().count(tok) != 0) sink(Site::Kind::kIo, tok);
      i = e;
      continue;
    }

    // `tok(` — a call, a declaration-with-ctor, or flow control.
    if (control_keywords().count(tok) != 0) {
      i = e;
      continue;
    }

    // Walk the qualifier chain back across `::`.
    std::string chain = tok;
    std::size_t chain_begin = tok_pos;
    while (chain_begin >= 2 &&
           text.compare(chain_begin - 2, 2, "::") == 0) {
      std::size_t qb = 0;
      const std::string q =
          chain_begin >= 3 ? ident_ending_at(text, chain_begin - 3, qb) : "";
      if (q.empty()) break;
      chain = q + "::" + chain;
      chain_begin = qb;
    }

    bool member = false;
    std::string receiver;
    std::size_t before =
        chain_begin == 0 ? std::string::npos
                         : skip_ws_back(text, chain_begin - 1);
    if (before != std::string::npos) {
      const char p = text[before];
      if (p == '.' || (p == '>' && before > 0 && text[before - 1] == '-')) {
        // Member call: capture the receiver's trailing identifier chain.
        member = true;
        std::size_t r = p == '.' ? before - 1 : before - 2;
        r = skip_ws_back(text, r);
        std::string recv;
        while (r != std::string::npos && is_ident_char(text[r])) {
          std::size_t rb = 0;
          const std::string id = ident_ending_at(text, r, rb);
          if (id.empty()) break;
          recv = recv.empty() ? id : id + "." + recv;
          if (rb < 2) break;
          const std::size_t sep = skip_ws_back(text, rb - 1);
          if (sep != std::string::npos && text[sep] == '.') {
            r = sep == 0 ? std::string::npos : skip_ws_back(text, sep - 1);
          } else if (sep != std::string::npos && sep > 0 &&
                     text[sep] == '>' && text[sep - 1] == '-') {
            r = sep < 2 ? std::string::npos : skip_ws_back(text, sep - 2);
          } else {
            break;
          }
        }
        receiver = recv;
      } else if (p == '>') {
        // `std::vector<double> prev(...)` — a templated declaration: the
        // construction belongs to the template name before the angles.
        const std::size_t open = match_back(text, before, '<', '>');
        if (open != std::string::npos && open > 0) {
          std::size_t tb = 0;
          const std::string tmpl =
              ident_ending_at(text, skip_ws_back(text, open - 1), tb);
          if (!tmpl.empty()) {
            chain = tmpl;
            std::size_t tcb = tb;
            while (tcb >= 2 && text.compare(tcb - 2, 2, "::") == 0) {
              std::size_t qb = 0;
              const std::string q =
                  tcb >= 3 ? ident_ending_at(text, tcb - 3, qb) : "";
              if (q.empty()) break;
              chain = q + "::" + chain;
              tcb = qb;
            }
          }
        }
      } else if (is_ident_char(p)) {
        std::size_t pb = 0;
        const std::string pid = ident_ending_at(text, before, pb);
        if (!pid.empty() && decl_excluded().count(pid) == 0 &&
            control_keywords().count(pid) == 0) {
          // `Type name(args)` — a declaration: the call is to Type's
          // constructor, not to `name`.
          chain = pid;
          std::size_t tcb = pb;
          while (tcb >= 2 && text.compare(tcb - 2, 2, "::") == 0) {
            std::size_t qb = 0;
            const std::string q =
                tcb >= 3 ? ident_ending_at(text, tcb - 3, qb) : "";
            if (q.empty()) break;
            chain = q + "::" + chain;
            tcb = qb;
          }
          member = false;
        }
      }
    }

    const std::string last = last_component(chain);
    Site site;
    site.name = chain;
    site.receiver = receiver;
    site.pos = tok_pos;
    site.line = file.line_of(tok_pos);
    site.member = member;
    if (lock_types().count(last) != 0 || lock_names().count(last) != 0 ||
        (member && (last == "lock" || last == "try_lock" ||
                    last == "lock_shared"))) {
      site.kind = Site::Kind::kLock;
      if (member) {
        site.mutex_arg = receiver;
      } else {
        // First constructor argument's trailing chain names the mutex.
        const std::size_t close = skip_paren_group(text, next) - 1;
        std::string arg = text.substr(next + 1, close - next - 1);
        const std::size_t comma = arg.find(',');
        if (comma != std::string::npos) arg = arg.substr(0, comma);
        std::string cleaned;
        for (char a : arg) {
          if (is_ident_char(a) || a == '.' || a == ':') {
            cleaned += a;
          } else if (a == '>' || a == '-') {
            cleaned += '.';  // `->` folds into `.`
          } else {
            cleaned.clear();
          }
        }
        site.mutex_arg = cleaned;
      }
      // The guard is held until the innermost enclosing block closes.
      int depth = 0;
      std::size_t scan = skip_paren_group(text, next);
      site.block_end = end;
      while (scan < end) {
        if (text[scan] == '{') ++depth;
        if (text[scan] == '}') {
          if (depth == 0) {
            site.block_end = scan;
            break;
          }
          --depth;
        }
        ++scan;
      }
      out.push_back(site);
    } else if ((member && alloc_members().count(last) != 0) ||
               (!member && alloc_names().count(last) != 0)) {
      site.kind = Site::Kind::kAlloc;
      out.push_back(site);
    } else if ((!member && io_names().count(last) != 0) ||
               io_types().count(last) != 0) {
      site.kind = Site::Kind::kIo;
      out.push_back(site);
    } else if (!member && throw_names().count(last) != 0) {
      site.kind = Site::Kind::kThrow;
      out.push_back(site);
    } else if (member && neutral_members().count(last) != 0) {
      // pure accessor — no site
    } else if (!member && neutral_names().count(last) != 0) {
      // pure builtin — no site
    } else {
      site.kind = Site::Kind::kCall;
      out.push_back(site);
    }
    i = e;
  }
}

bool CallGraph::is_vetted(const std::string& qualified) const {
  for (const std::string& entry : config_.allow) {
    if (entry == qualified || suffix_on_boundary(qualified, entry) ||
        suffix_on_boundary(entry, qualified)) {
      return true;
    }
  }
  return false;
}

bool CallGraph::receiver_declared_as(const std::string& type_name,
                                     const std::string& receiver) const {
  if (type_name.empty() || receiver.empty()) return false;
  for (const std::string& text : texts_) {
    std::size_t at = 0;
    while ((at = text.find(receiver, at)) != std::string::npos) {
      const std::size_t hit = at;
      at += 1;
      if (hit > 0 && is_ident_char(text[hit - 1])) continue;
      const std::size_t after = hit + receiver.size();
      if (after < text.size() && is_ident_char(text[after])) continue;
      // Back over ws, `&`/`*`, and one template argument group to the
      // would-be type name: `const geo::TemeToEcefRotation rot`,
      // `SoaConstants soa_;`, `std::span<const Foo> xs`.
      std::size_t k = hit == 0 ? std::string::npos
                               : skip_ws_back(text, hit - 1);
      while (k != std::string::npos && (text[k] == '&' || text[k] == '*')) {
        k = k == 0 ? std::string::npos : skip_ws_back(text, k - 1);
      }
      if (k != std::string::npos && text[k] == '>') {
        const std::size_t open = match_back(text, k, '<', '>');
        if (open == std::string::npos || open == 0) continue;
        k = skip_ws_back(text, open - 1);
      }
      std::size_t b = 0;
      if (k != std::string::npos && ident_ending_at(text, k, b) == type_name) {
        return true;
      }
    }
  }
  return false;
}

std::vector<std::size_t> CallGraph::resolve(const Site& site,
                                            std::size_t caller,
                                            bool& vetted) const {
  vetted = false;
  const std::string last = last_component(site.name);
  const auto it = by_name_.find(last);
  std::vector<std::size_t> out;
  if (it != by_name_.end()) {
    for (std::size_t idx : it->second) {
      if (suffix_on_boundary(defs_[idx].qualified, site.name)) {
        out.push_back(idx);
      }
    }
    // A qualified chain that matches nothing on suffix boundaries (e.g. a
    // receiver-qualified spelling) falls back to the overload union — the
    // conservative direction for purity checking.
    if (out.empty() && !it->second.empty()) out = it->second;
  }
  if (out.size() > 1 && site.member && !site.receiver.empty()) {
    // `rot.apply(...)` — keep the candidates whose class matches a
    // `Type rot` declaration somewhere in the program.
    const std::string recv = last_component(
        site.receiver.rfind('.') == std::string::npos
            ? site.receiver
            : site.receiver.substr(site.receiver.rfind('.') + 1));
    std::vector<std::size_t> narrowed;
    for (std::size_t idx : out) {
      const std::string& q = defs_[idx].qualified;
      const std::size_t sep = q.rfind("::");
      if (sep == std::string::npos) continue;
      const std::string cls = last_component(q.substr(0, sep));
      if (receiver_declared_as(cls, recv)) narrowed.push_back(idx);
    }
    if (!narrowed.empty()) out = narrowed;
  } else if (out.size() > 1 && !site.member &&
             site.name.find("::") == std::string::npos &&
             caller != SIZE_MAX) {
    // Unqualified call: prefer candidates in the caller's enclosing scopes,
    // innermost first (`load(i)` inside SoaConstants::propagate is
    // SoaConstants::load, not every `load` in the program).
    std::string scope = defs_[caller].qualified;
    while (true) {
      const std::size_t sep = scope.rfind("::");
      if (sep == std::string::npos) break;
      scope.resize(sep);
      std::vector<std::size_t> narrowed;
      for (std::size_t idx : out) {
        if (defs_[idx].qualified == scope + "::" + site.name) {
          narrowed.push_back(idx);
        }
      }
      if (!narrowed.empty()) {
        out = narrowed;
        break;
      }
    }
  }
  if (out.empty()) vetted = is_vetted(site.name);
  return out;
}

std::vector<Finding> CallGraph::hotpath_findings() const {
  std::vector<Finding> findings;
  for (std::size_t root = 0; root < defs_.size(); ++root) {
    if (!defs_[root].hotpath) continue;
    const SourceFile& root_file = files_[defs_[root].file_index];

    // BFS with parent tracking for readable call chains.
    std::map<std::size_t, std::size_t> parent;
    std::deque<std::size_t> queue;
    std::set<std::size_t> visited;
    queue.push_back(root);
    visited.insert(root);
    std::set<std::string> reported_rules;
    std::set<std::string> reported_unknowns;

    const auto chain_to = [&](std::size_t d) {
      std::vector<std::string> path;
      for (std::size_t cur = d;; cur = parent.at(cur)) {
        path.push_back(defs_[cur].qualified);
        if (cur == root) break;
      }
      std::string s;
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        if (!s.empty()) s += " -> ";
        s += *it;
      }
      return s;
    };

    while (!queue.empty()) {
      const std::size_t d = queue.front();
      queue.pop_front();
      const SourceFile& file = files_[defs_[d].file_index];
      for (const Site& site : sites_[d]) {
        if (site.kind != Site::Kind::kCall) {
          const std::string rule = sink_rule(static_cast<int>(site.kind));
          if (file.allowed(rule, site.line)) continue;
          if (reported_rules.count(rule) != 0) continue;
          reported_rules.insert(rule);
          if (root_file.allowed(rule, defs_[root].line)) continue;
          findings.push_back(
              {rule, root_file.path(), defs_[root].line,
               "hot path '" + defs_[root].qualified + "' reaches " +
                   category_name(static_cast<int>(site.kind)) + " via " +
                   chain_to(d) + ": '" + site.name + "' at " + file.path() +
                   ":" + std::to_string(site.line)});
          continue;
        }
        bool vetted = false;
        const std::vector<std::size_t> targets = resolve(site, d, vetted);
        if (targets.empty()) {
          if (vetted) continue;
          if (file.allowed("hotpath-unknown", site.line)) continue;
          if (reported_unknowns.count(site.name) != 0) continue;
          reported_unknowns.insert(site.name);
          if (root_file.allowed("hotpath-unknown", defs_[root].line)) continue;
          findings.push_back(
              {"hotpath-unknown", root_file.path(), defs_[root].line,
               "hot path '" + defs_[root].qualified +
                   "' calls unresolved '" + site.name + "' (" + file.path() +
                   ":" + std::to_string(site.line) +
                   "); define it, vet it in hotpath.toml, or annotate the "
                   "call site"});
          continue;
        }
        for (std::size_t t : targets) {
          if (is_vetted(defs_[t].qualified)) continue;
          if (visited.insert(t).second) {
            parent[t] = d;
            queue.push_back(t);
          }
        }
      }
      const auto iife = iife_edges_.find(d);
      if (iife != iife_edges_.end()) {
        for (std::size_t t : iife->second) {
          if (visited.insert(t).second) {
            parent[t] = d;
            queue.push_back(t);
          }
        }
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::string CallGraph::mutex_identity(std::size_t def_index,
                                      const Site& site) const {
  // `shard.mu` / `self->mu_` / `mu_` — the trailing component names the
  // mutex, the one before it (if any) is the receiver variable.
  std::string arg = site.mutex_arg;
  std::size_t sep = arg.rfind("::");
  if (sep != std::string::npos) arg = arg.substr(sep + 2);
  std::string name = arg;
  std::string receiver;
  sep = arg.rfind('.');
  if (sep != std::string::npos) {
    name = arg.substr(sep + 1);
    const std::size_t prev = arg.rfind('.', sep == 0 ? 0 : sep - 1);
    receiver =
        prev == std::string::npos ? arg.substr(0, sep)
                                  : arg.substr(prev + 1, sep - prev - 1);
  }
  if (name.empty()) return "";

  std::vector<const MutexDecl*> candidates;
  for (const MutexDecl& mu : mutexes_) {
    if (mu.name == name) candidates.push_back(&mu);
  }
  if (candidates.empty()) return name;
  if (candidates.size() == 1) {
    return candidates[0]->owner.empty()
               ? candidates[0]->name
               : candidates[0]->owner + "::" + candidates[0]->name;
  }
  // Receiver-type adjacency: `Journal journal;` in the same file pins
  // `journal.mu` to Journal::mu.
  if (!receiver.empty()) {
    const std::string& text = texts_[defs_[def_index].file_index];
    const MutexDecl* matched = nullptr;
    bool ambiguous = false;
    for (const MutexDecl* mu : candidates) {
      const std::string owner_type = last_component(mu->owner);
      if (owner_type.empty()) continue;
      const std::string pattern = owner_type + " " + receiver;
      bool found = false;
      std::size_t at = 0;
      while ((at = text.find(pattern, at)) != std::string::npos) {
        const bool left_ok = at == 0 || !is_ident_char(text[at - 1]);
        const std::size_t after = at + pattern.size();
        const bool right_ok =
            after >= text.size() || !is_ident_char(text[after]);
        if (left_ok && right_ok) {
          found = true;
          break;
        }
        ++at;
      }
      if (found) {
        if (matched != nullptr && matched != mu) ambiguous = true;
        matched = mu;
      }
    }
    if (matched != nullptr && !ambiguous) {
      return matched->owner.empty() ? matched->name
                                    : matched->owner + "::" + matched->name;
    }
  }
  // Longest-common-::-prefix of candidate owner vs the locking function's
  // qualified name: a method locking its own class's `mu_` wins here.
  const std::string& fq = defs_[def_index].qualified;
  const MutexDecl* best = nullptr;
  std::size_t best_len = 0;
  bool tie = false;
  for (const MutexDecl* mu : candidates) {
    std::size_t len = 0;
    const std::string& owner = mu->owner;
    std::size_t k = 0;
    while (k < owner.size() && k < fq.size() && owner[k] == fq[k]) ++k;
    // Count only whole `::`-separated components.
    while (k > 0 && k < owner.size() && owner[k] != ':') --k;
    len = k;
    if (len > best_len) {
      best = mu;
      best_len = len;
      tie = false;
    } else if (len == best_len && best != nullptr && mu->owner != best->owner) {
      tie = true;
    }
  }
  if (best != nullptr && !tie && best_len > 0) {
    return best->owner.empty() ? best->name : best->owner + "::" + best->name;
  }
  // Merged per-name identity; self-edges on it are discarded later.
  return name;
}

std::vector<Finding> CallGraph::lock_order_findings() const {
  // Fixpoint: every mutex identity a function may acquire, directly or via
  // calls.
  std::vector<std::set<std::string>> acquires(defs_.size());
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    for (const Site& site : sites_[d]) {
      if (site.kind != Site::Kind::kLock) continue;
      const std::string id = mutex_identity(d, site);
      if (!id.empty()) acquires[d].insert(id);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t d = 0; d < defs_.size(); ++d) {
      for (const Site& site : sites_[d]) {
        if (site.kind != Site::Kind::kCall) continue;
        bool vetted = false;
        for (std::size_t t : resolve(site, d, vetted)) {
          for (const std::string& id : acquires[t]) {
            if (acquires[d].insert(id).second) changed = true;
          }
        }
      }
      const auto iife = iife_edges_.find(d);
      if (iife != iife_edges_.end()) {
        for (std::size_t t : iife->second) {
          for (const std::string& id : acquires[t]) {
            if (acquires[d].insert(id).second) changed = true;
          }
        }
      }
    }
  }

  // Edges: B acquired (directly or through a call) while A is held.
  struct EdgeSite {
    std::size_t file_index;
    std::size_t line;
  };
  std::map<std::pair<std::string, std::string>, EdgeSite> edges;
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    for (const Site& held : sites_[d]) {
      if (held.kind != Site::Kind::kLock) continue;
      const std::string a = mutex_identity(d, held);
      if (a.empty()) continue;
      for (const Site& inner : sites_[d]) {
        if (inner.pos <= held.pos || inner.pos >= held.block_end) continue;
        if (inner.kind == Site::Kind::kLock) {
          const std::string b = mutex_identity(d, inner);
          if (!b.empty() && b != a) {
            edges.emplace(std::make_pair(a, b),
                          EdgeSite{defs_[d].file_index, inner.line});
          }
        } else if (inner.kind == Site::Kind::kCall) {
          bool vetted = false;
          for (std::size_t t : resolve(inner, d, vetted)) {
            for (const std::string& b : acquires[t]) {
              if (b != a) {
                edges.emplace(std::make_pair(a, b),
                              EdgeSite{defs_[d].file_index, inner.line});
              }
            }
          }
        }
      }
      const auto iife = iife_edges_.find(d);
      if (iife != iife_edges_.end()) {
        for (std::size_t t : iife->second) {
          if (defs_[t].body_begin <= held.pos ||
              defs_[t].body_begin >= held.block_end) {
            continue;
          }
          for (const std::string& b : acquires[t]) {
            if (b != a) {
              edges.emplace(std::make_pair(a, b),
                            EdgeSite{defs_[t].file_index, defs_[t].line});
            }
          }
        }
      }
    }
  }

  // Cycle detection over the acquisition-order graph.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, site] : edges) adj[edge.first].push_back(edge.second);
  std::vector<Finding> findings;
  std::map<std::string, int> state;  // 0 unvisited, 1 on path, 2 done
  std::vector<std::string> path;
  std::set<std::string> reported;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        state[node] = 1;
        path.push_back(node);
        for (const std::string& next : adj[node]) {
          if (state[next] == 1) {
            // Reconstruct the cycle from the path tail.
            std::vector<std::string> cycle;
            for (auto it = path.rbegin(); it != path.rend(); ++it) {
              cycle.push_back(*it);
              if (*it == next) break;
            }
            std::reverse(cycle.begin(), cycle.end());
            std::string canon;
            for (const std::string& m : cycle) canon += m + "|";
            if (reported.insert(canon).second) {
              std::string desc;
              for (const std::string& m : cycle) desc += m + " -> ";
              desc += next;
              const EdgeSite& at = edges.at({node, next});
              const SourceFile& file = files_[at.file_index];
              if (!file.allowed("lock-order", at.line)) {
                findings.push_back({"lock-order", file.path(), at.line,
                                    "lock acquisition cycle: " + desc});
              }
            }
          } else if (state[next] == 0) {
            visit(next);
          }
        }
        path.pop_back();
        state[node] = 2;
      };
  for (const auto& [node, _] : adj) {
    if (state[node] == 0) visit(node);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.message) <
                     std::tie(b.file, b.line, b.message);
            });
  return findings;
}

std::string CallGraph::dump() const {
  std::ostringstream out;
  out << "functions " << defs_.size() << "\n";
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    const FunctionDef& def = defs_[d];
    out << (def.hotpath ? "H " : "  ") << def.qualified << "  "
        << files_[def.file_index].path() << ":" << def.line << "\n";
    for (const Site& site : sites_[d]) {
      out << "    " << category_name(static_cast<int>(site.kind)) << " "
          << site.name;
      if (!site.mutex_arg.empty()) out << " [" << site.mutex_arg << "]";
      out << " :" << site.line << "\n";
    }
  }
  out << "mutexes " << mutexes_.size() << "\n";
  for (const MutexDecl& mu : mutexes_) {
    out << "  " << (mu.owner.empty() ? mu.name : mu.owner + "::" + mu.name)
        << "  " << files_[mu.file_index].path() << ":" << mu.line << "\n";
  }
  return out.str();
}

std::vector<Finding> run_graph_rules(const std::vector<SourceFile>& files,
                                     const HotpathConfig& config) {
  const CallGraph graph(files, config);
  std::vector<Finding> findings = graph.hotpath_findings();
  std::vector<Finding> locks = graph.lock_order_findings();
  findings.insert(findings.end(), locks.begin(), locks.end());
  return findings;
}

}  // namespace starlint
