#include "baseline.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace starlint {

namespace {

/// Cursor over baseline JSON — just nested objects of string keys and
/// integer values, which is all format_baseline ever emits.
struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) {
      throw std::runtime_error("starlint baseline: unexpected end of JSON");
    }
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("starlint baseline: expected '") +
                               c + "' at offset " + std::to_string(pos));
    }
    ++pos;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out += text[pos++];
    }
    expect('"');
    return out;
  }
  int integer() {
    skip_ws();
    std::size_t end = pos;
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) != 0 ||
            text[end] == '-')) {
      ++end;
    }
    if (end == pos) {
      throw std::runtime_error("starlint baseline: expected integer");
    }
    const int value = std::stoi(text.substr(pos, end - pos));
    pos = end;
    return value;
  }
};

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

Baseline tally(const std::vector<Finding>& findings) {
  Baseline out;
  for (const Finding& f : findings) ++out[f.rule][f.file];
  return out;
}

Baseline parse_baseline(const std::string& json) {
  Baseline out;
  JsonCursor cur{json};
  cur.expect('{');
  if (cur.peek() == '}') {
    ++cur.pos;
    return out;
  }
  while (true) {
    const std::string rule = cur.string();
    cur.expect(':');
    cur.expect('{');
    if (cur.peek() != '}') {
      while (true) {
        const std::string file = cur.string();
        cur.expect(':');
        out[rule][file] = cur.integer();
        if (cur.peek() != ',') break;
        ++cur.pos;
      }
    }
    cur.expect('}');
    if (cur.peek() != ',') break;
    ++cur.pos;
  }
  cur.expect('}');
  return out;
}

Baseline load_baseline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_baseline(buf.str());
}

std::string format_baseline(const Baseline& baseline) {
  std::ostringstream out;
  out << "{";
  bool first_rule = true;
  for (const auto& [rule, files] : baseline) {
    if (files.empty()) continue;
    out << (first_rule ? "\n" : ",\n") << "  " << quote(rule) << ": {";
    first_rule = false;
    bool first_file = true;
    for (const auto& [file, count] : files) {
      if (count == 0) continue;
      out << (first_file ? "\n" : ",\n")
          << "    " << quote(file) << ": " << count;
      first_file = false;
    }
    out << "\n  }";
  }
  out << "\n}\n";
  return out.str();
}

void write_baseline(const std::string& path, const Baseline& baseline) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("starlint: cannot write " + path);
  out << format_baseline(baseline);
}

BaselineCheck check_against_baseline(const std::vector<Finding>& findings,
                                     const Baseline& baseline) {
  BaselineCheck result;
  const Baseline observed = tally(findings);
  for (const auto& [rule, files] : observed) {
    for (const auto& [file, count] : files) {
      int allowed = 0;
      const auto rule_it = baseline.find(rule);
      if (rule_it != baseline.end()) {
        const auto file_it = rule_it->second.find(file);
        if (file_it != rule_it->second.end()) allowed = file_it->second;
      }
      if (count > allowed) {
        result.regressions.push_back(
            "[" + rule + "] " + file + ": " + std::to_string(count) +
            " finding(s), baseline allows " + std::to_string(allowed));
      }
    }
  }
  for (const auto& [rule, files] : baseline) {
    for (const auto& [file, allowed] : files) {
      int count = 0;
      const auto rule_it = observed.find(rule);
      if (rule_it != observed.end()) {
        const auto file_it = rule_it->second.find(file);
        if (file_it != rule_it->second.end()) count = file_it->second;
      }
      if (count < allowed) {
        result.stale.push_back(
            "[" + rule + "] " + file + ": baseline allows " +
            std::to_string(allowed) + " but only " + std::to_string(count) +
            " remain; regenerate with --write-baseline");
      }
    }
  }
  return result;
}

}  // namespace starlint
