#pragma once

// starlint's declared architecture: the subsystem dependency DAG and the
// rule allowlists, read from tools/starlint/layers.toml.
//
// The parser handles the TOML subset the config actually uses — [section]
// headers, `key = "string"`, `key = ["a", "b"]` arrays (single-line or
// spread over lines), and # comments — and nothing more. Unknown syntax is
// an error, not a silent skip: a typo in the architecture file must not
// quietly stop enforcing the architecture.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace starlint {

struct LayersConfig {
  /// subsystem -> subsystems its files may include. Every subsystem under
  /// src/ must appear as a key (an empty list means "depends on nothing").
  std::map<std::string, std::set<std::string>> deps;
  /// Layer-neutral header-only files (repo-relative under src/), includable
  /// from any subsystem without creating a dependency edge.
  std::set<std::string> interface_headers;
  /// Files (repo-relative under src/) where std::getenv is a sanctioned
  /// configuration seam.
  std::set<std::string> getenv_allowlist;

  /// Throws std::runtime_error when the declared graph has a cycle or an
  /// edge points at an undeclared subsystem.
  void validate() const;
};

/// Parse layers.toml text. Throws std::runtime_error with a line number on
/// malformed input; calls validate() on the result.
[[nodiscard]] LayersConfig parse_layers_config(const std::string& text);

/// Load + parse a layers.toml file from disk.
[[nodiscard]] LayersConfig load_layers_config(const std::string& path);

}  // namespace starlint
