#pragma once

// starlint's declared architecture: the subsystem dependency DAG and the
// rule allowlists, read from tools/starlint/layers.toml.
//
// The parser handles the TOML subset the config actually uses — [section]
// headers, `key = "string"`, `key = ["a", "b"]` arrays (single-line or
// spread over lines), and # comments — and nothing more. Unknown syntax is
// an error, not a silent skip: a typo in the architecture file must not
// quietly stop enforcing the architecture.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace starlint {

struct LayersConfig {
  /// subsystem -> subsystems its files may include. Every subsystem under
  /// src/ must appear as a key (an empty list means "depends on nothing").
  std::map<std::string, std::set<std::string>> deps;
  /// Layer-neutral header-only files (repo-relative under src/), includable
  /// from any subsystem without creating a dependency edge.
  std::set<std::string> interface_headers;
  /// Files (repo-relative under src/) where std::getenv is a sanctioned
  /// configuration seam.
  std::set<std::string> getenv_allowlist;

  /// Throws std::runtime_error when the declared graph has a cycle or an
  /// edge points at an undeclared subsystem.
  void validate() const;
};

/// Parse layers.toml text. Throws std::runtime_error with a line number on
/// malformed input; calls validate() on the result.
[[nodiscard]] LayersConfig parse_layers_config(const std::string& text);

/// Load + parse a layers.toml file from disk.
[[nodiscard]] LayersConfig load_layers_config(const std::string& path);

/// Configuration for the call-graph hot-path purity pass, read from
/// tools/starlint/hotpath.toml. Same TOML subset as layers.toml.
struct HotpathConfig {
  /// Vetted callee names: calls resolving to (or naming, when unresolved) a
  /// function whose qualified name ends with one of these are treated as
  /// pure leaves and not traversed. Entries are matched on `::` boundaries
  /// ("Sgp4::propagate" vets that overload without vetting every
  /// `propagate`).
  std::set<std::string> allow;
  /// Function-like macros whose whole argument list is skipped by the call
  /// scan (contract macros compile out bit-identically, so their
  /// std::to_string message arguments are not hot-path allocations). The
  /// contract and thread-annotation macros are always included.
  std::set<std::string> macros;
};

/// Parse hotpath.toml text ([hotpath] section, `allow`/`macros` array
/// keys). Throws std::runtime_error with a line number on malformed input.
/// The built-in macro set is merged in.
[[nodiscard]] HotpathConfig parse_hotpath_config(const std::string& text);

/// Load + parse hotpath.toml; a missing file yields the defaults (empty
/// allowlist, built-in macros).
[[nodiscard]] HotpathConfig load_hotpath_config(const std::string& path);

}  // namespace starlint
