#pragma once

// Whole-program call graph over every indexed source file, and the two rule
// families that run on top of it:
//
//   hot-path purity — every function marked STARLAB_HOTPATH (or a lambda
//   marked `// starlint:hotpath`) must not transitively reach
//     * allocation            (rule hotpath-alloc: new/malloc, growing
//                              container ops, string building),
//     * mutex acquisition     (rule hotpath-lock: check::MutexLock,
//                              lock_guard/unique_lock/scoped_lock, .lock()),
//     * throw                 (rule hotpath-throw),
//     * stream / file I/O     (rule hotpath-io: printf family, fopen,
//                              iostream objects);
//   calls that resolve to no indexed function and no known-pure builtin are
//   reported as rule hotpath-unknown unless vetted in hotpath.toml.
//
//   lock-order — the lock-acquisition graph built from check::MutexLock
//   scopes: an edge A -> B means some thread acquires B (directly or via a
//   call) while holding A. A cycle is a potential ABBA deadlock (rule
//   lock-order, empty baseline by policy). Mutex identity is
//   `<owning scope>::<name>`, so the many classes whose member is `mu_`
//   stay distinct; sites that cannot be attributed to a single declaration
//   fall back to a merged per-name identity, and self-edges are ignored
//   (same-name mutexes of unrelated classes).
//
// Call resolution is deliberately conservative and name-based (no types):
// member-call vocabulary of the standard library is classified directly
// (growing ops are allocation sinks, accessors are pure), qualified names
// resolve on `::` suffix boundaries, an unqualified name resolves to every
// indexed function with that name (overload union), and anything left is an
// unknown callee.
//
// Findings are emitted at the hot function's definition line, so the
// standard `starlint:allow(rule)` comment there suppresses them; an allow
// on a sink's own line (e.g. a one-time thread_local grow) suppresses just
// that sink for every path reaching it.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "config.hpp"
#include "functions.hpp"
#include "rules.hpp"
#include "source_file.hpp"

namespace starlint {

class CallGraph {
 public:
  /// Index `files` and extract call sites. The files vector must outlive
  /// the graph.
  CallGraph(const std::vector<SourceFile>& files, const HotpathConfig& config);

  /// Hot-path purity findings (rules hotpath-alloc/lock/throw/io/unknown).
  [[nodiscard]] std::vector<Finding> hotpath_findings() const;

  /// Lock-order findings (rule lock-order): one per distinct cycle.
  [[nodiscard]] std::vector<Finding> lock_order_findings() const;

  /// Every indexed function definition, in (file, body_begin) order.
  [[nodiscard]] const std::vector<FunctionDef>& functions() const {
    return defs_;
  }

  /// Human-readable dump of the indexed graph (functions, edges, mutexes)
  /// for --dump-callgraph.
  [[nodiscard]] std::string dump() const;

 private:
  struct Site {
    enum class Kind { kCall, kAlloc, kLock, kThrow, kIo };
    Kind kind = Kind::kCall;
    std::string name;      // callee chain ("sun::is_sunlit") or sink name
    std::string receiver;  // member calls: the receiver's identifier chain
    std::string mutex_arg; // kLock: the guarded expression's trailing chain
    std::size_t pos = 0;   // offset in the file's scrubbed text
    std::size_t line = 0;
    std::size_t block_end = 0;  // kLock: end of the enclosing block
    bool member = false;
  };

  void extract_sites(std::size_t def_index);
  [[nodiscard]] bool is_vetted(const std::string& qualified) const;
  /// Indices of defs a call chain resolves to (empty: unknown or vetted —
  /// `vetted` distinguishes why). Ambiguous unions shrink via unqualified
  /// lookup from `caller`'s scope, or — for member calls — via a
  /// `Type receiver` declaration adjacency anywhere in the program.
  [[nodiscard]] std::vector<std::size_t> resolve(const Site& site,
                                                 std::size_t caller,
                                                 bool& vetted) const;
  /// True when some file declares `receiver` with type `type_name`.
  [[nodiscard]] bool receiver_declared_as(const std::string& type_name,
                                          const std::string& receiver) const;
  [[nodiscard]] std::size_t enclosing_def(std::size_t file_index,
                                          std::size_t pos) const;
  /// Identity string for the mutex a lock site names.
  [[nodiscard]] std::string mutex_identity(std::size_t def_index,
                                           const Site& site) const;

  const std::vector<SourceFile>& files_;
  HotpathConfig config_;
  /// Scrubbed text per file with preprocessor lines blanked; extents in
  /// defs_ index into these.
  std::vector<std::string> texts_;
  std::vector<FunctionDef> defs_;
  std::vector<std::vector<Site>> sites_;  // parallel to defs_
  std::vector<MutexDecl> mutexes_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
  /// def -> lambda defs invoked immediately at their closing brace (IIFE):
  /// `[]{ ... }()` — treated as a call edge from the enclosing function.
  std::map<std::size_t, std::vector<std::size_t>> iife_edges_;
};

/// Convenience: build the graph and run both rule families.
[[nodiscard]] std::vector<Finding> run_graph_rules(
    const std::vector<SourceFile>& files, const HotpathConfig& config);

}  // namespace starlint
