#pragma once

// The starlint rule catalog. Every rule is a pure function of one scrubbed
// source file plus the LayersConfig; findings carry a stable rule id that
// the baseline, the allow-comments and the SARIF output all key on.
//
//   layering            #include crossing the declared subsystem DAG
//   det-rand            std::rand / srand / rand_r (unseeded global RNG)
//   det-random-device   std::random_device (hardware entropy)
//   det-wallclock       std::chrono::system_clock (wall-clock time)
//   det-getenv          std::getenv outside the sanctioned config seams
//   det-unordered-iter  range-for over an unordered container
//   raw-unit-double     raw `double foo_deg/_rad/_km` instead of geo:: types
//   nodiscard-loader    load_*/parse_* declaration missing [[nodiscard]]

#include <string>
#include <vector>

#include "config.hpp"
#include "source_file.hpp"

namespace starlint {

struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
};

/// All rule ids, in reporting order.
[[nodiscard]] const std::vector<std::string>& all_rule_ids();

/// One-line description of `rule` (for SARIF rule metadata).
[[nodiscard]] std::string rule_description(const std::string& rule);

/// Run every rule over one file. `starlint:allow(rule)` comments have
/// already suppressed their findings. Files outside src/ only get the
/// determinism + hygiene rules (layering needs a subsystem directory).
[[nodiscard]] std::vector<Finding> run_rules(const SourceFile& file,
                                             const LayersConfig& config);

}  // namespace starlint
