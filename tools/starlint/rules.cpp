#include "rules.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace starlint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// One identifier occurrence in scrubbed text.
struct Ident {
  std::string text;
  std::size_t pos = 0;
};

std::vector<Ident> identifiers(const std::string& text) {
  std::vector<Ident> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (is_ident_char(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      std::size_t end = i;
      while (end < text.size() && is_ident_char(text[end])) ++end;
      out.push_back({text.substr(i, end - i), i});
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

/// Subsystem of a repo-relative path "src/<subsys>/..." ("" otherwise).
std::string subsystem_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

std::string ends_with_unit(const std::string& name) {
  for (const char* suffix : {"_deg", "_rad", "_km"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return s;
    }
  }
  return "";
}

/// Emit unless an allow-comment covers the line.
void emit(std::vector<Finding>& findings, const SourceFile& file,
          const std::string& rule, std::size_t line, std::string message) {
  if (file.allowed(rule, line)) return;
  findings.push_back({rule, file.path(), line, std::move(message)});
}

// --- layering ---------------------------------------------------------------

void rule_layering(const SourceFile& file, const LayersConfig& config,
                   std::vector<Finding>& findings) {
  const std::string subsys = subsystem_of(file.path());
  if (subsys.empty()) return;
  const auto deps_it = config.deps.find(subsys);
  if (deps_it == config.deps.end()) {
    emit(findings, file, "layering", 1,
         "subsystem '" + subsys +
             "' is not declared in [layers] of layers.toml");
    return;
  }
  for (std::size_t line = 1; line <= file.num_lines(); ++line) {
    // Comments are blanked in the scrubbed line, so `// #include` is dead;
    // the include path itself is a string literal (also blanked), so the
    // target is read from the raw text at the same offsets.
    const std::string scrubbed = file.scrubbed_line(line);
    const std::size_t hash = scrubbed.find("#include");
    if (hash == std::string::npos ||
        scrubbed.find_first_not_of(" \t") != hash) {
      continue;
    }
    const std::string raw_line = file.raw_line(line);
    const std::size_t open = raw_line.find('"');
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = raw_line.find('"', open + 1);
    if (close == std::string::npos) continue;
    const std::string target = raw_line.substr(open + 1, close - open - 1);
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // sibling include
    const std::string target_subsys = target.substr(0, slash);
    if (target_subsys == subsys) continue;
    if (config.deps.find(target_subsys) == config.deps.end()) {
      continue;  // not a subsystem-qualified include (e.g. vendored path)
    }
    if (config.interface_headers.count("src/" + target) != 0) continue;
    if (deps_it->second.count(target_subsys) == 0) {
      emit(findings, file, "layering", line,
           "'" + subsys + "' may not include '" + target + "': '" +
               target_subsys + "' is not in its declared dependencies");
    }
  }
}

// --- determinism ------------------------------------------------------------

void rule_determinism(const SourceFile& file, const LayersConfig& config,
                      std::vector<Finding>& findings) {
  const bool getenv_ok = config.getenv_allowlist.count(file.path()) != 0;
  for (const Ident& id : identifiers(file.scrubbed())) {
    const std::size_t line = file.line_of(id.pos);
    if (id.text == "rand" || id.text == "srand" || id.text == "rand_r") {
      emit(findings, file, "det-rand", line,
           "'" + id.text +
               "' draws from unseeded global state; use a seeded "
               "std::mt19937_64 (see ml/random_forest.cpp)");
    } else if (id.text == "random_device") {
      emit(findings, file, "det-random-device", line,
           "std::random_device is hardware entropy; runs would not replay. "
           "Derive seeds from config (splitmix64 over seed + index)");
    } else if (id.text == "system_clock") {
      emit(findings, file, "det-wallclock", line,
           "std::chrono::system_clock reads the wall clock; scenario time "
           "comes from time::SlotGrid / time::JulianDate");
    } else if (id.text == "getenv" && !getenv_ok) {
      emit(findings, file, "det-getenv", line,
           "std::getenv outside the sanctioned config seams "
           "(see [starlint].getenv_allowlist in layers.toml)");
    }
  }

  // Range-for whose range expression names an unordered container:
  // `for (decl : expr)` where expr contains "unordered". Iteration order is
  // unspecified, so anything derived from it is nondeterministic.
  const std::string& text = file.scrubbed();
  for (const Ident& id : identifiers(text)) {
    if (id.text != "for") continue;
    std::size_t open = id.pos + 3;
    while (open < text.size() &&
           (text[open] == ' ' || text[open] == '\t' || text[open] == '\n')) {
      ++open;
    }
    if (open >= text.size() || text[open] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = open;
    for (std::size_t i = open; i < text.size(); ++i) {
      if (text[i] == '(') ++depth;
      if (text[i] == ')' && --depth == 0) {
        close = i;
        break;
      }
      if (text[i] == ':' && depth == 1 && colon == std::string::npos &&
          (i == 0 || text[i - 1] != ':') &&
          (i + 1 >= text.size() || text[i + 1] != ':')) {
        colon = i;
      }
    }
    if (colon == std::string::npos || close <= colon) continue;
    const std::string range_expr = text.substr(colon + 1, close - colon - 1);
    if (range_expr.find("unordered") != std::string::npos) {
      emit(findings, file, "det-unordered-iter", file.line_of(id.pos),
           "range-for over an unordered container: iteration order is "
           "unspecified; copy keys out and sort before iterating");
    }
  }
}

// --- hygiene ----------------------------------------------------------------

void rule_raw_unit_double(const SourceFile& file,
                          std::vector<Finding>& findings) {
  // `double foo_deg` (any *_deg/_rad/_km identifier directly after the
  // keyword) — the geo:: unit wrappers exist so these can't mix.
  const std::vector<Ident> ids = identifiers(file.scrubbed());
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    if (ids[i].text != "double") continue;
    // Adjacent tokens only: nothing but whitespace between them.
    const std::string& text = file.scrubbed();
    const std::size_t between = ids[i].pos + ids[i].text.size();
    bool adjacent = true;
    for (std::size_t k = between; k < ids[i + 1].pos; ++k) {
      if (text[k] != ' ' && text[k] != '\t' && text[k] != '\n') {
        adjacent = false;
        break;
      }
    }
    if (!adjacent) continue;
    const std::string suffix = ends_with_unit(ids[i + 1].text);
    if (suffix.empty()) continue;
    emit(findings, file, "raw-unit-double", file.line_of(ids[i + 1].pos),
         "raw `double " + ids[i + 1].text + "`; use the geo:: unit type for " +
             suffix.substr(1) + " instead");
  }
}

void rule_nodiscard_loader(const SourceFile& file,
                           std::vector<Finding>& findings) {
  // Headers only: a load_*/parse_* declaration whose result can be silently
  // dropped. A declaration is recognized by a type token directly before
  // the name (so call sites `x = parse_foo(...)` don't match).
  if (file.path().size() < 4 ||
      file.path().compare(file.path().size() - 4, 4, ".hpp") != 0) {
    return;
  }
  const std::vector<Ident> ids = identifiers(file.scrubbed());
  const std::string& text = file.scrubbed();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::string& name = ids[i].text;
    if (name.rfind("load_", 0) != 0 && name.rfind("parse_", 0) != 0) continue;
    // Must be a call-shaped token: next non-space char is '('.
    std::size_t after = ids[i].pos + name.size();
    while (after < text.size() && (text[after] == ' ' || text[after] == '\t')) {
      ++after;
    }
    if (after >= text.size() || text[after] != '(') continue;
    if (i == 0) continue;
    const Ident& prev = ids[i - 1];
    // Token before the name must end a type (identifier, `>`, `&`, `*`,
    // `::`) with nothing but type punctuation between — not `=`, `(`, etc.
    bool type_before = true;
    for (std::size_t k = prev.pos + prev.text.size(); k < ids[i].pos; ++k) {
      const char c = text[k];
      if (c != ' ' && c != '\t' && c != '\n' && c != '>' && c != '&' &&
          c != '*' && c != ':') {
        type_before = false;
        break;
      }
    }
    if (!type_before) continue;
    if (prev.text == "void" || prev.text == "return" || prev.text == "co_return")
      continue;
    // Keywords that precede a call, not a declaration.
    if (prev.text == "if" || prev.text == "while" || prev.text == "throw")
      continue;
    const std::size_t line = file.line_of(ids[i].pos);
    // [[nodiscard]] may sit on the same line or the line(s) above.
    bool has_nodiscard = false;
    for (std::size_t l = line; l + 2 > line && l >= 1; --l) {
      if (file.scrubbed_line(l).find("nodiscard") != std::string::npos) {
        has_nodiscard = true;
        break;
      }
      if (l == 1) break;
    }
    if (has_nodiscard) continue;
    emit(findings, file, "nodiscard-loader", line,
         "'" + name +
             "' returns a value that must not be silently dropped; mark the "
             "declaration [[nodiscard]]");
  }
}

}  // namespace

const std::vector<std::string>& all_rule_ids() {
  static const std::vector<std::string> ids = {
      "layering",           "det-rand",        "det-random-device",
      "det-wallclock",      "det-getenv",      "det-unordered-iter",
      "raw-unit-double",    "nodiscard-loader", "hotpath-alloc",
      "hotpath-lock",       "hotpath-throw",   "hotpath-io",
      "hotpath-unknown",    "lock-order"};
  return ids;
}

std::string rule_description(const std::string& rule) {
  if (rule == "layering")
    return "#include must follow the declared subsystem dependency DAG";
  if (rule == "det-rand") return "std::rand/srand are banned (unseeded RNG)";
  if (rule == "det-random-device")
    return "std::random_device is banned (non-replayable entropy)";
  if (rule == "det-wallclock")
    return "std::chrono::system_clock is banned (wall-clock time)";
  if (rule == "det-getenv")
    return "std::getenv is restricted to sanctioned config seams";
  if (rule == "det-unordered-iter")
    return "iterating an unordered container yields unspecified order";
  if (rule == "raw-unit-double")
    return "raw double *_deg/_rad/_km fields must use geo:: unit types";
  if (rule == "nodiscard-loader")
    return "load_*/parse_* declarations must be [[nodiscard]]";
  if (rule == "hotpath-alloc")
    return "STARLAB_HOTPATH functions must not transitively allocate";
  if (rule == "hotpath-lock")
    return "STARLAB_HOTPATH functions must not transitively acquire a mutex";
  if (rule == "hotpath-throw")
    return "STARLAB_HOTPATH functions must not transitively throw";
  if (rule == "hotpath-io")
    return "STARLAB_HOTPATH functions must not transitively do stream/file "
           "I/O";
  if (rule == "hotpath-unknown")
    return "STARLAB_HOTPATH call graphs must not reach unvetted unresolved "
           "callees";
  if (rule == "lock-order")
    return "the cross-TU lock acquisition graph must stay acyclic (ABBA "
           "deadlock)";
  throw std::invalid_argument("unknown starlint rule: " + rule);
}

std::vector<Finding> run_rules(const SourceFile& file,
                               const LayersConfig& config) {
  std::vector<Finding> findings;
  rule_layering(file, config, findings);
  rule_determinism(file, config, findings);
  rule_raw_unit_double(file, findings);
  rule_nodiscard_loader(file, findings);
  return findings;
}

}  // namespace starlint
