// starlint — the project's own static analyzer.
//
//   starlint --root <repo> [--config layers.toml] [--baseline baseline.json]
//            [--compdb build/compile_commands.json] [--sarif out.sarif]
//            [--write-baseline] [--verbose] [paths...]
//
// Files come from the compilation database (translation units under
// <root>/src) plus a header walk of <root>/src — headers never appear in a
// compilation database, and the rules care about them most. Without a
// database the directory walk alone decides. Explicit positional paths
// bypass discovery entirely (the fixture tests use this).
//
// Exit codes: 0 clean (findings all baselined), 1 findings beyond the
// baseline or a stale baseline, 2 usage/config error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "config.hpp"
#include "rules.hpp"
#include "sarif.hpp"
#include "source_file.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::string root = ".";
  std::string config_path;    // default: <root>/tools/starlint/layers.toml
  std::string baseline_path;  // default: <root>/tools/starlint/baseline.json
  std::string compdb_path;    // default: <root>/build/compile_commands.json
  std::string sarif_path;
  bool write_baseline = false;
  bool verbose = false;
  std::vector<std::string> paths;
};

/// `"file"` values of a CMake compilation database. Tolerant scan rather
/// than a full JSON parser: CMake writes plain absolute paths with no
/// escapes, and a missing/odd database only shrinks the file set (the
/// directory walk still covers src/).
std::vector<std::string> compdb_files(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<std::string> files;
  std::size_t at = 0;
  while ((at = text.find("\"file\"", at)) != std::string::npos) {
    std::size_t open = text.find('"', text.find(':', at + 6));
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    files.push_back(text.substr(open + 1, close - open - 1));
    at = close;
  }
  return files;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Path of `p` relative to `root`, '/'-separated (the report path).
std::string relative_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(fs::weakly_canonical(p, ec), root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

std::set<std::string> discover(const Options& opt, const fs::path& root) {
  std::set<std::string> files;  // repo-relative; set = stable scan order
  for (const std::string& f : compdb_files(opt.compdb_path)) {
    const std::string rel = relative_path(f, root);
    if (rel.rfind("src/", 0) == 0 && fs::exists(f)) files.insert(rel);
  }
  const fs::path src = root / "src";
  if (fs::is_directory(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel = relative_path(entry.path(), root);
      if (has_suffix(rel, ".hpp") || has_suffix(rel, ".cpp")) {
        files.insert(rel);
      }
    }
  }
  return files;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--config FILE] [--baseline FILE]\n"
               "       [--compdb FILE] [--sarif FILE] [--write-baseline]\n"
               "       [--verbose] [paths...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string& into) {
      if (i + 1 >= argc) {
        std::cerr << "starlint: " << arg << " needs a value\n";
        std::exit(2);
      }
      into = argv[++i];
    };
    if (arg == "--root") {
      value(opt.root);
    } else if (arg == "--config") {
      value(opt.config_path);
    } else if (arg == "--baseline") {
      value(opt.baseline_path);
    } else if (arg == "--compdb") {
      value(opt.compdb_path);
    } else if (arg == "--sarif") {
      value(opt.sarif_path);
    } else if (arg == "--write-baseline") {
      opt.write_baseline = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      opt.paths.push_back(arg);
    }
  }

  try {
    const fs::path root = fs::weakly_canonical(opt.root);
    if (opt.config_path.empty()) {
      opt.config_path = (root / "tools/starlint/layers.toml").string();
    }
    if (opt.baseline_path.empty()) {
      opt.baseline_path = (root / "tools/starlint/baseline.json").string();
    }
    if (opt.compdb_path.empty()) {
      opt.compdb_path = (root / "build/compile_commands.json").string();
    }
    const starlint::LayersConfig config =
        starlint::load_layers_config(opt.config_path);

    std::set<std::string> files;
    if (opt.paths.empty()) {
      files = discover(opt, root);
    } else {
      for (const std::string& p : opt.paths) {
        const fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
        files.insert(relative_path(abs, root));
      }
    }

    std::vector<starlint::Finding> findings;
    for (const std::string& rel : files) {
      const starlint::SourceFile file =
          starlint::SourceFile::load((root / rel).string(), rel);
      const std::vector<starlint::Finding> fs_ = run_rules(file, config);
      findings.insert(findings.end(), fs_.begin(), fs_.end());
    }

    if (!opt.sarif_path.empty()) starlint::write_sarif(opt.sarif_path, findings);

    if (opt.write_baseline) {
      starlint::write_baseline(opt.baseline_path, starlint::tally(findings));
      std::cout << "starlint: wrote baseline (" << findings.size()
                << " finding(s) across " << files.size() << " file(s)) to "
                << opt.baseline_path << "\n";
      return 0;
    }

    const starlint::Baseline baseline =
        starlint::load_baseline(opt.baseline_path);
    const starlint::BaselineCheck check =
        starlint::check_against_baseline(findings, baseline);

    // Print the findings of every regressing (rule, file) pair — the
    // baseline is count-based, so the offending line can be any of them.
    std::set<std::pair<std::string, std::string>> regressing;
    for (const std::string& r : check.regressions) {
      const std::size_t close = r.find(']');
      const std::size_t colon = r.find(':', close);
      regressing.insert({r.substr(1, close - 1),
                         r.substr(close + 2, colon - close - 2)});
    }
    for (const starlint::Finding& f : findings) {
      if (opt.verbose || regressing.count({f.rule, f.file}) != 0) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
      }
    }
    for (const std::string& r : check.regressions) {
      std::cout << "starlint: NEW " << r << "\n";
    }
    for (const std::string& s : check.stale) {
      std::cout << "starlint: STALE " << s << "\n";
    }
    if (!check.ok()) return 1;
    std::cout << "starlint: clean (" << files.size() << " file(s), "
              << findings.size() << " baselined finding(s))\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "starlint: " << e.what() << "\n";
    return 2;
  }
}
