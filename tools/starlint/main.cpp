// starlint — the project's own static analyzer.
//
//   starlint --root <repo> [--config layers.toml] [--baseline baseline.json]
//            [--compdb build/compile_commands.json] [--sarif out.sarif]
//            [--hotpath-config hotpath.toml] [--only RULE[,RULE...]]
//            [--dump-callgraph] [--write-baseline] [--verbose] [paths...]
//
// Files come from the compilation database (translation units under
// <root>/src) plus a header walk of <root>/src — headers never appear in a
// compilation database, and the rules care about them most. Without a
// database the directory walk alone decides. Explicit positional paths
// bypass discovery entirely (the fixture tests use this).
//
// Exit codes: 0 clean (findings all baselined), 1 findings beyond the
// baseline or a stale baseline, 2 usage/config error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "callgraph.hpp"
#include "config.hpp"
#include "rules.hpp"
#include "sarif.hpp"
#include "source_file.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::string root = ".";
  std::string config_path;    // default: <root>/tools/starlint/layers.toml
  std::string baseline_path;  // default: <root>/tools/starlint/baseline.json
  std::string compdb_path;    // default: <root>/build/compile_commands.json
  std::string sarif_path;
  std::string hotpath_path;   // default: <root>/tools/starlint/hotpath.toml
  std::set<std::string> only;  // empty = all rules
  bool dump_callgraph = false;
  bool write_baseline = false;
  bool verbose = false;
  std::vector<std::string> paths;
};

/// `"file"` values of a CMake compilation database. Tolerant scan rather
/// than a full JSON parser: CMake writes plain absolute paths with no
/// escapes, and a missing/odd database only shrinks the file set (the
/// directory walk still covers src/).
std::vector<std::string> compdb_files(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<std::string> files;
  std::size_t at = 0;
  while ((at = text.find("\"file\"", at)) != std::string::npos) {
    std::size_t open = text.find('"', text.find(':', at + 6));
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    files.push_back(text.substr(open + 1, close - open - 1));
    at = close;
  }
  return files;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Path of `p` relative to `root`, '/'-separated (the report path).
std::string relative_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(fs::weakly_canonical(p, ec), root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

std::set<std::string> discover(const Options& opt, const fs::path& root) {
  std::set<std::string> files;  // repo-relative; set = stable scan order
  for (const std::string& f : compdb_files(opt.compdb_path)) {
    const std::string rel = relative_path(f, root);
    if (rel.rfind("src/", 0) == 0 && fs::exists(f)) files.insert(rel);
  }
  const fs::path src = root / "src";
  if (fs::is_directory(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel = relative_path(entry.path(), root);
      if (has_suffix(rel, ".hpp") || has_suffix(rel, ".cpp")) {
        files.insert(rel);
      }
    }
  }
  return files;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--config FILE] [--baseline FILE]\n"
               "       [--compdb FILE] [--sarif FILE] [--hotpath-config "
               "FILE]\n"
               "       [--only RULE[,RULE...]] [--dump-callgraph]\n"
               "       [--write-baseline] [--verbose] [paths...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string& into) {
      if (i + 1 >= argc) {
        std::cerr << "starlint: " << arg << " needs a value\n";
        std::exit(2);
      }
      into = argv[++i];
    };
    if (arg == "--root") {
      value(opt.root);
    } else if (arg == "--config") {
      value(opt.config_path);
    } else if (arg == "--baseline") {
      value(opt.baseline_path);
    } else if (arg == "--compdb") {
      value(opt.compdb_path);
    } else if (arg == "--sarif") {
      value(opt.sarif_path);
    } else if (arg == "--hotpath-config") {
      value(opt.hotpath_path);
    } else if (arg == "--only" || arg.rfind("--only=", 0) == 0) {
      std::string rules;
      if (arg.rfind("--only=", 0) == 0) {
        rules = arg.substr(7);
      } else {
        value(rules);
      }
      std::size_t at = 0;
      while (at <= rules.size()) {
        const std::size_t comma = rules.find(',', at);
        const std::string rule =
            rules.substr(at, comma == std::string::npos ? std::string::npos
                                                        : comma - at);
        if (!rule.empty()) opt.only.insert(rule);
        if (comma == std::string::npos) break;
        at = comma + 1;
      }
      if (opt.only.empty()) {
        std::cerr << "starlint: --only needs at least one rule id\n";
        return 2;
      }
      const auto& known = starlint::all_rule_ids();
      for (const std::string& rule : opt.only) {
        if (std::find(known.begin(), known.end(), rule) == known.end()) {
          std::cerr << "starlint: --only: unknown rule '" << rule << "'\n";
          return 2;
        }
      }
    } else if (arg == "--dump-callgraph") {
      opt.dump_callgraph = true;
    } else if (arg == "--write-baseline") {
      opt.write_baseline = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      opt.paths.push_back(arg);
    }
  }

  try {
    const fs::path root = fs::weakly_canonical(opt.root);
    if (opt.config_path.empty()) {
      opt.config_path = (root / "tools/starlint/layers.toml").string();
    }
    if (opt.baseline_path.empty()) {
      opt.baseline_path = (root / "tools/starlint/baseline.json").string();
    }
    if (opt.compdb_path.empty()) {
      opt.compdb_path = (root / "build/compile_commands.json").string();
    }
    if (opt.hotpath_path.empty()) {
      opt.hotpath_path = (root / "tools/starlint/hotpath.toml").string();
    }
    const starlint::LayersConfig config =
        starlint::load_layers_config(opt.config_path);
    const starlint::HotpathConfig hotpath_config =
        starlint::load_hotpath_config(opt.hotpath_path);

    std::set<std::string> files;
    if (opt.paths.empty()) {
      files = discover(opt, root);
    } else {
      for (const std::string& p : opt.paths) {
        const fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
        files.insert(relative_path(abs, root));
      }
    }

    // The call-graph pass is whole-program: keep every file loaded.
    std::vector<starlint::SourceFile> sources;
    sources.reserve(files.size());
    for (const std::string& rel : files) {
      sources.push_back(starlint::SourceFile::load((root / rel).string(), rel));
    }

    std::vector<starlint::Finding> findings;
    for (const starlint::SourceFile& file : sources) {
      const std::vector<starlint::Finding> fs_ = run_rules(file, config);
      findings.insert(findings.end(), fs_.begin(), fs_.end());
    }
    const starlint::CallGraph graph(sources, hotpath_config);
    if (opt.dump_callgraph) std::cout << graph.dump();
    {
      const std::vector<starlint::Finding> hot = graph.hotpath_findings();
      findings.insert(findings.end(), hot.begin(), hot.end());
      const std::vector<starlint::Finding> locks = graph.lock_order_findings();
      findings.insert(findings.end(), locks.begin(), locks.end());
    }

    if (!opt.only.empty()) {
      findings.erase(std::remove_if(findings.begin(), findings.end(),
                                    [&](const starlint::Finding& f) {
                                      return opt.only.count(f.rule) == 0;
                                    }),
                     findings.end());
    }

    if (!opt.sarif_path.empty()) starlint::write_sarif(opt.sarif_path, findings);

    if (opt.write_baseline) {
      if (!opt.only.empty()) {
        std::cerr << "starlint: --write-baseline with --only would drop every "
                     "other rule's entries\n";
        return 2;
      }
      starlint::write_baseline(opt.baseline_path, starlint::tally(findings));
      std::cout << "starlint: wrote baseline (" << findings.size()
                << " finding(s) across " << files.size() << " file(s)) to "
                << opt.baseline_path << "\n";
      return 0;
    }

    starlint::Baseline baseline = starlint::load_baseline(opt.baseline_path);
    if (!opt.only.empty()) {
      // Other rules' baseline entries would all look stale when their
      // findings were filtered out — restrict the baseline the same way.
      for (auto it = baseline.begin(); it != baseline.end();) {
        it = opt.only.count(it->first) == 0 ? baseline.erase(it)
                                            : std::next(it);
      }
    }
    const starlint::BaselineCheck check =
        starlint::check_against_baseline(findings, baseline);

    // Print the findings of every regressing (rule, file) pair — the
    // baseline is count-based, so the offending line can be any of them.
    std::set<std::pair<std::string, std::string>> regressing;
    for (const std::string& r : check.regressions) {
      const std::size_t close = r.find(']');
      const std::size_t colon = r.find(':', close);
      regressing.insert({r.substr(1, close - 1),
                         r.substr(close + 2, colon - close - 2)});
    }
    for (const starlint::Finding& f : findings) {
      if (opt.verbose || regressing.count({f.rule, f.file}) != 0) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
      }
    }
    for (const std::string& r : check.regressions) {
      std::cout << "starlint: NEW " << r << "\n";
    }
    for (const std::string& s : check.stale) {
      std::cout << "starlint: STALE " << s << "\n";
    }
    if (!check.ok()) return 1;
    std::cout << "starlint: clean (" << files.size() << " file(s), "
              << findings.size() << " baselined finding(s))\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "starlint: " << e.what() << "\n";
    return 2;
  }
}
