#include "source_file.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace starlint {

SourceFile::SourceFile(std::string path, std::string content)
    : path_(std::move(path)), raw_(std::move(content)) {
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    if (raw_[i] == '\n') line_starts_.push_back(i + 1);
  }
  scrub();
}

SourceFile SourceFile::load(const std::string& fs_path,
                            const std::string& report_path) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) throw std::runtime_error("starlint: cannot read " + fs_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return {report_path, buf.str()};
}

std::size_t SourceFile::line_of(std::size_t pos) const {
  const auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), pos);
  return static_cast<std::size_t>(it - line_starts_.begin());
}

std::string SourceFile::scrubbed_line(std::size_t line) const {
  if (line == 0 || line > line_starts_.size()) return "";
  const std::size_t begin = line_starts_[line - 1];
  const std::size_t end = line < line_starts_.size()
                              ? line_starts_[line] - 1
                              : scrubbed_.size();
  return scrubbed_.substr(begin, end - begin);
}

std::string SourceFile::raw_line(std::size_t line) const {
  if (line == 0 || line > line_starts_.size()) return "";
  const std::size_t begin = line_starts_[line - 1];
  const std::size_t end =
      line < line_starts_.size() ? line_starts_[line] - 1 : raw_.size();
  return raw_.substr(begin, end - begin);
}

bool SourceFile::allowed(const std::string& rule, std::size_t line) const {
  const auto it = allows_.find(rule);
  if (it == allows_.end()) return false;
  return it->second.count(line) != 0 ||
         (line > 0 && it->second.count(line - 1) != 0);
}

bool SourceFile::hotpath_marked(std::size_t line) const {
  return hotpath_marks_.count(line) != 0 ||
         (line > 0 && hotpath_marks_.count(line - 1) != 0);
}

void SourceFile::collect_allow(const std::string& comment, std::size_t line) {
  static const std::string kTag = "starlint:allow(";
  std::size_t at = 0;
  while ((at = comment.find(kTag, at)) != std::string::npos) {
    const std::size_t open = at + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    allows_[comment.substr(open, close - open)].insert(line);
    at = close;
  }
  if (comment.find("starlint:hotpath") != std::string::npos) {
    hotpath_marks_.insert(line);
  }
}

void SourceFile::scrub() {
  scrubbed_ = raw_;
  const std::size_t n = raw_.size();
  std::size_t i = 0;
  // Blank [begin, end) except newlines, so line numbers survive.
  const auto blank = [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end && k < n; ++k) {
      if (scrubbed_[k] != '\n') scrubbed_[k] = ' ';
    }
  };
  while (i < n) {
    const char c = raw_[i];
    if (c == '/' && i + 1 < n && raw_[i + 1] == '/') {
      std::size_t end = i;
      while (end < n && raw_[end] != '\n') ++end;
      collect_allow(raw_.substr(i, end - i), line_of(i));
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && raw_[i + 1] == '*') {
      std::size_t end = raw_.find("*/", i + 2);
      end = end == std::string::npos ? n : end + 2;
      collect_allow(raw_.substr(i, end - i), line_of(i));
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && raw_[i + 1] == '"' &&
               (i == 0 || (std::isalnum(static_cast<unsigned char>(
                               raw_[i - 1])) == 0 &&
                           raw_[i - 1] != '_'))) {
      // Raw string literal: R"delim( ... )delim"
      const std::size_t open = raw_.find('(', i + 2);
      if (open == std::string::npos) {
        ++i;
        continue;
      }
      const std::string delim = raw_.substr(i + 2, open - (i + 2));
      std::size_t end = raw_.find(")" + delim + "\"", open + 1);
      end = end == std::string::npos ? n : end + delim.size() + 2;
      blank(i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      std::size_t end = i + 1;
      while (end < n && raw_[end] != c) {
        end += raw_[end] == '\\' ? 2 : 1;
      }
      if (end < n) ++end;
      blank(i + 1, end == n ? n : end - 1);  // keep the quotes themselves
      i = end;
    } else {
      ++i;
    }
  }
}

}  // namespace starlint
