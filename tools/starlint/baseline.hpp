#pragma once

// The finding baseline: per-(rule, file) counts of known findings, stored
// as JSON at tools/starlint/baseline.json.
//
//   { "raw-unit-double": { "src/ground/site.hpp": 2, ... }, ... }
//
// Comparison is by count, like scripts/lint.sh's old baseline: a file may
// not grow new findings of a rule, and when findings are fixed the run
// demands the baseline be regenerated (--write-baseline) so it only ever
// ratchets down. Entries for files/rules with zero findings are never
// written.

#include <map>
#include <string>
#include <vector>

#include "rules.hpp"

namespace starlint {

/// rule id -> file -> count.
using Baseline = std::map<std::string, std::map<std::string, int>>;

/// Count findings per (rule, file).
[[nodiscard]] Baseline tally(const std::vector<Finding>& findings);

/// Parse baseline JSON. Throws std::runtime_error on malformed input.
[[nodiscard]] Baseline parse_baseline(const std::string& json);

/// Load from disk; a missing file is an empty baseline.
[[nodiscard]] Baseline load_baseline(const std::string& path);

[[nodiscard]] std::string format_baseline(const Baseline& baseline);
void write_baseline(const std::string& path, const Baseline& baseline);

/// Result of checking a run against the baseline.
struct BaselineCheck {
  /// Findings beyond the baselined count, per (rule, file) — the failures.
  std::vector<std::string> regressions;
  /// Baseline entries above the observed count — fixed findings whose
  /// baseline entry must be re-written (the ratchet).
  std::vector<std::string> stale;
  [[nodiscard]] bool ok() const { return regressions.empty() && stale.empty(); }
};

[[nodiscard]] BaselineCheck check_against_baseline(
    const std::vector<Finding>& findings, const Baseline& baseline);

}  // namespace starlint
