#pragma once

// Cross-TU function indexing for starlint's call-graph passes.
//
// The indexer walks one scrubbed source file with a scope stack (namespace /
// class / function / block), classifying every `{` by the statement head in
// front of it, and records:
//   * every function and lambda definition — unqualified name, fully
//     scope-qualified name, 1-based head line, and the [body_begin,
//     body_end) byte extent of its body in scrubbed();
//   * whether the definition is a hot-path root: the STARLAB_HOTPATH macro
//     token in its head, or a `// starlint:hotpath` marker comment on the
//     body-opening line (lambdas cannot carry a macro);
//   * every `check::Mutex` declaration together with the qualified scope
//     that owns it — the lock-order pass keys mutex identity on
//     `<owner>::<name>` so the many classes whose member is just `mu_` stay
//     distinct.
//
// Still no libclang: this is the same hand-rolled tokenizer philosophy as
// rules.cpp, tuned on this codebase's idioms (out-of-class definitions,
// constructor init lists, trailing return types, local annotated structs,
// lambdas nested in call arguments). Preprocessor lines are blanked first
// so macro definitions with unbalanced braces cannot derail the scope
// tracking.

#include <cstddef>
#include <string>
#include <vector>

#include "source_file.hpp"

namespace starlint {

/// One function (or lambda) definition.
struct FunctionDef {
  /// Unqualified name; lambdas report "<lambda>".
  std::string name;
  /// Scope-qualified name, e.g. "starlab::sgp4::SoaConstants::propagate".
  /// Lambdas get "<enclosing>::<lambda@LINE>".
  std::string qualified;
  /// Index into the file vector the graph was built over.
  std::size_t file_index = 0;
  /// 1-based line of the definition head (the function name token; the `{`
  /// line for lambdas).
  std::size_t line = 0;
  /// Byte offset of the opening '{' in SourceFile::scrubbed().
  std::size_t body_begin = 0;
  /// One past the closing '}' (file end when unbalanced).
  std::size_t body_end = 0;
  bool hotpath = false;
  bool is_lambda = false;
};

/// One mutex declaration (`check::Mutex name;`).
struct MutexDecl {
  std::string name;
  /// Qualified scope that declares it ("...::EphemerisCache::Shard"); the
  /// lock identity is owner + "::" + name.
  std::string owner;
  std::size_t file_index = 0;
  std::size_t line = 0;
};

struct FileIndex {
  std::vector<FunctionDef> functions;
  std::vector<MutexDecl> mutexes;
};

/// Index every function definition and mutex declaration in `file`.
/// `file_index` is stamped into the records so multi-file graphs can map
/// back to their sources.
[[nodiscard]] FileIndex index_file(const SourceFile& file,
                                   std::size_t file_index);

}  // namespace starlint
