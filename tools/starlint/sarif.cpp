#include "sarif.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace starlint {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out + "\"";
}

}  // namespace

std::string format_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"starlint\",\n"
      << "      \"informationUri\": \"tools/starlint\",\n"
      << "      \"rules\": [";
  bool first = true;
  for (const std::string& rule : all_rule_ids()) {
    out << (first ? "\n" : ",\n") << "        {\"id\": " << quote(rule)
        << ", \"shortDescription\": {\"text\": "
        << quote(rule_description(rule)) << "}}";
    first = false;
  }
  out << "\n      ]\n    }},\n    \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n") << "      {\"ruleId\": " << quote(f.rule)
        << ", \"level\": \"error\", \"message\": {\"text\": "
        << quote(f.message) << "}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": " << quote(f.file)
        << "}, \"region\": {\"startLine\": " << f.line << "}}}]}";
    first = false;
  }
  out << "\n    ]\n  }]\n}\n";
  return out.str();
}

void write_sarif(const std::string& path,
                 const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("starlint: cannot write " + path);
  out << format_sarif(findings);
}

}  // namespace starlint
