#include "functions.hpp"

#include <cctype>
#include <set>

namespace starlint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Blank every preprocessor line (and its `\`-continuations) in place,
/// keeping newlines so line numbers survive.
void blank_preprocessor_lines(std::string& text) {
  std::size_t i = 0;
  bool continued = false;
  while (i < text.size()) {
    std::size_t eol = text.find('\n', i);
    if (eol == std::string::npos) eol = text.size();
    std::size_t first = i;
    while (first < eol && (text[first] == ' ' || text[first] == '\t')) ++first;
    const bool directive = continued || (first < eol && text[first] == '#');
    continued = directive && eol > i && text[eol - 1] == '\\';
    if (directive) {
      for (std::size_t k = i; k < eol; ++k) text[k] = ' ';
    }
    i = eol + 1;
  }
}

/// Position of the last non-space char at or before `i` (npos if none).
std::size_t skip_ws_back(const std::string& text, std::size_t i) {
  while (i != std::string::npos && i < text.size() && is_space(text[i])) {
    if (i == 0) return std::string::npos;
    --i;
  }
  return i;
}

/// The identifier ending at position `end` (inclusive); empty if `end` is
/// not an identifier char. `begin_out` receives its first char's position.
std::string ident_ending_at(const std::string& text, std::size_t end,
                            std::size_t& begin_out) {
  if (end == std::string::npos || !is_ident_char(text[end])) return "";
  std::size_t b = end;
  while (b > 0 && is_ident_char(text[b - 1])) --b;
  begin_out = b;
  if (std::isdigit(static_cast<unsigned char>(text[b])) != 0) return "";
  return text.substr(b, end - b + 1);
}

/// Match a closing bracket backwards: `at` holds the closer; returns the
/// position of the matching opener, or npos on failure.
std::size_t match_back(const std::string& text, std::size_t at, char open,
                       char close) {
  int depth = 0;
  for (std::size_t i = at;; --i) {
    if (text[i] == close) ++depth;
    if (text[i] == open && --depth == 0) return i;
    if (i == 0) break;
  }
  return std::string::npos;
}

/// True when the `{` at `brace` closes a lambda introducer: `[...](...)` or
/// `[...]`, optionally with mutable/noexcept/const and a trailing return
/// type in between.
bool is_lambda_brace(const std::string& text, std::size_t brace) {
  std::size_t i = skip_ws_back(text, brace == 0 ? std::string::npos
                                                : brace - 1);
  // Skip trailing specifiers and a `-> Type` clause: identifier tokens and
  // the punctuation a return type can contain.
  while (i != std::string::npos) {
    const char c = text[i];
    if (is_ident_char(c)) {
      std::size_t b = 0;
      ident_ending_at(text, i, b);
      i = b == 0 ? std::string::npos : skip_ws_back(text, b - 1);
    } else if (c == '>' || c == '<' || c == ':' || c == '*' || c == '&') {
      i = i == 0 ? std::string::npos : skip_ws_back(text, i - 1);
    } else if (c == '-' ) {
      i = i == 0 ? std::string::npos : skip_ws_back(text, i - 1);
    } else {
      break;
    }
  }
  if (i == std::string::npos) return false;
  if (text[i] == ')') {
    const std::size_t open = match_back(text, i, '(', ')');
    if (open == std::string::npos || open == 0) return false;
    i = skip_ws_back(text, open - 1);
    if (i == std::string::npos || text[i] != ']') return false;
  }
  if (text[i] != ']') return false;
  const std::size_t lb = match_back(text, i, '[', ']');
  if (lb == std::string::npos) return false;
  // `[` preceded by an identifier / `)` / `]` is a subscript, not a capture
  // list; anything else (call argument, `=`, `,`, `(`, `{`, `return`, line
  // start) introduces a lambda.
  const std::size_t before =
      lb == 0 ? std::string::npos : skip_ws_back(text, lb - 1);
  if (before == std::string::npos) return true;
  const char p = text[before];
  if (p == ')' || p == ']') return false;
  if (is_ident_char(p)) {
    std::size_t b = 0;
    const std::string id = ident_ending_at(text, before, b);
    return id == "return" || id == "co_return";
  }
  return true;
}

/// Skip leading whitespace and `template <...>` prefixes of a head.
std::size_t skip_template_prefix(const std::string& head) {
  std::size_t i = 0;
  for (;;) {
    while (i < head.size() && is_space(head[i])) ++i;
    if (head.compare(i, 8, "template") != 0) return i;
    std::size_t j = i + 8;
    while (j < head.size() && is_space(head[j])) ++j;
    if (j >= head.size() || head[j] != '<') return i;
    int depth = 0;
    for (; j < head.size(); ++j) {
      if (head[j] == '<') ++depth;
      if (head[j] == '>' && --depth == 0) {
        ++j;
        break;
      }
    }
    i = j;
  }
}

struct HeadToken {
  std::string text;
  std::size_t pos = 0;
};

std::vector<HeadToken> head_tokens(const std::string& head,
                                   std::size_t begin) {
  std::vector<HeadToken> out;
  std::size_t i = begin;
  while (i < head.size()) {
    if (is_ident_char(head[i]) &&
        std::isdigit(static_cast<unsigned char>(head[i])) == 0) {
      std::size_t e = i;
      while (e < head.size() && is_ident_char(head[e])) ++e;
      out.push_back({head.substr(i, e - i), i});
      i = e;
    } else {
      ++i;
    }
  }
  return out;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",    "switch",        "catch",
      "return", "co_return", "sizeof",  "alignof",       "decltype",
      "noexcept", "static_assert", "assert", "operator", "alignas",
  };
  return kw;
}

}  // namespace

FileIndex index_file(const SourceFile& file, std::size_t file_index) {
  FileIndex out;
  std::string text = file.scrubbed();
  blank_preprocessor_lines(text);
  const std::size_t n = text.size();

  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  struct Scope {
    Kind kind;
    std::string name;  // empty for blocks / anonymous scopes
    std::size_t def_index = SIZE_MAX;
    int paren_depth = 0;  // depth at push; statement `;` resets heads here
  };
  std::vector<Scope> stack;

  const auto qualified_prefix = [&]() {
    std::string q;
    for (const Scope& s : stack) {
      if (s.name.empty()) continue;
      if (!q.empty()) q += "::";
      q += s.name;
    }
    return q;
  };

  std::size_t head_start = 0;
  int paren_depth = 0;
  std::string prev_ident;
  std::size_t prev_ident_end = 0;

  const auto base_depth = [&]() {
    return stack.empty() ? 0 : stack.back().paren_depth;
  };

  std::size_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (is_ident_char(c) &&
        std::isdigit(static_cast<unsigned char>(c)) == 0) {
      std::size_t e = i;
      while (e < n && is_ident_char(text[e])) ++e;
      const std::string tok = text.substr(i, e - i);
      // `check::Mutex name;` (adjacent tokens, declaration-terminated):
      // register the mutex with its owning scope.
      if (prev_ident == "Mutex" && paren_depth == base_depth()) {
        bool adjacent = true;
        for (std::size_t k = prev_ident_end; k < i; ++k) {
          if (!is_space(text[k]) && text[k] != ':') adjacent = false;
          if (text[k] == ':') adjacent = false;  // Mutex::something
        }
        if (adjacent) {
          std::size_t after = e;
          while (after < n && is_space(text[after])) ++after;
          if (after < n && (text[after] == ';' || text[after] == '{' ||
                            is_ident_char(text[after]))) {
            out.mutexes.push_back(
                {tok, qualified_prefix(), file_index, file.line_of(i)});
          }
        }
      }
      prev_ident = tok;
      prev_ident_end = e;
      i = e;
      continue;
    }
    switch (c) {
      case '(':
        ++paren_depth;
        break;
      case ')':
        if (paren_depth > 0) --paren_depth;
        break;
      case ';':
        if (paren_depth == base_depth()) head_start = i + 1;
        break;
      case '}': {
        if (!stack.empty()) {
          const Scope s = stack.back();
          stack.pop_back();
          if (s.kind == Kind::kFunction && s.def_index != SIZE_MAX) {
            out.functions[s.def_index].body_end = i + 1;
          }
        }
        head_start = i + 1;
        break;
      }
      case '{': {
        Scope scope{Kind::kBlock, "", SIZE_MAX, paren_depth};
        const std::size_t brace_line = file.line_of(i);
        if (is_lambda_brace(text, i)) {
          FunctionDef def;
          def.name = "<lambda>";
          const std::string prefix = qualified_prefix();
          def.qualified = (prefix.empty() ? "" : prefix + "::") +
                          "<lambda@" + std::to_string(brace_line) + ">";
          def.file_index = file_index;
          def.line = brace_line;
          def.body_begin = i;
          def.body_end = n;
          def.is_lambda = true;
          def.hotpath = file.hotpath_marked(brace_line);
          scope.kind = Kind::kFunction;
          scope.name = "<lambda@" + std::to_string(brace_line) + ">";
          scope.def_index = out.functions.size();
          out.functions.push_back(def);
        } else if (paren_depth == base_depth()) {
          const std::string head = text.substr(head_start, i - head_start);
          const std::vector<HeadToken> toks =
              head_tokens(head, skip_template_prefix(head));
          // namespace?
          std::size_t ns_at = SIZE_MAX;
          std::size_t class_at = SIZE_MAX;
          for (std::size_t t = 0; t < toks.size(); ++t) {
            if (toks[t].text == "namespace" && ns_at == SIZE_MAX) ns_at = t;
            if ((toks[t].text == "class" || toks[t].text == "struct" ||
                 toks[t].text == "union" || toks[t].text == "enum") &&
                class_at == SIZE_MAX) {
              class_at = t;
            }
          }
          // A '(' before the class-key means the key sits in a parameter
          // list (e.g. `void f(struct X*)`), not a type definition head.
          if (class_at != SIZE_MAX) {
            const std::size_t paren = head.find('(');
            if (paren != std::string::npos && paren < toks[class_at].pos) {
              class_at = SIZE_MAX;
            }
          }
          if (ns_at != SIZE_MAX) {
            scope.kind = Kind::kNamespace;
            // `namespace a::b` — join the identifier chain after the
            // keyword; anonymous namespaces contribute "(anon)".
            std::string name;
            for (std::size_t t = ns_at + 1; t < toks.size(); ++t) {
              if (!name.empty()) name += "::";
              name += toks[t].text;
            }
            scope.name = name.empty() ? "(anon)" : name;
          } else if (class_at != SIZE_MAX) {
            scope.kind = Kind::kClass;
            static const std::set<std::string> skip = {
                "class", "struct", "final", "alignas", "public",
                "protected", "private", "virtual"};
            for (std::size_t t = class_at + 1; t < toks.size(); ++t) {
              if (skip.count(toks[t].text) != 0) continue;
              scope.name = toks[t].text;
              break;
            }
            if (scope.name.empty()) scope.name = "(anon)";
          } else {
            // Function definition: first head-level `ident(` whose name is
            // not a control keyword. Constructor init lists keep the
            // constructor name first, so "first" is the right pick.
            std::size_t name_pos = std::string::npos;
            std::string chain;
            for (std::size_t t = 0; t < toks.size(); ++t) {
              std::size_t after = toks[t].pos + toks[t].text.size();
              while (after < head.size() && (head[after] == ' ' ||
                                             head[after] == '\t' ||
                                             head[after] == '\n')) {
                ++after;
              }
              if (after >= head.size() || head[after] != '(') continue;
              if (control_keywords().count(toks[t].text) != 0) continue;
              // Depth check: count parens before this token.
              int d = 0;
              for (std::size_t k = 0; k < toks[t].pos; ++k) {
                if (head[k] == '(') ++d;
                if (head[k] == ')') --d;
              }
              if (d != 0) continue;
              // Walk the qualifier chain back: A::B::~name.
              std::size_t b = toks[t].pos;
              chain = toks[t].text;
              std::size_t back = b;
              while (back >= 2 && head.compare(back - 2, 2, "::") == 0) {
                std::size_t qb = 0;
                const std::string q =
                    back >= 3 ? ident_ending_at(head, back - 3, qb) : "";
                if (q.empty()) break;
                chain = q + "::" + chain;
                back = qb;
              }
              // A `~` before the name breaks the `::` chain walk above, so
              // destructors always reach here with a bare class name.
              if (b > 0 && head[b - 1] == '~') chain = "~" + chain;
              name_pos = toks[t].pos;
              break;
            }
            if (name_pos != std::string::npos) {
              FunctionDef def;
              const std::size_t last_sep = chain.rfind("::");
              def.name = last_sep == std::string::npos
                             ? chain
                             : chain.substr(last_sep + 2);
              const std::string prefix = qualified_prefix();
              def.qualified =
                  (prefix.empty() ? "" : prefix + "::") + chain;
              def.file_index = file_index;
              def.line = file.line_of(head_start + name_pos);
              def.body_begin = i;
              def.body_end = n;
              bool macro = false;
              for (const HeadToken& t : toks) {
                if (t.text == "STARLAB_HOTPATH") macro = true;
              }
              def.hotpath = macro || file.hotpath_marked(brace_line) ||
                            file.hotpath_marked(def.line);
              scope.kind = Kind::kFunction;
              scope.name = def.name;
              scope.def_index = out.functions.size();
              out.functions.push_back(def);
            }
          }
        }
        stack.push_back(scope);
        head_start = i + 1;
        break;
      }
      default:
        break;
    }
    ++i;
  }
  return out;
}

}  // namespace starlint
