#pragma once

// Minimal SARIF 2.1.0 writer — one run, one tool (starlint), one result per
// finding — enough for GitHub code scanning upload and editor SARIF viewers.

#include <string>
#include <vector>

#include "rules.hpp"

namespace starlint {

[[nodiscard]] std::string format_sarif(const std::vector<Finding>& findings);
void write_sarif(const std::string& path,
                 const std::vector<Finding>& findings);

}  // namespace starlint
