#include "config.hpp"

#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace starlint {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw std::runtime_error("starlint config:" + std::to_string(line) + ": " +
                           why);
}

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Strip a trailing # comment (quotes-aware) and trim.
std::string strip_comment(const std::string& s) {
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_string = !in_string;
    if (s[i] == '#' && !in_string) return trim(s.substr(0, i));
  }
  return trim(s);
}

/// Parse the "a", "b", ... elements of an array body (no brackets).
std::vector<std::string> parse_strings(const std::string& body,
                                       std::size_t line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < body.size()) {
    const char c = body[i];
    if (c == ' ' || c == '\t' || c == ',') {
      ++i;
    } else if (c == '"') {
      const std::size_t close = body.find('"', i + 1);
      if (close == std::string::npos) fail(line, "unterminated string");
      out.push_back(body.substr(i + 1, close - i - 1));
      i = close + 1;
    } else {
      fail(line, "expected quoted string in array");
    }
  }
  return out;
}

}  // namespace

void LayersConfig::validate() const {
  for (const auto& [layer, targets] : deps) {
    for (const std::string& target : targets) {
      if (deps.find(target) == deps.end()) {
        throw std::runtime_error("layers.toml: [layers." + layer +
                                 "] depends on undeclared subsystem '" +
                                 target + "'");
      }
    }
  }
  // Depth-first cycle check over the declared graph. 0 = unvisited,
  // 1 = on the current path, 2 = finished.
  std::map<std::string, int> state;
  std::vector<std::string> path;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        state[node] = 1;
        path.push_back(node);
        for (const std::string& next : deps.at(node)) {
          if (state[next] == 1) {
            std::string cycle;
            for (const std::string& p : path) cycle += p + " -> ";
            throw std::runtime_error(
                "layers.toml: dependency cycle: " + cycle + next);
          }
          if (state[next] == 0) visit(next);
        }
        path.pop_back();
        state[node] = 2;
      };
  for (const auto& [layer, targets] : deps) {
    if (state[layer] == 0) visit(layer);
  }
}

LayersConfig parse_layers_config(const std::string& text) {
  LayersConfig config;
  std::istringstream in(text);
  std::string line;
  std::string section;
  std::size_t lineno = 0;

  // Array values may spread over lines; accumulate until ']'.
  std::string pending_key;
  std::string pending_body;
  bool in_array = false;

  const auto commit_array = [&](std::size_t at) {
    const std::vector<std::string> values = parse_strings(pending_body, at);
    if (section == "starlint" && pending_key == "interface_headers") {
      config.interface_headers.insert(values.begin(), values.end());
    } else if (section == "starlint" && pending_key == "getenv_allowlist") {
      config.getenv_allowlist.insert(values.begin(), values.end());
    } else if (section == "layers") {
      config.deps[pending_key].insert(values.begin(), values.end());
    } else {
      fail(at, "unknown key '" + pending_key + "' in section [" + section +
                   "]");
    }
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = strip_comment(line);
    if (t.empty()) continue;

    if (in_array) {
      const std::size_t close = t.find(']');
      if (close == std::string::npos) {
        pending_body += " " + t;
      } else {
        pending_body += " " + t.substr(0, close);
        if (trim(t.substr(close + 1)) != "") {
          fail(lineno, "trailing content after ']'");
        }
        commit_array(lineno);
        in_array = false;
      }
      continue;
    }

    if (t.front() == '[') {
      if (t.back() != ']') fail(lineno, "malformed section header");
      section = t.substr(1, t.size() - 2);
      if (section != "layers" && section != "starlint") {
        fail(lineno, "unknown section [" + section + "]");
      }
      continue;
    }

    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) fail(lineno, "expected key = value");
    pending_key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (value.empty() || value.front() != '[') {
      fail(lineno, "expected an array value for '" + pending_key + "'");
    }
    const std::size_t close = value.find(']');
    if (close == std::string::npos) {
      pending_body = value.substr(1);
      in_array = true;
    } else {
      if (trim(value.substr(close + 1)) != "") {
        fail(lineno, "trailing content after ']'");
      }
      pending_body = value.substr(1, close - 1);
      commit_array(lineno);
    }
  }
  if (in_array) fail(lineno, "unterminated array for '" + pending_key + "'");

  config.validate();
  return config;
}

LayersConfig load_layers_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("starlint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_layers_config(buf.str());
}

namespace {

/// Macros whose argument lists the call scan always skips: contracts
/// compile out bit-identically, and the thread-safety attribute macros are
/// type annotations, not calls.
const std::set<std::string>& builtin_skip_macros() {
  static const std::set<std::string> macros = {
      "STARLAB_EXPECT",  "STARLAB_ENSURE", "STARLAB_INVARIANT",
      "GUARDED_BY",      "PT_GUARDED_BY",  "REQUIRES",
      "REQUIRES_SHARED", "EXCLUDES",       "ACQUIRED_AFTER",
      "ACQUIRED_BEFORE", "RETURN_CAPABILITY", "CAPABILITY",
      "SCOPED_CAPABILITY", "ACQUIRE",      "RELEASE",
      "TRY_ACQUIRE",     "ASSERT_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
      "static_assert",
  };
  return macros;
}

}  // namespace

HotpathConfig parse_hotpath_config(const std::string& text) {
  HotpathConfig config;
  config.macros = builtin_skip_macros();
  std::istringstream in(text);
  std::string line;
  std::string section;
  std::size_t lineno = 0;

  std::string pending_key;
  std::string pending_body;
  bool in_array = false;

  const auto commit_array = [&](std::size_t at) {
    const std::vector<std::string> values = parse_strings(pending_body, at);
    if (section == "hotpath" && pending_key == "allow") {
      config.allow.insert(values.begin(), values.end());
    } else if (section == "hotpath" && pending_key == "macros") {
      config.macros.insert(values.begin(), values.end());
    } else {
      fail(at,
           "unknown key '" + pending_key + "' in section [" + section + "]");
    }
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = strip_comment(line);
    if (t.empty()) continue;

    if (in_array) {
      const std::size_t close = t.find(']');
      if (close == std::string::npos) {
        pending_body += " " + t;
      } else {
        pending_body += " " + t.substr(0, close);
        if (trim(t.substr(close + 1)) != "") {
          fail(lineno, "trailing content after ']'");
        }
        commit_array(lineno);
        in_array = false;
      }
      continue;
    }

    if (t.front() == '[') {
      if (t.back() != ']') fail(lineno, "malformed section header");
      section = t.substr(1, t.size() - 2);
      if (section != "hotpath") {
        fail(lineno, "unknown section [" + section + "]");
      }
      continue;
    }

    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) fail(lineno, "expected key = value");
    pending_key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (value.empty() || value.front() != '[') {
      fail(lineno, "expected an array value for '" + pending_key + "'");
    }
    const std::size_t close = value.find(']');
    if (close == std::string::npos) {
      pending_body = value.substr(1);
      in_array = true;
    } else {
      if (trim(value.substr(close + 1)) != "") {
        fail(lineno, "trailing content after ']'");
      }
      pending_body = value.substr(1, close - 1);
      commit_array(lineno);
    }
  }
  if (in_array) fail(lineno, "unterminated array for '" + pending_key + "'");
  return config;
}

HotpathConfig load_hotpath_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    HotpathConfig config;
    config.macros = builtin_skip_macros();
    return config;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_hotpath_config(buf.str());
}

}  // namespace starlint
