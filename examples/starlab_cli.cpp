// starlab_cli — the library as a command-line toolkit. Chains of commands
// move data through files in the documented release formats, so each stage
// can also consume externally captured data with the same columns.
//
//   starlab_cli synthesize --scale 0.5 --out catalog.tle
//   starlab_cli campaign   --hours 6 --scale 0.5 --out campaign.csv
//   starlab_cli probe      --minutes 5 --terminal 2 --out rtt.csv
//   starlab_cli epoch      --rtt rtt.csv
//   starlab_cli train      --campaign campaign.csv --out model.rf
//   starlab_cli evaluate   --campaign campaign.csv --model model.rf
//
// Run without arguments for usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <string>

#include "core/starlab.hpp"
#include "io/campaign_io.hpp"
#include "io/rtt_io.hpp"
#include "sun/solar_ephemeris.hpp"

using namespace starlab;

namespace {

/// Tiny --key value parser; everything is optional with defaults.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --option, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] int get(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoi(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int usage() {
  std::printf(
      "starlab_cli <command> [--option value ...]\n"
      "\n"
      "commands:\n"
      "  synthesize  --scale S --out FILE.tle      write a synthetic catalog\n"
      "  campaign    --hours H --scale S --stride N --out FILE.csv\n"
      "  probe       --minutes M --terminal T --scale S --out FILE.csv\n"
      "  epoch       --rtt FILE.csv                recover the scheduling grid\n"
      "  identify    --minutes M --terminal T --scale S\n"
      "  train       --campaign FILE.csv --trees N --depth D --out MODEL\n"
      "  evaluate    --campaign FILE.csv --model MODEL [--topk K]\n");
  return 2;
}

core::Scenario make_scenario(double scale) {
  return core::Scenario(core::Scenario::default_config(scale));
}

int cmd_synthesize(const Args& args) {
  constellation::SynthesizerConfig cfg;
  cfg.scale = args.get("scale", 1.0);
  const constellation::Constellation c = constellation::synthesize(cfg);
  const std::string out = args.get("out", std::string("catalog.tle"));
  tle::save_catalog_file(out, c.tles());
  std::printf("wrote %zu TLEs (%zu launches) to %s\n", c.size(),
              c.launches.size(), out.c_str());
  return 0;
}

int cmd_campaign(const Args& args) {
  const core::Scenario scenario = make_scenario(args.get("scale", 0.5));
  core::CampaignConfig cfg;
  cfg.duration_hours = args.get("hours", 6.0);
  cfg.slot_stride = args.get("stride", 1);
  const core::CampaignData data = core::run_campaign(scenario, cfg);
  const std::string out = args.get("out", std::string("campaign.csv"));
  io::save_campaign_file(out, data);
  std::printf("wrote %zu slot observations to %s\n", data.slots.size(),
              out.c_str());
  return 0;
}

int cmd_probe(const Args& args) {
  const core::Scenario scenario = make_scenario(args.get("scale", 0.5));
  const auto terminal = static_cast<std::size_t>(args.get("terminal", 0)) % 4;
  const double minutes = args.get("minutes", 5.0);

  const measurement::LatencyModel model(scenario.catalog(),
                                        scenario.mac_scheduler());
  const measurement::RttProber prober(scenario.global_scheduler(), model);
  const double t0 = scenario.grid().slot_start(scenario.first_slot());
  const measurement::RttSeries series =
      prober.run(scenario.terminal(terminal), t0, t0 + minutes * 60.0);

  const std::string out = args.get("out", std::string("rtt.csv"));
  io::save_rtt_series_file(out, series);
  std::printf("wrote %zu probes (%.2f%% lost) from %s to %s\n",
              series.samples.size(), 100.0 * series.loss_rate(),
              series.terminal.c_str(), out.c_str());
  return 0;
}

int cmd_epoch(const Args& args) {
  const std::string path = args.get("rtt", std::string("rtt.csv"));
  const measurement::RttSeries series = io::load_rtt_series_file(path);
  const auto changes = measurement::detect_change_points(series);
  const auto est = measurement::estimate_epoch(changes);
  std::printf("%zu change points in %zu probes\n", changes.size(),
              series.samples.size());
  std::printf("recovered grid: period %.1f s, offset :%02.0f (support %.2f)\n",
              est.period_sec, std::fmod(est.offset_sec, 60.0), est.support);
  return 0;
}

int cmd_identify(const Args& args) {
  const core::Scenario scenario = make_scenario(args.get("scale", 0.5));
  const auto terminal = static_cast<std::size_t>(args.get("terminal", 0)) % 4;
  const double minutes = args.get("minutes", 10.0);

  const core::InferencePipeline pipeline(scenario);
  const core::PipelineResult result = pipeline.run(terminal, minutes * 60.0);
  std::printf("%zu slots decided, %.1f%% agree with ground truth\n",
              result.decided(), 100.0 * result.accuracy());
  return 0;
}

int cmd_train(const Args& args) {
  const std::string path = args.get("campaign", std::string("campaign.csv"));
  const core::CampaignData data = io::load_campaign_file(path);

  const core::ClusterFeaturizer featurizer;
  const ml::Dataset train = featurizer.build_dataset(data);
  std::printf("training on %zu rows x %zu features\n", train.size(),
              train.num_features());

  ml::ForestConfig cfg;
  cfg.num_trees = args.get("trees", 80);
  cfg.tree.max_depth = args.get("depth", 16);
  ml::RandomForest forest(cfg);
  forest.fit(train);

  const std::string out = args.get("out", std::string("model.rf"));
  std::ofstream stream(out);
  if (!stream) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  forest.save(stream);
  std::printf("wrote %d-tree forest to %s\n", cfg.num_trees, out.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  const std::string campaign_path =
      args.get("campaign", std::string("campaign.csv"));
  const std::string model_path = args.get("model", std::string("model.rf"));
  const int max_k = args.get("topk", 5);

  const core::CampaignData data = io::load_campaign_file(campaign_path);
  std::ifstream stream(model_path);
  if (!stream) {
    std::fprintf(stderr, "cannot open %s\n", model_path.c_str());
    return 1;
  }
  const ml::RandomForest forest = ml::RandomForest::load(stream);

  const core::SatellitePredictor predictor(forest);
  const std::vector<double> topk = predictor.evaluate_top_k(data, max_k);
  std::printf("satellite-level top-k accuracy over %zu slots:\n",
              data.slots.size());
  for (std::size_t k = 1; k <= topk.size(); ++k) {
    std::printf("  k=%zu  %.1f%%\n", k, 100.0 * topk[k - 1]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);

  try {
    if (command == "synthesize") return cmd_synthesize(args);
    if (command == "campaign") return cmd_campaign(args);
    if (command == "probe") return cmd_probe(args);
    if (command == "epoch") return cmd_epoch(args);
    if (command == "identify") return cmd_identify(args);
    if (command == "train") return cmd_train(args);
    if (command == "evaluate") return cmd_evaluate(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  return usage();
}
