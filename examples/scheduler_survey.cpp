// Scheduler survey: the full §5 reverse-engineering study in one program.
// Runs a measurement campaign over the four paper vantage points and prints
// every preference the paper uncovered — elevation, azimuth/GSO, launch
// recency, sunlit state — per location.
//
// Usage: scheduler_survey [hours]   (default 6; larger is slower but tighter)

#include <cstdio>
#include <cstdlib>

#include "core/starlab.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 6.0;

  std::printf("Building full-scale constellation and running a %.0f h "
              "campaign...\n", hours);
  const core::Scenario scenario;  // paper defaults, full scale
  core::CampaignConfig cfg;
  cfg.duration_hours = hours;
  cfg.slot_stride = 2;
  const core::CampaignData data = core::run_campaign(scenario, cfg);
  std::printf("  %zu slot observations recorded\n\n", data.slots.size());

  const core::SchedulerCharacterizer ch(data, scenario.catalog());

  for (std::size_t t = 0; t < ch.num_terminals(); ++t) {
    std::printf("--- %s ---\n", ch.terminal_name(t).c_str());

    const core::AoeStats aoe = ch.aoe_stats(t);
    std::printf("  elevation:  median available %.1f deg, median picked %.1f "
                "deg (gap %.1f)\n",
                aoe.median_available_deg, aoe.median_chosen_deg,
                aoe.median_gap_deg);
    std::printf("              45-90 deg share: %.0f%% available -> %.0f%% "
                "picked\n",
                100.0 * aoe.frac_available_45_90,
                100.0 * aoe.frac_chosen_45_90);

    const core::AzimuthStats az = ch.azimuth_stats(t);
    std::printf("  azimuth:    north share %.0f%% available -> %.0f%% picked;"
                " NW picks %.1f%%\n",
                100.0 * az.north_share_available,
                100.0 * az.north_share_chosen, 100.0 * az.nw_share_chosen);

    const core::LaunchPreference launch = ch.launch_preference(t);
    std::printf("  launches:   Pearson r(launch date, pick ratio) = %.2f over"
                " %zu months\n",
                launch.pearson_r, launch.bins.size());

    const core::SunlitStats sun = ch.sunlit_stats(t);
    if (sun.mixed_slots > 0) {
      std::printf("  sunlight:   sunlit picked %.0f%% of %zu mixed slots; "
                  "dark picks need >= %.0f%% dark sky\n",
                  100.0 * sun.sunlit_pick_rate, sun.mixed_slots,
                  100.0 * sun.min_dark_fraction_when_dark_picked);
    } else {
      std::printf("  sunlight:   no mixed slots in this window\n");
    }
    std::printf("\n");
  }

  std::printf("Compare with the paper: gap ~22.9 deg, north ~82%% picked,\n"
              "r ~0.41, sunlit ~72%% / dark floor ~35%%.\n");
  return 0;
}
