// Prediction walkthrough (§6): train the random-forest approximation of the
// global scheduler on campaign data, then use it the way the paper intends —
// given a location and a time, predict the characteristics (cluster) of the
// satellite the scheduler will allocate, and compare with what the oracle
// actually does.
//
// Usage: predict_allocation [campaign_hours]

#include <cstdio>
#include <cstdlib>

#include "core/starlab.hpp"
#include "sun/solar_ephemeris.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 6.0;

  const core::Scenario scenario(core::Scenario::default_config(0.5));
  std::printf("Collecting %.0f h of training data...\n", hours);
  core::CampaignConfig cfg;
  cfg.duration_hours = hours;
  const core::CampaignData data = core::run_campaign(scenario, cfg);

  std::printf("Training (80/20 holdout, 5-fold CV)...\n");
  const core::ModelEvaluation eval = core::train_scheduler_model(data);
  std::printf("  holdout top-1 %.0f%%, top-5 %.0f%% (baseline %.0f%%)\n\n",
              100.0 * eval.forest_top_k[0], 100.0 * eval.forest_top_k[4],
              100.0 * eval.baseline_top_k[4]);

  // Re-fit a forest on everything for the live demo.
  const core::ClusterFeaturizer featurizer;
  const ml::Dataset full = featurizer.build_dataset(data);
  ml::RandomForest forest(eval.chosen_config);
  forest.fit(full);

  // Predict the upcoming slots for Iowa — beyond the training window.
  std::printf("Predicting the next 5 slots for %s:\n",
              scenario.terminal(0).name().c_str());
  const time::SlotIndex first_future =
      scenario.grid().slot_of(scenario.epoch_unix() + hours * 3600.0) + 1;

  int hits_top5 = 0, total = 0;
  for (time::SlotIndex s = first_future; s < first_future + 5; ++s) {
    // Build the feature row exactly as a user would: observable data only.
    const time::JulianDate jd =
        time::JulianDate::from_unix_seconds(scenario.grid().slot_mid(s));
    core::SlotObs obs;
    obs.slot = s;
    obs.terminal_index = 0;
    obs.unix_mid = scenario.grid().slot_mid(s);
    obs.local_hour = sun::local_solar_hour(
        scenario.terminal(0).site().longitude_deg, obs.unix_mid);
    for (const auto& c :
         scenario.terminal(0).usable_candidates(scenario.catalog(), jd)) {
      obs.available.push_back({c.sky.norad_id, c.sky.look.azimuth_deg,
                               c.sky.look.elevation_deg, c.sky.age_days,
                               c.sky.sunlit});
    }
    const auto features = featurizer.featurize(obs);
    const std::vector<int> ranked = forest.ranked_classes(features.x);

    // Ground truth from the oracle.
    const auto truth = scenario.global_scheduler().allocate(
        scenario.terminal(0), s);
    int truth_cluster = -1;
    if (truth.has_value()) {
      core::SlotObs withpick = obs;
      for (std::size_t i = 0; i < withpick.available.size(); ++i) {
        if (withpick.available[i].norad_id == truth->norad_id) {
          withpick.chosen = static_cast<int>(i);
        }
      }
      truth_cluster = featurizer.featurize(withpick).label;
    }

    std::printf("  slot %+d: predicted clusters", static_cast<int>(s - first_future));
    bool hit = false;
    for (int k = 0; k < 5; ++k) {
      const int cls = ranked[static_cast<std::size_t>(k)];
      const bool match = cls == truth_cluster;
      hit = hit || match;
      std::printf(" %s%s", core::ClusterFeaturizer::cluster_name(cls).c_str(),
                  match ? "*" : "");
    }
    if (truth_cluster >= 0) {
      ++total;
      if (hit) ++hits_top5;
      std::printf("   truth %s",
                  core::ClusterFeaturizer::cluster_name(truth_cluster).c_str());
    }
    std::printf("\n");
  }
  if (total > 0) {
    std::printf("\ntop-5 hits on these live slots: %d/%d\n", hits_top5, total);
  }
  std::printf("(cluster tuples are (azimuth, AOE, age, sunlit) z-buckets, as "
              "in the paper)\n");
  return 0;
}
