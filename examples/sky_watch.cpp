// Sky watch: what the scheduler sees. Renders a terminal's field of view as
// an ASCII polar plot — available satellites, the GSO exclusion arc, the
// obstruction mask and the scheduler's pick — for a few consecutive slots,
// plus a world map of the constellation's sub-satellite points and the
// gateway network.
//
// Usage: sky_watch [terminal_index 0..3] [num_slots]

#include <cstdio>
#include <cstdlib>

#include "core/starlab.hpp"
#include "ground/gateway.hpp"
#include "viz/sky_plot.hpp"
#include "viz/world_map.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  const std::size_t terminal_index =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) % 4 : 0;
  const int num_slots = argc > 2 ? std::atoi(argv[2]) : 3;

  const core::Scenario scenario(core::Scenario::default_config(0.5));
  const ground::Terminal& terminal = scenario.terminal(terminal_index);

  std::printf("Sky over %s  (. rim | # obstruction | g GSO arc | o available"
              " | x excluded | @ PICK)\n\n",
              terminal.name().c_str());

  for (time::SlotIndex s = scenario.first_slot();
       s < scenario.first_slot() + num_slots; ++s) {
    const auto jd =
        time::JulianDate::from_unix_seconds(scenario.grid().slot_mid(s));
    std::vector<viz::SkyMark> marks;

    // Obstruction mask horizon (sampled) and GSO arc first, so satellites
    // draw over them.
    for (double az = 0.0; az < 360.0; az += 3.0) {
      const double horizon = terminal.mask().horizon_at(geo::Deg(az)).value();
      if (horizon > 25.0) marks.push_back({az, horizon, '#'});
    }
    for (const geo::LookAngles& p : terminal.gso_arc().samples()) {
      if (p.elevation_deg >= 25.0) {
        marks.push_back({p.azimuth_deg, p.elevation_deg, 'g'});
      }
    }

    for (const ground::Candidate& c :
         terminal.candidates(scenario.catalog(), jd)) {
      marks.push_back({c.sky.look.azimuth_deg, c.sky.look.elevation_deg,
                       c.usable() ? 'o' : 'x'});
    }

    const auto pick = scenario.global_scheduler().allocate(terminal, s);
    if (pick.has_value()) {
      marks.push_back(
          {pick->look.azimuth_deg, pick->look.elevation_deg, '@'});
    }

    const auto when =
        time::UtcTime::from_unix_seconds(scenario.grid().slot_start(s));
    std::printf("--- slot @ %s ---\n%s", when.to_hms().c_str(),
                viz::render_sky(marks).c_str());
    if (pick.has_value()) {
      std::printf("pick: NORAD %d at az %.0f / el %.0f (%s)\n\n",
                  pick->norad_id, pick->look.azimuth_deg,
                  pick->look.elevation_deg,
                  pick->sunlit ? "sunlit" : "dark");
    }
  }

  // World view: constellation subpoints, gateways, terminals.
  std::printf("Constellation snapshot (s satellites | G gateways | T "
              "terminals):\n");
  viz::WorldMap map(100, 32);
  const auto jd =
      time::JulianDate::from_unix_seconds(scenario.epoch_unix());
  const auto& catalog = scenario.catalog();
  for (std::size_t i = 0; i < catalog.size(); i += 7) {  // thin for legibility
    const geo::Geodetic sp = catalog.ephemeris(i).subpoint(jd);
    map.plot(geo::Deg(sp.latitude_deg), geo::Deg(sp.longitude_deg), 's');
  }
  const ground::GatewayNetwork network =
      ground::GatewayNetwork::paper_region_network();
  for (const ground::Gateway& g : network.gateways()) {
    map.plot(geo::Deg(g.site.latitude_deg), geo::Deg(g.site.longitude_deg), 'G');
  }
  for (const ground::Terminal& t : scenario.terminals()) {
    map.plot(geo::Deg(t.site().latitude_deg), geo::Deg(t.site().longitude_deg), 'T');
  }
  std::printf("%s", map.render().c_str());
  return 0;
}
