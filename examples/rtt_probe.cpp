// RTT probing walkthrough (§3): run an iRTT-style 1-probe/20 ms measurement
// against the PoP-co-located server, plot the series as ASCII, detect the
// abrupt latency changes, and recover the global scheduler's 15-second grid
// from the measurement alone.
//
// Usage: rtt_probe [terminal_index 0..3] [minutes]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/starlab.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  const std::size_t terminal_index =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) % 4 : 2;
  const double minutes = argc > 2 ? std::atof(argv[2]) : 5.0;

  const core::Scenario scenario(core::Scenario::default_config(0.5));
  const ground::Terminal& terminal = scenario.terminal(terminal_index);
  std::printf("Probing from %s for %.0f min at 1 probe / 20 ms...\n\n",
              terminal.name().c_str(), minutes);

  const measurement::LatencyModel model(scenario.catalog(),
                                        scenario.mac_scheduler());
  const measurement::RttProber prober(scenario.global_scheduler(), model);
  const double t0 = scenario.grid().slot_start(scenario.first_slot());
  const measurement::RttSeries series =
      prober.run(terminal, t0, t0 + minutes * 60.0);
  std::printf("  %zu probes, %.2f%% lost\n\n", series.samples.size(),
              100.0 * series.loss_rate());

  // ASCII strip chart: one row per second, column = binned RTT floor.
  std::printf("  RTT floor per second (each column 1 ms, from 15 ms):\n");
  std::map<int, double> floor_per_sec;
  for (const auto& s : series.received()) {
    const int sec = static_cast<int>(s.unix_sec - t0);
    auto [it, inserted] = floor_per_sec.try_emplace(sec, s.rtt_ms);
    if (!inserted) it->second = std::min(it->second, s.rtt_ms);
  }
  for (const auto& [sec, floor] : floor_per_sec) {
    if (sec >= 120) break;  // first two minutes
    const int col = std::max(0, static_cast<int>(floor - 15.0));
    const bool boundary = scenario.grid().near_boundary(t0 + sec, 0.5);
    std::printf("  %3ds |%s* %s\n", sec,
                std::string(static_cast<std::size_t>(col), ' ').c_str(),
                boundary ? "<- slot boundary" : "");
  }

  const auto changes = measurement::detect_change_points(series);
  std::printf("\n  %zu abrupt latency changes detected\n", changes.size());

  const auto est = measurement::estimate_epoch(changes);
  std::printf("  inferred re-allocation period: %.1f s (support %.2f)\n",
              est.period_sec, est.support);
  std::printf("  inferred offset within the minute: :%02.0f (paper: "
              ":12/:27/:42/:57)\n",
              std::fmod(est.offset_sec, 60.0));
  return 0;
}
