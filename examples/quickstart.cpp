// Quickstart: synthesize a Starlink-like constellation, look at the sky from
// one of the paper's vantage points, watch the global scheduler re-allocate
// on the 15-second grid, and identify one slot's serving satellite from
// obstruction maps alone.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/starlab.hpp"

int main() {
  using namespace starlab;

  // A thinned constellation keeps the quickstart under a few seconds while
  // preserving the geometry; drop the scale argument for the full ~4200
  // satellites.
  std::printf("Synthesizing constellation (Starlink Gen1 shells, 1/2 scale)...\n");
  core::Scenario scenario(core::Scenario::default_config(0.5));
  std::printf("  %zu satellites across %zu launches\n",
              scenario.catalog().size(), scenario.catalog().launches().size());

  // --- Who is overhead right now? ---------------------------------------
  const ground::Terminal& iowa = scenario.terminal(0);
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(scenario.epoch_unix());
  const auto candidates = iowa.candidates(scenario.catalog(), jd);
  int usable = 0;
  for (const auto& c : candidates) usable += c.usable() ? 1 : 0;
  std::printf("\n%s sky at epoch: %zu satellites above 25 deg, %d usable\n",
              iowa.name().c_str(), candidates.size(), usable);

  // --- The global scheduler on its 15-second grid -----------------------
  std::printf("\nAllocations for %s (slot boundaries :12/:27/:42/:57):\n",
              iowa.name().c_str());
  const time::SlotIndex first = scenario.first_slot();
  for (time::SlotIndex s = first; s < first + 4; ++s) {
    const auto alloc = scenario.global_scheduler().allocate(iowa, s);
    const std::string when =
        time::UtcTime::from_unix_seconds(scenario.grid().slot_start(s)).to_hms();
    if (alloc) {
      std::printf("  slot @ %s  ->  NORAD %d  (el %.1f deg, az %.1f deg, %s)\n",
                  when.c_str(), alloc->norad_id, alloc->look.elevation_deg,
                  alloc->look.azimuth_deg, alloc->sunlit ? "sunlit" : "dark");
    } else {
      std::printf("  slot @ %s  ->  no usable satellite\n", when.c_str());
    }
  }

  // --- §4: identify a serving satellite from obstruction maps -----------
  std::printf("\nRunning the obstruction-map identification pipeline "
              "(10 minutes of slots)...\n");
  core::InferencePipeline pipeline(scenario);
  const core::PipelineResult result = pipeline.run(0, 600.0);
  std::printf("  identified %zu slots, accuracy vs ground truth: %.1f%%\n",
              result.decided(), 100.0 * result.accuracy());

  std::printf("\nNext steps: examples/scheduler_survey, examples/rtt_probe,\n"
              "examples/predict_allocation, and the bench/ binaries that\n"
              "regenerate every figure of the paper.\n");
  return 0;
}
