// Satellite identification walkthrough (§4): watch the dish accumulate
// obstruction-map frames, XOR consecutive frames to isolate the newest
// trajectory, and match it against TLE-propagated candidates with DTW —
// then check the answer against ground truth.
//
// Usage: identify_satellite [num_slots]

#include <cstdio>
#include <cstdlib>

#include "core/starlab.hpp"

using namespace starlab;

int main(int argc, char** argv) {
  const int num_slots = argc > 1 ? std::atoi(argv[1]) : 8;

  const core::Scenario scenario(core::Scenario::default_config(0.5));
  const ground::Terminal& terminal = scenario.terminal(0);
  std::printf("Identifying the satellites serving %s, slot by slot.\n\n",
              terminal.name().c_str());

  obsmap::MapRecorder recorder(scenario.catalog(), terminal, scenario.grid());
  const match::SatelliteIdentifier identifier(
      scenario.catalog(), obsmap::MapGeometry{}, scenario.grid());

  std::optional<obsmap::ObstructionMap> prev;
  int correct = 0, decided = 0;
  for (time::SlotIndex s = scenario.first_slot();
       s < scenario.first_slot() + num_slots; ++s) {
    const auto truth = scenario.global_scheduler().allocate(terminal, s);
    const obsmap::ObstructionMap frame = recorder.record_slot(truth);

    const auto when =
        time::UtcTime::from_unix_seconds(scenario.grid().slot_start(s));
    if (!prev.has_value()) {
      std::printf("slot @ %s: first frame (%zu px) — nothing to XOR yet\n",
                  when.to_hms().c_str(), frame.popcount());
      prev = frame;
      continue;
    }

    const match::Identification id =
        identifier.identify(terminal, s, *prev, frame);
    prev = frame;

    std::printf("slot @ %s: %2d candidates, trajectory %2zu px",
                when.to_hms().c_str(), id.num_candidates,
                id.trajectory_pixels);
    if (id.best.has_value()) {
      ++decided;
      const bool ok =
          truth.has_value() && truth->norad_id == id.best->norad_id;
      if (ok) ++correct;
      std::printf("  ->  NORAD %d (DTW %.2f) %s\n", id.best->norad_id,
                  id.best->dtw, ok ? "== truth" : "!= truth");
      // Show the runner-up gap: how unambiguous was the match?
      if (id.ranked.size() > 1) {
        std::printf("      runner-up NORAD %d at DTW %.2f (%.0fx worse)\n",
                    id.ranked[1].norad_id, id.ranked[1].dtw,
                    id.ranked[1].dtw / std::max(id.best->dtw, 1e-9));
      }
    } else {
      std::printf("  ->  undecided\n");
    }
  }

  if (decided > 0) {
    std::printf("\nAgreement with ground truth: %d/%d (paper: >99%% over 500 "
                "manual checks)\n",
                correct, decided);
  }
  return 0;
}
