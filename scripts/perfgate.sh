#!/usr/bin/env bash
# starlab perf gate: rerun the microbenches, diff them against the committed
# bench/baselines/ with the noise thresholds in bench/benchdiff.toml, and
# check the absolute ceilings in bench/budgets.toml against a profiled
# pipeline run. This is the local twin of CI's `benchdiff` job; the ctest
# label `perfgate` runs the budget half on every tier-1 pass. See
# docs/OBSERVABILITY.md, "Regression gate".
#
# Usage: scripts/perfgate.sh [build-dir]          (default: build)
#        scripts/perfgate.sh --write-baseline     (bank the current numbers)
set -u -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
WRITE_BASELINE=0
case "${1:-}" in
  --write-baseline) WRITE_BASELINE=1 ;;
  "") ;;
  *) BUILD_DIR="$1" ;;
esac

cmake --build "$BUILD_DIR" -j --target perf_microbench benchdiff perfgate \
  || exit 1

ARTIFACTS="$BUILD_DIR/perfgate-artifacts"
mkdir -p "$ARTIFACTS"
"./$BUILD_DIR/bench/perf_microbench" --benchmark_min_time=0.05 \
  --json-out="$ARTIFACTS/BENCH_perf.json" || exit 1
"./$BUILD_DIR/bench/perfgate" --out="$ARTIFACTS/perfgate_prof.json" \
  --collapsed="$ARTIFACTS/perfgate.folded" || exit 1

if [ "$WRITE_BASELINE" -eq 1 ]; then
  exec "./$BUILD_DIR/tools/benchdiff/benchdiff" --baseline bench/baselines \
    --write-baseline "$ARTIFACTS/BENCH_perf.json"
fi

# Local runs skip --allow-improvement on purpose: a big speedup on the
# machine that banked the baseline is a stale baseline, and this is the
# machine that can re-bank it.
exec "./$BUILD_DIR/tools/benchdiff/benchdiff" \
  --baseline bench/baselines \
  --thresholds bench/benchdiff.toml \
  --budgets bench/budgets.toml \
  --profile "$ARTIFACTS/perfgate_prof.json" \
  --markdown "$ARTIFACTS/benchdiff.md" \
  "$ARTIFACTS/BENCH_perf.json"
