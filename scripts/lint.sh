#!/usr/bin/env bash
# starlab lint gate: clang-tidy (when available) + grep-lint rules that
# clang-tidy cannot express. CI runs this as the `lint` job; locally it
# degrades gracefully on toolchains without clang-tidy (gcc-only containers).
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
set -u -o pipefail

cd "$(dirname "$0")/.."

PATTERN='double[[:space:]]+[A-Za-z_]*_(deg|rad|km)\b'
current_counts() {
  grep -rEc "${PATTERN}" src --include='*.hpp' --include='*.cpp' 2>/dev/null |
    awk -F: '$2 > 0 && $1 !~ /^src\/geo\// {print $1" "$2}' | sort
}

if [ "${1:-}" = "--write-baseline" ]; then
  current_counts > scripts/lint_baseline.txt
  echo "lint: baseline rewritten (scripts/lint_baseline.txt)"
  exit 0
fi

BUILD_DIR="${1:-build}"
STATUS=0

# ---------------------------------------------------------------------------
# 1. clang-tidy over the compilation database (skipped if not installed).
# ---------------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "lint: generating compile_commands.json in ${BUILD_DIR}"
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "lint: clang-tidy ($(clang-tidy --version | head -n1))"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${BUILD_DIR}" -quiet "src/.*\.cpp$" || STATUS=1
  else
    # Fallback without the parallel driver: lint every src/ TU serially.
    while IFS= read -r tu; do
      clang-tidy -p "${BUILD_DIR}" --quiet "${tu}" || STATUS=1
    done < <(find src -name '*.cpp' | sort)
  fi
else
  echo "lint: clang-tidy not installed; skipping static analysis" \
       "(grep-lint still enforced)"
fi

# ---------------------------------------------------------------------------
# 2. grep-lint: no NEW raw angle/distance-typed double parameters or fields
#    outside src/geo. Existing occurrences are frozen in
#    scripts/lint_baseline.txt (per-file counts); a file may only shrink.
#    The fix for a violation is a geo::Deg/Rad/Km parameter, not a baseline
#    bump — bump only when deliberately keeping a serialized raw field.
# ---------------------------------------------------------------------------
BASELINE="scripts/lint_baseline.txt"

if [ ! -f "${BASELINE}" ]; then
  echo "lint: FAIL — missing ${BASELINE}; regenerate with:"
  echo "  scripts/lint.sh --write-baseline"
  exit 1
fi

GREP_FAIL=0
while IFS=' ' read -r file count; do
  [ -z "${file}" ] && continue
  baseline_count=$(awk -v f="${file}" '$1 == f {print $2}' "${BASELINE}")
  baseline_count=${baseline_count:-0}
  if [ "${count}" -gt "${baseline_count}" ]; then
    echo "lint: FAIL ${file}: ${count} raw 'double *_deg/_rad/_km'" \
         "declarations (baseline ${baseline_count})."
    echo "      Use geo::Deg / geo::Rad / geo::Km instead (src/geo/units.hpp)."
    GREP_FAIL=1
  fi
done < <(current_counts)

if [ "${GREP_FAIL}" -ne 0 ]; then
  STATUS=1
else
  echo "lint: grep-lint clean (raw unit-suffixed doubles at or below baseline)"
fi

exit "${STATUS}"
