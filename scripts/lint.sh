#!/usr/bin/env bash
# starlab lint gate: starlint (the project's own analyzer, tools/starlint)
# plus clang-tidy when available. CI runs this as the `lint` job; locally it
# degrades gracefully on toolchains without clang-tidy (gcc-only containers).
#
# starlint replaced the old grep-lint: the raw unit-suffixed double rule now
# lives in tools/starlint (rule `raw-unit-double`) with its baseline in
# tools/starlint/baseline.json, alongside the layering and determinism
# rules. See docs/STATIC_ANALYSIS.md.
#
# Usage: scripts/lint.sh [build-dir]        (default: build)
#        scripts/lint.sh --write-baseline   (regenerate the starlint baseline)
#        scripts/lint.sh --only=<rule,...>  (restrict starlint to these rules)
set -u -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
WRITE_BASELINE=0
ONLY=""
for arg in "$@"; do
  case "${arg}" in
    --write-baseline) WRITE_BASELINE=1 ;;
    --only=*) ONLY="${arg}" ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

STATUS=0

# ---------------------------------------------------------------------------
# 1. starlint: layering DAG, determinism bans, API hygiene (always runs —
#    it builds with the project toolchain, no clang needed).
# ---------------------------------------------------------------------------
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint: configuring ${BUILD_DIR} for compile_commands.json"
  cmake -B "${BUILD_DIR}" -S . >/dev/null
fi
cmake --build "${BUILD_DIR}" --target starlint -j "$(nproc)" >/dev/null || exit 1
STARLINT="${BUILD_DIR}/tools/starlint/starlint"

if [ "${WRITE_BASELINE}" -eq 1 ]; then
  "${STARLINT}" --root . --compdb "${BUILD_DIR}/compile_commands.json" \
    --write-baseline
  exit $?
fi

echo "lint: starlint (tools/starlint)"
"${STARLINT}" --root . --compdb "${BUILD_DIR}/compile_commands.json" \
  --sarif "${BUILD_DIR}/starlint.sarif" ${ONLY:+"${ONLY}"} || STATUS=1

# ---------------------------------------------------------------------------
# 2. clang-tidy over the compilation database (skipped if not installed).
# ---------------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy ($(clang-tidy --version | head -n1))"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${BUILD_DIR}" -quiet "src/.*\.cpp$" || STATUS=1
  else
    # Fallback without the parallel driver: lint every src/ TU serially.
    while IFS= read -r tu; do
      clang-tidy -p "${BUILD_DIR}" --quiet "${tu}" || STATUS=1
    done < <(find src -name '*.cpp' | sort)
  fi
else
  echo "lint: clang-tidy not installed; skipping (starlint still enforced)"
fi

exit "${STATUS}"
