// Fuzz target: fault-plan (key = value) parsing.
//
// Invariants under fuzzing:
//   - parse_fault_plan throws only std::runtime_error (with line
//     provenance), never anything else, never UB;
//   - a plan that parses is round-trippable: format_fault_plan on it
//     produces text that parses again without error;
//   - every numeric field that survives is finite.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  bool parsed = false;
  starlab::fault::FaultPlan plan;
  try {
    plan = starlab::fault::parse_fault_plan(text);
    parsed = true;
  } catch (const std::runtime_error&) {
    // The only permitted failure.
  }
  if (!parsed) return 0;

  if (!std::isfinite(plan.intensity) || !std::isfinite(plan.dropout.rate) ||
      !std::isfinite(plan.rtt.spike_ms) ||
      !std::isfinite(plan.clock.drift_ppm)) {
    std::abort();
  }
  try {
    (void)starlab::fault::parse_fault_plan(
        starlab::fault::format_fault_plan(plan));
  } catch (const std::runtime_error&) {
    std::abort();  // a formatted plan must always re-parse
  }
  return 0;
}
