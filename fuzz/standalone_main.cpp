// Corpus replay driver for toolchains without libFuzzer (gcc containers).
//
// Linked into each fuzz target when the compiler is not clang; gives the
// harness a main() that feeds every argv path — files directly, directories
// recursively — through LLVMFuzzerTestOneInput. No mutation happens here;
// this keeps the harness code honest (it must compile and the invariants
// must hold on the whole seed corpus) everywhere, while CI's clang build
// does the actual coverage-guided exploration.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "standalone fuzzer: cannot open %s\n",
                 path.c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  std::size_t cases = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        failures += run_file(f);
        ++cases;
      }
    } else {
      failures += run_file(arg);
      ++cases;
    }
  }
  std::printf("standalone fuzzer: %zu corpus case(s) replayed, %d unreadable\n",
              cases, failures);
  return failures == 0 ? 0 : 1;
}
