// Fuzz target: TLE catalog parsing, lenient and strict.
//
// Invariants under fuzzing:
//   - the lenient reader never throws: every malformed record lands in the
//     ParseReport with line provenance;
//   - the strict reader throws nothing but TleParseError;
//   - every Tle that parses holds only finite element fields (the non-finite
//     rejection in tle::to_double).

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "io/parse_report.hpp"
#include "tle/catalog_io.hpp"
#include "tle/tle.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  starlab::io::ParseReport report;
  const std::vector<starlab::tle::Tle> cat =
      starlab::tle::read_catalog_string_lenient(text, report);
  if (report.records_ok != cat.size()) std::abort();
  for (const starlab::tle::Tle& t : cat) {
    if (!std::isfinite(t.inclination_deg) || !std::isfinite(t.raan_deg) ||
        !std::isfinite(t.eccentricity) || !std::isfinite(t.arg_perigee_deg) ||
        !std::isfinite(t.mean_anomaly_deg) ||
        !std::isfinite(t.mean_motion_rev_per_day) ||
        !std::isfinite(t.bstar) || !std::isfinite(t.epoch_day)) {
      std::abort();
    }
  }

  try {
    (void)starlab::tle::read_catalog_string(text);
  } catch (const starlab::tle::TleParseError&) {
    // The only permitted strict-mode failure.
  }
  return 0;
}
