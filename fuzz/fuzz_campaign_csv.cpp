// Fuzz target: campaign CSV parsing, lenient and strict.
//
// Invariants under fuzzing:
//   - the lenient loader throws only std::runtime_error, and only for
//     whole-file problems (empty input, header mismatch); every bad row
//     lands in the ParseReport instead;
//   - the strict loader throws only std::runtime_error;
//   - every candidate observation that survives is finite (the non-finite
//     rejection in campaign_io's to_double).

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/campaign_io.hpp"
#include "io/parse_report.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  try {
    std::istringstream in(text);
    starlab::io::ParseReport report;
    const starlab::core::CampaignData campaign =
        starlab::io::load_campaign_lenient(in, report);
    for (const starlab::core::SlotObs& slot : campaign.slots) {
      if (!std::isfinite(slot.unix_mid) || !std::isfinite(slot.local_hour) ||
          !std::isfinite(slot.confidence)) {
        std::abort();
      }
      for (const starlab::core::CandidateObs& c : slot.available) {
        if (!std::isfinite(c.azimuth_deg) || !std::isfinite(c.elevation_deg) ||
            !std::isfinite(c.age_days)) {
          std::abort();
        }
      }
    }
  } catch (const std::runtime_error&) {
    // Whole-file failure (empty / bad header) — permitted.
  }

  try {
    std::istringstream in(text);
    (void)starlab::io::load_campaign(in);
  } catch (const std::runtime_error&) {
    // The only permitted strict-mode failure.
  }
  return 0;
}
