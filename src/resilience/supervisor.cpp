#include "resilience/supervisor.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "scheduler/stochastic.hpp"

namespace starlab::resilience {

namespace {

/// Key-domain tag for the backoff jitter hash; disjoint from the fault
/// injector tags (0xFA01..0xFA08) and the scheduler oracles.
constexpr std::uint64_t kTagBackoff = 0xFA10;

/// Pre-registered resilience metrics (one-time registration, lock-free).
struct ResilienceMetrics {
  obs::Counter retries, quarantined, failures;
  obs::Gauge degrade_level;

  static const ResilienceMetrics& get() {
    static const ResilienceMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      ResilienceMetrics x;
      x.retries = reg.counter("starlab_resilience_retries_total",
                              "Supervised task attempts retried");
      x.quarantined = reg.counter("starlab_resilience_quarantined_total",
                                  "Supervised tasks quarantined after "
                                  "exhausting their attempts");
      x.failures = reg.counter("starlab_resilience_failures_total",
                               "Supervised task attempts that failed");
      x.degrade_level = reg.gauge("starlab_resilience_degrade_level",
                                  "Current load-shedding rung (0=none, "
                                  "1=shed observability, 2=widen grid, "
                                  "3=abstain)");
      return x;
    }();
    return m;
  }
};

}  // namespace

const char* degrade_level_name(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNone: return "none";
    case DegradeLevel::kShedObservability: return "shed_observability";
    case DegradeLevel::kWidenGrid: return "widen_grid";
    case DegradeLevel::kAbstain: return "abstain";
  }
  return "unknown";
}

Supervisor::Supervisor(SupervisorConfig config)
    : config_(std::move(config)), injector_(config_.faults) {
  if (config_.max_attempts < 1) config_.max_attempts = 1;
  failures_.store(config_.initial_failures, std::memory_order_relaxed);
  last_noted_level_ =
      static_cast<int>(level_for(config_.initial_failures));
}

DegradeLevel Supervisor::level_for(std::uint64_t failures) const {
  const auto tripped = [failures](int threshold) {
    return threshold > 0 && failures >= static_cast<std::uint64_t>(threshold);
  };
  if (tripped(config_.abstain_failures)) return DegradeLevel::kAbstain;
  if (tripped(config_.widen_grid_failures)) return DegradeLevel::kWidenGrid;
  if (tripped(config_.shed_obs_failures)) {
    return DegradeLevel::kShedObservability;
  }
  return DegradeLevel::kNone;
}

DegradeLevel Supervisor::level() const {
  return level_for(failures_.load(std::memory_order_relaxed));
}

double Supervisor::backoff_ms(std::uint64_t task_key, int attempt) const {
  if (config_.backoff_base_ms <= 0.0 || attempt <= 1) return 0.0;
  double delay = config_.backoff_base_ms;
  for (int a = 2; a < attempt; ++a) delay *= 2.0;
  // Deterministic jitter in [0.5, 1.0]: same (seed, task, attempt) -> same
  // delay on every replay.
  const double u = scheduler::uniform01(scheduler::mix_keys(
      config_.seed, kTagBackoff, task_key, static_cast<std::uint64_t>(attempt)));
  delay *= 0.5 + 0.5 * u;
  return delay < config_.backoff_max_ms ? delay : config_.backoff_max_ms;
}

std::vector<std::string> Supervisor::events() const {
  const check::MutexLock lock(mu_);
  return events_;
}

void Supervisor::note(std::string event) {
  const check::MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

void Supervisor::record_failure(std::uint64_t task_key, int attempt,
                                const std::string& why, bool will_retry) {
  const std::uint64_t count =
      failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  ResilienceMetrics::get().failures.add();
  if (will_retry) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    ResilienceMetrics::get().retries.add();
  }
  {
    const check::MutexLock lock(mu_);
    events_.push_back((will_retry ? "retry task=" : "fail task=") +
                      std::to_string(task_key) +
                      " attempt=" + std::to_string(attempt) + ": " + why);
    const DegradeLevel now = level_for(count);
    if (static_cast<int>(now) > last_noted_level_) {
      last_noted_level_ = static_cast<int>(now);
      events_.push_back(std::string("degrade level=") +
                        degrade_level_name(now) +
                        " failures=" + std::to_string(count));
      ResilienceMetrics::get().degrade_level.set(
          static_cast<double>(last_noted_level_));
    }
  }
}

TaskOutcome Supervisor::run(
    std::uint64_t task_key,
    const std::function<void(const exec::CancelToken&, DegradeLevel)>& body) {
  TaskOutcome out;
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    out.attempts = attempt;
    if (attempt > 1) {
      const double delay = backoff_ms(task_key, attempt);
      if (delay > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay));
      }
    }
    exec::CancelToken token;
    token.arm_deadline_in(config_.task_deadline_sec);
    const DegradeLevel at_start = level();
    try {
      if (injector_.fails(task_key, attempt)) {
        throw std::runtime_error("injected task fault");
      }
      body(token, at_start);
      out.ok = true;
      out.error.clear();
      return out;
    } catch (const exec::TaskCancelled& e) {
      out.error = std::string("deadline: ") + e.what();
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    record_failure(task_key, attempt, out.error,
                   attempt < config_.max_attempts);
  }
  out.quarantined = true;
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  ResilienceMetrics::get().quarantined.add();
  note("quarantine task=" + std::to_string(task_key) + " after " +
       std::to_string(out.attempts) + " attempts: " + out.error);
  return out;
}

}  // namespace starlab::resilience
