#pragma once

// Supervised task execution: bounded retry, deadline watchdog, quarantine,
// and a graceful-degradation ladder — the run-forever layer under campaign
// and pipeline execution.
//
// A Supervisor wraps the individual failure-prone units of a long run (slot
// shards, per-terminal pipeline passes). Each unit gets up to max_attempts
// tries; between tries the supervisor backs off exponentially with a
// *deterministic* seeded jitter (counter-based hash of (seed, task,
// attempt) — no wall-clock randomness, so a replayed run backs off
// identically), and each attempt runs under a cooperative deadline token.
// A unit that exhausts its attempts is quarantined: the run continues and
// the unit degrades to a flagged gap instead of stalling everything.
//
// Sustained fault storms move the supervisor down a load-shedding ladder
// driven by the cumulative failure count:
//
//   kNone -> kShedObservability -> kWidenGrid -> kAbstain
//
// Shed observability first (stage-timing merges, per-append fsync), then
// halve the slot grid (every 2nd record becomes a flagged gap), then stop
// attempting shards at all. Every decision lands in the event log (and from
// there in RunReport.events) and in the resilience.* metrics.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/thread_annotations.hpp"
#include "exec/cancel.hpp"
#include "fault/injectors.hpp"

namespace starlab::resilience {

/// Load-shedding rungs, in shedding order.
enum class DegradeLevel : int {
  kNone = 0,
  kShedObservability = 1,  ///< drop trace/stage merges and journal fsync
  kWidenGrid = 2,          ///< compute every 2nd record, flag the rest
  kAbstain = 3,            ///< stop attempting; everything becomes a gap
};

[[nodiscard]] const char* degrade_level_name(DegradeLevel level);

struct SupervisorConfig {
  /// Attempts per task before quarantine (>= 1).
  int max_attempts = 3;
  /// Per-attempt watchdog deadline [s]; <= 0 disables the watchdog.
  double task_deadline_sec = 0.0;
  /// Base backoff before attempt 2 [ms]; doubles per further attempt, with
  /// deterministic jitter in [0.5, 1.0]. 0 retries immediately (the right
  /// default for compute-bound simulated faults).
  double backoff_base_ms = 0.0;
  double backoff_max_ms = 2000.0;
  /// Seed for the backoff jitter hash (independent of the fault plan seed).
  std::uint64_t seed = 2311;

  /// Cumulative failed attempts that trip each ladder rung; <= 0 disables
  /// the rung. Thresholds should be non-decreasing.
  int shed_obs_failures = 8;
  int widen_grid_failures = 16;
  int abstain_failures = 32;

  /// Start the failure counter here instead of 0 — an operational override
  /// (resume a run already known to be degraded at the rung its failure
  /// count implies) and the deterministic way for tests to exercise a
  /// ladder rung without racing a fault storm. Rungs already tripped by
  /// this value are not re-announced in the event log.
  std::uint64_t initial_failures = 0;

  /// Fault plan consulted per (task, attempt) to *simulate* task crashes
  /// (exec.task_fail_rate). Real exceptions from the task body are handled
  /// identically; this injector exists so chaos tests can drive storms.
  fault::FaultPlan faults;
};

/// What happened to one supervised task.
struct TaskOutcome {
  bool ok = false;
  bool quarantined = false;
  int attempts = 0;    ///< attempts actually made
  std::string error;   ///< last failure reason ("" when clean)
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);

  /// Run `body` under supervision. `task_key` identifies the unit (shard or
  /// terminal index) for fault injection, backoff jitter and the event log.
  /// The body receives the attempt's armed cancel token — poll it — and the
  /// degradation level in force when the attempt started. Thread-safe: the
  /// shard runner calls this concurrently from the exec pool.
  TaskOutcome run(
      std::uint64_t task_key,
      const std::function<void(const exec::CancelToken&, DegradeLevel)>& body);

  /// Current ladder rung (monotone non-decreasing over a supervisor's life).
  [[nodiscard]] DegradeLevel level() const;

  [[nodiscard]] std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t quarantined() const {
    return quarantined_.load(std::memory_order_relaxed);
  }

  /// Deterministic backoff delay before `attempt` (2-based) of `task_key`,
  /// in milliseconds. Exposed for tests; run() sleeps this exact amount.
  [[nodiscard]] double backoff_ms(std::uint64_t task_key, int attempt) const;

  /// Chronological decision log (copies under the lock).
  [[nodiscard]] std::vector<std::string> events() const EXCLUDES(mu_);

  [[nodiscard]] const SupervisorConfig& config() const { return config_; }

 private:
  void note(std::string event) EXCLUDES(mu_);
  /// Re-derive the rung for a cumulative failure count.
  [[nodiscard]] DegradeLevel level_for(std::uint64_t failures) const;
  void record_failure(std::uint64_t task_key, int attempt,
                      const std::string& why, bool will_retry);

  SupervisorConfig config_;
  fault::TaskFaultInjector injector_;
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  mutable check::Mutex mu_;
  std::vector<std::string> events_ GUARDED_BY(mu_);
  int last_noted_level_ GUARDED_BY(mu_) = 0;  ///< dedups ladder events
};

}  // namespace starlab::resilience
