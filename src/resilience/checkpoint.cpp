#include "resilience/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "io/journal_io.hpp"

namespace starlab::resilience {

namespace {

/// Bit-exact double encoding: C99 hexfloat round-trips through strtod
/// without loss, unlike any decimal precision.
std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Token-stream reader for the space-delimited payloads.
class TokenReader {
 public:
  explicit TokenReader(std::string_view payload) : in_(std::string(payload)) {}

  bool next(std::string& token) { return static_cast<bool>(in_ >> token); }

  bool next_u64(std::uint64_t& out) {
    std::string t;
    if (!next(t) || t.empty()) return false;
    char* end = nullptr;
    out = std::strtoull(t.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  }

  bool next_i64(std::int64_t& out) {
    std::string t;
    if (!next(t) || t.empty()) return false;
    char* end = nullptr;
    out = std::strtoll(t.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  }

  bool next_double(double& out) {
    std::string t;
    if (!next(t) || t.empty()) return false;
    char* end = nullptr;
    out = std::strtod(t.c_str(), &end);  // accepts hexfloat
    return end != nullptr && *end == '\0';
  }

  bool done() {
    std::string t;
    return !(in_ >> t);
  }

 private:
  std::istringstream in_;
};

}  // namespace

std::string encode_campaign_header(const core::Scenario& scenario,
                                   const core::CampaignConfig& config,
                                   std::size_t shard_slots) {
  std::ostringstream out;
  out << "H1"
      << " records=" << core::campaign_recorded_slots(scenario, config)
      << " terminals=" << scenario.terminals().size()
      << " first_slot=" << scenario.first_slot()
      << " period=" << hexfloat(scenario.grid().period_seconds())
      << " duration=" << hexfloat(config.duration_hours)
      << " offset=" << hexfloat(config.start_offset_hours)
      << " stride=" << config.slot_stride << " shard=" << shard_slots;
  const fault::FaultPlan& plan = config.faults.has_value()
                                     ? *config.faults
                                     : scenario.fault_plan();
  // The plan text is multi-line; its CRC keeps the header single-line while
  // still catching a resume under a different fault plan.
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x",
                io::crc32(fault::format_fault_plan(plan)));
  out << " plan_crc=" << crc;
  return std::move(out).str();
}

std::string encode_shard(std::size_t shard_index,
                         const std::vector<core::SlotObs>& rows) {
  std::ostringstream out;
  out << "S1 " << shard_index << ' ' << rows.size();
  for (const core::SlotObs& r : rows) {
    out << " R " << r.slot << ' ' << r.terminal_index << ' '
        << hexfloat(r.unix_mid) << ' ' << hexfloat(r.local_hour) << ' '
        << r.chosen << ' ' << r.quality << ' ' << hexfloat(r.confidence)
        << ' ' << r.available.size();
    for (const core::CandidateObs& c : r.available) {
      out << ' ' << c.norad_id << ' ' << hexfloat(c.azimuth_deg) << ' '
          << hexfloat(c.elevation_deg) << ' ' << hexfloat(c.age_days) << ' '
          << (c.sunlit ? 1 : 0);
    }
  }
  return std::move(out).str();
}

std::optional<DecodedShard> decode_shard(std::string_view payload) {
  TokenReader in(payload);
  std::string magic;
  if (!in.next(magic) || magic != "S1") return std::nullopt;
  DecodedShard shard;
  std::uint64_t shard_index = 0;
  std::uint64_t num_rows = 0;
  if (!in.next_u64(shard_index) || !in.next_u64(num_rows)) return std::nullopt;
  shard.shard_index = static_cast<std::size_t>(shard_index);
  shard.rows.reserve(static_cast<std::size_t>(num_rows));
  for (std::uint64_t i = 0; i < num_rows; ++i) {
    std::string marker;
    if (!in.next(marker) || marker != "R") return std::nullopt;
    core::SlotObs row;
    std::int64_t slot = 0;
    std::uint64_t terminal = 0;
    std::int64_t chosen = 0;
    std::uint64_t quality = 0;
    std::uint64_t num_candidates = 0;
    if (!in.next_i64(slot) || !in.next_u64(terminal) ||
        !in.next_double(row.unix_mid) || !in.next_double(row.local_hour) ||
        !in.next_i64(chosen) || !in.next_u64(quality) ||
        !in.next_double(row.confidence) || !in.next_u64(num_candidates)) {
      return std::nullopt;
    }
    row.slot = static_cast<time::SlotIndex>(slot);
    row.terminal_index = static_cast<std::size_t>(terminal);
    row.chosen = static_cast<int>(chosen);
    row.quality = static_cast<std::uint32_t>(quality);
    row.available.reserve(static_cast<std::size_t>(num_candidates));
    for (std::uint64_t c = 0; c < num_candidates; ++c) {
      core::CandidateObs cand;
      std::int64_t norad = 0;
      std::uint64_t sunlit = 0;
      if (!in.next_i64(norad) || !in.next_double(cand.azimuth_deg) ||
          !in.next_double(cand.elevation_deg) ||
          !in.next_double(cand.age_days) || !in.next_u64(sunlit)) {
        return std::nullopt;
      }
      cand.norad_id = static_cast<int>(norad);
      cand.sunlit = sunlit != 0;
      row.available.push_back(cand);
    }
    // chosen must index `available` or be -1.
    if (row.chosen != -1 &&
        (row.chosen < 0 ||
         row.chosen >= static_cast<int>(row.available.size()))) {
      return std::nullopt;
    }
    shard.rows.push_back(std::move(row));
  }
  if (!in.done()) return std::nullopt;
  return shard;
}

}  // namespace starlab::resilience
