#pragma once

// Crash-safe campaign execution: checkpoint/resume + supervised shards.
//
// run_campaign_durable partitions a campaign's recorded slots into shards,
// runs each shard as a supervised task on the exec pool (retry, deadline,
// quarantine, degradation — see resilience/supervisor.hpp), and appends
// every finished shard to a CRC-guarded journal (io/journal_io.hpp). A run
// killed at ANY byte offset of that journal resumes by replaying the valid
// prefix: completed shards come back bit-identical from their hexfloat
// checkpoint records, only the missing shards are recomputed, and because
// every (slot, terminal) observation is a pure function of (slot,
// terminal), the assembled CampaignData is byte-identical to an
// uninterrupted run. With journaling disabled (empty journal_path) and no
// faults the output is bit-identical to core::run_campaign.
//
// Quarantined shards and load-shed records degrade to gap rows flagged
// quality::kQuarantined / quality::kShedSlot — gaps are journaled like any
// other rows, so a resumed storm-damaged run reproduces exactly the gaps
// the first process decided on.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "resilience/supervisor.hpp"

namespace starlab::resilience {

struct DurableCampaignConfig {
  SupervisorConfig supervisor;
  /// Journal base path; empty runs supervised but unjournaled.
  std::string journal_path;
  /// Recorded slots per shard (the checkpoint granularity). Smaller shards
  /// lose less work to a crash and cost more journal appends.
  std::size_t shard_slots = 16;
  std::uint64_t segment_bytes = 1u << 20;
  /// fdatasync per shard append (shed at kShedObservability).
  bool fsync = true;
  /// Replay an existing journal before running; false starts clean
  /// (removes any leftover journal first).
  bool resume = true;
  /// Crash gate for torn-write tests (non-owning; see fault::WriteKillPoint).
  fault::WriteKillPoint* kill_point = nullptr;
};

struct DurableCampaignResult {
  core::CampaignData data;
  std::size_t shards = 0;            ///< total shards in this campaign
  std::size_t resumed_shards = 0;    ///< replayed from the journal
  std::size_t computed_shards = 0;   ///< executed this run
  std::size_t quarantined_shards = 0;
  std::size_t shed_records = 0;      ///< records degraded to gap rows
  DegradeLevel final_level = DegradeLevel::kNone;
};

/// Run `config` durably. `config`'s resilience hook fields (record_begin/
/// record_end/record_step/cancel) must be at their defaults — the runner
/// owns them for shard slicing and throws std::invalid_argument otherwise.
/// Propagates fault::WriteKilled from the kill-point gate (the simulated
/// process death) and std::runtime_error on a journal/config mismatch.
[[nodiscard]] DurableCampaignResult run_campaign_durable(
    const core::Scenario& scenario, const core::CampaignConfig& config,
    const DurableCampaignConfig& durable);

/// Supervised §4 data path: run_inferred_campaign with each per-terminal
/// pipeline pass wrapped in supervised retry/quarantine. A quarantined
/// terminal contributes no rows (recorded in the report events); at
/// kAbstain the remaining terminals are skipped outright.
[[nodiscard]] core::CampaignData run_inferred_campaign_supervised(
    const core::InferencePipeline& pipeline, double duration_sec,
    const SupervisorConfig& config);

}  // namespace starlab::resilience
