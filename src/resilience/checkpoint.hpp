#pragma once

// Journal payload codec for campaign checkpoints.
//
// A campaign journal holds one header record (identifying the scenario
// shape and campaign config the shards belong to) followed by one record
// per completed slot shard. Shard payloads carry full SlotObs rows with
// doubles encoded as C99 hexfloats ("%a"), so a decoded row is bit-for-bit
// the row that was computed — the resume path's byte-identity guarantee
// rests on this round trip. Payloads are single-line, space-delimited
// token streams; integrity is the journal frame's CRC, so the codec only
// validates structure.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hpp"

namespace starlab::resilience {

/// Header payload for a campaign journal. Two configs produce the same
/// header iff they shard identically, so a resume against the wrong
/// journal is caught by string comparison.
[[nodiscard]] std::string encode_campaign_header(
    const core::Scenario& scenario, const core::CampaignConfig& config,
    std::size_t shard_slots);

/// Shard payload: the rows of recorded-slot shard `shard_index`.
[[nodiscard]] std::string encode_shard(std::size_t shard_index,
                                       const std::vector<core::SlotObs>& rows);

struct DecodedShard {
  std::size_t shard_index = 0;
  std::vector<core::SlotObs> rows;
};

/// Decode a shard payload; nullopt when the payload is not a structurally
/// valid shard record (a CRC-valid record of some other journal, say).
[[nodiscard]] std::optional<DecodedShard> decode_shard(
    std::string_view payload);

}  // namespace starlab::resilience
