#include "resilience/durable_campaign.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "check/thread_annotations.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_plan.hpp"
#include "io/journal_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "sun/solar_ephemeris.hpp"

namespace starlab::resilience {

namespace {

struct DurableMetrics {
  obs::Counter resumed_shards;

  static const DurableMetrics& get() {
    static const DurableMetrics m = [] {
      DurableMetrics x;
      x.resumed_shards = obs::MetricsRegistry::instance().counter(
          "starlab_resilience_resumed_shards_total",
          "Campaign shards recovered from a journal instead of recomputed");
      return x;
    }();
    return m;
  }
};

/// A flagged gap observation for recorded slot `record` of `terminal_index`
/// — the shape a shed or quarantined (slot, terminal) degrades to. Slot id,
/// midpoint and local hour stay real (downstream statistics can still bin
/// the gap by time); there are no candidates and no choice.
core::SlotObs gap_row(const core::Scenario& scenario,
                      const core::CampaignConfig& config, std::size_t record,
                      std::size_t terminal_index, std::uint32_t flags) {
  core::SlotObs obs;
  obs.slot = core::campaign_record_slot(scenario, config, record);
  obs.terminal_index = terminal_index;
  obs.unix_mid = scenario.grid().slot_mid(obs.slot);
  obs.local_hour = sun::local_solar_hour(
      scenario.terminal(terminal_index).site().longitude_deg, obs.unix_mid);
  obs.chosen = -1;
  obs.confidence = 0.0;
  obs.quality = flags;
  return obs;
}

/// Gap rows for every (record, terminal) in [begin, end), in the same
/// (record-major, terminal-minor) order run_campaign emits real rows.
std::vector<core::SlotObs> gap_rows(const core::Scenario& scenario,
                                    const core::CampaignConfig& config,
                                    std::size_t begin, std::size_t end,
                                    std::uint32_t flags) {
  std::vector<core::SlotObs> rows;
  const std::size_t terminals = scenario.terminals().size();
  rows.reserve((end - begin) * terminals);
  for (std::size_t r = begin; r < end; ++r) {
    for (std::size_t ti = 0; ti < terminals; ++ti) {
      rows.push_back(gap_row(scenario, config, r, ti, flags));
    }
  }
  return rows;
}

/// Compute the rows of records [begin, end) at the given degradation level.
/// kNone/kShedObservability compute everything; kWidenGrid computes every
/// 2nd record and fills the skipped ones with kShedSlot gaps; kAbstain
/// computes nothing. `shed` counts the records degraded to gaps.
std::vector<core::SlotObs> compute_shard_rows(
    const core::Scenario& scenario, const core::CampaignConfig& config,
    std::size_t begin, std::size_t end, DegradeLevel level,
    const exec::CancelToken& token, std::size_t* shed) {
  if (level >= DegradeLevel::kAbstain) {
    *shed += end - begin;
    return gap_rows(scenario, config, begin, end, core::quality::kShedSlot);
  }

  core::CampaignConfig sub = config;
  sub.record_begin = begin;
  sub.record_end = end;
  sub.record_step = level >= DegradeLevel::kWidenGrid ? 2 : 1;
  sub.cancel = &token;
  core::CampaignData part = core::run_campaign(scenario, sub);
  if (sub.record_step == 1) return std::move(part.slots);

  // Interleave kShedSlot gaps for the records the widened grid skipped,
  // keeping the rows in record order.
  std::vector<core::SlotObs> rows;
  rows.reserve((end - begin) * scenario.terminals().size());
  std::size_t src = 0;
  const std::size_t terminals = scenario.terminals().size();
  for (std::size_t r = begin; r < end; ++r) {
    if ((r - begin) % sub.record_step == 0) {
      for (std::size_t ti = 0; ti < terminals; ++ti) {
        rows.push_back(std::move(part.slots[src++]));
      }
    } else {
      ++*shed;
      for (std::size_t ti = 0; ti < terminals; ++ti) {
        rows.push_back(gap_row(scenario, config, r, ti,
                               core::quality::kShedSlot));
      }
    }
  }
  return rows;
}

}  // namespace

DurableCampaignResult run_campaign_durable(const core::Scenario& scenario,
                                           const core::CampaignConfig& config,
                                           const DurableCampaignConfig& durable) {
  const obs::ObsSpan span("resilience.run_campaign_durable");
  if (config.record_begin != 0 || config.record_end != 0 ||
      config.record_step != 1 || config.cancel != nullptr) {
    throw std::invalid_argument(
        "run_campaign_durable owns the campaign slice fields; pass them at "
        "their defaults");
  }

  DurableCampaignResult result;
  core::CampaignData& data = result.data;
  data.report.kind = "campaign";
  data.report.label = "durable";
  for (const ground::Terminal& t : scenario.terminals()) {
    data.terminal_names.push_back(t.name());
  }
  const fault::FaultPlan& plan =
      config.faults.has_value() ? *config.faults : scenario.fault_plan();

  const std::size_t total = core::campaign_recorded_slots(scenario, config);
  const std::size_t shard_slots = std::max<std::size_t>(1, durable.shard_slots);
  const std::size_t num_shards =
      total == 0 ? 0 : (total + shard_slots - 1) / shard_slots;
  result.shards = num_shards;

  const std::string header =
      encode_campaign_header(scenario, config, shard_slots);
  std::vector<std::optional<std::vector<core::SlotObs>>> shards(num_shards);

  // --- replay: recover completed shards from the journal ---
  const bool journaled = !durable.journal_path.empty();
  bool header_on_disk = false;
  if (journaled) {
    if (!durable.resume) {
      io::remove_journal(durable.journal_path);
    } else {
      const io::JournalReplay replay = io::replay_journal(durable.journal_path);
      if (!replay.records.empty()) {
        if (replay.records.front() != header) {
          throw std::runtime_error(
              "campaign journal does not match this scenario/config; "
              "refusing to resume: " + durable.journal_path);
        }
        header_on_disk = true;
        for (std::size_t i = 1; i < replay.records.size(); ++i) {
          std::optional<DecodedShard> shard = decode_shard(replay.records[i]);
          if (!shard.has_value()) {
            throw std::runtime_error(
                "campaign journal record is not a shard checkpoint: " +
                durable.journal_path);
          }
          if (shard->shard_index < num_shards &&
              !shards[shard->shard_index].has_value()) {
            shards[shard->shard_index] = std::move(shard->rows);
            ++result.resumed_shards;
          }
        }
      }
    }
  }

  // --- journal writer: repair the torn tail, then append as shards finish ---
  // One writer shared by every shard chunk; appends (and the writer's
  // internal segment state behind them) are serialized by `mu`.
  std::unique_ptr<io::JournalWriter> owned_writer;
  struct Journal {
    check::Mutex mu;
    io::JournalWriter* writer GUARDED_BY(mu) = nullptr;  ///< null: no journal
    bool dead GUARDED_BY(mu) = false;                    ///< set by a kill
  } journal;
  if (journaled) {
    io::JournalConfig jc;
    jc.path = durable.journal_path;
    jc.segment_bytes = durable.segment_bytes;
    jc.fsync = durable.fsync;
    owned_writer = std::make_unique<io::JournalWriter>(jc, durable.kill_point);
    const check::MutexLock lock(journal.mu);
    journal.writer = owned_writer.get();
    if (!header_on_disk) journal.writer->append(header);
  }

  std::vector<std::size_t> missing;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!shards[s].has_value()) missing.push_back(s);
  }
  result.computed_shards = missing.size();

  // --- supervised shard execution over the exec pool ---
  Supervisor supervisor(durable.supervisor);
  struct Shed {
    check::Mutex mu;
    std::size_t records GUARDED_BY(mu) = 0;
  } shed_total;
  exec::default_pool().parallel_for(missing.size(), [&](std::size_t i) {
    const std::size_t shard = missing[i];
    const std::size_t begin = shard * shard_slots;
    const std::size_t end = std::min(total, begin + shard_slots);

    std::vector<core::SlotObs> rows;
    std::size_t shed = 0;
    const TaskOutcome outcome = supervisor.run(
        static_cast<std::uint64_t>(shard),
        [&](const exec::CancelToken& token, DegradeLevel level) {
          shed = 0;
          rows = compute_shard_rows(scenario, config, begin, end, level, token,
                                    &shed);
        });
    if (!outcome.ok) {
      // Quarantined: the shard's records become flagged gaps. They are
      // journaled like real rows, so a resume reproduces the same gaps.
      shed = end - begin;
      rows = gap_rows(scenario, config, begin, end,
                      core::quality::kQuarantined);
    }
    if (shed != 0) {
      const check::MutexLock lock(shed_total.mu);
      shed_total.records += shed;
    }

    {
      const check::MutexLock lock(journal.mu);
      if (journal.writer != nullptr && !journal.dead) {
        // Shed fsync once the ladder says to (never re-arm: the level is
        // monotone over a supervisor's life).
        if (supervisor.level() >= DegradeLevel::kShedObservability) {
          journal.writer->set_fsync(false);
        }
        try {
          journal.writer->append(encode_shard(shard, rows));
        } catch (const fault::WriteKilled&) {
          // The simulated process death. Mark the journal dead so sibling
          // chunks skip their appends (a dead process appends nothing)
          // instead of raising secondary errors, and let the kill propagate
          // out of parallel_for as the run's failure.
          journal.dead = true;
          throw;
        }
      }
    }
    shards[shard] = std::move(rows);
  });

  if (owned_writer != nullptr) owned_writer->close();

  // --- assemble in shard order; counts recomputed exactly like run_campaign ---
  for (std::optional<std::vector<core::SlotObs>>& shard : shards) {
    for (core::SlotObs& row : *shard) data.slots.push_back(std::move(row));
  }
  core::finalize_campaign_report(data, plan);

  result.quarantined_shards =
      static_cast<std::size_t>(supervisor.quarantined());
  {
    // parallel_for has joined; the lock is uncontended and exists so the
    // annotated tally is read the same way it was written.
    const check::MutexLock lock(shed_total.mu);
    result.shed_records = shed_total.records;
  }
  result.final_level = supervisor.level();
  if (result.resumed_shards != 0) {
    DurableMetrics::get().resumed_shards.add(result.resumed_shards);
    data.report.events.push_back(
        "resume shards=" + std::to_string(result.resumed_shards) + " of " +
        std::to_string(num_shards) + " from journal");
  }
  for (std::string& event : supervisor.events()) {
    data.report.events.push_back(std::move(event));
  }
  data.report.add_value("resilience.retries",
                        static_cast<double>(supervisor.retries()));
  data.report.add_value("resilience.quarantined",
                        static_cast<double>(supervisor.quarantined()));
  data.report.add_value("resilience.resumed_shards",
                        static_cast<double>(result.resumed_shards));
  data.report.add_value("resilience.shed_records",
                        static_cast<double>(result.shed_records));
  return result;
}

core::CampaignData run_inferred_campaign_supervised(
    const core::InferencePipeline& pipeline, double duration_sec,
    const SupervisorConfig& config) {
  const obs::ObsSpan span("resilience.run_inferred_campaign_supervised");
  const core::Scenario& scenario = pipeline.scenario();

  core::CampaignData data;
  data.report.kind = "campaign";
  data.report.label = "inferred-supervised";
  for (const ground::Terminal& t : scenario.terminals()) {
    data.terminal_names.push_back(t.name());
  }

  Supervisor supervisor(config);
  double confidence_weighted = 0.0;
  std::vector<std::size_t> abstained;
  for (std::size_t ti = 0; ti < scenario.terminals().size(); ++ti) {
    if (supervisor.level() >= DegradeLevel::kAbstain) {
      abstained.push_back(ti);
      continue;
    }
    core::PipelineResult inferred;
    const TaskOutcome outcome = supervisor.run(
        static_cast<std::uint64_t>(ti),
        [&](const exec::CancelToken& token, DegradeLevel) {
          inferred = pipeline.run(ti, duration_sec, &token);
        });
    if (!outcome.ok) continue;  // quarantined terminal: no rows, logged above
    // absorb() sums values; means need decided-slot weighting instead.
    confidence_weighted += inferred.report.value_or("mean_confidence", 0.0) *
                           static_cast<double>(inferred.report.decided);
    data.report.absorb(inferred.report);
    pipeline.append_inferred_rows(data, inferred, ti);
  }
  data.report.add_value(
      "mean_confidence",
      data.report.decided == 0
          ? 0.0
          : confidence_weighted / static_cast<double>(data.report.decided));

  for (std::string& event : supervisor.events()) {
    data.report.events.push_back(std::move(event));
  }
  for (const std::size_t ti : abstained) {
    data.report.events.push_back("abstain terminal=" + std::to_string(ti) +
                                 ": load shed");
  }
  data.report.add_value("resilience.retries",
                        static_cast<double>(supervisor.retries()));
  data.report.add_value("resilience.quarantined",
                        static_cast<double>(supervisor.quarantined()));
  return data;
}

}  // namespace starlab::resilience
