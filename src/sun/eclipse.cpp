#include "sun/eclipse.hpp"

#include <algorithm>
#include <cmath>

#include "geo/wgs.hpp"
#include "sun/solar_ephemeris.hpp"

namespace starlab::sun {

bool is_sunlit_cylindrical(const geo::TemeKm& sat, const time::JulianDate& jd) {
  const geo::TemeKm s_hat = sun_direction_teme(jd);
  const double along = sat.dot(s_hat);
  if (along > 0.0) return true;  // on the sun side of the Earth
  const geo::TemeKm perp = sat - s_hat * along;
  return perp.norm() > geo::kWgs84.radius_km;
}

Illumination classify_illumination(const geo::TemeKm& sat,
                                   const time::JulianDate& jd) {
  return classify_illumination(sat, sun_position_teme(jd));
}

Illumination classify_illumination(const geo::TemeKm& sat,
                                   const geo::TemeKm& sun) {
  // Day-side fast path. With the Sun ~1.5e8 km away and the satellite in
  // LEO, the satellite->Sun direction deviates from the geocentric Sun
  // direction by < 0.003 deg, so sat.dot(sun) >= 0 puts the Sun/Earth
  // separation angle within 0.003 deg of >= 90 deg — far outside the
  // penumbra cone, whose half-angle ang_earth + ang_sun is at most ~68 deg
  // for any orbit above 300 km. The ~22 deg of slack makes this branch
  // decision-identical to the full classification below.
  if (sat.dot(sun) >= 0.0) return Illumination::kSunlit;

  // Night-side fast path: the penumbra's cross-section a distance d down
  // the anti-sun axis is a disc of radius < Re + d * tan(ang_sun), under
  // Re + 35 km for any LEO distance. A satellite whose distance from the
  // shadow axis clears Re + 150 km is therefore sunlit with >= 115 km to
  // spare — far beyond anything FP rounding in either formulation can
  // bridge. Costs a handful of multiplies and no trig.
  {
    const double along = sat.dot(sun);  // < 0 here
    const double perp_sq = sat.norm_sq() - along * along / sun.norm_sq();
    const double clear = geo::kWgs84.radius_km + 150.0;
    if (perp_sq > clear * clear) return Illumination::kSunlit;
  }

  const geo::TemeKm sat_to_sun = sun - sat;
  const geo::TemeKm sat_to_earth = -sat;

  const double dist_sun = sat_to_sun.norm();
  const double dist_earth = sat_to_earth.norm();

  // Apparent angular radii from the satellite.
  const double ang_sun = std::asin(std::min(1.0, kSunRadiusKm / dist_sun));
  const double ang_earth =
      std::asin(std::min(1.0, geo::kWgs84.radius_km / dist_earth));

  // Angular separation between the Sun's and the Earth's centres. Same
  // arithmetic as Vec3::angle_to, reusing the two norms computed above.
  const double denom = dist_sun * dist_earth;
  double cos_sep = denom <= 0.0 ? 1.0 : sat_to_sun.dot(sat_to_earth) / denom;
  cos_sep = std::clamp(cos_sep, -1.0, 1.0);
  const double sep = std::acos(cos_sep);

  if (sep >= ang_sun + ang_earth) return Illumination::kSunlit;
  if (sep <= ang_earth - ang_sun) return Illumination::kUmbra;
  return Illumination::kPenumbra;
}

}  // namespace starlab::sun
