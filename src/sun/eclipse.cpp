#include "sun/eclipse.hpp"

#include <cmath>

#include "geo/wgs.hpp"
#include "sun/solar_ephemeris.hpp"

namespace starlab::sun {

bool is_sunlit_cylindrical(const geo::TemeKm& sat, const time::JulianDate& jd) {
  const geo::TemeKm s_hat = sun_direction_teme(jd);
  const double along = sat.dot(s_hat);
  if (along > 0.0) return true;  // on the sun side of the Earth
  const geo::TemeKm perp = sat - s_hat * along;
  return perp.norm() > geo::kWgs84.radius_km;
}

Illumination classify_illumination(const geo::TemeKm& sat,
                                   const time::JulianDate& jd) {
  const geo::TemeKm sun = sun_position_teme(jd);
  const geo::TemeKm sat_to_sun = sun - sat;
  const geo::TemeKm sat_to_earth = -sat;

  const double dist_sun = sat_to_sun.norm();
  const double dist_earth = sat_to_earth.norm();

  // Apparent angular radii from the satellite.
  const double ang_sun = std::asin(std::min(1.0, kSunRadiusKm / dist_sun));
  const double ang_earth =
      std::asin(std::min(1.0, geo::kWgs84.radius_km / dist_earth));

  // Angular separation between the Sun's and the Earth's centres.
  const double sep = sat_to_sun.angle_to(sat_to_earth).value();

  if (sep >= ang_sun + ang_earth) return Illumination::kSunlit;
  if (sep <= ang_earth - ang_sun) return Illumination::kUmbra;
  return Illumination::kPenumbra;
}

}  // namespace starlab::sun
