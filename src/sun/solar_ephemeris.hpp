#pragma once

// Low-precision solar ephemeris (Astronomical Almanac), accurate to ~0.01 deg
// over 1950-2050 — two orders of magnitude tighter than needed to decide
// whether a satellite is sunlit (the paper computes this with Skyfield).

#include "geo/frame_vec.hpp"
#include "geo/geodetic.hpp"
#include "geo/vec3.hpp"
#include "time/julian_date.hpp"

namespace starlab::sun {

/// One astronomical unit [km].
inline constexpr double kAuKm = 149597870.7;

/// Solar radius [km].
inline constexpr double kSunRadiusKm = 696000.0;

/// Sun position [km] in the TEME/mean-equator frame at a UTC instant.
[[nodiscard]] geo::TemeKm sun_position_teme(const time::JulianDate& jd);

/// Unit vector toward the sun in the TEME frame.
[[nodiscard]] geo::TemeKm sun_direction_teme(const time::JulianDate& jd);

/// Local mean solar hour [0, 24) at a given longitude: UTC hour shifted by
/// longitude/15. This is the "local time" feature (t_l) of the paper's model.
[[nodiscard]] double local_solar_hour(double longitude_deg, double unix_sec);

/// Sun elevation above the horizon [deg] for a ground site; negative at
/// night. Used by the campaign driver to label day/night slots.
[[nodiscard]] double sun_elevation_deg(const geo::Geodetic& site,
                                       const time::JulianDate& jd);

}  // namespace starlab::sun
