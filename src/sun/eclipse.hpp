#pragma once

// Earth-shadow (eclipse) tests for satellites.
//
// The paper's §5.3 splits satellites into "sunlit" and "dark" and shows the
// global scheduler prefers sunlit birds. A cylindrical shadow model is the
// classic quick test; the conical model distinguishes umbra from penumbra
// (a Starlink satellite in penumbra still harvests some power, so the
// scheduler oracle treats only umbra as dark).

#include "geo/frame_vec.hpp"
#include "geo/vec3.hpp"
#include "time/julian_date.hpp"

namespace starlab::sun {

enum class Illumination {
  kSunlit,
  kPenumbra,
  kUmbra,
};

/// Cylindrical shadow test: the satellite is dark iff it is on the anti-sun
/// side and within one Earth radius of the shadow axis.
[[nodiscard]] bool is_sunlit_cylindrical(const geo::TemeKm& sat_teme_km,
                                         const time::JulianDate& jd);

/// Conical shadow classification (umbra / penumbra / sunlit) from the
/// apparent angular radii of the Sun and Earth at the satellite.
[[nodiscard]] Illumination classify_illumination(const geo::TemeKm& sat_teme_km,
                                                 const time::JulianDate& jd);

/// Conical classification against a precomputed Sun position (the value of
/// sun_position_teme(jd)), so a batch loop over a whole catalog evaluates
/// the solar ephemeris once per instant. Bit-identical to the JulianDate
/// overload, which delegates here.
[[nodiscard]] Illumination classify_illumination(
    const geo::TemeKm& sat_teme_km, const geo::TemeKm& sun_position_teme_km);

/// Convenience: sunlit under the conical model (penumbra counts as sunlit).
[[nodiscard]] inline bool is_sunlit(const geo::TemeKm& sat_teme_km,
                                    const time::JulianDate& jd) {
  return classify_illumination(sat_teme_km, jd) != Illumination::kUmbra;
}

/// is_sunlit against a precomputed Sun position.
[[nodiscard]] inline bool is_sunlit(const geo::TemeKm& sat_teme_km,
                                    const geo::TemeKm& sun_position_teme_km) {
  return classify_illumination(sat_teme_km, sun_position_teme_km) !=
         Illumination::kUmbra;
}

}  // namespace starlab::sun
