#include "sun/solar_ephemeris.hpp"

#include <cmath>

#include "geo/angles.hpp"
#include "geo/frames.hpp"
#include "geo/topocentric.hpp"
#include "time/utc_time.hpp"

namespace starlab::sun {

using geo::deg_to_rad;

geo::TemeKm sun_position_teme(const time::JulianDate& jd) {
  // Astronomical Almanac low-precision formulae (also Vallado Alg. 29).
  const double n = (jd.day_part() - time::kJ2000Jd) + jd.frac_part();

  const double mean_lon = geo::wrap_360(280.460 + 0.9856474 * n);   // deg
  const double mean_anom = deg_to_rad(geo::wrap_360(357.528 + 0.9856003 * n));

  const double ecl_lon = deg_to_rad(
      mean_lon + 1.915 * std::sin(mean_anom) + 0.020 * std::sin(2.0 * mean_anom));
  const double obliquity = deg_to_rad(23.439 - 4.0e-7 * n);
  const double r_au =
      1.00014 - 0.01671 * std::cos(mean_anom) - 0.00014 * std::cos(2.0 * mean_anom);

  const double r_km = r_au * kAuKm;
  return {r_km * std::cos(ecl_lon),
          r_km * std::cos(obliquity) * std::sin(ecl_lon),
          r_km * std::sin(obliquity) * std::sin(ecl_lon)};
}

geo::TemeKm sun_direction_teme(const time::JulianDate& jd) {
  return sun_position_teme(jd).normalized();
}

double local_solar_hour(double longitude_deg, double unix_sec) {
  const time::UtcTime utc = time::UtcTime::from_unix_seconds(unix_sec);
  const double utc_hours = utc.hour + utc.minute / 60.0 + utc.second / 3600.0;
  double local = std::fmod(utc_hours + longitude_deg / 15.0, 24.0);
  if (local < 0.0) local += 24.0;
  return local;
}

double sun_elevation_deg(const geo::Geodetic& site, const time::JulianDate& jd) {
  const geo::EcefKm sun_ecef = geo::teme_to_ecef(sun_position_teme(jd), jd);
  return geo::look_angles(site, sun_ecef).elevation_deg;
}

}  // namespace starlab::sun
