#include "ml/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace starlab::ml {

double top_k_accuracy(std::span<const std::vector<int>> rankings,
                      std::span<const int> labels, int k) {
  if (rankings.size() != labels.size()) {
    throw std::invalid_argument("rankings/labels size mismatch");
  }
  if (rankings.empty()) return 0.0;

  std::size_t hits = 0;
  for (std::size_t i = 0; i < rankings.size(); ++i) {
    const std::vector<int>& r = rankings[i];
    const auto depth = std::min<std::size_t>(static_cast<std::size_t>(k), r.size());
    for (std::size_t j = 0; j < depth; ++j) {
      if (r[j] == labels[i]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(rankings.size());
}

double accuracy(std::span<const int> predictions, std::span<const int> labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("predictions/labels size mismatch");
  }
  if (predictions.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> predictions, std::span<const int> labels,
    int num_classes) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("predictions/labels size mismatch");
  }
  std::vector<std::vector<std::size_t>> m(
      static_cast<std::size_t>(num_classes),
      std::vector<std::size_t>(static_cast<std::size_t>(num_classes), 0));
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    m[static_cast<std::size_t>(labels[i])]
     [static_cast<std::size_t>(predictions[i])] += 1;
  }
  return m;
}

}  // namespace starlab::ml
