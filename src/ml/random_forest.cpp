#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/thread_annotations.hpp"
#include "exec/thread_pool.hpp"

namespace starlab::ml {

namespace {

/// splitmix64 finalizer — turns (seed + tree index) into decorrelated
/// per-tree RNG seeds, so every tree's stream is independent of which
/// thread trains it.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void RandomForest::fit(const Dataset& data) {
  if (data.size() == 0) throw std::invalid_argument("empty training set");
  trees_.clear();
  num_features_ = data.num_features();
  num_classes_ = data.num_classes();

  TreeConfig tree_cfg = config_.tree;
  if (tree_cfg.mtry <= 0) {
    tree_cfg.mtry = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(num_features_))));
  }

  const auto n_boot = static_cast<std::size_t>(
      config_.bootstrap_fraction * static_cast<double>(data.size()));

  // Out-of-bag vote tally: votes[i * classes + c]. Trees merge their votes
  // under a mutex; integer additions commute, so the final tally (and thus
  // oob_accuracy) is identical no matter which thread finishes first.
  struct OobTally {
    check::Mutex mu;
    std::vector<int> votes GUARDED_BY(mu);
  } oob;
  if (config_.compute_oob) {
    const check::MutexLock lock(oob.mu);
    oob.votes.assign(data.size() * static_cast<std::size_t>(num_classes_), 0);
  }

  // Each tree draws from its own splitmix64-derived stream, so tree t's
  // bootstrap sample and split choices depend only on (config.seed, t) —
  // never on thread scheduling. Trees land in their slot by index.
  trees_.assign(static_cast<std::size_t>(config_.num_trees),
                DecisionTree(tree_cfg));
  exec::default_pool().parallel_for(
      trees_.size(), [&](std::size_t t) {
        std::mt19937_64 rng(mix64(config_.seed + t));
        std::uniform_int_distribution<std::size_t> pick(0, data.size() - 1);

        std::vector<std::size_t> sample(n_boot);
        std::vector<bool> in_bag;
        if (config_.compute_oob) in_bag.assign(data.size(), false);
        for (std::size_t& s : sample) {
          s = pick(rng);
          if (config_.compute_oob) in_bag[s] = true;
        }

        trees_[t].fit(data, sample, rng);

        if (config_.compute_oob) {
          std::vector<int> local(
              data.size() * static_cast<std::size_t>(num_classes_), 0);
          for (std::size_t i = 0; i < data.size(); ++i) {
            if (in_bag[i]) continue;
            const int predicted = trees_[t].predict(data.row(i));
            local[i * static_cast<std::size_t>(num_classes_) +
                  static_cast<std::size_t>(predicted)] += 1;
          }
          const check::MutexLock lock(oob.mu);
          for (std::size_t i = 0; i < oob.votes.size(); ++i) {
            oob.votes[i] += local[i];
          }
        }
      });

  if (config_.compute_oob) {
    // parallel_for has joined; the lock is uncontended and exists so the
    // annotated tally is read the same way it was written.
    const check::MutexLock lock(oob.mu);
    const std::vector<int>& oob_votes = oob.votes;
    // Every tree casts at most one vote per row, so the tally can never
    // exceed rows x trees; more would mean the merge double-counted.
    STARLAB_INVARIANT(
        std::accumulate(oob_votes.begin(), oob_votes.end(), std::int64_t{0}) <=
            static_cast<std::int64_t>(data.size()) *
                static_cast<std::int64_t>(trees_.size()),
        "out-of-bag vote total exceeds rows x trees");
    std::size_t voted = 0, correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto* row_votes =
          oob_votes.data() + i * static_cast<std::size_t>(num_classes_);
      const int winner = static_cast<int>(
          std::max_element(row_votes, row_votes + num_classes_) - row_votes);
      if (row_votes[winner] == 0) continue;  // never out of bag
      ++voted;
      if (winner == data.label(i)) ++correct;
    }
    oob_accuracy_ = voted == 0 ? -1.0
                               : static_cast<double>(correct) /
                                     static_cast<double>(voted);
  } else {
    oob_accuracy_ = -1.0;
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  std::vector<double> acc(static_cast<std::size_t>(num_classes_), 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> p = tree.predict_proba(features);
    for (std::size_t c = 0; c < acc.size() && c < p.size(); ++c) acc[c] += p[c];
  }
  if (!trees_.empty()) {
    for (double& v : acc) v /= static_cast<double>(trees_.size());
    STARLAB_ENSURE(
        std::abs(std::accumulate(acc.begin(), acc.end(), 0.0) - 1.0) < 1e-6,
        "forest class probabilities do not sum to 1");
  }
  return acc;
}

int RandomForest::predict(std::span<const double> features) const {
  const std::vector<double> p = predict_proba(features);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<int> RandomForest::ranked_classes(
    std::span<const double> features) const {
  const std::vector<double> p = predict_proba(features);
  std::vector<int> order(p.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return p[static_cast<std::size_t>(a)] > p[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<double> RandomForest::feature_importances() const {
  std::vector<double> acc(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& dec = tree.impurity_decrease();
    for (std::size_t f = 0; f < acc.size() && f < dec.size(); ++f) {
      acc[f] += dec[f];
    }
  }
  const double total = std::accumulate(acc.begin(), acc.end(), 0.0);
  if (total > 0.0) {
    for (double& v : acc) v /= total;
  }
  return acc;
}

void RandomForest::save(std::ostream& out) const {
  out.precision(17);
  out << "forest " << trees_.size() << ' ' << num_features_ << ' '
      << num_classes_ << '\n';
  out << "config " << config_.num_trees << ' ' << config_.tree.max_depth << ' '
      << config_.tree.min_samples_split << ' ' << config_.tree.min_samples_leaf
      << ' ' << config_.tree.mtry << ' ' << config_.bootstrap_fraction << ' '
      << config_.seed << '\n';
  for (const DecisionTree& tree : trees_) tree.save(out);
}

RandomForest RandomForest::load(std::istream& in) {
  std::string tag;
  std::size_t num_trees = 0;
  RandomForest forest;
  if (!(in >> tag) || tag != "forest" ||
      !(in >> num_trees >> forest.num_features_ >> forest.num_classes_)) {
    throw std::runtime_error("malformed forest header");
  }
  if (!(in >> tag) || tag != "config" ||
      !(in >> forest.config_.num_trees >> forest.config_.tree.max_depth >>
        forest.config_.tree.min_samples_split >>
        forest.config_.tree.min_samples_leaf >> forest.config_.tree.mtry >>
        forest.config_.bootstrap_fraction >> forest.config_.seed)) {
    throw std::runtime_error("malformed forest config");
  }
  forest.trees_.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    forest.trees_.push_back(DecisionTree::load(in));
  }
  return forest;
}

}  // namespace starlab::ml
