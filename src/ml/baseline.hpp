#pragma once

// The paper's comparison baseline: "simply return the (top-k) cluster(s)
// with the most available satellites as its prediction". With the feature
// layout [local_hour, count(cluster 0), ..., count(cluster C-1)] this reads
// the counts straight off the feature row — no training involved.

#include <span>
#include <vector>

namespace starlab::ml {

class PopularityBaseline {
 public:
  /// @param count_offset  index of the first cluster-count feature
  /// @param num_classes   number of clusters (== count features == classes)
  PopularityBaseline(std::size_t count_offset, int num_classes)
      : count_offset_(count_offset), num_classes_(num_classes) {}

  /// Classes ordered by available-satellite count, largest first.
  [[nodiscard]] std::vector<int> ranked_classes(
      std::span<const double> features) const;

  /// The most populated cluster.
  [[nodiscard]] int predict(std::span<const double> features) const {
    return ranked_classes(features).front();
  }

 private:
  std::size_t count_offset_;
  int num_classes_;
};

}  // namespace starlab::ml
