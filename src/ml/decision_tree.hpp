#pragma once

// CART decision-tree classifier (gini impurity), the base learner of the
// random forest. Supports per-split feature subsampling (mtry) and exposes
// per-feature impurity-decrease totals for gini importances.

#include <iosfwd>
#include <random>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace starlab::ml {

struct TreeConfig {
  int max_depth = 14;
  int min_samples_split = 4;
  int min_samples_leaf = 2;
  /// Features considered per split; <= 0 means all (plain CART). A forest
  /// sets this to ~sqrt(num_features).
  int mtry = -1;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeConfig config = {}) : config_(config) {}

  /// Fit on the rows of `data` named by `indices` (with multiplicity — a
  /// bootstrap sample repeats indices).
  void fit(const Dataset& data, std::span<const std::size_t> indices,
           std::mt19937_64& rng);

  /// Convenience: fit on the full dataset.
  void fit(const Dataset& data, std::mt19937_64& rng);

  /// Class-probability vector for one feature row.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;

  /// Argmax class.
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Total gini impurity decrease contributed by each feature (unnormalized;
  /// the forest aggregates and normalizes).
  [[nodiscard]] const std::vector<double>& impurity_decrease() const {
    return impurity_decrease_;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const;

  /// Serialize to a line-oriented text format (see model release docs).
  void save(std::ostream& out) const;

  /// Deserialize a tree written by save(). Throws std::runtime_error on a
  /// malformed stream.
  [[nodiscard]] static DecisionTree load(std::istream& in);

 private:
  struct Node {
    int feature = -1;  ///< -1 for a leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> proba;  ///< leaf class distribution
  };

  int build(const Dataset& data, std::vector<std::size_t>& indices,
            std::size_t begin, std::size_t end, int depth,
            std::mt19937_64& rng);

  TreeConfig config_;
  int num_classes_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> impurity_decrease_;
};

}  // namespace starlab::ml
