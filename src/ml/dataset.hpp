#pragma once

// Tabular dataset and resampling helpers for the §6 scheduler model:
// row-major feature matrix, integer class labels, named columns/classes,
// holdout splitting and k-fold indices (the paper uses an 80/20 holdout and
// 5-fold cross-validation on the 80 %).

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace starlab::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t num_features,
                   std::vector<std::string> feature_names = {},
                   std::vector<std::string> class_names = {})
      : num_features_(num_features),
        feature_names_(std::move(feature_names)),
        class_names_(std::move(class_names)) {}

  void add_row(std::span<const double> features, int label);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] std::size_t num_features() const { return num_features_; }
  [[nodiscard]] int num_classes() const;

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {values_.data() + i * num_features_, num_features_};
  }
  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }

  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return class_names_;
  }

  /// A dataset containing only the given rows (e.g. one fold).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::size_t num_features_ = 0;
  std::vector<double> values_;  ///< row-major
  std::vector<int> labels_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
};

/// Index split into train and test.
struct IndexSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffled holdout split (the paper's 80/20).
[[nodiscard]] IndexSplit train_test_split(std::size_t n, double test_fraction,
                                          std::mt19937_64& rng);

/// Shuffled k-fold splits: each element's test set is one fold, its train
/// set the remaining k-1 folds.
[[nodiscard]] std::vector<IndexSplit> k_fold_splits(std::size_t n, int k,
                                                    std::mt19937_64& rng);

/// Stratified k-fold: every fold receives an (almost) equal share of each
/// class, so rare clusters are represented in every training set. Needed
/// when the §6 label distribution is long-tailed.
[[nodiscard]] std::vector<IndexSplit> stratified_k_fold_splits(
    const Dataset& data, int k, std::mt19937_64& rng);

}  // namespace starlab::ml
