#pragma once

// Bagged random-forest classifier — the paper's §6 model choice ("robust to
// over-fitting, explainable predictions"). Bootstrap sampling per tree,
// sqrt(p) feature subsampling per split, soft-voted probabilities for the
// top-k metric, and normalized gini feature importances.

#include <iosfwd>
#include <random>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace starlab::ml {

struct ForestConfig {
  int num_trees = 100;
  TreeConfig tree;          ///< tree.mtry <= 0 -> sqrt(num_features)
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 17;
  /// Track out-of-bag votes during fit (costs one prediction per tree per
  /// out-of-bag sample) and expose oob_accuracy().
  bool compute_oob = false;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  void fit(const Dataset& data);

  /// Out-of-bag accuracy estimate from the last fit, or a negative value if
  /// config.compute_oob was false (or no sample was ever out of bag). OOB is
  /// the forest's built-in generalization estimate — the property the paper
  /// leans on when it calls random forests "robust to over-fitting".
  [[nodiscard]] double oob_accuracy() const { return oob_accuracy_; }

  /// Soft-voted class probabilities.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;

  /// Argmax class.
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Classes ordered by predicted probability, most likely first (the
  /// ranking behind the paper's top-k accuracy metric).
  [[nodiscard]] std::vector<int> ranked_classes(
      std::span<const double> features) const;

  /// Gini feature importances, normalized to sum to 1.
  [[nodiscard]] std::vector<double> feature_importances() const;

  [[nodiscard]] const std::vector<DecisionTree>& trees() const {
    return trees_;
  }
  [[nodiscard]] const ForestConfig& config() const { return config_; }

  /// Serialize the fitted forest (config + every tree) to a text stream —
  /// the "model release" format. Predictions of a loaded forest are
  /// bit-identical to the original's.
  void save(std::ostream& out) const;

  /// Deserialize a forest written by save(). Throws std::runtime_error on a
  /// malformed stream.
  [[nodiscard]] static RandomForest load(std::istream& in);

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  std::size_t num_features_ = 0;
  int num_classes_ = 0;
  double oob_accuracy_ = -1.0;
};

}  // namespace starlab::ml
