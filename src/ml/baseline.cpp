#include "ml/baseline.hpp"

#include <algorithm>
#include <numeric>

namespace starlab::ml {

std::vector<int> PopularityBaseline::ranked_classes(
    std::span<const double> features) const {
  std::vector<int> order(static_cast<std::size_t>(num_classes_));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return features[count_offset_ + static_cast<std::size_t>(a)] >
           features[count_offset_ + static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace starlab::ml
