#pragma once

// Hyper-parameter grid search with k-fold cross-validation, matching the
// paper's training protocol ("we got the parameters of this model using
// grid-search and five-fold cross-validation").

#include <vector>

#include "ml/random_forest.hpp"

namespace starlab::ml {

struct GridSearchSpace {
  std::vector<int> num_trees = {50, 100};
  std::vector<int> max_depth = {10, 14, 18};
  std::vector<int> min_samples_leaf = {1, 2, 4};
};

struct GridSearchResult {
  ForestConfig best_config;
  double best_cv_accuracy = 0.0;
  /// One row per evaluated configuration: (config, mean CV accuracy).
  std::vector<std::pair<ForestConfig, double>> all;
};

struct GridSearchConfig {
  int folds = 5;
  std::uint64_t seed = 23;
};

/// Evaluate every configuration in `space` by k-fold cross-validated top-1
/// accuracy on `data`, returning the best.
[[nodiscard]] GridSearchResult grid_search(const Dataset& data,
                                           const GridSearchSpace& space,
                                           const GridSearchConfig& config = {});

/// Mean k-fold cross-validated accuracy of one configuration.
[[nodiscard]] double cross_validate(const Dataset& data,
                                    const ForestConfig& forest_config,
                                    int folds, std::uint64_t seed);

}  // namespace starlab::ml
