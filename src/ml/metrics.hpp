#pragma once

// Evaluation metrics. The paper's headline metric is top-k accuracy: the
// prediction counts as correct if the true class appears among the model's
// k most likely classes (Fig 8 sweeps k = 1..9).

#include <span>
#include <vector>

namespace starlab::ml {

/// Interface alias: something that ranks classes for a feature row, most
/// likely first.
using RankFn = std::vector<int> (*)(std::span<const double>);

/// Top-k accuracy given per-row class rankings and true labels.
[[nodiscard]] double top_k_accuracy(
    std::span<const std::vector<int>> rankings, std::span<const int> labels,
    int k);

/// Plain accuracy (top-1 over argmax predictions).
[[nodiscard]] double accuracy(std::span<const int> predictions,
                              std::span<const int> labels);

/// Per-class confusion counts: confusion[truth][predicted].
[[nodiscard]] std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> predictions, std::span<const int> labels,
    int num_classes);

}  // namespace starlab::ml
