#include "ml/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace starlab::ml {

void Dataset::add_row(std::span<const double> features, int label) {
  if (features.size() != num_features_) {
    throw std::invalid_argument("feature width mismatch");
  }
  if (label < 0) throw std::invalid_argument("labels must be non-negative");
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

int Dataset::num_classes() const {
  if (!class_names_.empty()) return static_cast<int>(class_names_.size());
  int m = 0;
  for (const int y : labels_) m = std::max(m, y + 1);
  return m;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(num_features_, feature_names_, class_names_);
  for (const std::size_t i : indices) {
    out.add_row(row(i), labels_[i]);
  }
  return out;
}

IndexSplit train_test_split(std::size_t n, double test_fraction,
                            std::mt19937_64& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng);

  const auto n_test = static_cast<std::size_t>(test_fraction * static_cast<double>(n));
  IndexSplit split;
  split.test.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_test));
  split.train.assign(idx.begin() + static_cast<std::ptrdiff_t>(n_test), idx.end());
  return split;
}

std::vector<IndexSplit> k_fold_splits(std::size_t n, int k,
                                      std::mt19937_64& rng) {
  if (k < 2) throw std::invalid_argument("k-fold requires k >= 2");
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng);

  std::vector<IndexSplit> out(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    const auto fold = static_cast<std::size_t>(i % static_cast<std::size_t>(k));
    out[fold].test.push_back(idx[i]);
  }
  for (std::size_t f = 0; f < out.size(); ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto fold = static_cast<std::size_t>(i % static_cast<std::size_t>(k));
      if (fold != f) out[f].train.push_back(idx[i]);
    }
  }
  return out;
}

std::vector<IndexSplit> stratified_k_fold_splits(const Dataset& data, int k,
                                                 std::mt19937_64& rng) {
  if (k < 2) throw std::invalid_argument("k-fold requires k >= 2");

  // Group indices by class, shuffle within each class, deal round-robin.
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(data.num_classes()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.label(i))].push_back(i);
  }

  std::vector<IndexSplit> out(static_cast<std::size_t>(k));
  std::size_t deal = 0;
  for (auto& bucket : by_class) {
    std::shuffle(bucket.begin(), bucket.end(), rng);
    for (const std::size_t i : bucket) {
      out[deal % static_cast<std::size_t>(k)].test.push_back(i);
      ++deal;
    }
  }
  for (std::size_t f = 0; f < out.size(); ++f) {
    for (std::size_t g = 0; g < out.size(); ++g) {
      if (g == f) continue;
      out[f].train.insert(out[f].train.end(), out[g].test.begin(),
                          out[g].test.end());
    }
  }
  return out;
}

}  // namespace starlab::ml
