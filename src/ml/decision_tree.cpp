#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

namespace starlab::ml {

namespace {

double gini_from_counts(const std::vector<std::size_t>& counts,
                        std::size_t n) {
  if (n == 0) return 0.0;
  double sum_sq = 0.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(n);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::size_t> indices,
                       std::mt19937_64& rng) {
  nodes_.clear();
  num_classes_ = data.num_classes();
  impurity_decrease_.assign(data.num_features(), 0.0);

  std::vector<std::size_t> work(indices.begin(), indices.end());
  if (work.empty()) {
    // Degenerate: a single uniform leaf.
    Node leaf;
    leaf.proba.assign(static_cast<std::size_t>(std::max(num_classes_, 1)),
                      1.0 / std::max(num_classes_, 1));
    nodes_.push_back(std::move(leaf));
    return;
  }
  build(data, work, 0, work.size(), 0, rng);
}

void DecisionTree::fit(const Dataset& data, std::mt19937_64& rng) {
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  fit(data, idx, rng);
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                        std::size_t begin, std::size_t end, int depth,
                        std::mt19937_64& rng) {
  const std::size_t n = end - begin;

  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i = begin; i < end; ++i) {
    ++counts[static_cast<std::size_t>(data.label(indices[i]))];
  }
  const double node_gini = gini_from_counts(counts, n);

  const bool pure = node_gini <= 0.0;
  const bool too_small = n < static_cast<std::size_t>(config_.min_samples_split);
  const bool too_deep = depth >= config_.max_depth;

  auto make_leaf = [&]() -> int {
    Node leaf;
    leaf.proba.resize(static_cast<std::size_t>(num_classes_));
    for (std::size_t c = 0; c < counts.size(); ++c) {
      leaf.proba[c] = static_cast<double>(counts[c]) / static_cast<double>(n);
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size() - 1);
  };

  if (pure || too_small || too_deep) return make_leaf();

  // Candidate feature subset.
  std::vector<std::size_t> features(data.num_features());
  std::iota(features.begin(), features.end(), 0);
  std::size_t num_try = features.size();
  if (config_.mtry > 0 &&
      static_cast<std::size_t>(config_.mtry) < features.size()) {
    num_try = static_cast<std::size_t>(config_.mtry);
    // Partial Fisher-Yates: the first num_try entries become the sample.
    for (std::size_t i = 0; i < num_try; ++i) {
      std::uniform_int_distribution<std::size_t> pick(i, features.size() - 1);
      std::swap(features[i], features[pick(rng)]);
    }
  }

  // Best-split search.
  struct Best {
    double gain = 0.0;
    std::size_t feature = 0;
    double threshold = 0.0;
  } best;

  std::vector<std::pair<double, int>> column(n);  // (value, label)
  const auto min_leaf = static_cast<std::size_t>(config_.min_samples_leaf);

  for (std::size_t fi = 0; fi < num_try; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {data.row(row)[f], data.label(row)};
    }
    std::sort(column.begin(), column.end());

    std::vector<std::size_t> left_counts(counts.size(), 0);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      ++left_counts[static_cast<std::size_t>(column[i].second)];
      // Split only between distinct values.
      if (column[i].first == column[i + 1].first) continue;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < min_leaf || nr < min_leaf) continue;

      std::vector<std::size_t> right_counts(counts.size());
      for (std::size_t c = 0; c < counts.size(); ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double gl = gini_from_counts(left_counts, nl);
      const double gr = gini_from_counts(right_counts, nr);
      const double weighted =
          (static_cast<double>(nl) * gl + static_cast<double>(nr) * gr) /
          static_cast<double>(n);
      const double gain = node_gini - weighted;
      if (gain > best.gain + 1e-15) {
        best.gain = gain;
        best.feature = f;
        best.threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best.gain <= 0.0) return make_leaf();

  impurity_decrease_[best.feature] += static_cast<double>(n) * best.gain;

  // Partition indices in place around the threshold.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return data.row(row)[best.feature] <= best.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // numeric edge case

  // Reserve this node's slot before recursing so children land after it.
  nodes_.emplace_back();
  const auto node_id = static_cast<int>(nodes_.size() - 1);
  const int left = build(data, indices, begin, mid, depth + 1, rng);
  const int right = build(data, indices, mid, end, depth + 1, rng);

  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = static_cast<int>(best.feature);
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  const Node* node = &nodes_.front();
  while (node->feature >= 0) {
    const double v = features[static_cast<std::size_t>(node->feature)];
    node = &nodes_[static_cast<std::size_t>(v <= node->threshold ? node->left
                                                                 : node->right)];
  }
  return node->proba;
}

int DecisionTree::predict(std::span<const double> features) const {
  const std::vector<double> proba = predict_proba(features);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

int DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  struct Item {
    int node;
    int depth;
  };
  std::vector<Item> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, it.depth);
    const Node& n = nodes_[static_cast<std::size_t>(it.node)];
    if (n.feature >= 0) {
      stack.push_back({n.left, it.depth + 1});
      stack.push_back({n.right, it.depth + 1});
    }
  }
  return max_depth;
}

void DecisionTree::save(std::ostream& out) const {
  out << "tree " << num_classes_ << ' ' << nodes_.size() << ' '
      << impurity_decrease_.size() << '\n';
  out.precision(17);
  for (const Node& n : nodes_) {
    out << "node " << n.feature << ' ' << n.threshold << ' ' << n.left << ' '
        << n.right;
    out << ' ' << n.proba.size();
    for (const double p : n.proba) out << ' ' << p;
    out << '\n';
  }
  out << "imp";
  for (const double d : impurity_decrease_) out << ' ' << d;
  out << '\n';
}

DecisionTree DecisionTree::load(std::istream& in) {
  DecisionTree tree;
  std::string tag;
  std::size_t num_nodes = 0, num_features = 0;
  if (!(in >> tag) || tag != "tree" || !(in >> tree.num_classes_ >>
                                         num_nodes >> num_features)) {
    throw std::runtime_error("malformed tree header");
  }
  tree.nodes_.resize(num_nodes);
  for (Node& n : tree.nodes_) {
    std::size_t num_proba = 0;
    if (!(in >> tag) || tag != "node" ||
        !(in >> n.feature >> n.threshold >> n.left >> n.right >> num_proba)) {
      throw std::runtime_error("malformed tree node");
    }
    n.proba.resize(num_proba);
    for (double& p : n.proba) {
      if (!(in >> p)) throw std::runtime_error("malformed node proba");
    }
  }
  if (!(in >> tag) || tag != "imp") {
    throw std::runtime_error("malformed tree importances");
  }
  tree.impurity_decrease_.resize(num_features);
  for (double& d : tree.impurity_decrease_) {
    if (!(in >> d)) throw std::runtime_error("malformed importance value");
  }
  return tree;
}

}  // namespace starlab::ml
