#include "ml/grid_search.hpp"

#include "ml/metrics.hpp"

namespace starlab::ml {

double cross_validate(const Dataset& data, const ForestConfig& forest_config,
                      int folds, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::vector<IndexSplit> splits = k_fold_splits(data.size(), folds, rng);

  double acc_sum = 0.0;
  for (const IndexSplit& split : splits) {
    const Dataset train = data.subset(split.train);
    RandomForest forest(forest_config);
    forest.fit(train);

    std::vector<int> predictions, labels;
    predictions.reserve(split.test.size());
    labels.reserve(split.test.size());
    for (const std::size_t i : split.test) {
      predictions.push_back(forest.predict(data.row(i)));
      labels.push_back(data.label(i));
    }
    acc_sum += accuracy(predictions, labels);
  }
  return acc_sum / static_cast<double>(folds);
}

GridSearchResult grid_search(const Dataset& data, const GridSearchSpace& space,
                             const GridSearchConfig& config) {
  GridSearchResult out;
  for (const int trees : space.num_trees) {
    for (const int depth : space.max_depth) {
      for (const int leaf : space.min_samples_leaf) {
        ForestConfig fc;
        fc.num_trees = trees;
        fc.tree.max_depth = depth;
        fc.tree.min_samples_leaf = leaf;
        fc.seed = config.seed;

        const double acc = cross_validate(data, fc, config.folds, config.seed);
        out.all.emplace_back(fc, acc);
        if (acc > out.best_cv_accuracy) {
          out.best_cv_accuracy = acc;
          out.best_config = fc;
        }
      }
    }
  }
  return out;
}

}  // namespace starlab::ml
