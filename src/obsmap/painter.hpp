#pragma once

// Painting satellite trajectories into obstruction-map frames, and the
// dish-side recorder that accumulates them.
//
// A real dish paints the sky path of whichever satellite currently serves it
// into its obstruction map, cumulatively, until rebooted. MapRecorder
// reproduces exactly that observable behaviour for the simulated terminal;
// the §4 pipeline then consumes its 15-second snapshots the way the paper
// consumes starlink-grpc-tools dumps.

#include <optional>

#include "constellation/catalog.hpp"
#include "constellation/ephemeris_cache.hpp"
#include "ground/terminal.hpp"
#include "obsmap/obstruction_map.hpp"
#include "scheduler/global_scheduler.hpp"
#include "time/slot_grid.hpp"

namespace starlab::obsmap {

class TrajectoryPainter {
 public:
  explicit TrajectoryPainter(MapGeometry geometry = {},
                             double sample_interval_sec = 1.0)
      : geometry_(geometry), sample_interval_sec_(sample_interval_sec) {}

  /// Paint the sky path of `catalog_index` as seen from `terminal` over
  /// [t_begin, t_end) into `frame`. Consecutive samples are joined with a
  /// line so the trace is gap-free at any sampling rate.
  void paint(const constellation::Catalog& catalog, std::size_t catalog_index,
             const ground::Terminal& terminal, double t_begin, double t_end,
             ObstructionMap& frame) const;

  [[nodiscard]] const MapGeometry& geometry() const { return geometry_; }

  /// Route look-angle sampling through a memoized ephemeris (bit-identical
  /// to the direct catalog call). The pipeline shares one cache between its
  /// painter and its identifier, so the serving satellite's samples are
  /// computed once per slot instead of once for painting and once for
  /// candidate scoring. nullptr (the default) queries the catalog directly.
  void set_ephemeris_cache(const constellation::EphemerisCache* cache) {
    ephemeris_cache_ = cache;
  }

 private:
  MapGeometry geometry_;
  double sample_interval_sec_;
  const constellation::EphemerisCache* ephemeris_cache_ = nullptr;
};

/// Dish-side accumulating recorder: one per terminal.
class MapRecorder {
 public:
  MapRecorder(const constellation::Catalog& catalog,
              const ground::Terminal& terminal, time::SlotGrid grid,
              TrajectoryPainter painter = TrajectoryPainter())
      : catalog_(catalog), terminal_(terminal), grid_(grid), painter_(painter) {}

  /// Paint one slot's serving-satellite trajectory (nullopt allocation
  /// paints nothing) and return the post-slot snapshot — what a gRPC poll at
  /// the end of the slot would fetch.
  ObstructionMap record_slot(
      const std::optional<scheduler::Allocation>& allocation);

  /// Terminal reboot: wipe the accumulated frame (the paper resets every
  /// 10 minutes to keep trajectories XOR-separable).
  void reset() { accumulated_.clear(); }

  [[nodiscard]] const ObstructionMap& accumulated() const {
    return accumulated_;
  }
  [[nodiscard]] const TrajectoryPainter& painter() const { return painter_; }

  /// Forwarded to the painter: see TrajectoryPainter::set_ephemeris_cache.
  void set_ephemeris_cache(const constellation::EphemerisCache* cache) {
    painter_.set_ephemeris_cache(cache);
  }

 private:
  const constellation::Catalog& catalog_;
  const ground::Terminal& terminal_;
  time::SlotGrid grid_;
  TrajectoryPainter painter_;
  ObstructionMap accumulated_;
};

}  // namespace starlab::obsmap
