#pragma once

// The 123x123 binary obstruction-map frame, bit-compatible in semantics with
// what starlink-grpc-tools extracts from a dish: white pixels trace the sky
// paths of satellites that served the terminal since the last reset, painted
// cumulatively until a reboot wipes the frame.

#include <cstdint>
#include <string>
#include <vector>

#include "obsmap/map_geometry.hpp"

namespace starlab::obsmap {

class ObstructionMap {
 public:
  static constexpr int kSize = 123;
  /// Pixel bytes viewed as 64-bit words (the storage is padded with
  /// always-zero bytes up to a word boundary).
  static constexpr std::size_t kNumWords =
      (static_cast<std::size_t>(kSize) * kSize + 7) / 8;

  ObstructionMap() : bits_(kNumWords * 8, 0) {}

  [[nodiscard]] bool get(int x, int y) const {
    return in_bounds(x, y) && bits_[index(x, y)] != 0;
  }

  void set(int x, int y, bool value = true) {
    if (in_bounds(x, y)) bits_[index(x, y)] = value ? 1 : 0;
  }

  void set(const Pixel& p, bool value = true) { set(p.x, p.y, value); }
  [[nodiscard]] bool get(const Pixel& p) const { return get(p.x, p.y); }

  /// Wipe the frame (terminal reboot).
  void clear() { std::fill(bits_.begin(), bits_.end(), 0); }

  /// Number of set pixels.
  [[nodiscard]] std::size_t popcount() const;

  /// The i-th 64-bit word of pixel storage (8 one-byte pixels, 0x00/0x01
  /// each; trailing pad bytes are always zero). Word-wise scans — the reset
  /// detector's `prev & ~curr` popcount, the word-wise popcount() — walk
  /// these instead of 15k individual pixels.
  [[nodiscard]] std::uint64_t word(std::size_t i) const;

  /// All set pixels, row-major order.
  [[nodiscard]] std::vector<Pixel> set_pixels() const;

  /// Pixel-wise XOR — the paper's trajectory-isolation primitive: applied to
  /// two consecutive frames, everything common cancels and only the newest
  /// trajectory survives.
  [[nodiscard]] ObstructionMap exclusive_or(const ObstructionMap& other) const;

  /// Pixel-wise OR (used by the accumulating recorder).
  void merge(const ObstructionMap& other);

  /// True if every set pixel of this map is also set in `other`.
  [[nodiscard]] bool subset_of(const ObstructionMap& other) const;

  bool operator==(const ObstructionMap& other) const = default;

  /// Render as binary PGM (P5) for external viewing.
  [[nodiscard]] std::string to_pgm() const;

  /// Compact ASCII rendering ('#' set, '.' clear), optionally downsampled by
  /// an integer factor so a frame fits in a terminal.
  [[nodiscard]] std::string to_ascii(int downsample = 2) const;

 private:
  [[nodiscard]] static bool in_bounds(int x, int y) {
    return x >= 0 && x < kSize && y >= 0 && y < kSize;
  }
  [[nodiscard]] static std::size_t index(int x, int y) {
    return static_cast<std::size_t>(y) * kSize + static_cast<std::size_t>(x);
  }

  std::vector<std::uint8_t> bits_;
};

}  // namespace starlab::obsmap
