#pragma once

// Connected-component analysis on obstruction-map frames.
//
// A clean XOR isolates exactly one streak, but reality is messier: partial
// trajectory overlaps leave the old streak's un-cancelled stubs, and a
// mid-window reboot can leave two satellites' paths in one frame. Component
// labeling separates the blobs so the identifier can match against the
// dominant streak instead of a scatter of strays.

#include <vector>

#include "obsmap/obstruction_map.hpp"

namespace starlab::obsmap {

/// 8-connected components of the set pixels, ordered largest first.
[[nodiscard]] std::vector<std::vector<Pixel>> connected_components(
    const ObstructionMap& frame);

/// The largest component as its own frame (empty frame when input is empty).
[[nodiscard]] ObstructionMap largest_component(const ObstructionMap& frame);

}  // namespace starlab::obsmap
