#include "obsmap/components.hpp"

#include <algorithm>

namespace starlab::obsmap {

std::vector<std::vector<Pixel>> connected_components(
    const ObstructionMap& frame) {
  std::vector<std::vector<Pixel>> components;
  std::vector<bool> visited(
      static_cast<std::size_t>(ObstructionMap::kSize) * ObstructionMap::kSize,
      false);
  const auto index = [](int x, int y) {
    return static_cast<std::size_t>(y) * ObstructionMap::kSize +
           static_cast<std::size_t>(x);
  };

  for (const Pixel& seed : frame.set_pixels()) {
    if (visited[index(seed.x, seed.y)]) continue;

    // Flood fill (8-connectivity) from this seed.
    std::vector<Pixel> component;
    std::vector<Pixel> stack{seed};
    visited[index(seed.x, seed.y)] = true;
    while (!stack.empty()) {
      const Pixel p = stack.back();
      stack.pop_back();
      component.push_back(p);
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int nx = p.x + dx;
          const int ny = p.y + dy;
          if (nx < 0 || ny < 0 || nx >= ObstructionMap::kSize ||
              ny >= ObstructionMap::kSize) {
            continue;
          }
          if (!frame.get(nx, ny) || visited[index(nx, ny)]) continue;
          visited[index(nx, ny)] = true;
          stack.push_back({nx, ny});
        }
      }
    }
    components.push_back(std::move(component));
  }

  std::stable_sort(components.begin(), components.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() > b.size();
                   });
  return components;
}

ObstructionMap largest_component(const ObstructionMap& frame) {
  ObstructionMap out;
  const auto components = connected_components(frame);
  if (components.empty()) return out;
  for (const Pixel& p : components.front()) out.set(p);
  return out;
}

}  // namespace starlab::obsmap
