#include "obsmap/obstruction_map.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "check/contracts.hpp"
#include "check/hotpath.hpp"

namespace starlab::obsmap {

STARLAB_HOTPATH std::uint64_t ObstructionMap::word(std::size_t i) const {
  std::uint64_t w = 0;
  std::memcpy(&w, bits_.data() + i * 8, 8);
  return w;
}

STARLAB_HOTPATH std::size_t ObstructionMap::popcount() const {
  // Pixels are 0x00/0x01 bytes, so each set pixel contributes exactly one
  // bit to its word; pad bytes are always zero.
  std::size_t n = 0;
  for (std::size_t i = 0; i < kNumWords; ++i) {
    n += static_cast<std::size_t>(std::popcount(word(i)));
  }
  return n;
}

std::vector<Pixel> ObstructionMap::set_pixels() const {
  std::vector<Pixel> out;
  for (int y = 0; y < kSize; ++y) {
    for (int x = 0; x < kSize; ++x) {
      if (bits_[index(x, y)]) out.push_back({x, y});
    }
  }
  return out;
}

ObstructionMap ObstructionMap::exclusive_or(const ObstructionMap& other) const {
  // Frames being combined must agree on their pixel-storage geometry; a
  // mismatch means one of them was deserialized from a foreign dump.
  STARLAB_EXPECT(bits_.size() == other.bits_.size(),
                 "obstruction-map frame dimensions differ");
  ObstructionMap out;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = bits_[i] ^ other.bits_[i];
  }
  return out;
}

void ObstructionMap::merge(const ObstructionMap& other) {
  STARLAB_EXPECT(bits_.size() == other.bits_.size(),
                 "obstruction-map frame dimensions differ");
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] = bits_[i] | other.bits_[i];
  }
}

bool ObstructionMap::subset_of(const ObstructionMap& other) const {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] && !other.bits_[i]) return false;
  }
  return true;
}

std::string ObstructionMap::to_pgm() const {
  constexpr std::size_t kPixels = static_cast<std::size_t>(kSize) * kSize;
  std::string out = "P5\n123 123\n255\n";
  out.reserve(out.size() + kPixels);
  for (std::size_t i = 0; i < kPixels; ++i) {
    out.push_back(bits_[i] ? static_cast<char>(255) : static_cast<char>(0));
  }
  return out;
}

std::string ObstructionMap::to_ascii(int downsample) const {
  if (downsample < 1) downsample = 1;
  std::string out;
  for (int y = 0; y < kSize; y += downsample) {
    for (int x = 0; x < kSize; x += downsample) {
      bool any = false;
      for (int dy = 0; dy < downsample && !any; ++dy) {
        for (int dx = 0; dx < downsample && !any; ++dx) {
          any = get(x + dx, y + dy);
        }
      }
      out.push_back(any ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace starlab::obsmap
