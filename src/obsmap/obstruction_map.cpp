#include "obsmap/obstruction_map.hpp"

#include <algorithm>

namespace starlab::obsmap {

std::size_t ObstructionMap::popcount() const {
  return static_cast<std::size_t>(
      std::count_if(bits_.begin(), bits_.end(),
                    [](std::uint8_t b) { return b != 0; }));
}

std::vector<Pixel> ObstructionMap::set_pixels() const {
  std::vector<Pixel> out;
  for (int y = 0; y < kSize; ++y) {
    for (int x = 0; x < kSize; ++x) {
      if (bits_[index(x, y)]) out.push_back({x, y});
    }
  }
  return out;
}

ObstructionMap ObstructionMap::exclusive_or(const ObstructionMap& other) const {
  ObstructionMap out;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = bits_[i] ^ other.bits_[i];
  }
  return out;
}

void ObstructionMap::merge(const ObstructionMap& other) {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] = bits_[i] | other.bits_[i];
  }
}

bool ObstructionMap::subset_of(const ObstructionMap& other) const {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] && !other.bits_[i]) return false;
  }
  return true;
}

std::string ObstructionMap::to_pgm() const {
  std::string out = "P5\n123 123\n255\n";
  out.reserve(out.size() + bits_.size());
  for (const std::uint8_t b : bits_) {
    out.push_back(b ? static_cast<char>(255) : static_cast<char>(0));
  }
  return out;
}

std::string ObstructionMap::to_ascii(int downsample) const {
  if (downsample < 1) downsample = 1;
  std::string out;
  for (int y = 0; y < kSize; y += downsample) {
    for (int x = 0; x < kSize; x += downsample) {
      bool any = false;
      for (int dy = 0; dy < downsample && !any; ++dy) {
        for (int dx = 0; dx < downsample && !any; ++dx) {
          any = get(x + dx, y + dy);
        }
      }
      out.push_back(any ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace starlab::obsmap
