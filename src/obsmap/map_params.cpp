#include "obsmap/map_params.hpp"

namespace starlab::obsmap {

std::optional<RecoveredParams> recover_geometry(const ObstructionMap& filled,
                                                std::size_t min_pixels,
                                                geo::Deg min_elevation,
                                                geo::Deg max_elevation) {
  const std::vector<Pixel> pixels = filled.set_pixels();
  if (pixels.size() < min_pixels) return std::nullopt;

  RecoveredParams out;
  out.painted_pixels = pixels.size();
  out.bbox_min_x = out.bbox_max_x = pixels.front().x;
  out.bbox_min_y = out.bbox_max_y = pixels.front().y;
  for (const Pixel& p : pixels) {
    out.bbox_min_x = std::min(out.bbox_min_x, p.x);
    out.bbox_max_x = std::max(out.bbox_max_x, p.x);
    out.bbox_min_y = std::min(out.bbox_min_y, p.y);
    out.bbox_max_y = std::max(out.bbox_max_y, p.y);
  }

  MapGeometry g;
  g.center_x = 0.5 * (out.bbox_min_x + out.bbox_max_x);
  g.center_y = 0.5 * (out.bbox_min_y + out.bbox_max_y);
  // The plot radius is half the bounding-box extent; average both axes to
  // shave quantization error.
  g.radius_px = 0.25 * ((out.bbox_max_x - out.bbox_min_x) +
                        (out.bbox_max_y - out.bbox_min_y));
  g.min_elevation = min_elevation;
  g.max_elevation = max_elevation;
  out.geometry = g;
  return out;
}

}  // namespace starlab::obsmap
