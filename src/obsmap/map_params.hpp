#pragma once

// Recovery of the obstruction map's polar-plot parameters from a filled
// frame (§4.1, "Uncovering gRPC obstruction map parameters").
//
// The raw frames carry no axes. The paper left a dish online for two days so
// trajectories covered the whole field of view, then drew the bounding box
// of the painted region: its centre is the plot centre, half its extent the
// plot radius, and the radial axis must span [25, 90] deg elevation because
// the hardware cannot track below 25 deg. recover_geometry() implements
// that procedure on an accumulated frame.

#include <optional>

#include "geo/units.hpp"
#include "obsmap/obstruction_map.hpp"

namespace starlab::obsmap {

struct RecoveredParams {
  MapGeometry geometry;
  int bbox_min_x = 0, bbox_max_x = 0;
  int bbox_min_y = 0, bbox_max_y = 0;
  std::size_t painted_pixels = 0;
};

/// Recover the polar-plot geometry from a well-filled accumulated frame.
/// Returns nullopt when the frame is too sparse for a trustworthy bounding
/// box (fewer than `min_pixels` painted).
[[nodiscard]] std::optional<RecoveredParams> recover_geometry(
    const ObstructionMap& filled, std::size_t min_pixels = 500,
    geo::Deg min_elevation = geo::Deg(25.0),
    geo::Deg max_elevation = geo::Deg(90.0));

}  // namespace starlab::obsmap
