#pragma once

// The polar-plot geometry of Starlink's gRPC obstruction maps, as recovered
// by the paper (§4.1): a 123x123 image whose contained polar plot is centred
// at pixel (61, 61) with radius 45 px; the radius axis is the angle of
// elevation (25 deg at the rim, 90 deg at the centre) and the polar angle is
// the azimuth (0 == north == straight up, increasing clockwise).

#include <optional>

#include "geo/units.hpp"

namespace starlab::obsmap {

/// A pixel coordinate (x == column, y == row; row 0 is the top of the image,
/// i.e. north).
struct Pixel {
  int x = 0;
  int y = 0;

  bool operator==(const Pixel&) const = default;
};

/// A sky direction in the map's terms. Raw fields stay for plain-data use;
/// unit-safe callers construct via the typed factory and read the accessors.
struct SkyPoint {
  double azimuth_deg = 0.0;
  double elevation_deg = 0.0;

  [[nodiscard]] static constexpr SkyPoint from(geo::Deg azimuth,
                                               geo::Deg elevation) {
    return SkyPoint{azimuth.value(), elevation.value()};
  }
  [[nodiscard]] constexpr geo::Deg azimuth() const {
    return geo::Deg(azimuth_deg);
  }
  [[nodiscard]] constexpr geo::Deg elevation() const {
    return geo::Deg(elevation_deg);
  }
};

struct MapGeometry {
  double center_x = 61.0;
  double center_y = 61.0;
  double radius_px = 45.0;
  geo::Deg min_elevation{25.0};  ///< elevation at the rim
  geo::Deg max_elevation{90.0};  ///< elevation at the centre

  /// Pixel for a sky direction; nullopt when the elevation is below the rim.
  [[nodiscard]] std::optional<Pixel> pixel_of(const SkyPoint& p) const;

  /// Unit-safe overload.
  [[nodiscard]] std::optional<Pixel> pixel_of(geo::Deg azimuth,
                                              geo::Deg elevation) const {
    return pixel_of(SkyPoint::from(azimuth, elevation));
  }

  /// Sky direction of a pixel centre; nullopt when the pixel lies outside
  /// the polar plot.
  [[nodiscard]] std::optional<SkyPoint> sky_of(const Pixel& px) const;

  bool operator==(const MapGeometry&) const = default;
};

}  // namespace starlab::obsmap
