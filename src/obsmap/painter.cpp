#include "obsmap/painter.hpp"

#include <cmath>
#include <cstdlib>

namespace starlab::obsmap {

namespace {

/// Bresenham line between two pixels (inclusive).
void draw_line(ObstructionMap& frame, Pixel a, Pixel b) {
  const int dx = std::abs(b.x - a.x);
  const int dy = -std::abs(b.y - a.y);
  const int sx = a.x < b.x ? 1 : -1;
  const int sy = a.y < b.y ? 1 : -1;
  int err = dx + dy;
  Pixel p = a;
  while (true) {
    frame.set(p);
    if (p == b) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      p.x += sx;
    }
    if (e2 <= dx) {
      err += dx;
      p.y += sy;
    }
  }
}

}  // namespace

void TrajectoryPainter::paint(const constellation::Catalog& catalog,
                              std::size_t catalog_index,
                              const ground::Terminal& terminal, double t_begin,
                              double t_end, ObstructionMap& frame) const {
  std::optional<Pixel> prev;
  for (double t = t_begin; t < t_end; t += sample_interval_sec_) {
    const time::JulianDate jd = time::JulianDate::from_unix_seconds(t);
    const geo::LookAngles look =
        ephemeris_cache_ != nullptr
            ? ephemeris_cache_->look_from(catalog_index, terminal.site(), jd)
            : catalog.look_at(catalog_index, terminal.site(), jd);
    const std::optional<Pixel> px =
        geometry_.pixel_of(look.azimuth(), look.elevation());
    if (px.has_value()) {
      if (prev.has_value()) {
        draw_line(frame, *prev, *px);
      } else {
        frame.set(*px);
      }
    }
    prev = px;
  }
}

ObstructionMap MapRecorder::record_slot(
    const std::optional<scheduler::Allocation>& allocation) {
  if (allocation.has_value()) {
    painter_.paint(catalog_, allocation->catalog_index, terminal_,
                   grid_.slot_start(allocation->slot),
                   grid_.slot_end(allocation->slot), accumulated_);
  }
  return accumulated_;
}

}  // namespace starlab::obsmap
