#include "obsmap/map_geometry.hpp"

#include <cmath>
#include <string>

#include "check/contracts.hpp"
#include "geo/angles.hpp"

namespace starlab::obsmap {

std::optional<Pixel> MapGeometry::pixel_of(const SkyPoint& p) const {
  STARLAB_EXPECT(
      radius_px > 0.0 && max_elevation > min_elevation,
      "degenerate map geometry: radius " + std::to_string(radius_px) +
          ", elevation span [" + std::to_string(min_elevation.value()) + ", " +
          std::to_string(max_elevation.value()) + "]");
  if (p.elevation() < min_elevation || p.elevation() > max_elevation) {
    return std::nullopt;
  }
  // Radius: 0 at zenith, radius_px at the rim elevation.
  const double r = (max_elevation - p.elevation()) /
                   (max_elevation - min_elevation) * radius_px;
  const double az = geo::deg_to_rad(p.azimuth_deg);
  // North (az 0) points up the image (-y); azimuth grows clockwise (+x east).
  const double x = center_x + r * std::sin(az);
  const double y = center_y - r * std::cos(az);
  return Pixel{static_cast<int>(std::lround(x)), static_cast<int>(std::lround(y))};
}

std::optional<SkyPoint> MapGeometry::sky_of(const Pixel& px) const {
  const double dx = px.x - center_x;
  const double dy = px.y - center_y;
  const double r = std::hypot(dx, dy);
  if (r > radius_px + 0.5) return std::nullopt;

  SkyPoint p;
  p.elevation_deg = (max_elevation - std::min(r, radius_px) / radius_px *
                                         (max_elevation - min_elevation))
                        .value();
  // atan2(east, north) == clockwise angle from north.
  p.azimuth_deg = geo::wrap_360(geo::rad_to_deg(std::atan2(dx, -dy)));
  return p;
}

}  // namespace starlab::obsmap
