#pragma once

// Measurement-side inference of the global scheduler's clock (§3).
//
// Given only an RTT series, this module (1) detects the abrupt latency
// changes, and (2) recovers the re-allocation *period* and *phase* — the
// paper's headline "every 15 seconds, at :12/:27/:42/:57" finding — without
// ever consulting the oracle. Detection works on a robust per-window
// summary (median of received RTTs in short buckets) so the MAC bands and
// jitter do not drown the step edges.

#include <vector>

#include "measurement/rtt_prober.hpp"

namespace starlab::measurement {

/// One detected abrupt latency change.
struct ChangePoint {
  double unix_sec = 0.0;    ///< bucket boundary where the shift occurs
  double magnitude_ms = 0.0;  ///< |median after - median before|
};

struct ChangePointConfig {
  double bucket_sec = 0.5;     ///< robust-summary bucket width
  int window_buckets = 4;      ///< buckets on each side of a candidate edge
  double threshold_ms = 1.2;   ///< minimum summary shift to call a change
  double min_separation_sec = 3.0;  ///< merge changes closer than this
  /// Per-bucket summary quantile. A *low* quantile tracks the floor of the
  /// MAC band structure (propagation + the terminal's own grant band),
  /// which only moves when the serving satellite changes; the median would
  /// stochastically flip between bands within a slot and fake mid-slot
  /// changes.
  double summary_quantile = 0.2;
};

/// Detect abrupt latency shifts in a series.
[[nodiscard]] std::vector<ChangePoint> detect_change_points(
    const RttSeries& series, const ChangePointConfig& config = {});

/// Result of fitting a periodic grid to detected change points.
struct EpochEstimate {
  double period_sec = 0.0;   ///< best-fitting re-allocation period
  double offset_sec = 0.0;   ///< phase within the minute, in [0, period)
  double support = 0.0;      ///< fraction of change points within tolerance
};

struct EpochSearchConfig {
  double min_period_sec = 5.0;
  double max_period_sec = 40.0;
  double period_step_sec = 0.5;
  double tolerance_sec = 1.0;  ///< a change point "fits" if within this of grid
};

/// Recover the scheduling period and phase from detected change points by
/// maximizing grid support. With the paper's parameters this returns
/// period == 15 s, offset == 12 s.
[[nodiscard]] EpochEstimate estimate_epoch(
    const std::vector<ChangePoint>& change_points,
    const EpochSearchConfig& config = {});

}  // namespace starlab::measurement
