#pragma once

// End-to-end RTT synthesis for one probe.
//
// The paper measures millisecond-granularity RTTs from a dish to a server
// co-located at the regional PoP, so the path is: terminal -> serving
// satellite (bent pipe) -> ground station -> PoP server, and back. The RTT
// decomposes into
//
//     2 * (slant_up + slant_down) / c        physical propagation
//   + MAC queuing (parallel bands)           on-satellite scheduler
//   + fixed ground segment processing        GS <-> PoP wiring + server
//   + noise                                  RF/clock jitter (NTP-synced)
//
// Because the destination sits at the PoP, terrestrial vagaries are nil —
// the property the paper engineered its vantage points for.

#include <cstdint>

#include "constellation/catalog.hpp"
#include "ground/terminal.hpp"
#include "scheduler/global_scheduler.hpp"
#include "scheduler/mac_scheduler.hpp"

namespace starlab::measurement {

struct LatencyConfig {
  double ground_processing_ms = 10.0;  ///< GS<->PoP backhaul + server turn
  double jitter_sigma_ms = 0.25;       ///< Gaussian RF/timestamping noise
  double base_loss_rate = 0.004;       ///< packet loss floor
  double low_elevation_loss_boost = 0.03;  ///< extra loss at the 25 deg floor
};

class LatencyModel {
 public:
  LatencyModel(const constellation::Catalog& catalog,
               const scheduler::MacScheduler& mac, LatencyConfig config = {},
               std::uint64_t seed = 13)
      : catalog_(catalog), mac_(mac), config_(config), seed_(seed) {}

  /// RTT [ms] of the `probe_seq`-th probe sent at `unix_sec` from
  /// `terminal` through the satellite in `allocation`.
  [[nodiscard]] double rtt_ms(const ground::Terminal& terminal,
                              const scheduler::Allocation& allocation,
                              double unix_sec, std::uint64_t probe_seq) const;

  /// Whether that probe is lost. Loss increases as the serving satellite
  /// nears the elevation floor.
  [[nodiscard]] bool lost(const ground::Terminal& terminal,
                          const scheduler::Allocation& allocation,
                          std::uint64_t probe_seq) const;

  /// Propagation-only component [ms] (both hops, both directions), exposed
  /// for tests.
  [[nodiscard]] double propagation_ms(const ground::Terminal& terminal,
                                      const scheduler::Allocation& allocation,
                                      double unix_sec) const;

  [[nodiscard]] const LatencyConfig& config() const { return config_; }

 private:
  const constellation::Catalog& catalog_;
  const scheduler::MacScheduler& mac_;
  LatencyConfig config_;
  std::uint64_t seed_;
};

}  // namespace starlab::measurement
