#include "measurement/rtt_prober.hpp"

#include <cmath>

namespace starlab::measurement {

std::vector<RttSample> RttSeries::received() const {
  std::vector<RttSample> out;
  out.reserve(samples.size());
  for (const RttSample& s : samples) {
    if (!s.lost) out.push_back(s);
  }
  return out;
}

double RttSeries::loss_rate() const {
  if (samples.empty()) return 0.0;
  std::size_t lost = 0;
  for (const RttSample& s : samples) {
    if (s.lost) ++lost;
  }
  return static_cast<double>(lost) / static_cast<double>(samples.size());
}

RttSeries RttProber::run(const ground::Terminal& terminal, double start_unix,
                         double end_unix) const {
  RttSeries series;
  series.terminal = terminal.name();
  series.interval_ms = config_.interval_ms;

  const time::SlotGrid& grid = global_.grid();

  // Per-slot allocation cache: the expensive oracle runs once per slot, not
  // once per probe.
  time::SlotIndex cached_slot = 0;
  bool have_cached = false;
  std::optional<scheduler::Allocation> cached_alloc;

  // Integer probe index avoids floating-point drift in both the timestamps
  // and the sample count.
  const double step = config_.interval_ms / 1000.0;
  const auto num_probes = static_cast<std::uint64_t>(
      std::ceil((end_unix - start_unix) / step - 1e-9));
  for (std::uint64_t probe_seq = 0; probe_seq < num_probes; ++probe_seq) {
    const double t = start_unix + static_cast<double>(probe_seq) * step;
    const time::SlotIndex slot = grid.slot_of(t);
    if (!have_cached || slot != cached_slot) {
      cached_alloc = global_.allocate(terminal, slot);
      cached_slot = slot;
      have_cached = true;
    }

    RttSample s;
    s.unix_sec = t;
    s.slot = slot;
    if (!cached_alloc.has_value()) {
      s.lost = true;  // no serving satellite: the probe vanishes
    } else {
      s.lost = model_.lost(terminal, *cached_alloc, probe_seq);
      if (!s.lost) s.rtt_ms = model_.rtt_ms(terminal, *cached_alloc, t, probe_seq);
    }
    series.samples.push_back(s);
  }
  return series;
}

}  // namespace starlab::measurement
