#pragma once

// One-way-delay measurement — and why the paper NTP-synced everything.
//
// iRTT can timestamp in both directions, but a one-way delay (OWD) is
// measured against *two* clocks: the sender's and the receiver's. Any offset
// between them lands directly in the OWD sample, so an undisciplined clock's
// sawtooth (see ClockModel) swamps the few-ms structure the study needs;
// with NTP discipline the residual is sub-ms. RTTs, by contrast, use one
// clock twice and cancel the offset. OwdProber synthesizes both the clean
// and the clock-corrupted series so the effect is demonstrable.

#include <cstdint>
#include <string>
#include <vector>

#include "measurement/clock_model.hpp"
#include "measurement/latency_model.hpp"

namespace starlab::measurement {

struct OwdSample {
  double unix_sec = 0.0;
  double true_owd_ms = 0.0;      ///< uplink one-way delay, perfect clocks
  double measured_owd_ms = 0.0;  ///< with sender-clock error applied
  time::SlotIndex slot = 0;
};

struct OwdSeries {
  std::string terminal;
  std::vector<OwdSample> samples;

  /// Largest |measured - true| over the series: the clock's contribution.
  [[nodiscard]] double max_clock_error_ms() const;
};

class OwdProber {
 public:
  /// `clock` models the *sender's* clock; the receiver (PoP server) is
  /// treated as the time reference, as the paper's setup effectively does.
  OwdProber(const scheduler::GlobalScheduler& global, const LatencyModel& model,
            const ClockModel& clock, double interval_ms = 20.0)
      : global_(global), model_(model), clock_(clock),
        interval_ms_(interval_ms) {}

  [[nodiscard]] OwdSeries run(const ground::Terminal& terminal,
                              double start_unix, double end_unix) const;

 private:
  const scheduler::GlobalScheduler& global_;
  const LatencyModel& model_;
  const ClockModel& clock_;
  double interval_ms_;
};

}  // namespace starlab::measurement
