#pragma once

// Gilbert-Elliott burst-loss model.
//
// The paper's loss observations ("at higher frequencies and bandwidths, the
// packet loss rates ... were highly variable") point at bursty loss, which
// the memoryless per-probe model in LatencyModel cannot produce. The
// classic two-state Markov chain can: a Good state with rare loss and a Bad
// state (rain fade, deep frame contention) where most packets die, with
// slow transitions producing loss bursts.

#include <cstdint>

namespace starlab::measurement {

struct GilbertElliottConfig {
  double p_good_to_bad = 0.0008;  ///< per-probe transition into a burst
  double p_bad_to_good = 0.05;    ///< per-probe recovery (mean burst 20 probes)
  double loss_good = 0.002;       ///< loss probability in the Good state
  double loss_bad = 0.5;          ///< loss probability in the Bad state
};

class GilbertElliott {
 public:
  explicit GilbertElliott(GilbertElliottConfig config = {},
                          std::uint64_t seed = 37)
      : config_(config), seed_(seed) {}

  /// Advance one probe: returns true if that probe is lost. Deterministic
  /// in (seed, call sequence).
  [[nodiscard]] bool step();

  [[nodiscard]] bool in_bad_state() const { return bad_; }

  /// Long-run stationary loss rate implied by the configuration.
  [[nodiscard]] double stationary_loss_rate() const;

  /// Reset to the Good state and restart the random sequence.
  void reset();

  [[nodiscard]] const GilbertElliottConfig& config() const { return config_; }

 private:
  GilbertElliottConfig config_;
  std::uint64_t seed_;
  std::uint64_t sequence_ = 0;
  bool bad_ = false;
};

}  // namespace starlab::measurement
