#pragma once

// iPerf3-style throughput measurement (the paper's second probe stream ran
// iPerf3 at 50 % of the provisioned upstream). Goodput is bounded by the
// serving link's Shannon capacity (rf/link_budget) shared across the MAC
// cycle's terminals and degraded by the satellite's background load, so the
// series shows the same 15-second re-allocation structure as the RTT plots
// plus a capacity dimension.

#include <cstdint>
#include <string>
#include <vector>

#include "ground/terminal.hpp"
#include "rf/link_budget.hpp"
#include "scheduler/global_scheduler.hpp"
#include "scheduler/mac_scheduler.hpp"

namespace starlab::measurement {

struct ThroughputSample {
  double unix_sec = 0.0;
  double offered_mbps = 0.0;
  double goodput_mbps = 0.0;   ///< what actually got through
  double capacity_mbps = 0.0;  ///< the terminal's share of the link
  time::SlotIndex slot = 0;

  [[nodiscard]] bool saturated() const { return goodput_mbps < offered_mbps; }
};

struct ThroughputSeries {
  std::string terminal;
  std::vector<ThroughputSample> samples;

  /// Mean goodput over the series [Mbit/s].
  [[nodiscard]] double mean_goodput_mbps() const;

  /// Fraction of samples where the offered load exceeded capacity.
  [[nodiscard]] double saturation_fraction() const;
};

struct ThroughputConfig {
  rf::LinkParams link = rf::ku_user_downlink();
  double offered_mbps = 50.0;     ///< iPerf3 target rate
  double sample_interval_sec = 1.0;
  double efficiency = 0.65;       ///< modem efficiency vs Shannon
  double noise_fraction = 0.05;   ///< multiplicative goodput jitter
};

class ThroughputProber {
 public:
  ThroughputProber(const scheduler::GlobalScheduler& global,
                   const scheduler::MacScheduler& mac,
                   ThroughputConfig config = {}, std::uint64_t seed = 19)
      : global_(global), mac_(mac), config_(config), seed_(seed) {}

  /// The terminal's capacity share through a given allocation at an instant:
  /// Shannon capacity at the slant range, divided by the MAC cycle length,
  /// scaled down by the satellite's background load.
  [[nodiscard]] double capacity_share_mbps(
      const ground::Terminal& terminal,
      const scheduler::Allocation& allocation, double unix_sec) const;

  /// Run an iPerf-style transfer over [start_unix, end_unix).
  [[nodiscard]] ThroughputSeries run(const ground::Terminal& terminal,
                                     double start_unix, double end_unix) const;

 private:
  const scheduler::GlobalScheduler& global_;
  const scheduler::MacScheduler& mac_;
  ThroughputConfig config_;
  std::uint64_t seed_;
};

}  // namespace starlab::measurement
