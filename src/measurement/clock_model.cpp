#include "measurement/clock_model.hpp"

#include <cmath>

#include "scheduler/stochastic.hpp"

namespace starlab::measurement {

double ClockModel::offset_ms(double true_unix_sec) const {
  // Which sync epoch are we in, and how far into it?
  const double epoch_f = std::floor(true_unix_sec / config_.sync_interval_sec);
  const double into = true_unix_sec - epoch_f * config_.sync_interval_sec;

  // Deterministic residual right after this epoch's correction, in
  // [-residual, +residual].
  const auto epoch = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(epoch_f) + (1LL << 40));
  const double u =
      scheduler::uniform01(scheduler::mix_keys(seed_, 0xc10cULL, epoch));
  const double residual = (2.0 * u - 1.0) * config_.residual_offset_ms;

  // Drift accumulates linearly until the next correction. The per-epoch
  // drift sign/magnitude wanders a little too.
  const double v =
      scheduler::uniform01(scheduler::mix_keys(seed_, 0xd41f7ULL, epoch));
  const double ppm = config_.drift_ppm * (0.5 + v);  // 0.5x..1.5x nominal
  const double drift_ms = ppm * 1e-6 * into * 1000.0;

  // Slow thermal wander, continuous across epochs.
  const double wander =
      config_.wander_amplitude_ms *
      std::sin(2.0 * M_PI * true_unix_sec / config_.wander_period_sec);

  return residual + drift_ms + wander;
}

double ClockModel::rtt_error_ms(double true_unix_sec, double rtt_ms) const {
  return offset_ms(true_unix_sec + rtt_ms / 1000.0) - offset_ms(true_unix_sec);
}

}  // namespace starlab::measurement
