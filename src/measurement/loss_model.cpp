#include "measurement/loss_model.hpp"

#include "scheduler/stochastic.hpp"

namespace starlab::measurement {

bool GilbertElliott::step() {
  // Two independent draws per probe: transition, then loss.
  const double u_transition = scheduler::uniform01(
      scheduler::mix_keys(seed_, 0x6e11ULL, sequence_));
  const double u_loss = scheduler::uniform01(
      scheduler::mix_keys(seed_, 0x6e12ULL, sequence_));
  ++sequence_;

  if (bad_) {
    if (u_transition < config_.p_bad_to_good) bad_ = false;
  } else {
    if (u_transition < config_.p_good_to_bad) bad_ = true;
  }
  return u_loss < (bad_ ? config_.loss_bad : config_.loss_good);
}

double GilbertElliott::stationary_loss_rate() const {
  // Stationary probability of Bad: p_gb / (p_gb + p_bg).
  const double denom = config_.p_good_to_bad + config_.p_bad_to_good;
  const double pi_bad = denom > 0.0 ? config_.p_good_to_bad / denom : 0.0;
  return pi_bad * config_.loss_bad + (1.0 - pi_bad) * config_.loss_good;
}

void GilbertElliott::reset() {
  bad_ = false;
  sequence_ = 0;
}

}  // namespace starlab::measurement
