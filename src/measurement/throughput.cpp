#include "measurement/throughput.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "scheduler/stochastic.hpp"

namespace starlab::measurement {

double ThroughputSeries::mean_goodput_mbps() const {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const ThroughputSample& s : samples) sum += s.goodput_mbps;
  return sum / static_cast<double>(samples.size());
}

double ThroughputSeries::saturation_fraction() const {
  if (samples.empty()) return 0.0;
  std::size_t n = 0;
  for (const ThroughputSample& s : samples) {
    if (s.saturated()) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(samples.size());
}

double ThroughputProber::capacity_share_mbps(
    const ground::Terminal& terminal, const scheduler::Allocation& allocation,
    double unix_sec) const {
  (void)unix_sec;
  const double link_capacity = rf::shannon_capacity_mbps(
      config_.link, allocation.look.range(), config_.efficiency);

  // Frame cycle: the beam is time-shared across `cycle` terminals.
  const int cycle =
      mac_.cycle_length(allocation.norad_id, allocation.slot);

  // Background load eats into what the satellite will grant.
  const double load =
      global_.satellite_load(allocation.norad_id, allocation.slot);

  (void)terminal;
  return link_capacity / cycle * (1.0 - 0.5 * load);
}

ThroughputSeries ThroughputProber::run(const ground::Terminal& terminal,
                                       double start_unix,
                                       double end_unix) const {
  ThroughputSeries series;
  series.terminal = terminal.name();

  const time::SlotGrid& grid = global_.grid();
  const std::uint64_t tkey = std::hash<std::string>{}(terminal.name());

  time::SlotIndex cached_slot = 0;
  bool have_cached = false;
  std::optional<scheduler::Allocation> alloc;

  std::uint64_t seq = 0;
  const auto num_samples = static_cast<std::uint64_t>(std::ceil(
      (end_unix - start_unix) / config_.sample_interval_sec - 1e-9));
  for (std::uint64_t i = 0; i < num_samples; ++i, ++seq) {
    const double t = start_unix + static_cast<double>(i) * config_.sample_interval_sec;
    const time::SlotIndex slot = grid.slot_of(t);
    if (!have_cached || slot != cached_slot) {
      alloc = global_.allocate(terminal, slot);
      cached_slot = slot;
      have_cached = true;
    }

    ThroughputSample s;
    s.unix_sec = t;
    s.slot = slot;
    s.offered_mbps = config_.offered_mbps;
    if (alloc.has_value()) {
      const double share = capacity_share_mbps(terminal, *alloc, t);
      const double jitter =
          1.0 + config_.noise_fraction *
                    (2.0 * scheduler::uniform01(scheduler::mix_keys(
                               seed_, tkey, static_cast<std::uint64_t>(slot),
                               seq)) -
                     1.0);
      s.capacity_mbps = share * jitter;
      s.goodput_mbps = std::min(s.offered_mbps, std::max(0.0, s.capacity_mbps));
    }
    series.samples.push_back(s);
  }
  return series;
}

}  // namespace starlab::measurement
