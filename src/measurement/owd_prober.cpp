#include "measurement/owd_prober.hpp"

#include <cmath>

namespace starlab::measurement {

double OwdSeries::max_clock_error_ms() const {
  double worst = 0.0;
  for (const OwdSample& s : samples) {
    worst = std::max(worst, std::fabs(s.measured_owd_ms - s.true_owd_ms));
  }
  return worst;
}

OwdSeries OwdProber::run(const ground::Terminal& terminal, double start_unix,
                         double end_unix) const {
  OwdSeries series;
  series.terminal = terminal.name();

  const time::SlotGrid& grid = global_.grid();
  time::SlotIndex cached_slot = 0;
  bool have_cached = false;
  std::optional<scheduler::Allocation> alloc;

  const double step = interval_ms_ / 1000.0;
  const auto num = static_cast<std::uint64_t>(
      std::ceil((end_unix - start_unix) / step - 1e-9));
  for (std::uint64_t i = 0; i < num; ++i) {
    const double t = start_unix + static_cast<double>(i) * step;
    const time::SlotIndex slot = grid.slot_of(t);
    if (!have_cached || slot != cached_slot) {
      alloc = global_.allocate(terminal, slot);
      cached_slot = slot;
      have_cached = true;
    }
    if (!alloc.has_value()) continue;

    OwdSample s;
    s.unix_sec = t;
    s.slot = slot;
    // The uplink one-way delay is half the (symmetric) RTT here: the model
    // is bent-pipe symmetric, which is what the paper's co-located server
    // was designed to approximate.
    s.true_owd_ms = 0.5 * model_.rtt_ms(terminal, *alloc, t, i);
    // Sender timestamps with its (erroneous) clock; receiver is reference:
    // measured = (t_recv_true) - (t_send_true + offset) = true - offset.
    s.measured_owd_ms = s.true_owd_ms - clock_.offset_ms(t);
    series.samples.push_back(s);
  }
  return series;
}

}  // namespace starlab::measurement
