#include "measurement/latency_model.hpp"

#include <cmath>
#include <functional>

#include "geo/topocentric.hpp"
#include "geo/wgs.hpp"
#include "scheduler/stochastic.hpp"

namespace starlab::measurement {

namespace {

std::uint64_t terminal_key(const ground::Terminal& t) {
  return std::hash<std::string>{}(t.name());
}

/// Standard normal via Box-Muller from two counter-based uniforms.
double gaussian(std::uint64_t key) {
  const double u1 =
      std::max(scheduler::uniform01(scheduler::splitmix64(key)), 1e-12);
  const double u2 = scheduler::uniform01(scheduler::splitmix64(key ^ 0xabcdefULL));
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

double LatencyModel::propagation_ms(const ground::Terminal& terminal,
                                    const scheduler::Allocation& allocation,
                                    double unix_sec) const {
  const time::JulianDate jd = time::JulianDate::from_unix_seconds(unix_sec);
  const geo::LookAngles up =
      catalog_.look_at(allocation.catalog_index, terminal.site(), jd);
  const geo::LookAngles down =
      catalog_.look_at(allocation.catalog_index, terminal.pop_site(), jd);

  const geo::Km one_way = geo::Km(up.range_km) + geo::Km(down.range_km);
  return 2.0 * one_way.value() / geo::kSpeedOfLightKmPerSec * 1000.0;
}

double LatencyModel::rtt_ms(const ground::Terminal& terminal,
                            const scheduler::Allocation& allocation,
                            double unix_sec, std::uint64_t probe_seq) const {
  const double prop = propagation_ms(terminal, allocation, unix_sec);
  const double mac = mac_.queuing_delay_ms(
      allocation.norad_id, terminal_key(terminal), allocation.slot, probe_seq);
  const double noise =
      config_.jitter_sigma_ms *
      gaussian(scheduler::mix_keys(seed_, terminal_key(terminal),
                                   static_cast<std::uint64_t>(allocation.slot),
                                   probe_seq));
  return prop + mac + config_.ground_processing_ms + noise;
}

bool LatencyModel::lost(const ground::Terminal& terminal,
                        const scheduler::Allocation& allocation,
                        std::uint64_t probe_seq) const {
  // Loss rises as the serving satellite nears the elevation floor (longer
  // slant path, weaker link margin).
  const double el_norm =
      std::clamp((allocation.look.elevation_deg - terminal.min_elevation().value()) /
                     (90.0 - terminal.min_elevation().value()),
                 0.0, 1.0);
  const double p = config_.base_loss_rate +
                   config_.low_elevation_loss_boost * (1.0 - el_norm);
  const double u = scheduler::uniform01(scheduler::mix_keys(
      seed_ ^ 0x105705ULL, terminal_key(terminal),
      static_cast<std::uint64_t>(allocation.slot), probe_seq));
  return u < p;
}

}  // namespace starlab::measurement
