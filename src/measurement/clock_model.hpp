#pragma once

// NTP-disciplined clock-error model.
//
// The paper routinely NTP-synced its vantage points and PoP servers because
// one-way timestamps drift. An undisciplined quartz clock drifts tens of
// ppm; NTP periodically steps/slews it back, producing the classic sawtooth
// offset plus a slow thermal wander. RTTs measured against a *single* clock
// cancel the offset almost entirely — this model quantifies both facts and
// lets the measurement layer synthesize one-way-delay series with realistic
// timestamp error.

#include <cstdint>

namespace starlab::measurement {

struct ClockConfig {
  double drift_ppm = 20.0;        ///< frequency error between NTP corrections
  double sync_interval_sec = 1024.0;  ///< NTP poll/correction cadence
  double residual_offset_ms = 0.5;    ///< offset remaining right after a sync
  double wander_amplitude_ms = 1.5;   ///< slow thermal wander amplitude
  double wander_period_sec = 6.0 * 3600.0;  ///< thermal cycle (~daily HVAC)
};

class ClockModel {
 public:
  explicit ClockModel(ClockConfig config = {}, std::uint64_t seed = 31)
      : config_(config), seed_(seed) {}

  /// Clock offset [ms] (local minus true) at a true time. Piecewise-linear
  /// sawtooth from drift between syncs, plus sinusoidal wander; the
  /// post-sync residual is deterministic per sync epoch.
  [[nodiscard]] double offset_ms(double true_unix_sec) const;

  /// Error added to a *one-way* delay measured from this clock to a perfect
  /// remote clock, for a packet sent at the given true time.
  [[nodiscard]] double one_way_error_ms(double true_unix_sec) const {
    return offset_ms(true_unix_sec);
  }

  /// Error added to an RTT measured entirely against this clock: only the
  /// drift accumulated over the flight time survives (microseconds for
  /// LEO RTTs — the reason the paper's RTT methodology is robust).
  [[nodiscard]] double rtt_error_ms(double true_unix_sec,
                                    double rtt_ms) const;

  [[nodiscard]] const ClockConfig& config() const { return config_; }

 private:
  ClockConfig config_;
  std::uint64_t seed_;
};

}  // namespace starlab::measurement
