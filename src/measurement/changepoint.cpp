#include "measurement/changepoint.hpp"

#include <algorithm>
#include <cmath>

namespace starlab::measurement {

namespace {

double quantile_of(std::vector<double> v, double q) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  if (idx >= v.size()) idx = v.size() - 1;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

double median_of(std::vector<double> v) { return quantile_of(std::move(v), 0.5); }

}  // namespace

std::vector<ChangePoint> detect_change_points(const RttSeries& series,
                                              const ChangePointConfig& config) {
  std::vector<ChangePoint> out;
  const std::vector<RttSample> recv = series.received();
  if (recv.size() < 8) return out;

  // 1. Robust per-bucket summary.
  const double t0 = recv.front().unix_sec;
  const double t1 = recv.back().unix_sec;
  const auto num_buckets =
      static_cast<std::size_t>((t1 - t0) / config.bucket_sec) + 1;
  std::vector<std::vector<double>> bucket_vals(num_buckets);
  for (const RttSample& s : recv) {
    const auto b = static_cast<std::size_t>((s.unix_sec - t0) / config.bucket_sec);
    bucket_vals[std::min(b, num_buckets - 1)].push_back(s.rtt_ms);
  }
  std::vector<double> medians(num_buckets);
  for (std::size_t i = 0; i < num_buckets; ++i) {
    medians[i] =
        quantile_of(std::move(bucket_vals[i]), config.summary_quantile);
  }

  // 2. Median-shift scan: compare the medians of the window_buckets buckets
  //    on each side of every bucket boundary.
  const auto w = static_cast<std::size_t>(config.window_buckets);
  std::vector<ChangePoint> candidates;
  for (std::size_t edge = w; edge + w <= num_buckets; ++edge) {
    std::vector<double> left, right;
    for (std::size_t i = edge - w; i < edge; ++i) {
      if (!std::isnan(medians[i])) left.push_back(medians[i]);
    }
    for (std::size_t i = edge; i < edge + w; ++i) {
      if (!std::isnan(medians[i])) right.push_back(medians[i]);
    }
    if (left.empty() || right.empty()) continue;
    const double shift = std::fabs(median_of(right) - median_of(left));
    if (shift >= config.threshold_ms) {
      candidates.push_back(
          {t0 + static_cast<double>(edge) * config.bucket_sec, shift});
    }
  }

  // 3. Non-maximum suppression: within any min_separation window keep the
  //    strongest shift.
  std::sort(candidates.begin(), candidates.end(),
            [](const ChangePoint& a, const ChangePoint& b) {
              return a.magnitude_ms > b.magnitude_ms;
            });
  for (const ChangePoint& c : candidates) {
    const bool close_to_kept =
        std::any_of(out.begin(), out.end(), [&](const ChangePoint& k) {
          return std::fabs(k.unix_sec - c.unix_sec) < config.min_separation_sec;
        });
    if (!close_to_kept) out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const ChangePoint& a, const ChangePoint& b) {
              return a.unix_sec < b.unix_sec;
            });
  return out;
}

EpochEstimate estimate_epoch(const std::vector<ChangePoint>& change_points,
                             const EpochSearchConfig& config) {
  EpochEstimate best;
  if (change_points.size() < 3) return best;

  const double span_begin = change_points.front().unix_sec;
  const double span_end = change_points.back().unix_sec;

  for (double period = config.min_period_sec; period <= config.max_period_sec;
       period += config.period_step_sec) {
    // Scan candidate offsets at half-tolerance resolution.
    for (double offset = 0.0; offset < period; offset += config.tolerance_sec / 2) {
      std::size_t matched_changes = 0;
      for (const ChangePoint& c : change_points) {
        double phase = std::fmod(c.unix_sec - offset, period);
        if (phase < 0.0) phase += period;
        const double dist = std::min(phase, period - phase);
        if (dist <= config.tolerance_sec) ++matched_changes;
      }

      // Precision: how many predicted boundaries in the observed span have a
      // change point nearby?
      std::size_t boundaries = 0, matched_boundaries = 0;
      const double first_k = std::ceil((span_begin - offset) / period);
      for (double k = first_k;; k += 1.0) {
        const double t = offset + k * period;
        if (t > span_end) break;
        ++boundaries;
        for (const ChangePoint& c : change_points) {
          if (std::fabs(c.unix_sec - t) <= config.tolerance_sec) {
            ++matched_boundaries;
            break;
          }
        }
      }
      if (boundaries == 0) continue;

      const double recall = static_cast<double>(matched_changes) /
                            static_cast<double>(change_points.size());
      const double precision = static_cast<double>(matched_boundaries) /
                               static_cast<double>(boundaries);
      if (precision + recall <= 0.0) continue;
      const double f1 = 2.0 * precision * recall / (precision + recall);

      if (f1 > best.support) {
        best.support = f1;
        best.period_sec = period;
        // Normalize the offset into the minute (the paper reports ":12").
        best.offset_sec = std::fmod(offset, period);
      }
    }
  }

  // Express the offset within the minute when the period divides 60 s, which
  // matches the paper's ":12/:27/:42/:57" convention.
  if (best.period_sec > 0.0 && std::fmod(60.0, best.period_sec) < 1e-9) {
    // offset within the minute == offset within the period for such grids.
    best.offset_sec = std::fmod(best.offset_sec, best.period_sec);
  }
  return best;
}

}  // namespace starlab::measurement
