#pragma once

// iRTT-style high-frequency prober.
//
// The paper sends 1 probe every 20 ms from each dish to its PoP-co-located
// server. RttProber reproduces that measurement: for each probe it resolves
// the serving satellite from the global-scheduler oracle (cached per
// 15-second slot) and synthesizes the RTT through the latency model. The
// output series is what §3's change-point and Mann-Whitney analyses consume.

#include <cstdint>
#include <vector>

#include "measurement/latency_model.hpp"

namespace starlab::measurement {

/// One probe result.
struct RttSample {
  double unix_sec = 0.0;
  double rtt_ms = 0.0;
  bool lost = false;
  time::SlotIndex slot = 0;  ///< scheduling slot the probe fell into
};

/// A probe series plus the context needed to interpret it.
struct RttSeries {
  std::string terminal;
  double interval_ms = 20.0;
  std::vector<RttSample> samples;

  /// Received (non-lost) samples only. An empty series yields an empty
  /// vector.
  [[nodiscard]] std::vector<RttSample> received() const;

  /// Fraction of probes lost. Defined as 0 (not NaN) for an empty series,
  /// so degraded campaigns that recorded nothing stay safe to aggregate.
  [[nodiscard]] double loss_rate() const;
};

struct ProberConfig {
  double interval_ms = 20.0;  ///< 1 probe / 20 ms, like the paper's iRTT runs
};

class RttProber {
 public:
  RttProber(const scheduler::GlobalScheduler& global, const LatencyModel& model,
            ProberConfig config = {})
      : global_(global), model_(model), config_(config) {}

  /// Probe `terminal` continuously over [start_unix, end_unix).
  [[nodiscard]] RttSeries run(const ground::Terminal& terminal,
                              double start_unix, double end_unix) const;

 private:
  const scheduler::GlobalScheduler& global_;
  const LatencyModel& model_;
  ProberConfig config_;
};

}  // namespace starlab::measurement
