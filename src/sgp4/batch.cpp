#include "sgp4/batch.hpp"

namespace starlab::sgp4 {

void SoaConstants::reserve(std::size_t n) {
  epoch_.reserve(n);
  ecco_.reserve(n);
  inclo_.reserve(n);
  nodeo_.reserve(n);
  argpo_.reserve(n);
  mo_.reserve(n);
  bstar_.reserve(n);
  no_unkozai_.reserve(n);
  isimp_.reserve(n);
  aycof_.reserve(n);
  con41_.reserve(n);
  cc1_.reserve(n);
  cc4_.reserve(n);
  cc5_.reserve(n);
  d2_.reserve(n);
  d3_.reserve(n);
  d4_.reserve(n);
  delmo_.reserve(n);
  eta_.reserve(n);
  argpdot_.reserve(n);
  omgcof_.reserve(n);
  sinmao_.reserve(n);
  t2cof_.reserve(n);
  t3cof_.reserve(n);
  t4cof_.reserve(n);
  t5cof_.reserve(n);
  x1mth2_.reserve(n);
  x7thm1_.reserve(n);
  mdot_.reserve(n);
  nodedot_.reserve(n);
  xlcof_.reserve(n);
  xmcof_.reserve(n);
  nodecf_.reserve(n);
  ao_.reserve(n);
}

void SoaConstants::push_back(const CommonConstants& c) {
  epoch_.push_back(c.epoch);
  ecco_.push_back(c.ecco);
  inclo_.push_back(c.inclo);
  nodeo_.push_back(c.nodeo);
  argpo_.push_back(c.argpo);
  mo_.push_back(c.mo);
  bstar_.push_back(c.bstar);
  no_unkozai_.push_back(c.no_unkozai);
  isimp_.push_back(c.isimp ? 1 : 0);
  aycof_.push_back(c.aycof);
  con41_.push_back(c.con41);
  cc1_.push_back(c.cc1);
  cc4_.push_back(c.cc4);
  cc5_.push_back(c.cc5);
  d2_.push_back(c.d2);
  d3_.push_back(c.d3);
  d4_.push_back(c.d4);
  delmo_.push_back(c.delmo);
  eta_.push_back(c.eta);
  argpdot_.push_back(c.argpdot);
  omgcof_.push_back(c.omgcof);
  sinmao_.push_back(c.sinmao);
  t2cof_.push_back(c.t2cof);
  t3cof_.push_back(c.t3cof);
  t4cof_.push_back(c.t4cof);
  t5cof_.push_back(c.t5cof);
  x1mth2_.push_back(c.x1mth2);
  x7thm1_.push_back(c.x7thm1);
  mdot_.push_back(c.mdot);
  nodedot_.push_back(c.nodedot);
  xlcof_.push_back(c.xlcof);
  xmcof_.push_back(c.xmcof);
  nodecf_.push_back(c.nodecf);
  ao_.push_back(c.ao);
}

CommonConstants SoaConstants::load(std::size_t i) const {
  CommonConstants c;
  c.epoch = epoch_[i];
  c.ecco = ecco_[i];
  c.inclo = inclo_[i];
  c.nodeo = nodeo_[i];
  c.argpo = argpo_[i];
  c.mo = mo_[i];
  c.bstar = bstar_[i];
  c.no_unkozai = no_unkozai_[i];
  c.isimp = isimp_[i] != 0;
  c.aycof = aycof_[i];
  c.con41 = con41_[i];
  c.cc1 = cc1_[i];
  c.cc4 = cc4_[i];
  c.cc5 = cc5_[i];
  c.d2 = d2_[i];
  c.d3 = d3_[i];
  c.d4 = d4_[i];
  c.delmo = delmo_[i];
  c.eta = eta_[i];
  c.argpdot = argpdot_[i];
  c.omgcof = omgcof_[i];
  c.sinmao = sinmao_[i];
  c.t2cof = t2cof_[i];
  c.t3cof = t3cof_[i];
  c.t4cof = t4cof_[i];
  c.t5cof = t5cof_[i];
  c.x1mth2 = x1mth2_[i];
  c.x7thm1 = x7thm1_[i];
  c.mdot = mdot_[i];
  c.nodedot = nodedot_[i];
  c.xlcof = xlcof_[i];
  c.xmcof = xmcof_[i];
  c.nodecf = nodecf_[i];
  c.ao = ao_[i];
  return c;
}

}  // namespace starlab::sgp4
