#pragma once

// Ephemeris: the glue between the TEME-frame SGP4 propagator and ground
// geometry. Higher layers (field-of-view queries, obstruction-map painting,
// the scheduler oracle) only ever talk to this interface.

#include "geo/frame_vec.hpp"
#include "geo/geodetic.hpp"
#include "geo/topocentric.hpp"
#include "geo/vec3.hpp"
#include "sgp4/sgp4.hpp"
#include "time/julian_date.hpp"

namespace starlab::sgp4 {

class Ephemeris {
 public:
  explicit Ephemeris(const tle::Tle& tle) : propagator_(tle) {}

  /// TEME state at a UTC instant.
  [[nodiscard]] StateVector state_teme(const time::JulianDate& jd) const {
    return propagator_.propagate_to(jd);
  }

  /// Earth-fixed position [km] at a UTC instant.
  [[nodiscard]] geo::EcefKm position_ecef(const time::JulianDate& jd) const;

  /// Geodetic sub-satellite point (and altitude) at a UTC instant.
  [[nodiscard]] geo::Geodetic subpoint(const time::JulianDate& jd) const;

  /// Look angles from a ground observer at a UTC instant.
  [[nodiscard]] geo::LookAngles look_from(const geo::Geodetic& observer,
                                          const time::JulianDate& jd) const;

  [[nodiscard]] const Sgp4& propagator() const { return propagator_; }

 private:
  Sgp4 propagator_;
};

}  // namespace starlab::sgp4
