#include "sgp4/ephemeris.hpp"

#include "geo/frames.hpp"

namespace starlab::sgp4 {

geo::EcefKm Ephemeris::position_ecef(const time::JulianDate& jd) const {
  return geo::teme_to_ecef(geo::TemeKm(state_teme(jd).position_km), jd);
}

geo::Geodetic Ephemeris::subpoint(const time::JulianDate& jd) const {
  return geo::ecef_to_geodetic(position_ecef(jd));
}

geo::LookAngles Ephemeris::look_from(const geo::Geodetic& observer,
                                     const time::JulianDate& jd) const {
  return geo::look_angles(observer, position_ecef(jd));
}

}  // namespace starlab::sgp4
