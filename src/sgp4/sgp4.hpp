#pragma once

// SGP4 orbit propagator (near-Earth variant), after Vallado et al.,
// "Revisiting Spacetrack Report #3" (AIAA 2006-6753) and the reference
// implementation in Vallado's sgp4unit.
//
// This is the same propagator the paper runs (via Skyfield) on CelesTrak
// TLEs to compute candidate satellite positions for every 15-second slot.
// Only the near-Earth branch is implemented: every Starlink shell orbits
// with a period around 95 minutes, far below the 225-minute deep-space
// threshold; constructing an Sgp4 from a deep-space element set throws.
//
// The propagator is split into two halves so a whole catalog can run in a
// tight batch loop (constellation::Catalog stores one CommonConstants per
// satellite in structure-of-arrays form):
//   * init_common_constants — the Kozai -> Brouwer recovery plus every
//     secular/periodic coefficient, computed once per element set;
//   * propagate_common — the per-step evaluation, a pure function of
//     (constants, tsince) with a non-throwing status so batch loops pay no
//     exception machinery per satellite.
// Sgp4 remains the single-satellite facade over exactly these two halves,
// so the batch path is bit-identical to Sgp4::propagate by construction.
//
// Frames/units: input TLE mean elements (WGS-72), output position [km] and
// velocity [km/s] in the TEME frame at the requested time since epoch.

#include <stdexcept>

#include "geo/vec3.hpp"
#include "time/julian_date.hpp"
#include "tle/tle.hpp"

namespace starlab::sgp4 {

/// Thrown when an element set cannot be initialized (deep-space orbit,
/// nonsensical elements) or when propagation leaves SGP4's domain (orbit
/// decay, eccentricity blow-up from drag).
class Sgp4Error : public std::runtime_error {
 public:
  enum class Code {
    kDeepSpaceUnsupported,
    kEccentricityOutOfRange,
    kMeanMotionNonPositive,
    kNegativeSemiLatusRectum,
    kKeplerNonConvergence,
    kDecayed,
  };

  Sgp4Error(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] Code code() const { return code_; }

 private:
  Code code_;
};

/// Position/velocity state in TEME.
struct StateVector {
  geo::Vec3 position_km;
  geo::Vec3 velocity_km_s;
};

/// Everything propagate_common needs that does not depend on tsince: the
/// original mean elements plus every precomputed secular/periodic
/// coefficient (names follow the reference implementation). One instance
/// per element set, computed once by init_common_constants.
struct CommonConstants {
  time::JulianDate epoch;

  // Original mean elements (radians, rad/min).
  double ecco = 0.0, inclo = 0.0, nodeo = 0.0, argpo = 0.0, mo = 0.0;
  double bstar = 0.0;
  double no_unkozai = 0.0;

  // Precomputed coefficients.
  bool isimp = false;
  double aycof = 0.0, con41 = 0.0, cc1 = 0.0, cc4 = 0.0, cc5 = 0.0;
  double d2 = 0.0, d3 = 0.0, d4 = 0.0, delmo = 0.0, eta = 0.0;
  double argpdot = 0.0, omgcof = 0.0, sinmao = 0.0, t2cof = 0.0;
  double t3cof = 0.0, t4cof = 0.0, t5cof = 0.0, x1mth2 = 0.0;
  double x7thm1 = 0.0, mdot = 0.0, nodedot = 0.0, xlcof = 0.0;
  double xmcof = 0.0, nodecf = 0.0;
  /// Brouwer semi-major axis at epoch [earth radii] — also the exact value
  /// of pow(xke / no_unkozai, 2/3), reused by propagate_common so the hot
  /// loop skips one pow per call.
  double ao = 0.0;
};

/// Outcome of the non-throwing propagation core. Batch loops branch on the
/// status; the single-satellite facade converts non-kOk to Sgp4Error.
enum class PropagateStatus {
  kOk,
  kEccentricityOutOfRange,
  kNegativeSemiLatusRectum,
  kDecayed,
};

/// Initialize the full constant set from a parsed TLE. Performs the
/// Kozai -> Brouwer mean-motion recovery. Throws Sgp4Error on invalid or
/// deep-space elements.
[[nodiscard]] CommonConstants init_common_constants(const tle::Tle& tle);

/// Propagate to `tsince_minutes` after the element-set epoch (negative
/// values propagate backwards). Pure function of its arguments; never
/// throws — out-of-domain states are reported through the status and leave
/// `out` unspecified.
[[nodiscard]] PropagateStatus propagate_common(const CommonConstants& c,
                                               double tsince_minutes,
                                               StateVector& out) noexcept;

/// Throwing wrapper over propagate_common with the historical Sgp4 error
/// messages.
[[nodiscard]] StateVector propagate_or_throw(const CommonConstants& c,
                                             double tsince_minutes);

class Sgp4 {
 public:
  /// Initialize the propagator from a parsed TLE. Performs the Kozai ->
  /// Brouwer mean-motion recovery and precomputes all secular/periodic
  /// coefficients. Throws Sgp4Error on invalid or deep-space elements.
  explicit Sgp4(const tle::Tle& tle) : c_(init_common_constants(tle)) {}

  /// Propagate to `tsince_minutes` after the element-set epoch (negative
  /// values propagate backwards). Throws Sgp4Error if the orbit leaves the
  /// propagator's domain.
  [[nodiscard]] StateVector propagate(double tsince_minutes) const {
    return propagate_or_throw(c_, tsince_minutes);
  }

  /// Propagate to an absolute UTC instant.
  [[nodiscard]] StateVector propagate_to(const time::JulianDate& jd) const {
    return propagate(jd.minutes_since(c_.epoch));
  }

  /// Element-set epoch.
  [[nodiscard]] const time::JulianDate& epoch() const { return c_.epoch; }

  /// Brouwer mean motion recovered at init [rad/min].
  [[nodiscard]] double mean_motion_rad_min() const { return c_.no_unkozai; }

  /// Semi-major axis at epoch [km].
  [[nodiscard]] double semi_major_axis_km() const;

  /// The precomputed constant set (e.g. for structure-of-arrays storage).
  [[nodiscard]] const CommonConstants& constants() const { return c_; }

 private:
  CommonConstants c_;
};

}  // namespace starlab::sgp4
