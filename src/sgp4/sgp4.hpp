#pragma once

// SGP4 orbit propagator (near-Earth variant), after Vallado et al.,
// "Revisiting Spacetrack Report #3" (AIAA 2006-6753) and the reference
// implementation in Vallado's sgp4unit.
//
// This is the same propagator the paper runs (via Skyfield) on CelesTrak
// TLEs to compute candidate satellite positions for every 15-second slot.
// Only the near-Earth branch is implemented: every Starlink shell orbits
// with a period around 95 minutes, far below the 225-minute deep-space
// threshold; constructing an Sgp4 from a deep-space element set throws.
//
// Frames/units: input TLE mean elements (WGS-72), output position [km] and
// velocity [km/s] in the TEME frame at the requested time since epoch.

#include <stdexcept>

#include "geo/vec3.hpp"
#include "time/julian_date.hpp"
#include "tle/tle.hpp"

namespace starlab::sgp4 {

/// Thrown when an element set cannot be initialized (deep-space orbit,
/// nonsensical elements) or when propagation leaves SGP4's domain (orbit
/// decay, eccentricity blow-up from drag).
class Sgp4Error : public std::runtime_error {
 public:
  enum class Code {
    kDeepSpaceUnsupported,
    kEccentricityOutOfRange,
    kMeanMotionNonPositive,
    kNegativeSemiLatusRectum,
    kKeplerNonConvergence,
    kDecayed,
  };

  Sgp4Error(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] Code code() const { return code_; }

 private:
  Code code_;
};

/// Position/velocity state in TEME.
struct StateVector {
  geo::Vec3 position_km;
  geo::Vec3 velocity_km_s;
};

class Sgp4 {
 public:
  /// Initialize the propagator from a parsed TLE. Performs the Kozai ->
  /// Brouwer mean-motion recovery and precomputes all secular/periodic
  /// coefficients. Throws Sgp4Error on invalid or deep-space elements.
  explicit Sgp4(const tle::Tle& tle);

  /// Propagate to `tsince_minutes` after the element-set epoch (negative
  /// values propagate backwards). Throws Sgp4Error if the orbit leaves the
  /// propagator's domain.
  [[nodiscard]] StateVector propagate(double tsince_minutes) const;

  /// Propagate to an absolute UTC instant.
  [[nodiscard]] StateVector propagate_to(const time::JulianDate& jd) const {
    return propagate(jd.minutes_since(epoch_));
  }

  /// Element-set epoch.
  [[nodiscard]] const time::JulianDate& epoch() const { return epoch_; }

  /// Brouwer mean motion recovered at init [rad/min].
  [[nodiscard]] double mean_motion_rad_min() const { return no_unkozai_; }

  /// Semi-major axis at epoch [km].
  [[nodiscard]] double semi_major_axis_km() const;

 private:
  time::JulianDate epoch_;

  // Original mean elements (radians, rad/min).
  double ecco_ = 0.0, inclo_ = 0.0, nodeo_ = 0.0, argpo_ = 0.0, mo_ = 0.0;
  double bstar_ = 0.0;
  double no_unkozai_ = 0.0;

  // Precomputed coefficients (names follow the reference implementation).
  bool isimp_ = false;
  double aycof_ = 0.0, con41_ = 0.0, cc1_ = 0.0, cc4_ = 0.0, cc5_ = 0.0;
  double d2_ = 0.0, d3_ = 0.0, d4_ = 0.0, delmo_ = 0.0, eta_ = 0.0;
  double argpdot_ = 0.0, omgcof_ = 0.0, sinmao_ = 0.0, t2cof_ = 0.0;
  double t3cof_ = 0.0, t4cof_ = 0.0, t5cof_ = 0.0, x1mth2_ = 0.0;
  double x7thm1_ = 0.0, mdot_ = 0.0, nodedot_ = 0.0, xlcof_ = 0.0;
  double xmcof_ = 0.0, nodecf_ = 0.0;
  double ao_ = 0.0;
};

}  // namespace starlab::sgp4
