#include "sgp4/sgp4.hpp"

#include <cmath>

#include "geo/angles.hpp"
#include "geo/wgs.hpp"

namespace starlab::sgp4 {

namespace {

// WGS-72 gravity constants in SGP4's canonical units.
constexpr double kMu = geo::kWgs72.mu_km3_s2;
constexpr double kRe = geo::kWgs72.radius_km;
constexpr double kJ2 = geo::kWgs72.j2;
constexpr double kJ3 = geo::kWgs72.j3;
constexpr double kJ4 = geo::kWgs72.j4;
constexpr double kJ3OverJ2 = kJ3 / kJ2;
const double kXke = 60.0 / std::sqrt(kRe * kRe * kRe / kMu);  // sqrt(mu) in ER^1.5/min
constexpr double kTwoThirds = 2.0 / 3.0;
constexpr double kTwoPi = geo::kTwoPi;

}  // namespace

Sgp4::Sgp4(const tle::Tle& tle) : epoch_(tle.epoch_jd()) {
  ecco_ = tle.eccentricity;
  inclo_ = geo::deg_to_rad(tle.inclination_deg);
  nodeo_ = geo::deg_to_rad(tle.raan_deg);
  argpo_ = geo::deg_to_rad(tle.arg_perigee_deg);
  mo_ = geo::deg_to_rad(tle.mean_anomaly_deg);
  bstar_ = tle.bstar;

  if (ecco_ < 0.0 || ecco_ >= 1.0) {
    throw Sgp4Error(Sgp4Error::Code::kEccentricityOutOfRange,
                    "TLE eccentricity outside [0,1)");
  }
  const double no_kozai =
      tle.mean_motion_rev_per_day * kTwoPi / time::kMinutesPerDay;  // rad/min
  if (no_kozai <= 0.0) {
    throw Sgp4Error(Sgp4Error::Code::kMeanMotionNonPositive,
                    "TLE mean motion must be positive");
  }

  // ---- initl: recover the Brouwer mean motion from the Kozai value. ----
  const double eccsq = ecco_ * ecco_;
  const double omeosq = 1.0 - eccsq;
  const double rteosq = std::sqrt(omeosq);
  const double cosio = std::cos(inclo_);
  const double cosio2 = cosio * cosio;

  const double ak = std::pow(kXke / no_kozai, kTwoThirds);
  const double d1 = 0.75 * kJ2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
  double del = d1 / (ak * ak);
  const double adel =
      ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
  del = d1 / (adel * adel);
  no_unkozai_ = no_kozai / (1.0 + del);

  ao_ = std::pow(kXke / no_unkozai_, kTwoThirds);
  const double sinio = std::sin(inclo_);
  const double po = ao_ * omeosq;
  const double con42 = 1.0 - 5.0 * cosio2;
  con41_ = -con42 - 2.0 * cosio2;  // == 3*cos^2(i) - 1
  const double posq = po * po;
  const double rp = ao_ * (1.0 - ecco_);

  if (kTwoPi / no_unkozai_ >= 225.0) {
    throw Sgp4Error(Sgp4Error::Code::kDeepSpaceUnsupported,
                    "deep-space (period >= 225 min) element sets are not "
                    "supported; Starlink shells are all near-Earth");
  }

  // ---- sgp4init: drag and periodic coefficients. ----
  isimp_ = rp < (220.0 / kRe + 1.0);

  // Atmospheric-density reference altitudes (s4 / q0 parameters).
  double sfour = 78.0 / kRe + 1.0;
  double qzms24 = std::pow((120.0 - 78.0) / kRe, 4.0);
  const double perige = (rp - 1.0) * kRe;
  if (perige < 156.0) {
    sfour = perige - 78.0;
    if (perige < 98.0) sfour = 20.0;
    qzms24 = std::pow((120.0 - sfour) / kRe, 4.0);
    sfour = sfour / kRe + 1.0;
  }

  const double pinvsq = 1.0 / posq;
  const double tsi = 1.0 / (ao_ - sfour);
  eta_ = ao_ * ecco_ * tsi;
  const double etasq = eta_ * eta_;
  const double eeta = ecco_ * eta_;
  const double psisq = std::fabs(1.0 - etasq);
  const double coef = qzms24 * std::pow(tsi, 4.0);
  const double coef1 = coef / std::pow(psisq, 3.5);

  const double cc2 =
      coef1 * no_unkozai_ *
      (ao_ * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
       0.375 * kJ2 * tsi / psisq * con41_ * (8.0 + 3.0 * etasq * (8.0 + etasq)));
  cc1_ = bstar_ * cc2;
  double cc3 = 0.0;
  if (ecco_ > 1.0e-4) {
    cc3 = -2.0 * coef * tsi * kJ3OverJ2 * no_unkozai_ * sinio / ecco_;
  }
  x1mth2_ = 1.0 - cosio2;
  cc4_ = 2.0 * no_unkozai_ * coef1 * ao_ * omeosq *
         (eta_ * (2.0 + 0.5 * etasq) + ecco_ * (0.5 + 2.0 * etasq) -
          kJ2 * tsi / (ao_ * psisq) *
              (-3.0 * con41_ * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
               0.75 * x1mth2_ * (2.0 * etasq - eeta * (1.0 + etasq)) *
                   std::cos(2.0 * argpo_)));
  cc5_ = 2.0 * coef1 * ao_ * omeosq *
         (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

  const double cosio4 = cosio2 * cosio2;
  const double temp1 = 1.5 * kJ2 * pinvsq * no_unkozai_;
  const double temp2 = 0.5 * temp1 * kJ2 * pinvsq;
  const double temp3 = -0.46875 * kJ4 * pinvsq * pinvsq * no_unkozai_;
  mdot_ = no_unkozai_ + 0.5 * temp1 * rteosq * con41_ +
          0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
  argpdot_ = -0.5 * temp1 * con42 +
             0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
             temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
  const double xhdot1 = -temp1 * cosio;
  nodedot_ = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                       2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                          cosio;

  omgcof_ = bstar_ * cc3 * std::cos(argpo_);
  xmcof_ = 0.0;
  if (ecco_ > 1.0e-4) xmcof_ = -kTwoThirds * coef * bstar_ / eeta;
  nodecf_ = 3.5 * omeosq * xhdot1 * cc1_;
  t2cof_ = 1.5 * cc1_;

  // xlcof has a singularity at i == 180 deg; use the reference guard.
  if (std::fabs(cosio + 1.0) > 1.5e-12) {
    xlcof_ = -0.25 * kJ3OverJ2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
  } else {
    xlcof_ = -0.25 * kJ3OverJ2 * sinio * (3.0 + 5.0 * cosio) / 1.5e-12;
  }
  aycof_ = -0.5 * kJ3OverJ2 * sinio;
  delmo_ = std::pow(1.0 + eta_ * std::cos(mo_), 3.0);
  sinmao_ = std::sin(mo_);
  x7thm1_ = 7.0 * cosio2 - 1.0;

  if (!isimp_) {
    const double cc1sq = cc1_ * cc1_;
    d2_ = 4.0 * ao_ * tsi * cc1sq;
    const double temp = d2_ * tsi * cc1_ / 3.0;
    d3_ = (17.0 * ao_ + sfour) * temp;
    d4_ = 0.5 * temp * ao_ * tsi * (221.0 * ao_ + 31.0 * sfour) * cc1_;
    t3cof_ = d2_ + 2.0 * cc1sq;
    t4cof_ = 0.25 * (3.0 * d3_ + cc1_ * (12.0 * d2_ + 10.0 * cc1sq));
    t5cof_ = 0.2 * (3.0 * d4_ + 12.0 * cc1_ * d3_ + 6.0 * d2_ * d2_ +
                    15.0 * cc1sq * (2.0 * d2_ + cc1sq));
  }
}

double Sgp4::semi_major_axis_km() const { return ao_ * kRe; }

StateVector Sgp4::propagate(double t) const {
  // ---- Secular gravity and atmospheric drag. ----
  const double xmdf = mo_ + mdot_ * t;
  const double argpdf = argpo_ + argpdot_ * t;
  const double nodedf = nodeo_ + nodedot_ * t;
  double argpm = argpdf;
  double mm = xmdf;
  const double t2 = t * t;
  double nodem = nodedf + nodecf_ * t2;
  double tempa = 1.0 - cc1_ * t;
  double tempe = bstar_ * cc4_ * t;
  double templ = t2cof_ * t2;

  if (!isimp_) {
    const double delomg = omgcof_ * t;
    const double delmtemp = 1.0 + eta_ * std::cos(xmdf);
    const double delm = xmcof_ * (delmtemp * delmtemp * delmtemp - delmo_);
    const double temp = delomg + delm;
    mm = xmdf + temp;
    argpm = argpdf - temp;
    const double t3 = t2 * t;
    const double t4 = t3 * t;
    tempa = tempa - d2_ * t2 - d3_ * t3 - d4_ * t4;
    tempe = tempe + bstar_ * cc5_ * (std::sin(mm) - sinmao_);
    templ = templ + t3cof_ * t3 + t4 * (t4cof_ + t * t5cof_);
  }

  double nm = no_unkozai_;
  double em = ecco_;
  const double inclm = inclo_;

  const double am = std::pow(kXke / nm, kTwoThirds) * tempa * tempa;
  nm = kXke / std::pow(am, 1.5);
  em = em - tempe;

  if (em >= 1.0 || em < -0.001) {
    throw Sgp4Error(Sgp4Error::Code::kEccentricityOutOfRange,
                    "propagated eccentricity outside SGP4 domain");
  }
  if (em < 1.0e-6) em = 1.0e-6;

  mm = mm + no_unkozai_ * templ;
  double xlm = mm + argpm + nodem;
  nodem = std::fmod(nodem, kTwoPi);
  argpm = std::fmod(argpm, kTwoPi);
  xlm = std::fmod(xlm, kTwoPi);
  mm = std::fmod(xlm - argpm - nodem, kTwoPi);

  // ---- Long-period periodics. ----
  const double sinip = std::sin(inclm);
  const double cosip = std::cos(inclm);
  const double ep = em;
  const double xincp = inclm;
  const double argpp = argpm;
  const double nodep = nodem;
  const double mp = mm;

  const double axnl = ep * std::cos(argpp);
  double temp = 1.0 / (am * (1.0 - ep * ep));
  const double aynl = ep * std::sin(argpp) + temp * aycof_;
  const double xl = mp + argpp + nodep + temp * xlcof_ * axnl;

  // ---- Kepler's equation (modified for long-period terms). ----
  const double u = std::fmod(xl - nodep, kTwoPi);
  double eo1 = u;
  double tem5 = 9999.9;
  double sineo1 = 0.0, coseo1 = 0.0;
  int ktr = 1;
  while (std::fabs(tem5) >= 1.0e-12 && ktr <= 10) {
    sineo1 = std::sin(eo1);
    coseo1 = std::cos(eo1);
    tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
    tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
    if (std::fabs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
    eo1 += tem5;
    ++ktr;
  }

  // ---- Short-period periodics. ----
  const double ecose = axnl * coseo1 + aynl * sineo1;
  const double esine = axnl * sineo1 - aynl * coseo1;
  const double el2 = axnl * axnl + aynl * aynl;
  const double pl = am * (1.0 - el2);
  if (pl < 0.0) {
    throw Sgp4Error(Sgp4Error::Code::kNegativeSemiLatusRectum,
                    "semi-latus rectum went negative");
  }

  const double rl = am * (1.0 - ecose);
  const double rdotl = std::sqrt(am) * esine / rl;
  const double rvdotl = std::sqrt(pl) / rl;
  const double betal = std::sqrt(1.0 - el2);
  temp = esine / (1.0 + betal);
  const double sinu = am / rl * (sineo1 - aynl - axnl * temp);
  const double cosu = am / rl * (coseo1 - axnl + aynl * temp);
  double su = std::atan2(sinu, cosu);
  const double sin2u = (cosu + cosu) * sinu;
  const double cos2u = 1.0 - 2.0 * sinu * sinu;
  temp = 1.0 / pl;
  const double temp1 = 0.5 * kJ2 * temp;
  const double temp2 = temp1 * temp;

  const double mrt =
      rl * (1.0 - 1.5 * temp2 * betal * con41_) + 0.5 * temp1 * x1mth2_ * cos2u;
  su = su - 0.25 * temp2 * x7thm1_ * sin2u;
  const double xnode = nodep + 1.5 * temp2 * cosip * sin2u;
  const double xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
  const double mvt = rdotl - nm * temp1 * x1mth2_ * sin2u / kXke;
  const double rvdot =
      rvdotl + nm * temp1 * (x1mth2_ * cos2u + 1.5 * con41_) / kXke;

  // ---- Orientation vectors and final state. ----
  const double sinsu = std::sin(su);
  const double cossu = std::cos(su);
  const double snod = std::sin(xnode);
  const double cnod = std::cos(xnode);
  const double sini = std::sin(xinc);
  const double cosi = std::cos(xinc);
  const double xmx = -snod * cosi;
  const double xmy = cnod * cosi;
  const double ux = xmx * sinsu + cnod * cossu;
  const double uy = xmy * sinsu + snod * cossu;
  const double uz = sini * sinsu;
  const double vx = xmx * cossu - cnod * sinsu;
  const double vy = xmy * cossu - snod * sinsu;
  const double vz = sini * cossu;

  if (mrt < 1.0) {
    throw Sgp4Error(Sgp4Error::Code::kDecayed, "satellite has decayed");
  }

  const double vkmpersec = kRe * kXke / 60.0;
  StateVector out;
  out.position_km = {mrt * ux * kRe, mrt * uy * kRe, mrt * uz * kRe};
  out.velocity_km_s = {(mvt * ux + rvdot * vx) * vkmpersec,
                       (mvt * uy + rvdot * vy) * vkmpersec,
                       (mvt * uz + rvdot * vz) * vkmpersec};
  return out;
}

}  // namespace starlab::sgp4
