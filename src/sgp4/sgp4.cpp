#include "sgp4/sgp4.hpp"

#include <cmath>

#include "check/hotpath.hpp"
#include "geo/angles.hpp"
#include "geo/wgs.hpp"

namespace starlab::sgp4 {

namespace {

// WGS-72 gravity constants in SGP4's canonical units.
constexpr double kMu = geo::kWgs72.mu_km3_s2;
constexpr double kRe = geo::kWgs72.radius_km;
constexpr double kJ2 = geo::kWgs72.j2;
constexpr double kJ3 = geo::kWgs72.j3;
constexpr double kJ4 = geo::kWgs72.j4;
constexpr double kJ3OverJ2 = kJ3 / kJ2;
const double kXke = 60.0 / std::sqrt(kRe * kRe * kRe / kMu);  // sqrt(mu) in ER^1.5/min
constexpr double kTwoThirds = 2.0 / 3.0;
constexpr double kTwoPi = geo::kTwoPi;

}  // namespace

CommonConstants init_common_constants(const tle::Tle& tle) {
  CommonConstants c;
  c.epoch = tle.epoch_jd();
  c.ecco = tle.eccentricity;
  c.inclo = geo::deg_to_rad(tle.inclination_deg);
  c.nodeo = geo::deg_to_rad(tle.raan_deg);
  c.argpo = geo::deg_to_rad(tle.arg_perigee_deg);
  c.mo = geo::deg_to_rad(tle.mean_anomaly_deg);
  c.bstar = tle.bstar;

  if (c.ecco < 0.0 || c.ecco >= 1.0) {
    throw Sgp4Error(Sgp4Error::Code::kEccentricityOutOfRange,
                    "TLE eccentricity outside [0,1)");
  }
  const double no_kozai =
      tle.mean_motion_rev_per_day * kTwoPi / time::kMinutesPerDay;  // rad/min
  if (no_kozai <= 0.0) {
    throw Sgp4Error(Sgp4Error::Code::kMeanMotionNonPositive,
                    "TLE mean motion must be positive");
  }

  // ---- initl: recover the Brouwer mean motion from the Kozai value. ----
  const double eccsq = c.ecco * c.ecco;
  const double omeosq = 1.0 - eccsq;
  const double rteosq = std::sqrt(omeosq);
  const double cosio = std::cos(c.inclo);
  const double cosio2 = cosio * cosio;

  const double ak = std::pow(kXke / no_kozai, kTwoThirds);
  const double d1 = 0.75 * kJ2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
  double del = d1 / (ak * ak);
  const double adel =
      ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
  del = d1 / (adel * adel);
  c.no_unkozai = no_kozai / (1.0 + del);

  c.ao = std::pow(kXke / c.no_unkozai, kTwoThirds);
  const double sinio = std::sin(c.inclo);
  const double po = c.ao * omeosq;
  const double con42 = 1.0 - 5.0 * cosio2;
  c.con41 = -con42 - 2.0 * cosio2;  // == 3*cos^2(i) - 1
  const double posq = po * po;
  const double rp = c.ao * (1.0 - c.ecco);

  if (kTwoPi / c.no_unkozai >= 225.0) {
    throw Sgp4Error(Sgp4Error::Code::kDeepSpaceUnsupported,
                    "deep-space (period >= 225 min) element sets are not "
                    "supported; Starlink shells are all near-Earth");
  }

  // ---- sgp4init: drag and periodic coefficients. ----
  c.isimp = rp < (220.0 / kRe + 1.0);

  // Atmospheric-density reference altitudes (s4 / q0 parameters).
  double sfour = 78.0 / kRe + 1.0;
  double qzms24 = std::pow((120.0 - 78.0) / kRe, 4.0);
  const double perige = (rp - 1.0) * kRe;
  if (perige < 156.0) {
    sfour = perige - 78.0;
    if (perige < 98.0) sfour = 20.0;
    qzms24 = std::pow((120.0 - sfour) / kRe, 4.0);
    sfour = sfour / kRe + 1.0;
  }

  const double pinvsq = 1.0 / posq;
  const double tsi = 1.0 / (c.ao - sfour);
  c.eta = c.ao * c.ecco * tsi;
  const double etasq = c.eta * c.eta;
  const double eeta = c.ecco * c.eta;
  const double psisq = std::fabs(1.0 - etasq);
  const double coef = qzms24 * std::pow(tsi, 4.0);
  const double coef1 = coef / std::pow(psisq, 3.5);

  const double cc2 =
      coef1 * c.no_unkozai *
      (c.ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
       0.375 * kJ2 * tsi / psisq * c.con41 * (8.0 + 3.0 * etasq * (8.0 + etasq)));
  c.cc1 = c.bstar * cc2;
  double cc3 = 0.0;
  if (c.ecco > 1.0e-4) {
    cc3 = -2.0 * coef * tsi * kJ3OverJ2 * c.no_unkozai * sinio / c.ecco;
  }
  c.x1mth2 = 1.0 - cosio2;
  c.cc4 = 2.0 * c.no_unkozai * coef1 * c.ao * omeosq *
          (c.eta * (2.0 + 0.5 * etasq) + c.ecco * (0.5 + 2.0 * etasq) -
           kJ2 * tsi / (c.ao * psisq) *
               (-3.0 * c.con41 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
                0.75 * c.x1mth2 * (2.0 * etasq - eeta * (1.0 + etasq)) *
                    std::cos(2.0 * c.argpo)));
  c.cc5 = 2.0 * coef1 * c.ao * omeosq *
          (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

  const double cosio4 = cosio2 * cosio2;
  const double temp1 = 1.5 * kJ2 * pinvsq * c.no_unkozai;
  const double temp2 = 0.5 * temp1 * kJ2 * pinvsq;
  const double temp3 = -0.46875 * kJ4 * pinvsq * pinvsq * c.no_unkozai;
  c.mdot = c.no_unkozai + 0.5 * temp1 * rteosq * c.con41 +
           0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
  c.argpdot = -0.5 * temp1 * con42 +
              0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
              temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
  const double xhdot1 = -temp1 * cosio;
  c.nodedot = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                        2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                           cosio;

  c.omgcof = c.bstar * cc3 * std::cos(c.argpo);
  c.xmcof = 0.0;
  if (c.ecco > 1.0e-4) c.xmcof = -kTwoThirds * coef * c.bstar / eeta;
  c.nodecf = 3.5 * omeosq * xhdot1 * c.cc1;
  c.t2cof = 1.5 * c.cc1;

  // xlcof has a singularity at i == 180 deg; use the reference guard.
  if (std::fabs(cosio + 1.0) > 1.5e-12) {
    c.xlcof = -0.25 * kJ3OverJ2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
  } else {
    c.xlcof = -0.25 * kJ3OverJ2 * sinio * (3.0 + 5.0 * cosio) / 1.5e-12;
  }
  c.aycof = -0.5 * kJ3OverJ2 * sinio;
  c.delmo = std::pow(1.0 + c.eta * std::cos(c.mo), 3.0);
  c.sinmao = std::sin(c.mo);
  c.x7thm1 = 7.0 * cosio2 - 1.0;

  if (!c.isimp) {
    const double cc1sq = c.cc1 * c.cc1;
    c.d2 = 4.0 * c.ao * tsi * cc1sq;
    const double temp = c.d2 * tsi * c.cc1 / 3.0;
    c.d3 = (17.0 * c.ao + sfour) * temp;
    c.d4 = 0.5 * temp * c.ao * tsi * (221.0 * c.ao + 31.0 * sfour) * c.cc1;
    c.t3cof = c.d2 + 2.0 * cc1sq;
    c.t4cof = 0.25 * (3.0 * c.d3 + c.cc1 * (12.0 * c.d2 + 10.0 * cc1sq));
    c.t5cof = 0.2 * (3.0 * c.d4 + 12.0 * c.cc1 * c.d3 + 6.0 * c.d2 * c.d2 +
                     15.0 * cc1sq * (2.0 * c.d2 + cc1sq));
  }
  return c;
}

double Sgp4::semi_major_axis_km() const { return c_.ao * kRe; }

STARLAB_HOTPATH PropagateStatus propagate_common(const CommonConstants& c,
                                                 double t,
                                                 StateVector& out) noexcept {
  // ---- Secular gravity and atmospheric drag. ----
  const double xmdf = c.mo + c.mdot * t;
  const double argpdf = c.argpo + c.argpdot * t;
  const double nodedf = c.nodeo + c.nodedot * t;
  double argpm = argpdf;
  double mm = xmdf;
  const double t2 = t * t;
  double nodem = nodedf + c.nodecf * t2;
  double tempa = 1.0 - c.cc1 * t;
  double tempe = c.bstar * c.cc4 * t;
  double templ = c.t2cof * t2;

  if (!c.isimp) {
    const double delomg = c.omgcof * t;
    const double delmtemp = 1.0 + c.eta * std::cos(xmdf);
    const double delm = c.xmcof * (delmtemp * delmtemp * delmtemp - c.delmo);
    const double temp = delomg + delm;
    mm = xmdf + temp;
    argpm = argpdf - temp;
    const double t3 = t2 * t;
    const double t4 = t3 * t;
    tempa = tempa - c.d2 * t2 - c.d3 * t3 - c.d4 * t4;
    tempe = tempe + c.bstar * c.cc5 * (std::sin(mm) - c.sinmao);
    templ = templ + c.t3cof * t3 + t4 * (c.t4cof + t * c.t5cof);
  }

  double nm = c.no_unkozai;
  double em = c.ecco;
  const double inclm = c.inclo;

  // c.ao holds the exact bits of pow(xke / no_unkozai, 2/3), so the batch
  // hot loop skips the pow the reference implementation re-evaluates here.
  const double am = c.ao * tempa * tempa;
  nm = kXke / std::pow(am, 1.5);
  em = em - tempe;

  if (em >= 1.0 || em < -0.001) {
    return PropagateStatus::kEccentricityOutOfRange;
  }
  if (em < 1.0e-6) em = 1.0e-6;

  mm = mm + c.no_unkozai * templ;
  double xlm = mm + argpm + nodem;
  nodem = std::fmod(nodem, kTwoPi);
  argpm = std::fmod(argpm, kTwoPi);
  xlm = std::fmod(xlm, kTwoPi);
  mm = std::fmod(xlm - argpm - nodem, kTwoPi);

  // ---- Long-period periodics. ----
  const double sinip = std::sin(inclm);
  const double cosip = std::cos(inclm);
  const double ep = em;
  const double xincp = inclm;
  const double argpp = argpm;
  const double nodep = nodem;
  const double mp = mm;

  const double axnl = ep * std::cos(argpp);
  double temp = 1.0 / (am * (1.0 - ep * ep));
  const double aynl = ep * std::sin(argpp) + temp * c.aycof;
  const double xl = mp + argpp + nodep + temp * c.xlcof * axnl;

  // ---- Kepler's equation (modified for long-period terms). ----
  const double u = std::fmod(xl - nodep, kTwoPi);
  double eo1 = u;
  double tem5 = 9999.9;
  double sineo1 = 0.0, coseo1 = 0.0;
  int ktr = 1;
  while (std::fabs(tem5) >= 1.0e-12 && ktr <= 10) {
    sineo1 = std::sin(eo1);
    coseo1 = std::cos(eo1);
    tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
    tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
    if (std::fabs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
    eo1 += tem5;
    ++ktr;
  }

  // ---- Short-period periodics. ----
  const double ecose = axnl * coseo1 + aynl * sineo1;
  const double esine = axnl * sineo1 - aynl * coseo1;
  const double el2 = axnl * axnl + aynl * aynl;
  const double pl = am * (1.0 - el2);
  if (pl < 0.0) {
    return PropagateStatus::kNegativeSemiLatusRectum;
  }

  const double rl = am * (1.0 - ecose);
  const double rdotl = std::sqrt(am) * esine / rl;
  const double rvdotl = std::sqrt(pl) / rl;
  const double betal = std::sqrt(1.0 - el2);
  temp = esine / (1.0 + betal);
  const double sinu = am / rl * (sineo1 - aynl - axnl * temp);
  const double cosu = am / rl * (coseo1 - axnl + aynl * temp);
  double su = std::atan2(sinu, cosu);
  const double sin2u = (cosu + cosu) * sinu;
  const double cos2u = 1.0 - 2.0 * sinu * sinu;
  temp = 1.0 / pl;
  const double temp1 = 0.5 * kJ2 * temp;
  const double temp2 = temp1 * temp;

  const double mrt =
      rl * (1.0 - 1.5 * temp2 * betal * c.con41) + 0.5 * temp1 * c.x1mth2 * cos2u;
  su = su - 0.25 * temp2 * c.x7thm1 * sin2u;
  const double xnode = nodep + 1.5 * temp2 * cosip * sin2u;
  const double xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
  const double mvt = rdotl - nm * temp1 * c.x1mth2 * sin2u / kXke;
  const double rvdot =
      rvdotl + nm * temp1 * (c.x1mth2 * cos2u + 1.5 * c.con41) / kXke;

  // ---- Orientation vectors and final state. ----
  const double sinsu = std::sin(su);
  const double cossu = std::cos(su);
  const double snod = std::sin(xnode);
  const double cnod = std::cos(xnode);
  const double sini = std::sin(xinc);
  const double cosi = std::cos(xinc);
  const double xmx = -snod * cosi;
  const double xmy = cnod * cosi;
  const double ux = xmx * sinsu + cnod * cossu;
  const double uy = xmy * sinsu + snod * cossu;
  const double uz = sini * sinsu;
  const double vx = xmx * cossu - cnod * sinsu;
  const double vy = xmy * cossu - snod * sinsu;
  const double vz = sini * cossu;

  if (mrt < 1.0) {
    return PropagateStatus::kDecayed;
  }

  const double vkmpersec = kRe * kXke / 60.0;
  out.position_km = {mrt * ux * kRe, mrt * uy * kRe, mrt * uz * kRe};
  out.velocity_km_s = {(mvt * ux + rvdot * vx) * vkmpersec,
                       (mvt * uy + rvdot * vy) * vkmpersec,
                       (mvt * uz + rvdot * vz) * vkmpersec};
  return PropagateStatus::kOk;
}

StateVector propagate_or_throw(const CommonConstants& c, double tsince_minutes) {
  StateVector out;
  switch (propagate_common(c, tsince_minutes, out)) {
    case PropagateStatus::kOk:
      return out;
    case PropagateStatus::kEccentricityOutOfRange:
      throw Sgp4Error(Sgp4Error::Code::kEccentricityOutOfRange,
                      "propagated eccentricity outside SGP4 domain");
    case PropagateStatus::kNegativeSemiLatusRectum:
      throw Sgp4Error(Sgp4Error::Code::kNegativeSemiLatusRectum,
                      "semi-latus rectum went negative");
    case PropagateStatus::kDecayed:
      throw Sgp4Error(Sgp4Error::Code::kDecayed, "satellite has decayed");
  }
  throw Sgp4Error(Sgp4Error::Code::kDecayed, "unreachable propagate status");
}

}  // namespace starlab::sgp4
