#pragma once

// Structure-of-arrays storage for SGP4 constant sets.
//
// constellation::Catalog keeps one CommonConstants per satellite. Storing
// them as parallel arrays (one per coefficient) instead of an array of
// structs keeps each coefficient stream contiguous, so the batch
// propagation loop in Catalog::propagate_all walks dense cache lines and
// the compiler can vectorize across satellites where profitable.
//
// Bit-identity contract: `propagate(i, t, out)` gathers satellite i's
// coefficients back into a CommonConstants and calls the same
// propagate_common the single-satellite Sgp4 facade uses, so batch results
// are bit-identical to Sgp4::propagate by construction.

#include <cstddef>
#include <vector>

#include "check/hotpath.hpp"
#include "sgp4/sgp4.hpp"

namespace starlab::sgp4 {

class SoaConstants {
 public:
  void reserve(std::size_t n);

  /// Append one satellite's constant set.
  void push_back(const CommonConstants& c);

  [[nodiscard]] std::size_t size() const { return epoch_.size(); }
  [[nodiscard]] bool empty() const { return epoch_.empty(); }

  /// Element-set epoch of satellite i.
  [[nodiscard]] const time::JulianDate& epoch(std::size_t i) const {
    return epoch_[i];
  }

  /// Gather satellite i's constants back into struct form.
  [[nodiscard]] CommonConstants load(std::size_t i) const;

  /// Propagate satellite i to `tsince_minutes` past its own epoch.
  /// Bit-identical to Sgp4(tle).propagate(tsince_minutes).
  [[nodiscard]] STARLAB_HOTPATH PropagateStatus propagate(
      std::size_t i, double tsince_minutes, StateVector& out) const noexcept {
    const CommonConstants c = load(i);
    return propagate_common(c, tsince_minutes, out);
  }

 private:
  std::vector<time::JulianDate> epoch_;
  std::vector<double> ecco_, inclo_, nodeo_, argpo_, mo_, bstar_, no_unkozai_;
  std::vector<unsigned char> isimp_;
  std::vector<double> aycof_, con41_, cc1_, cc4_, cc5_;
  std::vector<double> d2_, d3_, d4_, delmo_, eta_;
  std::vector<double> argpdot_, omgcof_, sinmao_, t2cof_;
  std::vector<double> t3cof_, t4cof_, t5cof_, x1mth2_;
  std::vector<double> x7thm1_, mdot_, nodedot_, xlcof_;
  std::vector<double> xmcof_, nodecf_, ao_;
};

}  // namespace starlab::sgp4
