#include "core/campaign.hpp"

#include <algorithm>

#include "check/contracts.hpp"
#include "check/thread_annotations.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injectors.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sun/solar_ephemeris.hpp"

namespace starlab::core {

namespace {

/// Pre-registered campaign metrics (one-time registration, lock-free adds).
struct CampaignMetrics {
  obs::Counter runs, slots, chosen, dropout_flagged;

  static const CampaignMetrics& get() {
    static const CampaignMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      CampaignMetrics x;
      x.runs = reg.counter("starlab_campaign_runs_total",
                           "Campaigns executed by run_campaign");
      x.slots = reg.counter("starlab_campaign_slots_total",
                            "Slot observations recorded across campaigns");
      x.chosen = reg.counter("starlab_campaign_chosen_total",
                             "Slot observations with a scheduler choice");
      x.dropout_flagged =
          reg.counter("starlab_campaign_dropout_slots_total",
                      "Slot observations flagged kCandidateDropout");
      return x;
    }();
    return m;
  }
};

}  // namespace

std::vector<const SlotObs*> CampaignData::for_terminal(
    std::size_t terminal_index) const {
  std::vector<const SlotObs*> out;
  for (const SlotObs& s : slots) {
    if (s.terminal_index == terminal_index) out.push_back(&s);
  }
  return out;
}

namespace {

/// The slot arithmetic run_campaign has always used, factored so the
/// record-index helpers below agree with it exactly.
struct RecordWindow {
  time::SlotIndex first = 0;
  time::SlotIndex num_slots = 0;
  time::SlotIndex stride = 1;

  [[nodiscard]] std::size_t records() const {
    if (num_slots <= 0 || stride <= 0) return 0;
    return static_cast<std::size_t>((num_slots + stride - 1) / stride);
  }
  [[nodiscard]] time::SlotIndex slot(std::size_t record) const {
    return first + static_cast<time::SlotIndex>(record) * stride;
  }
};

RecordWindow record_window(const Scenario& scenario,
                           const CampaignConfig& config) {
  const time::SlotGrid& grid = scenario.grid();
  RecordWindow w;
  w.first = scenario.first_slot() +
            static_cast<time::SlotIndex>(config.start_offset_hours * 3600.0 /
                                         grid.period_seconds());
  w.num_slots = static_cast<time::SlotIndex>(config.duration_hours * 3600.0 /
                                             grid.period_seconds());
  w.stride = config.slot_stride;
  return w;
}

}  // namespace

std::size_t campaign_recorded_slots(const Scenario& scenario,
                                    const CampaignConfig& config) {
  return record_window(scenario, config).records();
}

time::SlotIndex campaign_record_slot(const Scenario& scenario,
                                     const CampaignConfig& config,
                                     std::size_t record) {
  return record_window(scenario, config).slot(record);
}

void finalize_campaign_report(CampaignData& data,
                              const fault::FaultPlan& plan) {
  obs::RunReport& report = data.report;
  report.slots = data.slots.size();
  report.decided = 0;
  report.degraded = 0;
  report.quality.clear();
  for (const quality::Flag& f : quality::kFlags) {
    report.quality.emplace_back(f.name, 0);
  }
  for (const SlotObs& slot : data.slots) {
    if (slot.has_choice()) ++report.decided;
    if (slot.quality != 0) ++report.degraded;
    for (std::size_t f = 0; f < std::size(quality::kFlags); ++f) {
      if ((slot.quality & quality::kFlags[f].bit) != 0) {
        ++report.quality[f].second;
      }
    }
  }
  report.fault_plan = fault::format_fault_plan(plan);
}

CampaignData run_campaign(const Scenario& scenario,
                          const CampaignConfig& config) {
  const obs::ObsSpan span("campaign.run");
  const bool timed = obs::enabled();
  const std::uint64_t run_start = timed ? obs::monotonic_ns() : 0;

  CampaignData data;
  data.report.kind = "campaign";
  data.report.label = "oracle";
  obs::StageStat* st_propagate =
      timed ? &data.report.stage("propagate") : nullptr;
  obs::StageStat* st_candidates =
      timed ? &data.report.stage("candidates") : nullptr;
  obs::StageStat* st_allocate = timed ? &data.report.stage("allocate") : nullptr;
  for (const ground::Terminal& t : scenario.terminals()) {
    data.terminal_names.push_back(t.name());
  }

  const time::SlotGrid& grid = scenario.grid();
  const RecordWindow window = record_window(scenario, config);
  const scheduler::GlobalScheduler& global = scenario.global_scheduler();
  const constellation::Catalog& catalog = scenario.catalog();
  const fault::FaultPlan& plan =
      config.faults.has_value() ? *config.faults : scenario.fault_plan();
  const fault::SlotDropoutInjector dropout(plan);
  const bool inject_dropout =
      plan.intensity > 0.0 && plan.dropout.rate > 0.0;

  // Every (slot, terminal) observation depends only on (slot, terminal):
  // the oracle is stateless in both, the dropout injector is hash-keyed, and
  // one catalog propagation is shared by a slot's terminals. Slots are
  // therefore independent work items, partitioned over the exec pool and
  // flattened back in slot order — bit-identical to the former serial loop
  // at any thread count. The record_* fields select an index sub-window of
  // that same list, so a sliced run computes exactly the rows the full run
  // would at those indices.
  const std::size_t total_records = window.records();
  std::size_t record_begin = config.record_begin;
  std::size_t record_end =
      config.record_end == 0 ? total_records
                             : std::min(config.record_end, total_records);
  if (record_begin > record_end) record_begin = record_end;
  const std::size_t record_step =
      config.record_step == 0 ? 1 : config.record_step;
  std::vector<time::SlotIndex> slot_ids;
  for (std::size_t r = record_begin; r < record_end; r += record_step) {
    slot_ids.push_back(window.slot(r));
  }
  std::vector<std::vector<SlotObs>> per_slot(slot_ids.size());

  // Chunk workers merge their local stage clocks into the shared report
  // StageStats through these guarded pointers, so the report never sees
  // concurrent writes.
  struct StageMerge {
    check::Mutex mu;
    obs::StageStat* propagate PT_GUARDED_BY(mu) = nullptr;
    obs::StageStat* candidates PT_GUARDED_BY(mu) = nullptr;
    obs::StageStat* allocate PT_GUARDED_BY(mu) = nullptr;
  } stages;
  stages.propagate = st_propagate;
  stages.candidates = st_candidates;
  stages.allocate = st_allocate;
  // Each chunk pays queueing plus a stage-stat merge under the mutex, and a
  // slot costs a whole catalog propagation anyway — so never split below
  // four slots per chunk. Short benchmark slices (a dozen slots) otherwise
  // shard into single-slot chunks on wide pools and run slower at eight
  // threads than at one. The partition only changes which worker computes a
  // slot, never the per-slot results, so output stays bit-identical.
  constexpr std::size_t kMinSlotsPerChunk = 4;
  exec::default_pool().parallel_for_chunks(
      slot_ids.size(), kMinSlotsPerChunk,
      [&](std::size_t begin, std::size_t end) {
        // Per-chunk stage clocks, merged once at chunk end so the shared
        // report never sees concurrent writes.
        obs::StageStat local_propagate, local_candidates, local_allocate;
        obs::StageStat* lp = timed ? &local_propagate : nullptr;
        obs::StageStat* lc = timed ? &local_candidates : nullptr;
        obs::StageStat* la = timed ? &local_allocate : nullptr;

        for (std::size_t k = begin; k < end; ++k) {
          if (config.cancel != nullptr) config.cancel->check();
          const time::SlotIndex s = slot_ids[k];
          const double t_mid = grid.slot_mid(s);
          const time::JulianDate jd = time::JulianDate::from_unix_seconds(t_mid);

          // One catalog propagation shared by every terminal in this slot.
          const std::vector<constellation::Catalog::Snapshot> snaps = [&] {
            const obs::ScopedStage stage(lp);
            return catalog.propagate_all(jd);
          }();

          for (std::size_t ti = 0; ti < scenario.terminals().size(); ++ti) {
            const ground::Terminal& terminal = scenario.terminal(ti);
            std::vector<ground::Candidate> candidates = [&] {
              const obs::ScopedStage stage(lc);
              return terminal.candidates_from_snapshots(catalog, snaps, jd);
            }();

            bool any_dropped = false;
            if (inject_dropout) {
              const auto is_dropped = [&](const ground::Candidate& c) {
                return dropout.dropped(c.sky.norad_id, s);
              };
              const auto removed = std::remove_if(candidates.begin(),
                                                  candidates.end(), is_dropped);
              any_dropped = removed != candidates.end();
              candidates.erase(removed, candidates.end());
            }

            SlotObs slot_obs;
            slot_obs.slot = s;
            slot_obs.terminal_index = ti;
            slot_obs.unix_mid = t_mid;
            slot_obs.local_hour =
                sun::local_solar_hour(terminal.site().longitude_deg, t_mid);
            if (any_dropped) slot_obs.quality |= quality::kCandidateDropout;

            // Record the usable candidates (paper: "available satellites").
            for (const ground::Candidate& c : candidates) {
              if (!c.usable()) continue;
              slot_obs.available.push_back(
                  {c.sky.norad_id, c.sky.look.azimuth_deg,
                   c.sky.look.elevation_deg, c.sky.age_days, c.sky.sunlit});
            }

            const std::optional<scheduler::Allocation> alloc = [&] {
              const obs::ScopedStage stage(la);
              return global.allocate_from(terminal, s, candidates);
            }();
            if (alloc.has_value()) {
              for (std::size_t i = 0; i < slot_obs.available.size(); ++i) {
                if (slot_obs.available[i].norad_id == alloc->norad_id) {
                  slot_obs.chosen = static_cast<int>(i);
                  break;
                }
              }
            }
            if (!slot_obs.has_choice()) slot_obs.confidence = 0.0;
            per_slot[k].push_back(std::move(slot_obs));
          }
        }

        if (timed) {
          const check::MutexLock lock(stages.mu);
          stages.propagate->wall_ns += local_propagate.wall_ns;
          stages.propagate->calls += local_propagate.calls;
          stages.candidates->wall_ns += local_candidates.wall_ns;
          stages.candidates->calls += local_candidates.calls;
          stages.allocate->wall_ns += local_allocate.wall_ns;
          stages.allocate->calls += local_allocate.calls;
        }
      });

  for (std::vector<SlotObs>& rows : per_slot) {
    for (SlotObs& row : rows) data.slots.push_back(std::move(row));
  }
  // Campaign time must advance: the flattened observations are in slot order,
  // so their mid-slot instants are non-decreasing. A violation means the
  // parallel chunks were reassembled out of order.
  STARLAB_INVARIANT(
      std::is_sorted(data.slots.begin(), data.slots.end(),
                     [](const SlotObs& a, const SlotObs& b) {
                       return a.unix_mid < b.unix_mid;
                     }),
      "campaign slot observations are not in time order");

  // Run summary: slot counts, per-flag counts, the plan in force. Computed
  // once here so consumers never re-scan the slot vector.
  finalize_campaign_report(data, plan);
  obs::RunReport& report = data.report;
  if (timed) report.wall_ns = obs::monotonic_ns() - run_start;

  const CampaignMetrics& metrics = CampaignMetrics::get();
  metrics.runs.add();
  metrics.slots.add(report.slots);
  metrics.chosen.add(report.decided);
  metrics.dropout_flagged.add(
      report.quality[5].second);  // kCandidateDropout is the 6th flag
  return data;
}

}  // namespace starlab::core
