#pragma once

// §4 end-to-end: the satellite-identification pipeline.
//
// Drives the dish-side map recorder slot by slot, XORs consecutive frames,
// matches the isolated trajectory against TLE-propagated candidates with
// DTW, and (for validation) compares the inference with the oracle's ground
// truth — the experiment behind the paper's ">99 % agreement over 500
// trials" claim. The terminal is reset every 10 minutes, exactly as the
// paper does, so trajectories stay XOR-separable.

#include <memory>
#include <optional>
#include <vector>

#include "constellation/ephemeris_cache.hpp"
#include "core/campaign.hpp"
#include "core/scenario.hpp"
#include "match/identifier.hpp"
#include "obsmap/map_params.hpp"
#include "obsmap/painter.hpp"

namespace starlab::core {

/// Outcome of identifying one slot.
struct SlotIdentification {
  time::SlotIndex slot = 0;
  std::optional<int> truth_norad;     ///< oracle allocation (if any)
  std::optional<int> inferred_norad;  ///< pipeline's answer (if any)
  double dtw = 0.0;                   ///< winning DTW distance
  int num_candidates = 0;
  std::size_t trajectory_pixels = 0;
  std::uint32_t quality = 0;  ///< quality:: flags for this slot's inputs
  double confidence = 0.0;    ///< identifier confidence in `inferred_norad`
  match::AbstainReason abstain = match::AbstainReason::kNone;

  [[nodiscard]] bool abstained() const {
    return abstain != match::AbstainReason::kNone;
  }

  /// True when the pipeline names exactly the serving satellite.
  [[nodiscard]] bool correct() const {
    return truth_norad.has_value() && inferred_norad.has_value() &&
           *truth_norad == *inferred_norad;
  }
};

struct PipelineResult {
  std::vector<SlotIdentification> rows;
  /// Run summary: stage timings (when observability is on), slot counts,
  /// per-quality-flag and per-abstention-reason tallies, the fault plan in
  /// force. Filled once by InferencePipeline::run via summarize(); the
  /// accessors below read it instead of re-scanning `rows` per call.
  obs::RunReport report;

  /// Recompute the report's slot summary from `rows` (run() calls this;
  /// call it again only after mutating `rows` by hand).
  void summarize();

  /// Fraction of decided slots (both truth and inference present) that are
  /// correct — the §4 validation metric.
  [[nodiscard]] double accuracy() const;

  /// Number of slots where the pipeline produced an answer.
  [[nodiscard]] std::size_t decided() const;

  /// Number of slots where the identifier explicitly declined to answer.
  [[nodiscard]] std::size_t abstained() const;

  /// Number of rows carrying a given quality:: flag.
  [[nodiscard]] std::size_t flagged(std::uint32_t quality_bit) const;

 private:
  /// True once summarize() ran; hand-built results fall back to scanning.
  bool summarized_ = false;
};

struct PipelineConfig {
  double reset_interval_sec = 600.0;  ///< terminal reset cadence (10 min)
  match::IdentifierConfig identifier;
  /// When set, the pipeline first runs a long fill phase and recovers the
  /// map geometry from the accumulated frame (§4.1) instead of assuming the
  /// published parameters.
  bool recover_geometry = false;
  double fill_hours = 48.0;  ///< fill-phase length for geometry recovery
  /// Fault plan for this run; unset falls back to the scenario's plan. The
  /// pipeline applies the obstruction-map frame injector (dropped polls,
  /// bit flips) to what it observes — never to the dish's true state.
  std::optional<fault::FaultPlan> faults;
  /// Cooperative cancellation, polled once per slot (non-owning). A
  /// per-run token passed to run() overrides this one.
  const exec::CancelToken* cancel = nullptr;
};

class InferencePipeline {
 public:
  InferencePipeline(const Scenario& scenario, PipelineConfig config = {});

  /// Run the identification pipeline for `terminal_index` over
  /// `duration_sec` starting at the scenario epoch. `cancel` (non-owning,
  /// may be null) overrides the config's token for this run — the
  /// resilience supervisor's per-attempt watchdog.
  [[nodiscard]] PipelineResult run(
      std::size_t terminal_index, double duration_sec,
      const exec::CancelToken* cancel = nullptr) const;

  /// The paper's actual §5 data path: a campaign whose "chosen" column comes
  /// from obstruction-map identification, not from the oracle. Slots where
  /// the pipeline is undecided carry no choice. With the validated >99 %
  /// identification accuracy, downstream statistics match the oracle-labeled
  /// campaign; this entry point exists so that claim is *checkable* (see
  /// Integration.Section4PipelineFeedsSection5Statistics and the campaign
  /// tests).
  [[nodiscard]] CampaignData run_inferred_campaign(double duration_sec) const;

  /// Convert one terminal's pipeline rows into campaign observations and
  /// append them to `data` — the per-terminal body of
  /// run_inferred_campaign, public so the resilience layer can supervise
  /// terminals independently and still assemble an identical campaign.
  void append_inferred_rows(CampaignData& data, const PipelineResult& result,
                            std::size_t terminal_index) const;

  /// The map geometry the pipeline operates with (published constants, or
  /// the recovered one when config.recover_geometry is set).
  [[nodiscard]] const obsmap::MapGeometry& geometry() const {
    return geometry_;
  }

  /// The scenario this pipeline runs against (the one passed at
  /// construction; the pipeline never outlives it).
  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

  /// §4.1 parameter recovery: accumulate `hours` of trajectories without a
  /// reset and fit the polar-plot geometry from the filled frame.
  [[nodiscard]] static std::optional<obsmap::RecoveredParams>
  recover_geometry_via_fill(const Scenario& scenario,
                            std::size_t terminal_index, double hours);

 private:
  const Scenario& scenario_;
  PipelineConfig config_;
  obsmap::MapGeometry geometry_;
  /// Memoized SGP4 states shared by every run() off this pipeline (the
  /// identifier's candidate-path sampling reads through it). Thread-safe,
  /// bit-identical to direct propagation.
  std::unique_ptr<constellation::EphemerisCache> ephemeris_cache_;
};

}  // namespace starlab::core
