#pragma once

// Umbrella header: the full starlab public API.
//
// starlab reproduces "Making Sense of Constellations: Methodologies for
// Understanding Starlink's Scheduling Algorithms" (CoNEXT Companion '23).
// Typical usage:
//
//   #include "core/starlab.hpp"
//
//   starlab::core::Scenario scenario;                    // 4 dishes + Gen1 shells
//   auto data = starlab::core::run_campaign(scenario);   // §5 observation record
//   starlab::core::SchedulerCharacterizer ch(data, scenario.catalog());
//   auto fig4 = ch.aoe_stats(0);                         // Iowa's Fig 4 row
//   auto model = starlab::core::train_scheduler_model(data);  // §6 / Fig 8
//
// See examples/ for runnable walkthroughs of every subsystem.

#include "analysis/ecdf.hpp"            // IWYU pragma: export
#include "analysis/handover.hpp"        // IWYU pragma: export
#include "analysis/mann_whitney.hpp"    // IWYU pragma: export
#include "analysis/stats.hpp"           // IWYU pragma: export
#include "constellation/catalog.hpp"    // IWYU pragma: export
#include "constellation/synthesizer.hpp"  // IWYU pragma: export
#include "constellation/walker.hpp"     // IWYU pragma: export
#include "core/campaign.hpp"            // IWYU pragma: export
#include "core/characterizer.hpp"       // IWYU pragma: export
#include "core/pipeline.hpp"            // IWYU pragma: export
#include "core/scenario.hpp"            // IWYU pragma: export
#include "core/satellite_predictor.hpp"  // IWYU pragma: export
#include "core/scheduler_model.hpp"     // IWYU pragma: export
#include "fault/fault_plan.hpp"         // IWYU pragma: export
#include "fault/injectors.hpp"          // IWYU pragma: export
#include "geo/geodetic.hpp"             // IWYU pragma: export
#include "geo/gso_arc.hpp"              // IWYU pragma: export
#include "geo/topocentric.hpp"          // IWYU pragma: export
#include "ground/sites.hpp"             // IWYU pragma: export
#include "ground/terminal.hpp"          // IWYU pragma: export
#include "match/identifier.hpp"         // IWYU pragma: export
#include "measurement/changepoint.hpp"  // IWYU pragma: export
#include "measurement/rtt_prober.hpp"   // IWYU pragma: export
#include "measurement/throughput.hpp"   // IWYU pragma: export
#include "rf/link_budget.hpp"           // IWYU pragma: export
#include "ml/grid_search.hpp"           // IWYU pragma: export
#include "ml/random_forest.hpp"         // IWYU pragma: export
#include "obsmap/map_params.hpp"        // IWYU pragma: export
#include "obsmap/painter.hpp"           // IWYU pragma: export
#include "scheduler/global_scheduler.hpp"  // IWYU pragma: export
#include "scheduler/mac_scheduler.hpp"  // IWYU pragma: export
#include "sgp4/ephemeris.hpp"           // IWYU pragma: export
#include "sun/eclipse.hpp"              // IWYU pragma: export
#include "tle/catalog_io.hpp"           // IWYU pragma: export
