#include "core/pipeline.hpp"

#include "fault/fault_plan.hpp"
#include "fault/injectors.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sun/solar_ephemeris.hpp"

namespace starlab::core {

namespace {

/// Pre-registered pipeline metrics (one-time registration, lock-free adds).
struct PipelineMetrics {
  obs::Counter runs, slots, decided, abstained, degraded;

  static const PipelineMetrics& get() {
    static const PipelineMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      PipelineMetrics x;
      x.runs = reg.counter("starlab_pipeline_runs_total",
                           "Identification pipeline runs");
      x.slots = reg.counter("starlab_pipeline_slots_total",
                            "Slots the pipeline emitted a row for");
      x.decided = reg.counter("starlab_pipeline_decided_total",
                              "Slots the pipeline answered");
      x.abstained = reg.counter("starlab_pipeline_abstained_total",
                                "Slots the identifier declined to answer");
      x.degraded = reg.counter("starlab_pipeline_degraded_total",
                               "Slots carrying at least one quality flag");
      return x;
    }();
    return m;
  }
};

}  // namespace

void PipelineResult::summarize() {
  report.slots = rows.size();
  report.decided = 0;
  report.abstained = 0;
  report.degraded = 0;
  report.compared = 0;
  report.correct = 0;
  report.quality.clear();
  report.abstain_reasons.clear();
  for (const quality::Flag& f : quality::kFlags) {
    report.quality.emplace_back(f.name, 0);
  }

  double confidence_sum = 0.0;
  for (const SlotIdentification& r : rows) {
    if (r.inferred_norad.has_value()) {
      ++report.decided;
      confidence_sum += r.confidence;
    }
    if (r.abstained()) {
      ++report.abstained;
      obs::RunReport::bump(report.abstain_reasons,
                           match::abstain_reason_name(r.abstain));
    }
    if (r.quality != 0) ++report.degraded;
    if (r.truth_norad.has_value() && r.inferred_norad.has_value()) {
      ++report.compared;
      if (r.correct()) ++report.correct;
    }
    for (std::size_t f = 0; f < std::size(quality::kFlags); ++f) {
      if ((r.quality & quality::kFlags[f].bit) != 0) {
        ++report.quality[f].second;
      }
    }
  }
  report.accuracy = report.compared == 0
                        ? 0.0
                        : static_cast<double>(report.correct) /
                              static_cast<double>(report.compared);
  report.add_value("mean_confidence",
                   report.decided == 0
                       ? 0.0
                       : confidence_sum /
                             static_cast<double>(report.decided));
  summarized_ = true;
}

double PipelineResult::accuracy() const {
  if (summarized_) return report.accuracy;
  std::size_t correct = 0, total = 0;
  for (const SlotIdentification& r : rows) {
    if (r.truth_norad.has_value() && r.inferred_norad.has_value()) {
      ++total;
      if (r.correct()) ++correct;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

std::size_t PipelineResult::decided() const {
  if (summarized_) return report.decided;
  std::size_t n = 0;
  for (const SlotIdentification& r : rows) {
    if (r.inferred_norad.has_value()) ++n;
  }
  return n;
}

std::size_t PipelineResult::abstained() const {
  if (summarized_) return report.abstained;
  std::size_t n = 0;
  for (const SlotIdentification& r : rows) {
    if (r.abstained()) ++n;
  }
  return n;
}

std::size_t PipelineResult::flagged(std::uint32_t quality_bit) const {
  if (summarized_) {
    if (const char* name = quality::flag_name(quality_bit)) {
      for (const auto& [n, count] : report.quality) {
        if (n == name) return count;
      }
    }
  }
  std::size_t n = 0;
  for (const SlotIdentification& r : rows) {
    if ((r.quality & quality_bit) != 0) ++n;
  }
  return n;
}

InferencePipeline::InferencePipeline(const Scenario& scenario,
                                     PipelineConfig config)
    : scenario_(scenario),
      config_(std::move(config)),
      ephemeris_cache_(std::make_unique<constellation::EphemerisCache>(
          scenario.catalog())) {
  if (config_.recover_geometry) {
    const auto recovered =
        recover_geometry_via_fill(scenario_, 0, config_.fill_hours);
    geometry_ = recovered.has_value() ? recovered->geometry
                                      : obsmap::MapGeometry{};
  } else {
    geometry_ = obsmap::MapGeometry{};  // the published (61,61)/45px layout
  }
}

std::optional<obsmap::RecoveredParams>
InferencePipeline::recover_geometry_via_fill(const Scenario& scenario,
                                             std::size_t terminal_index,
                                             double hours) {
  const ground::Terminal& terminal = scenario.terminal(terminal_index);
  obsmap::MapRecorder recorder(scenario.catalog(), terminal, scenario.grid());

  const time::SlotIndex first = scenario.first_slot();
  const auto num_slots = static_cast<time::SlotIndex>(
      hours * 3600.0 / scenario.grid().period_seconds());
  for (time::SlotIndex s = first; s < first + num_slots; ++s) {
    recorder.record_slot(
        scenario.global_scheduler().allocate(terminal, s));
  }
  return obsmap::recover_geometry(recorder.accumulated());
}

PipelineResult InferencePipeline::run(std::size_t terminal_index,
                                      double duration_sec,
                                      const exec::CancelToken* cancel) const {
  const obs::ObsSpan run_span("pipeline.run");
  if (cancel == nullptr) cancel = config_.cancel;
  const bool timed = obs::enabled();
  const std::uint64_t run_start = timed ? obs::monotonic_ns() : 0;

  PipelineResult result;
  const ground::Terminal& terminal = scenario_.terminal(terminal_index);
  const time::SlotGrid& grid = scenario_.grid();
  const scheduler::GlobalScheduler& global = scenario_.global_scheduler();

  result.report.kind = "pipeline";
  result.report.label = terminal.name();
  obs::StageStat* st_propagate =
      timed ? &result.report.stage("propagate") : nullptr;
  obs::StageStat* st_allocate =
      timed ? &result.report.stage("allocate") : nullptr;
  obs::StageStat* st_record = timed ? &result.report.stage("record") : nullptr;
  obs::StageStat* st_observe =
      timed ? &result.report.stage("observe") : nullptr;
  obs::StageStat* st_identify =
      timed ? &result.report.stage("identify") : nullptr;

  obsmap::MapRecorder recorder(scenario_.catalog(), terminal, grid,
                               obsmap::TrajectoryPainter(geometry_));
  match::SatelliteIdentifier identifier(scenario_.catalog(), geometry_, grid,
                                        config_.identifier);
  // Painter and identifier share the pipeline's cache: the serving
  // satellite's per-slot samples are computed once when painted and hit when
  // the identifier scores that satellite as a candidate moments later.
  recorder.set_ephemeris_cache(ephemeris_cache_.get());
  identifier.set_ephemeris_cache(ephemeris_cache_.get());
  const fault::FaultPlan& plan =
      config_.faults.has_value() ? *config_.faults : scenario_.fault_plan();
  const fault::FrameFaultInjector frame_faults(plan);
  result.report.fault_plan = fault::format_fault_plan(plan);

  const time::SlotIndex first = scenario_.first_slot();
  const auto num_slots =
      static_cast<time::SlotIndex>(duration_sec / grid.period_seconds());
  const auto slots_per_reset = static_cast<time::SlotIndex>(
      config_.reset_interval_sec / grid.period_seconds());

  // The last frame the pipeline *observed* (a dropped poll leaves it where
  // it was, so the next XOR runs against a stale baseline) and how many
  // polls failed since then.
  std::optional<obsmap::ObstructionMap> prev_frame;
  std::size_t polls_missed_since_prev = 0;
  for (time::SlotIndex s = first; s < first + num_slots; ++s) {
    if (cancel != nullptr) cancel->check();
    // Scheduled terminal reset: wipes the frame, so the following slot has
    // no previous frame to XOR against and is skipped (as in the paper).
    if (slots_per_reset > 0 && (s - first) % slots_per_reset == 0 && s != first) {
      recorder.reset();
      prev_frame.reset();
      polls_missed_since_prev = 0;
    }

    // One whole-catalog propagation per slot, shared by the oracle's
    // allocation and the identifier's candidate query below (formerly each
    // re-propagated the catalog on its own).
    const time::JulianDate jd_mid =
        time::JulianDate::from_unix_seconds(grid.slot_mid(s));
    const std::vector<constellation::Catalog::Snapshot> snaps = [&] {
      const obs::ScopedStage stage(st_propagate);
      return scenario_.catalog().propagate_all(jd_mid);
    }();

    const std::optional<scheduler::Allocation> truth = [&] {
      const obs::ScopedStage stage(st_allocate);
      return global.allocate_from(
          terminal, s,
          terminal.candidates_from_snapshots(scenario_.catalog(), snaps,
                                             jd_mid));
    }();
    // The dish always paints; faults only affect what the poll observes.
    obsmap::ObstructionMap frame = [&] {
      const obs::ScopedStage stage(st_record);
      return recorder.record_slot(truth);
    }();

    SlotIdentification row;
    row.slot = s;
    if (truth.has_value()) row.truth_norad = truth->norad_id;

    {
      const obs::ScopedStage stage(st_observe);
      if (frame_faults.frame_dropped(terminal_index, s)) {
        // No frame observed: this slot is undecidable, and the stale
        // baseline taints the next XOR (flagged there as kStaleBaseline).
        row.quality |= quality::kFrameMissing;
      } else if (frame_faults.corrupt(frame, terminal_index, s) > 0) {
        row.quality |= quality::kFrameCorrupted;
      }
    }
    if ((row.quality & quality::kFrameMissing) != 0) {
      result.rows.push_back(row);
      ++polls_missed_since_prev;
      continue;
    }

    if (prev_frame.has_value()) {
      if (polls_missed_since_prev > 0) row.quality |= quality::kStaleBaseline;

      const obs::ScopedStage stage(st_identify);
      const match::Identification id =
          identifier.identify(terminal, s, *prev_frame, frame, snaps);
      row.num_candidates = id.num_candidates;
      row.trajectory_pixels = id.trajectory_pixels;
      row.confidence = id.confidence;
      row.abstain = id.abstain;
      if (id.abstained()) row.quality |= quality::kAbstained;
      if (id.reset_detected) row.quality |= quality::kResetDetected;
      if (id.best.has_value()) {
        row.inferred_norad = id.best->norad_id;
        row.dtw = id.best->dtw;
      }
      result.rows.push_back(row);
    }
    prev_frame = std::move(frame);
    polls_missed_since_prev = 0;
  }

  if (timed) result.report.wall_ns = obs::monotonic_ns() - run_start;
  result.summarize();

  const PipelineMetrics& metrics = PipelineMetrics::get();
  metrics.runs.add();
  metrics.slots.add(result.report.slots);
  metrics.decided.add(result.report.decided);
  metrics.abstained.add(result.report.abstained);
  metrics.degraded.add(result.report.degraded);
  return result;
}

CampaignData InferencePipeline::run_inferred_campaign(
    double duration_sec) const {
  const obs::ObsSpan span("pipeline.run_inferred_campaign");
  CampaignData data;
  data.report.kind = "campaign";
  data.report.label = "inferred";
  for (const ground::Terminal& t : scenario_.terminals()) {
    data.terminal_names.push_back(t.name());
  }

  double confidence_weighted = 0.0;
  for (std::size_t ti = 0; ti < scenario_.terminals().size(); ++ti) {
    const PipelineResult inferred = run(ti, duration_sec);
    // absorb() sums values; means need decided-slot weighting instead.
    confidence_weighted += inferred.report.value_or("mean_confidence", 0.0) *
                           static_cast<double>(inferred.report.decided);
    data.report.absorb(inferred.report);
    append_inferred_rows(data, inferred, ti);
  }
  data.report.add_value(
      "mean_confidence",
      data.report.decided == 0
          ? 0.0
          : confidence_weighted / static_cast<double>(data.report.decided));
  return data;
}

void InferencePipeline::append_inferred_rows(CampaignData& data,
                                             const PipelineResult& result,
                                             std::size_t terminal_index) const {
  const ground::Terminal& terminal = scenario_.terminal(terminal_index);
  const time::SlotGrid& grid = scenario_.grid();
  for (const SlotIdentification& row : result.rows) {
    const double t_mid = grid.slot_mid(row.slot);
    const time::JulianDate jd = time::JulianDate::from_unix_seconds(t_mid);

    SlotObs obs;
    obs.slot = row.slot;
    obs.terminal_index = terminal_index;
    obs.unix_mid = t_mid;
    obs.local_hour =
        sun::local_solar_hour(terminal.site().longitude_deg, t_mid);
    obs.quality = row.quality;
    obs.confidence = row.inferred_norad.has_value() ? row.confidence : 0.0;
    // Same set usable_candidates() returns, via the (parallel)
    // whole-catalog propagation instead of the serial visible_from walk.
    std::vector<ground::Candidate> usable = terminal.candidates_from_snapshots(
        scenario_.catalog(), scenario_.catalog().propagate_all(jd), jd);
    std::erase_if(usable,
                  [](const ground::Candidate& c) { return !c.usable(); });
    for (const ground::Candidate& c : usable) {
      if (row.inferred_norad.has_value() &&
          c.sky.norad_id == *row.inferred_norad) {
        obs.chosen = static_cast<int>(obs.available.size());
      }
      obs.available.push_back({c.sky.norad_id, c.sky.look.azimuth_deg,
                               c.sky.look.elevation_deg, c.sky.age_days,
                               c.sky.sunlit});
    }
    data.slots.push_back(std::move(obs));
  }
}

}  // namespace starlab::core
