#include "core/scheduler_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/stats.hpp"
#include "ml/metrics.hpp"
#include "obs/trace.hpp"

namespace starlab::core {

int ClusterFeaturizer::z_bucket(double value, double mean, double stddev) {
  if (stddev <= 1e-12) return 0;
  const double z = (value - mean) / stddev;
  const int b = static_cast<int>(std::lround(z));
  return std::clamp(b, kZMin, kZMax);
}

int ClusterFeaturizer::cluster_index(int bz_az, int bz_el, int bz_age,
                                     bool sunlit) {
  const int a = bz_az - kZMin;
  const int e = bz_el - kZMin;
  const int g = bz_age - kZMin;
  return ((a * kBuckets + e) * kBuckets + g) * 2 + (sunlit ? 1 : 0);
}

std::string ClusterFeaturizer::cluster_name(int cluster) {
  const int sun = cluster % 2;
  int rest = cluster / 2;
  const int g = rest % kBuckets + kZMin;
  rest /= kBuckets;
  const int e = rest % kBuckets + kZMin;
  const int a = rest / kBuckets + kZMin;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "(%d,%d,%d,%d)", a, e, g, sun);
  return buf;
}

std::vector<std::string> ClusterFeaturizer::feature_names() {
  std::vector<std::string> names;
  names.reserve(kNumFeatures);
  names.emplace_back("local_hour");
  for (int c = 0; c < kNumClusters; ++c) names.push_back(cluster_name(c));
  return names;
}

ClusterFeaturizer::SlotFeatures ClusterFeaturizer::featurize(
    const SlotObs& slot) const {
  SlotFeatures out;
  out.x.assign(kNumFeatures, 0.0);
  out.x[0] = slot.local_hour;
  if (slot.available.empty()) return out;

  // Per-slot moments of each feature over the available set.
  std::vector<double> az, el, age;
  az.reserve(slot.available.size());
  el.reserve(slot.available.size());
  age.reserve(slot.available.size());
  for (const CandidateObs& c : slot.available) {
    az.push_back(c.azimuth_deg);
    el.push_back(c.elevation_deg);
    age.push_back(c.age_days);
  }
  const double mu_az = analysis::mean(az), sd_az = analysis::stddev(az);
  const double mu_el = analysis::mean(el), sd_el = analysis::stddev(el);
  const double mu_age = analysis::mean(age), sd_age = analysis::stddev(age);

  for (std::size_t i = 0; i < slot.available.size(); ++i) {
    const CandidateObs& c = slot.available[i];
    const int cluster = cluster_index(
        z_bucket(c.azimuth_deg, mu_az, sd_az),
        z_bucket(c.elevation_deg, mu_el, sd_el),
        z_bucket(c.age_days, mu_age, sd_age), c.sunlit);
    out.x[kCountOffset + static_cast<std::size_t>(cluster)] += 1.0;
    if (static_cast<int>(i) == slot.chosen) out.label = cluster;
  }
  return out;
}

ml::Dataset ClusterFeaturizer::build_dataset(
    const CampaignData& data,
    std::optional<std::size_t> terminal_index) const {
  std::vector<std::string> class_names;
  class_names.reserve(kNumClusters);
  for (int c = 0; c < kNumClusters; ++c) class_names.push_back(cluster_name(c));

  ml::Dataset out(kNumFeatures, feature_names(), std::move(class_names));
  for (const SlotObs& slot : data.slots) {
    if (terminal_index.has_value() && slot.terminal_index != *terminal_index) {
      continue;
    }
    SlotFeatures f = featurize(slot);
    if (f.label < 0) continue;
    out.add_row(f.x, f.label);
  }
  return out;
}

ModelEvaluation train_scheduler_model(
    const CampaignData& data, const ModelTrainConfig& config,
    std::optional<std::size_t> terminal_index) {
  const obs::ObsSpan span("train.run");
  const bool timed = obs::enabled();
  const std::uint64_t run_start = timed ? obs::monotonic_ns() : 0;

  ModelEvaluation out;
  out.report.kind = "train";
  out.report.label = terminal_index.has_value()
                         ? "terminal_" + std::to_string(*terminal_index)
                         : "pooled";
  obs::StageStat* st_featurize =
      timed ? &out.report.stage("featurize") : nullptr;
  obs::StageStat* st_select = timed ? &out.report.stage("select") : nullptr;
  obs::StageStat* st_fit = timed ? &out.report.stage("fit") : nullptr;
  obs::StageStat* st_evaluate =
      timed ? &out.report.stage("evaluate") : nullptr;

  const ClusterFeaturizer featurizer;
  const ml::Dataset all = [&] {
    const obs::ObsSpan stage_span("train.featurize");
    const obs::ScopedStage stage(st_featurize);
    return featurizer.build_dataset(data, terminal_index);
  }();
  if (all.size() < 20) return out;

  std::mt19937_64 rng(config.seed);
  const ml::IndexSplit split =
      ml::train_test_split(all.size(), config.holdout_fraction, rng);
  const ml::Dataset train = all.subset(split.train);
  out.train_rows = train.size();
  out.holdout_rows = split.test.size();

  // Model selection.
  {
    const obs::ObsSpan stage_span("train.select");
    const obs::ScopedStage stage(st_select);
    if (config.grid.has_value()) {
      const ml::GridSearchResult gs =
          ml::grid_search(train, *config.grid, {config.folds, config.seed});
      out.chosen_config = gs.best_config;
      out.cv_accuracy = gs.best_cv_accuracy;
    } else {
      out.chosen_config.num_trees = 80;
      out.chosen_config.tree.max_depth = 16;
      out.chosen_config.tree.min_samples_leaf = 2;
      out.chosen_config.seed = config.seed;
      out.cv_accuracy = ml::cross_validate(train, out.chosen_config,
                                           config.folds, config.seed);
    }
  }

  // Final fit and holdout evaluation.
  ml::RandomForest forest(out.chosen_config);
  {
    const obs::ObsSpan stage_span("train.fit");
    const obs::ScopedStage stage(st_fit);
    forest.fit(train);
  }
  const ml::PopularityBaseline baseline(ClusterFeaturizer::kCountOffset,
                                        ClusterFeaturizer::kNumClusters);

  const obs::ObsSpan evaluate_span("train.evaluate");
  const obs::ScopedStage evaluate_stage(st_evaluate);
  std::vector<std::vector<int>> forest_ranks, baseline_ranks;
  std::vector<int> labels;
  forest_ranks.reserve(split.test.size());
  baseline_ranks.reserve(split.test.size());
  for (const std::size_t i : split.test) {
    forest_ranks.push_back(forest.ranked_classes(all.row(i)));
    baseline_ranks.push_back(baseline.ranked_classes(all.row(i)));
    labels.push_back(all.label(i));
  }

  out.forest_top_k.resize(static_cast<std::size_t>(config.max_k));
  out.baseline_top_k.resize(static_cast<std::size_t>(config.max_k));
  for (int k = 1; k <= config.max_k; ++k) {
    out.forest_top_k[static_cast<std::size_t>(k - 1)] =
        ml::top_k_accuracy(forest_ranks, labels, k);
    out.baseline_top_k[static_cast<std::size_t>(k - 1)] =
        ml::top_k_accuracy(baseline_ranks, labels, k);
  }

  // Named, ranked gini importances.
  const std::vector<double> imp = forest.feature_importances();
  const std::vector<std::string>& names = all.feature_names();
  for (std::size_t f = 0; f < imp.size(); ++f) {
    out.importances.emplace_back(names[f], imp[f]);
  }
  std::stable_sort(out.importances.begin(), out.importances.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });

  out.report.add_value("cv_accuracy", out.cv_accuracy);
  if (!out.forest_top_k.empty()) {
    out.report.add_value("forest_top1", out.forest_top_k.front());
    out.report.add_value("baseline_top1", out.baseline_top_k.front());
  }
  out.report.add_value("train_rows", static_cast<double>(out.train_rows));
  out.report.add_value("holdout_rows", static_cast<double>(out.holdout_rows));
  if (timed) out.report.wall_ns = obs::monotonic_ns() - run_start;
  return out;
}

}  // namespace starlab::core
