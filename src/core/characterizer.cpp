#include "core/characterizer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "analysis/stats.hpp"

namespace starlab::core {

namespace {

std::size_t quadrant_of(double azimuth_deg) {
  // (NE, SE, SW, NW) == [0,90), [90,180), [180,270), [270,360).
  const auto q = static_cast<std::size_t>(azimuth_deg / 90.0);
  return std::min<std::size_t>(q, 3);
}

bool is_north(double azimuth_deg) {
  return azimuth_deg >= 270.0 || azimuth_deg < 90.0;
}

}  // namespace

SchedulerCharacterizer::SchedulerCharacterizer(
    const CampaignData& data, const constellation::Catalog& catalog)
    : data_(data), catalog_(catalog) {}

AoeStats SchedulerCharacterizer::aoe_stats(std::size_t ti) const {
  std::vector<double> available, chosen;
  for (const SlotObs* s : data_.for_terminal(ti)) {
    for (const CandidateObs& c : s->available) available.push_back(c.elevation_deg);
    if (s->has_choice()) chosen.push_back(s->chosen_candidate().elevation_deg);
  }

  AoeStats out;
  out.available = analysis::Ecdf(available);
  out.chosen = analysis::Ecdf(chosen);
  out.median_available_deg = analysis::median(available);
  out.median_chosen_deg = analysis::median(chosen);
  out.median_gap_deg = out.median_chosen_deg - out.median_available_deg;
  out.frac_available_45_90 = analysis::fraction_in_range(available, 45.0, 90.0);
  out.frac_chosen_45_90 = analysis::fraction_in_range(chosen, 45.0, 90.0);
  return out;
}

AzimuthStats SchedulerCharacterizer::azimuth_stats(std::size_t ti) const {
  std::vector<double> available, chosen;
  for (const SlotObs* s : data_.for_terminal(ti)) {
    for (const CandidateObs& c : s->available) available.push_back(c.azimuth_deg);
    if (s->has_choice()) chosen.push_back(s->chosen_candidate().azimuth_deg);
  }

  AzimuthStats out;
  out.available = analysis::Ecdf(available);
  out.chosen = analysis::Ecdf(chosen);

  for (const double az : available) {
    out.quadrant_share_available[quadrant_of(az)] += 1.0;
    if (is_north(az)) out.north_share_available += 1.0;
  }
  for (const double az : chosen) {
    out.quadrant_share_chosen[quadrant_of(az)] += 1.0;
    if (is_north(az)) out.north_share_chosen += 1.0;
    if (az >= 270.0) out.nw_share_chosen += 1.0;
  }
  if (!available.empty()) {
    for (double& q : out.quadrant_share_available) {
      q /= static_cast<double>(available.size());
    }
    out.north_share_available /= static_cast<double>(available.size());
  }
  if (!chosen.empty()) {
    for (double& q : out.quadrant_share_chosen) {
      q /= static_cast<double>(chosen.size());
    }
    out.north_share_chosen /= static_cast<double>(chosen.size());
    out.nw_share_chosen /= static_cast<double>(chosen.size());
  }
  return out;
}

LaunchPreference SchedulerCharacterizer::launch_preference(
    std::size_t ti) const {
  // Map norad -> launch label once.
  std::unordered_map<int, std::string> label_of;
  label_of.reserve(catalog_.size());
  for (const constellation::SatelliteRecord& r : catalog_.records()) {
    label_of.emplace(r.tle.norad_id, r.launch_label);
  }

  // Per-label tallies: in how many slots was a bird of that launch
  // available, and in how many was one picked.
  std::map<std::string, std::pair<std::size_t, std::size_t>> tally;
  for (const SlotObs* s : data_.for_terminal(ti)) {
    std::set<std::string> labels_this_slot;
    for (const CandidateObs& c : s->available) {
      const auto it = label_of.find(c.norad_id);
      if (it != label_of.end()) labels_this_slot.insert(it->second);
    }
    for (const std::string& label : labels_this_slot) {
      tally[label].first += 1;
    }
    if (s->has_choice()) {
      const auto it = label_of.find(s->chosen_candidate().norad_id);
      if (it != label_of.end()) tally[it->second].second += 1;
    }
  }

  LaunchPreference out;
  if (tally.empty()) return out;

  // "YYYY-MM" sorts chronologically as a string; months since the first bin
  // give the regression abscissa.
  const std::string& first_label = tally.begin()->first;
  const int first_year = std::stoi(first_label.substr(0, 4));
  const int first_month = std::stoi(first_label.substr(5, 2));

  std::vector<double> xs, ys;
  for (const auto& [label, counts] : tally) {
    LaunchPreference::Bin bin;
    bin.label = label;
    const int year = std::stoi(label.substr(0, 4));
    const int month = std::stoi(label.substr(5, 2));
    bin.months_since_first = (year - first_year) * 12.0 + (month - first_month);
    bin.available_slots = counts.first;
    bin.picked_slots = counts.second;
    bin.pick_ratio =
        counts.first == 0
            ? 0.0
            : static_cast<double>(counts.second) / static_cast<double>(counts.first);
    if (bin.available_slots >= 10) {  // skip bins too rare to estimate
      xs.push_back(bin.months_since_first);
      ys.push_back(bin.pick_ratio);
    }
    out.bins.push_back(std::move(bin));
  }
  const double r = analysis::pearson(xs, ys);
  out.pearson_r = std::isnan(r) ? 0.0 : r;
  return out;
}

SunlitStats SchedulerCharacterizer::sunlit_stats(std::size_t ti) const {
  SunlitStats out;
  std::vector<double> dark_avail, dark_chosen, sunlit_avail, sunlit_chosen;
  std::size_t sunlit_picks_in_mixed = 0;

  for (const SlotObs* s : data_.for_terminal(ti)) {
    std::size_t n_dark = 0, n_sunlit = 0;
    for (const CandidateObs& c : s->available) {
      if (c.sunlit) {
        ++n_sunlit;
        sunlit_avail.push_back(c.elevation_deg);
      } else {
        ++n_dark;
        dark_avail.push_back(c.elevation_deg);
      }
    }

    const bool mixed = n_dark > 0 && n_sunlit > 0;
    if (mixed) ++out.mixed_slots;

    if (s->has_choice()) {
      const CandidateObs& pick = s->chosen_candidate();
      if (pick.sunlit) {
        sunlit_chosen.push_back(pick.elevation_deg);
        if (mixed) ++sunlit_picks_in_mixed;
      } else {
        dark_chosen.push_back(pick.elevation_deg);
        if (!s->available.empty()) {
          const double dark_fraction = static_cast<double>(n_dark) /
                                       static_cast<double>(s->available.size());
          out.min_dark_fraction_when_dark_picked =
              std::min(out.min_dark_fraction_when_dark_picked, dark_fraction);
        }
      }
    }
  }

  if (out.mixed_slots > 0) {
    out.sunlit_pick_rate = static_cast<double>(sunlit_picks_in_mixed) /
                           static_cast<double>(out.mixed_slots);
  }
  out.aoe_dark_available = analysis::Ecdf(dark_avail);
  out.aoe_dark_chosen = analysis::Ecdf(dark_chosen);
  out.aoe_sunlit_available = analysis::Ecdf(sunlit_avail);
  out.aoe_sunlit_chosen = analysis::Ecdf(sunlit_chosen);
  out.median_aoe_dark_chosen = analysis::median(dark_chosen);
  out.median_aoe_sunlit_chosen = analysis::median(sunlit_chosen);
  out.frac_dark_chosen_above_60 =
      analysis::fraction_in_range(dark_chosen, 60.0, 90.0);
  out.frac_sunlit_chosen_above_60 =
      analysis::fraction_in_range(sunlit_chosen, 60.0, 90.0);
  return out;
}

DiurnalStats SchedulerCharacterizer::diurnal_stats(std::size_t ti) const {
  DiurnalStats out;
  std::array<double, 24> aoe_sum{};
  std::array<std::size_t, 24> picks{};
  std::array<std::size_t, 24> sunlit_picks{};
  std::array<std::size_t, 24> candidates{};
  std::array<std::size_t, 24> dark_candidates{};

  for (const SlotObs* s : data_.for_terminal(ti)) {
    auto hour = static_cast<std::size_t>(s->local_hour);
    if (hour > 23) hour = 23;
    out.by_hour[hour].slots += 1;
    for (const CandidateObs& c : s->available) {
      candidates[hour] += 1;
      if (!c.sunlit) dark_candidates[hour] += 1;
    }
    if (s->has_choice()) {
      const CandidateObs& pick = s->chosen_candidate();
      picks[hour] += 1;
      aoe_sum[hour] += pick.elevation_deg;
      if (pick.sunlit) sunlit_picks[hour] += 1;
    }
  }

  for (std::size_t h = 0; h < 24; ++h) {
    DiurnalStats::HourBin& bin = out.by_hour[h];
    if (picks[h] > 0) {
      bin.mean_pick_aoe_deg = aoe_sum[h] / static_cast<double>(picks[h]);
      bin.sunlit_pick_fraction =
          static_cast<double>(sunlit_picks[h]) / static_cast<double>(picks[h]);
    }
    if (candidates[h] > 0) {
      bin.dark_available_fraction = static_cast<double>(dark_candidates[h]) /
                                    static_cast<double>(candidates[h]);
    }
  }
  return out;
}

}  // namespace starlab::core
