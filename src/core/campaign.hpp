#pragma once

// A measurement campaign: the longitudinal slot-by-slot observation record
// that all of §5's analyses and §6's model are computed from.
//
// For every 15-second slot and every terminal, the campaign records the
// available (usable) candidate set — azimuth, elevation, launch age, sunlit
// state of each — plus which satellite the (black-box) global scheduler
// picked. In the real study the "picked" column comes from the §4
// obstruction-map pipeline; here it can come either from that same pipeline
// (see core/pipeline.hpp) or directly from the oracle, which §4's >99 %
// agreement validates as interchangeable for the downstream analyses.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "exec/cancel.hpp"
#include "obs/run_report.hpp"

namespace starlab::core {

/// Per-slot data-quality flags. A clean slot carries 0; degraded inputs set
/// bits so downstream statistics can filter or weight instead of silently
/// absorbing damaged observations.
namespace quality {
inline constexpr std::uint32_t kFrameMissing = 1u << 0;  ///< frame poll failed
inline constexpr std::uint32_t kStaleBaseline = 1u << 1;  ///< XOR ran against a frame older than slot-1
inline constexpr std::uint32_t kFrameCorrupted = 1u << 2;  ///< observed frame had flipped bits
inline constexpr std::uint32_t kAbstained = 1u << 3;  ///< identifier declined to answer
inline constexpr std::uint32_t kResetDetected = 1u << 4;  ///< unnoticed reboot between frames
inline constexpr std::uint32_t kCandidateDropout = 1u << 5;  ///< >=1 candidate dropped from this slot
inline constexpr std::uint32_t kQuarantined = 1u << 6;  ///< supervised task gave up; gap observation
inline constexpr std::uint32_t kShedSlot = 1u << 7;  ///< dropped by degradation load-shedding

/// All flags with their machine-readable names, in bit order — the keys the
/// observability layer uses in RunReport quality counts.
struct Flag {
  std::uint32_t bit;
  const char* name;
};
inline constexpr Flag kFlags[] = {
    {kFrameMissing, "frame_missing"},     {kStaleBaseline, "stale_baseline"},
    {kFrameCorrupted, "frame_corrupted"}, {kAbstained, "abstained"},
    {kResetDetected, "reset_detected"},   {kCandidateDropout, "candidate_dropout"},
    {kQuarantined, "quarantined"},        {kShedSlot, "shed_slot"},
};

/// Name of a single flag bit; nullptr for unknown bits.
[[nodiscard]] inline const char* flag_name(std::uint32_t bit) {
  for (const Flag& f : kFlags) {
    if (f.bit == bit) return f.name;
  }
  return nullptr;
}
}  // namespace quality

/// One available satellite as recorded for one slot.
struct CandidateObs {
  int norad_id = 0;
  double azimuth_deg = 0.0;
  double elevation_deg = 0.0;
  double age_days = 0.0;
  bool sunlit = true;
};

/// One (terminal, slot) observation.
struct SlotObs {
  time::SlotIndex slot = 0;
  std::size_t terminal_index = 0;
  double unix_mid = 0.0;      ///< slot midpoint
  double local_hour = 0.0;    ///< local solar hour at the terminal
  std::vector<CandidateObs> available;  ///< usable candidates
  int chosen = -1;            ///< index into `available`; -1 if none
  std::uint32_t quality = 0;  ///< quality:: flags; 0 == clean observation
  /// Confidence in `chosen`: 1 for oracle-labeled campaigns, the match
  /// confidence for §4-inferred ones, 0 when there is no choice.
  double confidence = 1.0;

  [[nodiscard]] bool has_choice() const { return chosen >= 0; }
  [[nodiscard]] const CandidateObs& chosen_candidate() const {
    return available[static_cast<std::size_t>(chosen)];
  }
};

struct CampaignData {
  std::vector<std::string> terminal_names;
  std::vector<SlotObs> slots;
  /// Run summary filled by run_campaign / run_inferred_campaign: stage
  /// timings (when observability is on), slot/quality counts, the fault
  /// plan in force. Not persisted by campaign_io; write it with
  /// io::report_io if the run should land in a JSONL log.
  obs::RunReport report;

  /// Observations of one terminal only.
  [[nodiscard]] std::vector<const SlotObs*> for_terminal(
      std::size_t terminal_index) const;
};

struct CampaignConfig {
  double duration_hours = 24.0;
  /// Start this many hours after the scenario epoch (lets a study carve
  /// disjoint train/evaluation windows from one world).
  double start_offset_hours = 0.0;
  /// Sub-sample the slot grid: record every k-th slot. §5's statistics are
  /// about per-slot *distributions*, so thinning trades time for variance
  /// without bias.
  int slot_stride = 1;
  /// Fault plan for this run; unset falls back to the scenario's plan. The
  /// campaign applies the per-slot satellite-dropout injector (candidates
  /// vanish before the scheduler sees them).
  std::optional<fault::FaultPlan> faults;

  // --- resilience hooks (defaults reproduce the historical behavior) ---

  /// Exact half-open window [record_begin, record_end) into the recorded
  /// slot list (the stride-thinned slots the full config would record).
  /// record_end == 0 disables the slice. The resilience layer shards a
  /// campaign with these *integer* indices — hour arithmetic would not
  /// round-trip — so concatenating shard outputs in order reproduces the
  /// unsharded run bit for bit.
  std::size_t record_begin = 0;
  std::size_t record_end = 0;
  /// Compute every k-th record of the (possibly sliced) window; the widened
  /// grid of the degradation ladder. Skipped records are simply absent from
  /// the output (the shard runner emits flagged gap rows for them).
  std::size_t record_step = 1;

  /// Cooperative cancellation, polled once per slot (non-owning; the
  /// supervisor's deadline watchdog). nullptr: never cancelled.
  const exec::CancelToken* cancel = nullptr;
};

/// Run a campaign over the scenario's terminals starting at its TLE epoch.
[[nodiscard]] CampaignData run_campaign(const Scenario& scenario,
                                        const CampaignConfig& config = {});

/// Number of slots the *full* config would record (slice fields ignored) —
/// the index domain of record_begin/record_end.
[[nodiscard]] std::size_t campaign_recorded_slots(const Scenario& scenario,
                                                  const CampaignConfig& config);

/// Slot id of recorded-slot index `record` under the full config.
[[nodiscard]] time::SlotIndex campaign_record_slot(const Scenario& scenario,
                                                   const CampaignConfig& config,
                                                   std::size_t record);

/// Recompute data.report's slot summary (slot/decided/degraded counts, the
/// per-quality-flag table, the fault plan in force) from data.slots. Shared
/// by run_campaign and the resilience shard assembler so a resumed
/// campaign's report counts match an uninterrupted run's exactly.
void finalize_campaign_report(CampaignData& data, const fault::FaultPlan& plan);

}  // namespace starlab::core
