#pragma once

// §5: characterizing the global scheduler from campaign data.
//
// Every statistic the paper reports about the scheduler's preferences is
// computed here, from the same kind of observation record the paper built:
// per-slot available-satellite sets plus the identified pick.
//
//   * AOE preference (Fig 4): available vs selected elevation CDFs, the
//     median gap, and the 45-90 deg shares.
//   * Azimuth preference (Fig 5): available vs selected azimuth CDFs,
//     quadrant shares, the north share, and the NW share (which exposes
//     Ithaca's tree obstruction).
//   * Launch-date preference (Fig 6): per-launch pick/availability ratios
//     and their Pearson correlation with launch date.
//   * Sunlit preference (§5.3 / Fig 7): pick rates in mixed slots, the dark
//     fraction at which dark satellites start being picked, and the
//     dark/sunlit selected-AOE split.

#include <array>
#include <string>
#include <vector>

#include "analysis/ecdf.hpp"
#include "constellation/catalog.hpp"
#include "core/campaign.hpp"

namespace starlab::core {

/// Fig 4 row for one terminal.
struct AoeStats {
  analysis::Ecdf available;
  analysis::Ecdf chosen;
  double median_available_deg = 0.0;
  double median_chosen_deg = 0.0;
  double median_gap_deg = 0.0;           ///< chosen - available median AOE
  double frac_available_45_90 = 0.0;
  double frac_chosen_45_90 = 0.0;
};

/// Fig 5 row for one terminal. Quadrants are (NE, SE, SW, NW) == azimuth
/// [0,90), [90,180), [180,270), [270,360).
struct AzimuthStats {
  analysis::Ecdf available;
  analysis::Ecdf chosen;
  std::array<double, 4> quadrant_share_available{};
  std::array<double, 4> quadrant_share_chosen{};
  double north_share_available = 0.0;  ///< az in [270,360) U [0,90)
  double north_share_chosen = 0.0;
  double nw_share_chosen = 0.0;        ///< az in [270,360) — Ithaca's gap
};

/// Fig 6 for one terminal.
struct LaunchPreference {
  struct Bin {
    std::string label;              ///< "YYYY-MM"
    double months_since_first = 0.0;
    std::size_t available_slots = 0;  ///< slots with >= 1 bird of this launch
    std::size_t picked_slots = 0;     ///< slots where such a bird was picked
    double pick_ratio = 0.0;          ///< picked / available
  };
  std::vector<Bin> bins;  ///< ordered by launch date
  double pearson_r = 0.0; ///< corr(months_since_first, pick_ratio)
};

/// §5.3 / Fig 7 for one terminal.
struct SunlitStats {
  std::size_t mixed_slots = 0;        ///< slots with both sunlit & dark birds
  double sunlit_pick_rate = 0.0;      ///< P(pick sunlit | mixed slot)
  /// Smallest dark/available fraction among slots where a dark bird was
  /// picked (the paper's ">= 35 %" observation).
  double min_dark_fraction_when_dark_picked = 1.0;
  analysis::Ecdf aoe_dark_available, aoe_dark_chosen;
  analysis::Ecdf aoe_sunlit_available, aoe_sunlit_chosen;
  double median_aoe_dark_chosen = 0.0;
  double median_aoe_sunlit_chosen = 0.0;
  double frac_dark_chosen_above_60 = 0.0;
  double frac_sunlit_chosen_above_60 = 0.0;
};

/// Diurnal behaviour: why `local_hour` tops the §6 feature importances.
/// The scheduler's observable choices swing with the day/night cycle —
/// at night dark satellites dominate availability and the picks climb
/// toward zenith (the energy model).
struct DiurnalStats {
  struct HourBin {
    std::size_t slots = 0;
    double mean_pick_aoe_deg = 0.0;
    double sunlit_pick_fraction = 0.0;   ///< of slots with a pick
    double dark_available_fraction = 0.0;  ///< of all candidates
  };
  std::array<HourBin, 24> by_hour{};
};

class SchedulerCharacterizer {
 public:
  /// `catalog` supplies launch metadata for the Fig 6 analysis.
  SchedulerCharacterizer(const CampaignData& data,
                         const constellation::Catalog& catalog);

  [[nodiscard]] AoeStats aoe_stats(std::size_t terminal_index) const;
  [[nodiscard]] AzimuthStats azimuth_stats(std::size_t terminal_index) const;
  [[nodiscard]] LaunchPreference launch_preference(
      std::size_t terminal_index) const;
  [[nodiscard]] SunlitStats sunlit_stats(std::size_t terminal_index) const;
  [[nodiscard]] DiurnalStats diurnal_stats(std::size_t terminal_index) const;

  [[nodiscard]] std::size_t num_terminals() const {
    return data_.terminal_names.size();
  }
  [[nodiscard]] const std::string& terminal_name(std::size_t i) const {
    return data_.terminal_names[i];
  }

 private:
  const CampaignData& data_;
  const constellation::Catalog& catalog_;
};

}  // namespace starlab::core
