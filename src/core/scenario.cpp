#include "core/scenario.hpp"

namespace starlab::core {

ScenarioConfig Scenario::default_config(double constellation_scale) {
  ScenarioConfig cfg;
  cfg.constellation.scale = constellation_scale;
  for (const ground::Site s :
       {ground::Site::kIowa, ground::Site::kNewYork, ground::Site::kMadrid,
        ground::Site::kWashington}) {
    cfg.terminals.push_back(ground::paper_terminal_config(s));
  }
  return cfg;
}

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      catalog_(std::make_unique<constellation::Catalog>(
          constellation::synthesize(config_.constellation))),
      mac_(config_.mac, config_.seed ^ 0x11ULL) {
  terminals_.reserve(config_.terminals.size());
  for (const ground::TerminalConfig& tc : config_.terminals) {
    terminals_.emplace_back(tc);
  }
  global_ = std::make_unique<scheduler::GlobalScheduler>(
      *catalog_, config_.weights, config_.grid, config_.seed);
  if (config_.attach_gateway_network) {
    gateways_ = std::make_unique<ground::GatewayNetwork>(
        ground::GatewayNetwork::paper_region_network());
    global_->set_gateway_network(gateways_.get());
  }
}

}  // namespace starlab::core
