#pragma once

// §6: the offline approximation of the global scheduler.
//
// Feature engineering follows the paper exactly. For each 15-second slot the
// available satellites are clustered by how many standard deviations each of
// azimuth / angle-of-elevation / age sits from the slot's own mean (plus the
// binary sunlit flag): satellite s lands in cluster
//     ( round((az_s - mu_az)/sigma_az), round((el_s - mu_el)/sigma_el),
//       round((age_s - mu_age)/sigma_age), sunlit_s )
// with z-buckets clamped to [-2, 2]. The model's inputs are the local solar
// hour plus the per-cluster satellite counts; its target is the cluster of
// the satellite the scheduler picked. A random forest is trained with
// grid-searched hyper-parameters under 5-fold CV on 80 % of the data and
// validated on the 20 % holdout; accuracy is reported as top-k against the
// popularity baseline (Fig 8), and gini importances explain the learned
// preferences.

#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "ml/baseline.hpp"
#include "ml/dataset.hpp"
#include "ml/grid_search.hpp"
#include "ml/random_forest.hpp"

namespace starlab::core {

class ClusterFeaturizer {
 public:
  static constexpr int kZMin = -2;
  static constexpr int kZMax = 2;
  static constexpr int kBuckets = kZMax - kZMin + 1;  // 5
  static constexpr int kNumClusters = kBuckets * kBuckets * kBuckets * 2;  // 250
  /// Feature layout: [local_hour, count(cluster 0), ..., count(cluster 249)].
  static constexpr std::size_t kNumFeatures = 1 + kNumClusters;
  static constexpr std::size_t kCountOffset = 1;

  /// Clamped integer z-bucket.
  [[nodiscard]] static int z_bucket(double value, double mean, double stddev);

  /// Flat cluster index from bucket coordinates.
  [[nodiscard]] static int cluster_index(int bz_az, int bz_el, int bz_age,
                                         bool sunlit);

  /// Human-readable "(az,el,age,sun)" tuple for a cluster index — the form
  /// the paper's feature-importance discussion uses.
  [[nodiscard]] static std::string cluster_name(int cluster);

  /// Feature-column names (for importance reports).
  [[nodiscard]] static std::vector<std::string> feature_names();

  /// One slot's features and label. `label` is -1 when the slot has no
  /// recorded pick (such slots are skipped during training).
  struct SlotFeatures {
    std::vector<double> x;
    int label = -1;
  };
  [[nodiscard]] SlotFeatures featurize(const SlotObs& slot) const;

  /// A dataset over all (or one terminal's) slots of a campaign.
  [[nodiscard]] ml::Dataset build_dataset(
      const CampaignData& data,
      std::optional<std::size_t> terminal_index = std::nullopt) const;
};

struct ModelTrainConfig {
  double holdout_fraction = 0.2;  ///< the paper's 80/20 split
  int folds = 5;
  int max_k = 9;                  ///< Fig 8 sweeps k = 1..9
  std::uint64_t seed = 29;
  /// Full grid search is expensive; when unset, a fixed known-good forest
  /// configuration is used instead (tests) while benches run the search.
  std::optional<ml::GridSearchSpace> grid;
};

struct ModelEvaluation {
  /// Holdout top-k accuracy for k = 1..max_k (index k-1).
  std::vector<double> forest_top_k;
  std::vector<double> baseline_top_k;
  double cv_accuracy = 0.0;       ///< best CV top-1 during selection
  ml::ForestConfig chosen_config;
  /// (feature name, gini importance), descending, full ranking.
  std::vector<std::pair<std::string, double>> importances;
  std::size_t train_rows = 0;
  std::size_t holdout_rows = 0;
  /// Run summary: stage timings (featurize / select / fit / evaluate, when
  /// observability is on) plus the headline accuracies as named values.
  obs::RunReport report;
};

/// Train and evaluate the §6 model on a campaign (all terminals pooled, or
/// one terminal).
[[nodiscard]] ModelEvaluation train_scheduler_model(
    const CampaignData& data, const ModelTrainConfig& config = {},
    std::optional<std::size_t> terminal_index = std::nullopt);

}  // namespace starlab::core
