#include "core/satellite_predictor.hpp"

#include <algorithm>

#include "analysis/stats.hpp"

namespace starlab::core {

std::vector<int> SatellitePredictor::rank_satellites(
    const SlotObs& slot) const {
  struct Scored {
    int norad = 0;
    double probability = 0.0;
    double elevation = 0.0;
  };
  std::vector<Scored> scored;
  if (slot.available.empty()) return {};

  const ClusterFeaturizer::SlotFeatures f = featurizer_.featurize(slot);
  const std::vector<double> cluster_proba = forest_.predict_proba(f.x);

  // Recompute each candidate's cluster the same way the featurizer did.
  std::vector<double> az, el, age;
  for (const CandidateObs& c : slot.available) {
    az.push_back(c.azimuth_deg);
    el.push_back(c.elevation_deg);
    age.push_back(c.age_days);
  }
  const double mu_az = analysis::mean(az), sd_az = analysis::stddev(az);
  const double mu_el = analysis::mean(el), sd_el = analysis::stddev(el);
  const double mu_age = analysis::mean(age), sd_age = analysis::stddev(age);

  // Cluster population for the probability split.
  std::vector<int> cluster_of(slot.available.size());
  std::vector<int> population(ClusterFeaturizer::kNumClusters, 0);
  for (std::size_t i = 0; i < slot.available.size(); ++i) {
    const CandidateObs& c = slot.available[i];
    cluster_of[i] = ClusterFeaturizer::cluster_index(
        ClusterFeaturizer::z_bucket(c.azimuth_deg, mu_az, sd_az),
        ClusterFeaturizer::z_bucket(c.elevation_deg, mu_el, sd_el),
        ClusterFeaturizer::z_bucket(c.age_days, mu_age, sd_age), c.sunlit);
    population[static_cast<std::size_t>(cluster_of[i])] += 1;
  }

  for (std::size_t i = 0; i < slot.available.size(); ++i) {
    const auto cluster = static_cast<std::size_t>(cluster_of[i]);
    Scored s;
    s.norad = slot.available[i].norad_id;
    s.probability = cluster_proba[cluster] /
                    static_cast<double>(std::max(1, population[cluster]));
    s.elevation = slot.available[i].elevation_deg;
    scored.push_back(s);
  }

  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.probability != b.probability) {
                       return a.probability > b.probability;
                     }
                     return a.elevation > b.elevation;
                   });

  std::vector<int> out;
  out.reserve(scored.size());
  for (const Scored& s : scored) out.push_back(s.norad);
  return out;
}

std::vector<double> SatellitePredictor::evaluate_top_k(
    const CampaignData& data, int max_k) const {
  std::vector<std::size_t> hits(static_cast<std::size_t>(max_k), 0);
  std::size_t total = 0;
  for (const SlotObs& slot : data.slots) {
    if (!slot.has_choice()) continue;
    const std::vector<int> ranked = rank_satellites(slot);
    if (ranked.empty()) continue;
    ++total;
    const int truth = slot.chosen_candidate().norad_id;
    for (std::size_t k = 0; k < ranked.size() &&
                            k < static_cast<std::size_t>(max_k);
         ++k) {
      if (ranked[k] == truth) {
        for (std::size_t j = k; j < hits.size(); ++j) ++hits[j];
        break;
      }
    }
  }
  std::vector<double> out(hits.size(), 0.0);
  if (total > 0) {
    for (std::size_t k = 0; k < hits.size(); ++k) {
      out[k] = static_cast<double>(hits[k]) / static_cast<double>(total);
    }
  }
  return out;
}

}  // namespace starlab::core
