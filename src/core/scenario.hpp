#pragma once

// A Scenario bundles everything one study needs: the synthesized
// constellation (as a propagation-ready catalog), the terminal fleet, the
// 15-second slot grid and the scheduler oracles. It is the single object
// examples and benches construct first.

#include <memory>
#include <vector>

#include "constellation/catalog.hpp"
#include "constellation/synthesizer.hpp"
#include "fault/fault_plan.hpp"
#include "ground/gateway.hpp"
#include "ground/sites.hpp"
#include "ground/terminal.hpp"
#include "scheduler/global_scheduler.hpp"
#include "scheduler/mac_scheduler.hpp"
#include "time/slot_grid.hpp"
#include "time/utc_time.hpp"

namespace starlab::core {

struct ScenarioConfig {
  constellation::SynthesizerConfig constellation;
  scheduler::SchedulerWeights weights;
  scheduler::MacConfig mac;
  time::SlotGrid grid{15.0, 12.0};
  std::uint64_t seed = 7;
  /// Terminals to instantiate; defaults to the paper's four vantage points.
  std::vector<ground::TerminalConfig> terminals;
  /// Attach the bent-pipe gateway constraint (paper-region network). Off by
  /// default: with the realistic network it almost never binds at the
  /// paper's vantage points (validated in tests), and leaving it off keeps
  /// the calibrated statistics exactly reproducible.
  bool attach_gateway_network = false;
  /// Fault injection applied by campaigns and pipelines run over this
  /// scenario (they can also override it per run). The default plan has
  /// every rate at 0, i.e. clean data.
  fault::FaultPlan faults;
};

class Scenario {
 public:
  /// The paper's setup: four vantage points, full Gen1-scale constellation.
  /// `constellation_scale` < 1 thins the catalog for fast tests.
  [[nodiscard]] static ScenarioConfig default_config(double constellation_scale = 1.0);

  explicit Scenario(ScenarioConfig config);

  /// Scenario with the paper's default setup.
  Scenario() : Scenario(default_config()) {}

  [[nodiscard]] const constellation::Catalog& catalog() const {
    return *catalog_;
  }
  [[nodiscard]] const std::vector<ground::Terminal>& terminals() const {
    return terminals_;
  }
  [[nodiscard]] const ground::Terminal& terminal(std::size_t i) const {
    return terminals_[i];
  }
  [[nodiscard]] const scheduler::GlobalScheduler& global_scheduler() const {
    return *global_;
  }
  /// The attached gateway network, or nullptr when disabled.
  [[nodiscard]] const ground::GatewayNetwork* gateway_network() const {
    return gateways_ ? gateways_.get() : nullptr;
  }
  [[nodiscard]] const scheduler::MacScheduler& mac_scheduler() const {
    return mac_;
  }
  [[nodiscard]] const time::SlotGrid& grid() const { return config_.grid; }
  [[nodiscard]] const fault::FaultPlan& fault_plan() const {
    return config_.faults;
  }

  /// The campaign's natural start time: the constellation's TLE epoch
  /// (propagation error grows with time-from-epoch, as it would with a
  /// freshly pulled CelesTrak file).
  [[nodiscard]] double epoch_unix() const {
    return config_.constellation.epoch.to_unix_seconds();
  }

  /// First slot at/after the TLE epoch.
  [[nodiscard]] time::SlotIndex first_slot() const {
    return config_.grid.slot_of(epoch_unix()) + 1;
  }

 private:
  ScenarioConfig config_;
  std::unique_ptr<constellation::Catalog> catalog_;
  std::vector<ground::Terminal> terminals_;
  std::unique_ptr<scheduler::GlobalScheduler> global_;
  std::unique_ptr<ground::GatewayNetwork> gateways_;
  scheduler::MacScheduler mac_;
};

}  // namespace starlab::core
