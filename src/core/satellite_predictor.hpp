#pragma once

// Satellite-level prediction: an extension of the paper's §6 model.
//
// The paper predicts the *cluster* of the allocated satellite. Since the
// candidate satellites of a slot and their cluster memberships are publicly
// computable (TLEs + SGP4), a cluster posterior converts directly into a
// ranking over concrete satellites: each candidate inherits its cluster's
// predicted probability split evenly among the cluster's members. This
// answers the operationally interesting question — "which satellite will my
// dish use at time t?" — that the paper's model stops one step short of.

#include <vector>

#include "core/campaign.hpp"
#include "core/scheduler_model.hpp"
#include "ml/random_forest.hpp"

namespace starlab::core {

class SatellitePredictor {
 public:
  /// @param forest  a forest trained on ClusterFeaturizer features.
  explicit SatellitePredictor(const ml::RandomForest& forest)
      : forest_(forest) {}

  /// Candidate NORAD ids of `slot`, most likely to be allocated first.
  /// Ties within a cluster are broken toward higher elevation (the
  /// scheduler's strongest known preference).
  [[nodiscard]] std::vector<int> rank_satellites(const SlotObs& slot) const;

  /// Top-k satellite-level accuracy over a campaign's slots that carry a
  /// ground-truth pick. Skips slots with no candidates.
  [[nodiscard]] std::vector<double> evaluate_top_k(const CampaignData& data,
                                                   int max_k) const;

 private:
  const ml::RandomForest& forest_;
  ClusterFeaturizer featurizer_;
};

}  // namespace starlab::core
