#include "analysis/bootstrap.hpp"

#include <algorithm>

#include "analysis/stats.hpp"

namespace starlab::analysis {

namespace {

std::vector<double> resample(std::span<const double> sample,
                             std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> pick(0, sample.size() - 1);
  std::vector<double> out(sample.size());
  for (double& v : out) v = sample[pick(rng)];
  return out;
}

BootstrapCi ci_from_distribution(double point, std::vector<double> values,
                                 double alpha) {
  std::sort(values.begin(), values.end());
  const auto lo_idx = static_cast<std::size_t>(
      alpha / 2.0 * static_cast<double>(values.size()));
  const auto hi_idx = std::min(
      values.size() - 1, static_cast<std::size_t>(
                             (1.0 - alpha / 2.0) *
                             static_cast<double>(values.size())));
  return {point, values[lo_idx], values[hi_idx]};
}

}  // namespace

BootstrapCi bootstrap_ci(std::span<const double> sample,
                         const Statistic& statistic, std::mt19937_64& rng,
                         int resamples, double alpha) {
  if (sample.empty() || resamples < 2) return {};
  const double point = statistic(sample);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    const std::vector<double> re = resample(sample, rng);
    values.push_back(statistic(re));
  }
  return ci_from_distribution(point, std::move(values), alpha);
}

BootstrapCi bootstrap_median_ci(std::span<const double> sample,
                                std::mt19937_64& rng, int resamples,
                                double alpha) {
  return bootstrap_ci(
      sample, [](std::span<const double> v) { return median(v); }, rng,
      resamples, alpha);
}

BootstrapCi bootstrap_median_diff_ci(std::span<const double> a,
                                     std::span<const double> b,
                                     std::mt19937_64& rng, int resamples,
                                     double alpha) {
  if (a.empty() || b.empty() || resamples < 2) return {};
  const double point = median(a) - median(b);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    const std::vector<double> ra = resample(a, rng);
    const std::vector<double> rb = resample(b, rng);
    values.push_back(median(ra) - median(rb));
  }
  return ci_from_distribution(point, std::move(values), alpha);
}

}  // namespace starlab::analysis
