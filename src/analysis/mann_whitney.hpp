#pragma once

// Mann-Whitney U test (two-sided, tie-corrected normal approximation).
//
// §3 validates the 15-second discontinuities by testing that RTT samples in
// consecutive scheduling windows come from different distributions
// (p < .05). The normal approximation is exact enough at the paper's sample
// sizes (hundreds of probes per window).

#include <span>

namespace starlab::analysis {

struct MannWhitneyResult {
  double u = 0.0;             ///< U statistic of the first sample
  double z = 0.0;             ///< tie-corrected z-score
  double p_two_sided = 1.0;
};

/// Two-sided Mann-Whitney U test. Requires both samples non-empty; returns
/// p == 1 for degenerate inputs (all values tied).
[[nodiscard]] MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                               std::span<const double> b);

}  // namespace starlab::analysis
