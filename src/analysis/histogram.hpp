#pragma once

// Fixed-bin histograms: the counting side of the §5 analyses (launch-month
// bins, azimuth quadrants, AOE bands) and the text-bar renderings the bench
// binaries print.

#include <span>
#include <string>
#include <vector>

namespace starlab::analysis {

class Histogram {
 public:
  /// `num_bins` equal-width bins over [lo, hi); values outside are counted
  /// in the under/overflow tallies, not in any bin.
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double value);
  void add_all(std::span<const double> values);

  [[nodiscard]] std::size_t num_bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Centre of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Lower edge of a bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;

  /// Fraction of in-range values in a bin (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Index of the fullest bin (first on ties).
  [[nodiscard]] std::size_t mode_bin() const;

  /// Text rendering: one "<lo> <bar> <count>" line per bin, bars scaled to
  /// `width` characters at the mode.
  [[nodiscard]] std::string to_text(int width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace starlab::analysis
