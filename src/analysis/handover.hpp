#pragma once

// Handover dynamics: how the 15-second global re-allocation moves a terminal
// between satellites over time. The paper's §3 argument ("15 s is too short
// for satellite motion to explain the latency changes") implies frequent
// satellite *changes*; this module quantifies them — change rate, dwell
// lengths, revisits, and the angular size of the sky jump at each handover.

#include <cstddef>
#include <vector>

namespace starlab::analysis {

/// One terminal's allocation sequence, as (norad id, azimuth, elevation)
/// per slot; norad < 0 marks a slot with no allocation.
struct AllocationStep {
  int norad_id = -1;
  double azimuth_deg = 0.0;
  double elevation_deg = 0.0;
};

struct HandoverStats {
  std::size_t slots = 0;             ///< slots with an allocation
  std::size_t handovers = 0;         ///< consecutive-slot satellite changes
  double handover_rate = 0.0;        ///< handovers / transitions
  double mean_dwell_slots = 0.0;     ///< average consecutive-slot run length
  std::size_t max_dwell_slots = 0;
  double mean_jump_deg = 0.0;        ///< sky separation across a handover
  double max_jump_deg = 0.0;
  std::size_t distinct_satellites = 0;
  double revisit_fraction = 0.0;     ///< satellites serving >1 dwell
};

/// Compute handover statistics over an allocation sequence (consecutive
/// slots; gaps with norad < 0 break dwells but are not counted as
/// handovers).
[[nodiscard]] HandoverStats handover_stats(
    const std::vector<AllocationStep>& sequence);

}  // namespace starlab::analysis
