#pragma once

// Percentile-bootstrap confidence intervals.
//
// The paper reports point estimates (median AOE gap 22.9 deg, sunlit rate
// 72.3 %, ...). Bootstrap CIs quantify how tight those estimates are for a
// given campaign length — which is what tells a user of this library how
// long to measure before trusting a number.

#include <functional>
#include <random>
#include <span>
#include <vector>

namespace starlab::analysis {

struct BootstrapCi {
  double point = 0.0;  ///< statistic on the full sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound

  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] bool contains(double v) const { return v >= lo && v <= hi; }
};

/// A statistic over a sample.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap: resample with replacement `resamples` times, take
/// the [alpha/2, 1-alpha/2] percentiles of the statistic's distribution.
/// alpha = 0.05 gives a 95 % CI.
[[nodiscard]] BootstrapCi bootstrap_ci(std::span<const double> sample,
                                       const Statistic& statistic,
                                       std::mt19937_64& rng,
                                       int resamples = 1000,
                                       double alpha = 0.05);

/// Convenience: CI of the median.
[[nodiscard]] BootstrapCi bootstrap_median_ci(std::span<const double> sample,
                                              std::mt19937_64& rng,
                                              int resamples = 1000,
                                              double alpha = 0.05);

/// CI of the *difference of medians* between two samples (the Fig 4 gap):
/// resamples both sides independently.
[[nodiscard]] BootstrapCi bootstrap_median_diff_ci(
    std::span<const double> a, std::span<const double> b, std::mt19937_64& rng,
    int resamples = 1000, double alpha = 0.05);

}  // namespace starlab::analysis
