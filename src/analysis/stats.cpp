#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace starlab::analysis {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

double mean(std::span<const double> v) {
  if (v.empty()) return kNaN;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double ss = 0.0;
  for (const double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

double quantile(std::span<const double> v, double p) {
  if (v.empty()) return kNaN;
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> v) { return quantile(v, 0.5); }

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return kNaN;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return kNaN;
  return sxy / std::sqrt(sxx * syy);
}

double fraction_in_range(std::span<const double> v, double lo, double hi) {
  if (v.empty()) return 0.0;
  std::size_t n = 0;
  for (const double x : v) {
    if (x >= lo && x <= hi) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(v.size());
}

}  // namespace starlab::analysis
