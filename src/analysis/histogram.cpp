#include "analysis/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace starlab::analysis {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  if (num_bins == 0) throw std::invalid_argument("histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("histogram range must be ordered");
  bin_width_ = (hi - lo) / static_cast<double>(num_bins);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / bin_width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> values) {
  for (const double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_center(std::size_t bin) const {
  return bin_lo(bin) + 0.5 * bin_width_;
}

double Histogram::fraction(std::size_t bin) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(in_range);
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::to_text(int width) const {
  const std::size_t peak = counts_[mode_bin()];
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(counts_[b]) /
                                     static_cast<double>(peak) * width);
    std::snprintf(line, sizeof(line), "%10.2f %-*s %zu\n", bin_lo(b),
                  width, std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  counts_[b]);
    out += line;
  }
  return out;
}

}  // namespace starlab::analysis
