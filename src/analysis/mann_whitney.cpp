#include "analysis/mann_whitney.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace starlab::analysis {

namespace {

/// Standard normal two-sided tail probability via erfc.
double two_sided_p(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

}  // namespace

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  MannWhitneyResult out;
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 == 0 || n2 == 0) return out;

  // Pool, sort, assign mid-ranks to ties.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(n1 + n2);
  for (const double x : a) pooled.push_back({x, true});
  for (const double x : b) pooled.push_back({x, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& l, const Tagged& r) { return l.value < r.value; });

  const double n = static_cast<double>(n1 + n2);
  double rank_sum_a = 0.0;
  double tie_correction = 0.0;

  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
    // Ranks are 1-based; the tied group [i, j) all receive the average rank.
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    const double t = static_cast<double>(j - i);
    tie_correction += t * t * t - t;
    for (std::size_t k = i; k < j; ++k) {
      if (pooled[k].from_a) rank_sum_a += avg_rank;
    }
    i = j;
  }

  const double n1d = static_cast<double>(n1);
  const double n2d = static_cast<double>(n2);
  out.u = rank_sum_a - n1d * (n1d + 1.0) / 2.0;

  const double mu = n1d * n2d / 2.0;
  const double sigma_sq =
      n1d * n2d / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  if (sigma_sq <= 0.0) return out;  // everything tied: p stays 1

  // Continuity correction toward the mean.
  const double diff = out.u - mu;
  const double cc = diff > 0.0 ? -0.5 : (diff < 0.0 ? 0.5 : 0.0);
  out.z = (diff + cc) / std::sqrt(sigma_sq);
  out.p_two_sided = two_sided_p(out.z);
  return out;
}

}  // namespace starlab::analysis
