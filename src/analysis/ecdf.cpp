#include "analysis/ecdf.hpp"

#include <algorithm>

namespace starlab::analysis {

Ecdf::Ecdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  if (sorted_.empty()) return 0.0;
  const double target = p * static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(target);
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

std::vector<std::pair<double, double>> Ecdf::series(double lo, double hi,
                                                    int points) const {
  std::vector<std::pair<double, double>> out;
  if (points < 2) return out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * i / (points - 1);
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

}  // namespace starlab::analysis
