#pragma once

// Empirical cumulative distribution functions — the lingua franca of the
// paper's Figures 4, 5 and 7 (available vs. selected satellite CDFs).

#include <span>
#include <vector>

namespace starlab::analysis {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::span<const double> samples);

  /// P(X <= x) under the empirical distribution; 0 for an empty ECDF.
  [[nodiscard]] double operator()(double x) const;

  /// Inverse: smallest sample value v with P(X <= v) >= p.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const {
    return sorted_;
  }

  /// Evaluate at evenly spaced points across [lo, hi] — one printable
  /// figure series.
  [[nodiscard]] std::vector<std::pair<double, double>> series(
      double lo, double hi, int points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace starlab::analysis
