#include "analysis/handover.hpp"

#include <algorithm>
#include <map>

#include "geo/topocentric.hpp"

namespace starlab::analysis {

HandoverStats handover_stats(const std::vector<AllocationStep>& sequence) {
  HandoverStats out;

  std::map<int, std::size_t> dwells_per_satellite;
  std::size_t transitions = 0;
  std::size_t current_dwell = 0;
  std::vector<std::size_t> dwell_lengths;
  double jump_sum = 0.0;

  const AllocationStep* prev = nullptr;
  for (const AllocationStep& step : sequence) {
    if (step.norad_id < 0) {
      // Gap: close any open dwell.
      if (current_dwell > 0) dwell_lengths.push_back(current_dwell);
      current_dwell = 0;
      prev = nullptr;
      continue;
    }
    ++out.slots;

    if (prev != nullptr) {
      ++transitions;
      if (prev->norad_id != step.norad_id) {
        ++out.handovers;
        dwell_lengths.push_back(current_dwell);
        current_dwell = 0;

        const double jump =
            geo::sky_separation(geo::Deg(prev->azimuth_deg),
                                geo::Deg(prev->elevation_deg),
                                geo::Deg(step.azimuth_deg),
                                geo::Deg(step.elevation_deg))
                .value();
        jump_sum += jump;
        out.max_jump_deg = std::max(out.max_jump_deg, jump);
      }
    }
    if (current_dwell == 0) dwells_per_satellite[step.norad_id] += 1;
    ++current_dwell;
    prev = &step;
  }
  if (current_dwell > 0) dwell_lengths.push_back(current_dwell);

  if (transitions > 0) {
    out.handover_rate =
        static_cast<double>(out.handovers) / static_cast<double>(transitions);
  }
  if (!dwell_lengths.empty()) {
    std::size_t sum = 0;
    for (const std::size_t d : dwell_lengths) {
      sum += d;
      out.max_dwell_slots = std::max(out.max_dwell_slots, d);
    }
    out.mean_dwell_slots =
        static_cast<double>(sum) / static_cast<double>(dwell_lengths.size());
  }
  if (out.handovers > 0) {
    out.mean_jump_deg = jump_sum / static_cast<double>(out.handovers);
  }
  out.distinct_satellites = dwells_per_satellite.size();
  if (!dwells_per_satellite.empty()) {
    std::size_t revisited = 0;
    for (const auto& [norad, dwells] : dwells_per_satellite) {
      if (dwells > 1) ++revisited;
    }
    out.revisit_fraction = static_cast<double>(revisited) /
                           static_cast<double>(dwells_per_satellite.size());
  }
  return out;
}

}  // namespace starlab::analysis
