#pragma once

// Descriptive statistics shared by the §5 analyses.

#include <span>
#include <vector>

namespace starlab::analysis {

[[nodiscard]] double mean(std::span<const double> v);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double stddev(std::span<const double> v);

/// Median (average of middle two for even sizes). NaN for empty input.
[[nodiscard]] double median(std::span<const double> v);

/// Linear-interpolated quantile, p in [0, 1]. NaN for empty input.
[[nodiscard]] double quantile(std::span<const double> v, double p);

/// Pearson correlation coefficient; NaN when either side is constant or
/// sizes mismatch/empty.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

/// Fraction of values within [lo, hi].
[[nodiscard]] double fraction_in_range(std::span<const double> v, double lo,
                                       double hi);

}  // namespace starlab::analysis
