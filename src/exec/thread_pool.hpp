#pragma once

// Fixed-size thread pool with a deterministic parallel_for.
//
// The contract every caller relies on: parallel_for partitions [0, n) into
// contiguous index chunks decided only by (n, num_threads), and each index's
// work must depend only on the index — never on which thread runs it or in
// what order chunks complete. Under that discipline results are bit-identical
// at any thread count, which is how the pipeline/campaign/forest outputs keep
// the same guarantee the fault layer makes at intensity 0 and the obs layer
// makes for the null sink.
//
// num_threads == 1 is the serial fallback: parallel_for runs inline on the
// caller with no locks, no queue and no worker threads. Nested parallel_for
// calls (from inside a worker) also run inline, so composed layers — a
// campaign slot that itself calls Catalog::propagate_all — never deadlock.

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "check/thread_annotations.hpp"

namespace starlab::exec {

struct Config {
  /// Worker count the pool schedules across (the caller counts as one of
  /// them). <= 0 resolves to std::thread::hardware_concurrency().
  int num_threads = 0;
};

/// Resolve a Config to a concrete thread count (>= 1).
[[nodiscard]] int resolve_num_threads(const Config& config);

class ThreadPool {
 public:
  explicit ThreadPool(Config config = {});
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Run body(begin, end) over `num_threads()` contiguous chunks of [0, n).
  /// Chunk boundaries depend only on (n, num_threads); the caller executes
  /// one chunk itself and helps drain the queue while waiting. The first
  /// exception thrown by any chunk is rethrown on the caller after every
  /// chunk finished.
  void parallel_for_chunks(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& body)
      EXCLUDES(mu_) {
    parallel_for_chunks(n, 1, body);
  }

  /// Like the two-argument overload, but never splits finer than
  /// `min_per_chunk` indices per chunk: chunk count is
  /// min(num_threads, max(1, n / min_per_chunk)). Callers whose per-chunk
  /// body has a fixed setup cost (campaign slots each rebuilding scratch
  /// state, for example) pass the grain so a small n runs in a few big
  /// chunks instead of num_threads() tiny ones. Chunk boundaries still
  /// depend only on (n, min_per_chunk, num_threads), so results stay
  /// bit-identical at any thread count.
  void parallel_for_chunks(
      std::size_t n, std::size_t min_per_chunk,
      const std::function<void(std::size_t, std::size_t)>& body) EXCLUDES(mu_);

  /// Per-index convenience over parallel_for_chunks: f(i) for i in [0, n).
  template <typename F>
  void parallel_for(std::size_t n, F&& f) {
    parallel_for_chunks(n, [&f](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) f(i);
    });
  }

  /// True when the calling thread is one of this pool's workers (nested
  /// parallel_for then runs inline).
  [[nodiscard]] static bool on_worker_thread();

 private:
  void worker_loop();
  /// Pop-and-run one queued task; false when the queue is empty.
  bool run_one_task() EXCLUDES(mu_);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  check::Mutex mu_;
  check::CondVar cv_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

/// The process-wide pool the hot paths (Catalog::propagate_all, the
/// identifier's candidate loop, run_campaign, RandomForest::fit) schedule on.
/// First use builds it from Config{} — honoring the STARLAB_THREADS
/// environment variable when set — so untouched programs parallelize across
/// the hardware by default.
[[nodiscard]] ThreadPool& default_pool();

/// Replace the default pool (joins the old workers first). Not safe to call
/// while another thread is inside default_pool().parallel_for.
void configure(const Config& config);

/// Thread count of the current default pool.
[[nodiscard]] int default_num_threads();

}  // namespace starlab::exec
