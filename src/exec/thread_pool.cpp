#include "exec/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace starlab::exec {

namespace {

thread_local bool t_on_worker = false;

/// Pre-registered pool metrics: queue depth, tasks executed, parallel_for
/// invocations. One-time registration, relaxed-atomic recording.
struct PoolMetrics {
  obs::Counter tasks, parallel_fors, inline_runs;
  obs::Gauge queue_depth;

  static const PoolMetrics& get() {
    static const PoolMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      PoolMetrics x;
      x.tasks = reg.counter("starlab_exec_tasks_total",
                            "Chunk tasks executed by the exec pool");
      x.parallel_fors =
          reg.counter("starlab_exec_parallel_for_total",
                      "parallel_for invocations dispatched to workers");
      x.inline_runs =
          reg.counter("starlab_exec_inline_runs_total",
                      "parallel_for invocations run inline (serial fallback, "
                      "nested call, or single chunk)");
      x.queue_depth = reg.gauge("starlab_exec_queue_depth",
                                "Queued chunk tasks awaiting a worker");
      return x;
    }();
    return m;
  }
};

}  // namespace

int resolve_num_threads(const Config& config) {
  if (config.num_threads > 0) return config.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(Config config)
    : num_threads_(resolve_num_threads(config)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const check::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      const check::MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.wait(mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      PoolMetrics::get().queue_depth.set(static_cast<double>(tasks_.size()));
    }
    task();
  }
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    const check::MutexLock lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop_front();
    PoolMetrics::get().queue_depth.set(static_cast<double>(tasks_.size()));
  }
  task();
  return true;
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, std::size_t min_per_chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const PoolMetrics& metrics = PoolMetrics::get();

  if (min_per_chunk == 0) min_per_chunk = 1;
  const auto threads = static_cast<std::size_t>(num_threads_);
  const std::size_t max_chunks = n / min_per_chunk > 0 ? n / min_per_chunk : 1;
  const std::size_t chunks = max_chunks < threads ? max_chunks : threads;
  // Serial fallback (num_threads == 1), nested call from a worker, or a
  // problem too small to split: run inline on the caller, lock-free.
  if (chunks <= 1 || t_on_worker) {
    metrics.inline_runs.add();
    body(0, n);
    return;
  }
  metrics.parallel_fors.add();

  // Completion state shared with the queued chunk closures. Heap-allocated
  // shared_ptr so a task popped by a concurrent caller's assist loop stays
  // valid even in edge cases; `pending` gates the caller's return.
  struct Sync {
    check::Mutex mu;
    check::CondVar cv;
    std::size_t pending GUARDED_BY(mu) = 0;
    std::exception_ptr error GUARDED_BY(mu);
  };
  auto sync = std::make_shared<Sync>();
  {
    const check::MutexLock lock(sync->mu);
    sync->pending = chunks - 1;
  }

  const auto run_chunk = [&metrics, &body, n,
                          chunks](std::size_t chunk_index) {
    const obs::ObsSpan span("exec.chunk");
    metrics.tasks.add();
    const std::size_t begin = n * chunk_index / chunks;
    const std::size_t end = n * (chunk_index + 1) / chunks;
    body(begin, end);
  };

  {
    const check::MutexLock lock(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      tasks_.emplace_back([sync, run_chunk, c] {
        try {
          run_chunk(c);
        } catch (...) {
          const check::MutexLock slock(sync->mu);
          if (!sync->error) sync->error = std::current_exception();
        }
        {
          const check::MutexLock slock(sync->mu);
          --sync->pending;
        }
        sync->cv.notify_all();
      });
    }
    metrics.queue_depth.set(static_cast<double>(tasks_.size()));
  }
  cv_.notify_all();

  // The caller owns chunk 0, then helps drain the queue (its own remaining
  // chunks, or a concurrent caller's) instead of blocking early.
  try {
    run_chunk(0);
  } catch (...) {
    const check::MutexLock slock(sync->mu);
    if (!sync->error) sync->error = std::current_exception();
  }
  while (run_one_task()) {
  }
  {
    const check::MutexLock lock(sync->mu);
    while (sync->pending != 0) sync->cv.wait(sync->mu);
    if (sync->error) std::rethrow_exception(sync->error);
  }
}

namespace {

check::Mutex g_default_mu;
std::unique_ptr<ThreadPool> g_default_pool GUARDED_BY(g_default_mu);

Config config_from_env() {
  Config config;
  if (const char* env = std::getenv("STARLAB_THREADS")) {
    config.num_threads = std::atoi(env);
  }
  return config;
}

}  // namespace

ThreadPool& default_pool() {
  const check::MutexLock lock(g_default_mu);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(config_from_env());
  }
  return *g_default_pool;
}

void configure(const Config& config) {
  const check::MutexLock lock(g_default_mu);
  g_default_pool = std::make_unique<ThreadPool>(config);
}

int default_num_threads() { return default_pool().num_threads(); }

}  // namespace starlab::exec
