#pragma once

// Cooperative cancellation for supervised tasks.
//
// The pool never kills threads: a long-running task (a campaign slot shard,
// a pipeline pass) is handed a CancelToken and polls it at its natural
// checkpoints — once per slot is plenty. The token trips either explicitly
// (cancel()) or when an armed monotonic deadline passes, and check() turns
// a tripped token into a TaskCancelled exception that unwinds the task
// through the pool's normal exception propagation. Header-only so layers
// below exec's .cpp (and tests) can use it without new link edges.

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "obs/clock.hpp"

namespace starlab::exec {

/// Thrown by CancelToken::check() when the task should stop. Derives from
/// std::runtime_error so unaware catch sites treat it as an ordinary task
/// failure; the supervisor distinguishes it by type to report "deadline"
/// instead of "error".
class TaskCancelled : public std::runtime_error {
 public:
  explicit TaskCancelled(const char* why = "task cancelled")
      : std::runtime_error(why) {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token explicitly (idempotent, thread-safe).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm a watchdog deadline at an absolute obs::monotonic_ns() instant;
  /// 0 disarms. The token trips once the clock passes it.
  void arm_deadline(std::uint64_t deadline_monotonic_ns) {
    deadline_ns_.store(deadline_monotonic_ns, std::memory_order_relaxed);
  }

  /// Arm the watchdog `seconds` from now; <= 0 disarms.
  void arm_deadline_in(double seconds) {
    arm_deadline(seconds > 0.0
                     ? obs::monotonic_ns() +
                           static_cast<std::uint64_t>(seconds * 1e9)
                     : 0);
  }

  [[nodiscard]] bool deadline_expired() const {
    const std::uint64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && obs::monotonic_ns() >= d;
  }

  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) || deadline_expired();
  }

  /// Throw TaskCancelled when tripped; the polling point for task bodies.
  void check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      throw TaskCancelled("task cancelled");
    }
    if (deadline_expired()) throw TaskCancelled("task deadline expired");
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> deadline_ns_{0};  ///< 0: no deadline armed
};

}  // namespace starlab::exec
