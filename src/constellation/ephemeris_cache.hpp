#pragma once

// Memoized SGP4 states for the identifier's candidate-path sampling.
//
// candidate_path evaluates every candidate satellite at every sample instant
// of a slot; the TEME state behind each evaluation is observer-independent,
// so the same (catalog_index, time) pair asked again — by the painter that
// drew the serving satellite's trajectory moments earlier, by the reversed
// DTW traversal's tooling, or by another terminal at the same slot — should
// not re-run SGP4. The cache quantizes time to a fixed grid (default 0.25 s,
// which the 15 s / integer-second sampling of the pipeline lands on exactly)
// and memoizes (catalog_index, quantized_time) -> TEME position.
//
// Bit-identity: entries are keyed by the *exact bits* of the queried
// JulianDate, so a hit returns precisely what the direct call would compute
// for that instant; queries away from the quantum grid bypass the cache
// entirely (they would never repeat). Entries are pure functions of the key,
// so concurrent queries (the identifier scores candidates in parallel) may
// at worst compute a value twice — never a different value.
//
// Memory is bounded by a sliding slot window: entries live in two
// generations keyed by a coarse time window; queries that advance past the
// window rotate the generations and drop everything older. A query far in
// the past (a new terminal's run restarting at the epoch) resets the cache.

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "check/thread_annotations.hpp"
#include "constellation/catalog.hpp"

namespace starlab::constellation {

class EphemerisCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;     ///< on-grid queries that ran SGP4
    std::uint64_t bypasses = 0;   ///< off-grid queries (cache not consulted)
    std::uint64_t evictions = 0;  ///< entries dropped by window rotation
  };

  /// @param quantum_sec  time grid the cache recognizes; queries off this
  ///                     grid bypass the cache.
  /// @param window_sec   width of one eviction generation; entries survive
  ///                     at most two generations (~2*window_sec).
  explicit EphemerisCache(const Catalog& catalog, double quantum_sec = 0.25,
                          double window_sec = 60.0);

  /// Look angles of `catalog_index` from `observer` at `jd` — the memoized
  /// equivalent of Catalog::look_at. Throws sgp4::Sgp4Error exactly where
  /// the direct call would (decayed satellites are never cached as valid).
  [[nodiscard]] geo::LookAngles look_from(std::size_t catalog_index,
                                          const geo::Geodetic& observer,
                                          const time::JulianDate& jd) const;

  /// TEME position of `catalog_index` at `jd`, memoized when `jd` lies on
  /// the quantum grid. Throws sgp4::Sgp4Error when propagation fails.
  [[nodiscard]] geo::TemeKm position_teme(std::size_t catalog_index,
                                          const time::JulianDate& jd) const;

  [[nodiscard]] const Catalog& catalog() const { return catalog_; }
  [[nodiscard]] Stats stats() const;
  /// Drop every entry (stats persist).
  void clear();
  /// Cached entries across all shards and both generations.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    bool valid = false;  ///< false: propagation threw; rethrow on use
    geo::TemeKm teme_km;
  };

  static constexpr std::size_t kNumShards = 16;

  struct Shard {
    mutable check::Mutex mu;
    std::unordered_map<std::uint64_t, Entry> current GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, Entry> previous GUARDED_BY(mu);
    /// Generation id of `current`.
    std::int64_t window GUARDED_BY(mu) = INT64_MIN;
    /// Consecutive queries one window behind `window`. A brief straddle
    /// (parallel chunks interleaving across a boundary) stays small; a
    /// sustained streak means the clock actually stepped backwards and the
    /// shard must regress instead of serving around an abandoned future
    /// generation.
    int regress_streak GUARDED_BY(mu) = 0;
  };

  /// Backward-straddle queries tolerated before the shard concludes the
  /// clock stepped back, evicts the abandoned `current` generation and
  /// regresses its window (see Shard::regress_streak).
  static constexpr int kRegressPromoteStreak = 64;

  /// Quantized tick (for sharding/windowing) of a near-grid unix time;
  /// false when off-grid, i.e. not worth caching.
  [[nodiscard]] bool quantize(double unix_sec, std::int64_t& tick) const;
  [[nodiscard]] Entry lookup_or_compute(std::size_t catalog_index,
                                        std::int64_t tick,
                                        const time::JulianDate& jd) const;

  const Catalog& catalog_;
  double quantum_sec_;
  std::int64_t window_ticks_;
  mutable Shard shards_[kNumShards];
  mutable std::atomic<std::uint64_t> hits_{0}, misses_{0}, bypasses_{0},
      evictions_{0};
};

}  // namespace starlab::constellation
