#include "constellation/synthesizer.hpp"

#include <algorithm>
#include <cstdio>
#include <random>

namespace starlab::constellation {

namespace {

/// "YYYY-MM" bin label used throughout the §5.2 analysis.
std::string month_label(const time::UtcTime& t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", t.year, t.month);
  return buf;
}

/// International designator: launch year (2-digit), launch number of that
/// year (3-digit), piece letter(s).
std::string intl_designator(const time::UtcTime& launch, int launch_of_year,
                            int piece) {
  char buf[16];
  const char letter = static_cast<char>('A' + piece % 26);
  std::snprintf(buf, sizeof(buf), "%02d%03d%c", launch.year % 100,
                launch_of_year, letter);
  return buf;
}

}  // namespace

std::vector<tle::Tle> Constellation::tles() const {
  std::vector<tle::Tle> out;
  out.reserve(satellites.size());
  for (const SatelliteRecord& r : satellites) out.push_back(r.tle);
  return out;
}

Constellation synthesize(const SynthesizerConfig& config) {
  Constellation out;

  // 1. Enumerate every slot of every shell, shell-major (Starlink filled
  //    shell 1 first, then the others).
  struct Slot {
    WalkerElement element;
    int shell;
  };
  std::vector<WalkerShell> shells = config.shells;
  if (config.gen2) shells.push_back(starlink_gen2_shell());

  std::vector<Slot> slots;
  for (std::size_t sh = 0; sh < shells.size(); ++sh) {
    for (const WalkerElement& e : generate_walker(shells[sh])) {
      slots.push_back({e, static_cast<int>(sh)});
    }
  }

  // Optional down-scaling for fast tests: keep every k-th slot.
  if (config.scale < 1.0 && config.scale > 0.0) {
    const auto stride = static_cast<std::size_t>(1.0 / config.scale);
    std::vector<Slot> kept;
    for (std::size_t i = 0; i < slots.size(); i += stride) kept.push_back(slots[i]);
    slots.swap(kept);
  }

  // 2. Order slots before slicing into launches.
  std::mt19937_64 rng(config.seed);
  if (config.ordering == LaunchOrdering::kInterleaved) {
    // Launch date independent of orbital geometry: global shuffle.
    std::shuffle(slots.begin(), slots.end(), rng);
  } else {
    // Shell-major chronology with a mild windowed shuffle: real launches
    // fill planes approximately but not exactly in order (drift phasing,
    // spares).
    const std::size_t window = static_cast<std::size_t>(
        std::max(2, config.satellites_per_launch * 2));
    for (std::size_t start = 0; start + 1 < slots.size(); start += window / 2) {
      const std::size_t end = std::min(slots.size(), start + window);
      std::shuffle(slots.begin() + static_cast<std::ptrdiff_t>(start),
                   slots.begin() + static_cast<std::ptrdiff_t>(end), rng);
    }
  }

  // 3. Slice into launches spread uniformly between first and last launch.
  const int num_launches = static_cast<int>(
      (slots.size() + config.satellites_per_launch - 1) /
      static_cast<std::size_t>(config.satellites_per_launch));
  const double t_first = config.first_launch.to_unix_seconds();
  const double t_last = config.last_launch.to_unix_seconds();
  const double launch_spacing =
      num_launches > 1 ? (t_last - t_first) / (num_launches - 1) : 0.0;

  int norad = config.first_norad_id;
  int launch_of_year = 1;
  int prev_launch_year = config.first_launch.year;

  for (int li = 0; li < num_launches; ++li) {
    LaunchBatch batch;
    batch.index = li;
    batch.date = time::UtcTime::from_unix_seconds(t_first + li * launch_spacing);
    batch.date.hour = 0;
    batch.date.minute = 0;
    batch.date.second = 0.0;
    batch.label = month_label(batch.date);
    batch.first_norad_id = norad;

    if (batch.date.year != prev_launch_year) {
      launch_of_year = 1;
      prev_launch_year = batch.date.year;
    }

    const std::size_t begin = static_cast<std::size_t>(li) *
                              static_cast<std::size_t>(config.satellites_per_launch);
    const std::size_t end = std::min(
        slots.size(), begin + static_cast<std::size_t>(config.satellites_per_launch));

    for (std::size_t i = begin; i < end; ++i) {
      const Slot& slot = slots[i];
      SatelliteRecord rec;
      rec.shell = slot.shell;
      rec.launch_index = li;
      rec.launch_date = batch.date;
      rec.launch_label = batch.label;

      tle::Tle& t = rec.tle;
      char name[32];
      std::snprintf(name, sizeof(name), "STARLAB-%d", norad);
      t.name = name;
      t.norad_id = norad;
      t.classification = 'U';
      t.intl_designator =
          intl_designator(batch.date, launch_of_year, static_cast<int>(i - begin));
      t.epoch_year = config.epoch.year;
      t.epoch_day = config.epoch.fractional_day_of_year();
      t.ndot_over_2 = 0.0;
      t.nddot_over_6 = 0.0;
      t.bstar = config.bstar;
      t.element_set_number = 999;
      t.inclination_deg = slot.element.inclination.value();
      t.raan_deg = slot.element.raan.value();
      t.eccentricity = 0.0001;  // near-circular, like the operational shells
      t.arg_perigee_deg = 90.0;
      t.mean_anomaly_deg = slot.element.mean_anomaly.value();
      t.mean_motion_rev_per_day = slot.element.mean_motion_rev_per_day;
      t.rev_number = 1;

      out.satellites.push_back(std::move(rec));
      ++norad;
      ++batch.count;
    }

    out.launches.push_back(std::move(batch));
    ++launch_of_year;
  }

  return out;
}

}  // namespace starlab::constellation
