#include "constellation/ephemeris_cache.hpp"

#include <bit>
#include <cmath>

#include "check/hotpath.hpp"
#include "geo/frames.hpp"
#include "obs/metrics.hpp"

namespace starlab::constellation {

namespace {

/// Pre-registered cache metrics (process-wide totals across all caches).
struct CacheMetrics {
  obs::Counter hits, misses, evictions;

  static const CacheMetrics& get() {
    static const CacheMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      CacheMetrics x;
      x.hits = reg.counter("starlab_ephemeris_cache_hits_total",
                           "Ephemeris cache lookups served without SGP4");
      x.misses = reg.counter("starlab_ephemeris_cache_misses_total",
                             "Ephemeris cache lookups that ran SGP4");
      x.evictions = reg.counter("starlab_ephemeris_cache_evictions_total",
                                "Ephemeris cache entries dropped by window "
                                "rotation");
      return x;
    }();
    return m;
  }
};

/// splitmix64 finalizer — spreads (index, tick) keys across shards.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

EphemerisCache::EphemerisCache(const Catalog& catalog, double quantum_sec,
                               double window_sec)
    : catalog_(catalog),
      quantum_sec_(quantum_sec > 0.0 ? quantum_sec : 0.25),
      window_ticks_(static_cast<std::int64_t>(
          window_sec > quantum_sec_ ? window_sec / quantum_sec_ : 1.0)) {}

bool EphemerisCache::quantize(double unix_sec, std::int64_t& tick) const {
  const double q = unix_sec / quantum_sec_;
  if (std::abs(q) > 9.0e15) return false;
  // Within 1 µs of a grid point counts as on-grid: those are the repeated
  // sample instants worth memoizing (the JulianDate<->unix round trip is not
  // bit-exact, so demanding exactness would disable the cache outright).
  // This gate only decides *cacheability* — the cache key hashes the exact
  // JulianDate bits, so two nearby instants sharing a tick can never alias.
  const double r = std::nearbyint(q);
  if (std::abs(q - r) * quantum_sec_ > 1e-6) return false;
  tick = static_cast<std::int64_t>(r);
  return true;
}

EphemerisCache::Entry EphemerisCache::lookup_or_compute(
    std::size_t catalog_index, std::int64_t tick,
    const time::JulianDate& jd) const {
  // Key on the exact (day, frac) bits of the queried instant: a hit then by
  // construction returns the very value the direct call would compute for
  // this JulianDate — bit-identity without trusting time round-trips.
  std::uint64_t key =
      mix64(static_cast<std::uint64_t>(catalog_index) * 0x100000001b3ULL);
  key = mix64(key ^ std::bit_cast<std::uint64_t>(jd.day_part()));
  key = mix64(key ^ std::bit_cast<std::uint64_t>(jd.frac_part()));
  Shard& shard = shards_[key % kNumShards];
  const std::int64_t window = tick / window_ticks_;

  {
    const check::MutexLock lock(shard.mu);
    if (window > shard.window || window < shard.window - 1) {
      // Advance: current becomes previous (adjacent window) or everything is
      // stale. Regression far into the past (a fresh run restarting at the
      // epoch) also lands here and resets the shard.
      std::size_t dropped = shard.previous.size();
      if (window == shard.window + 1) {
        shard.previous = std::move(shard.current);
      } else {
        dropped += shard.current.size();
        shard.previous.clear();
      }
      shard.current.clear();
      shard.window = window;
      shard.regress_streak = 0;
      if (dropped > 0) {
        evictions_.fetch_add(dropped, std::memory_order_relaxed);
        CacheMetrics::get().evictions.add(dropped);
      }
    } else if (window == shard.window) {
      shard.regress_streak = 0;
    } else if (++shard.regress_streak >= kRegressPromoteStreak) {
      // window == shard.window - 1, persistently: the clock stepped
      // backwards across the generation boundary (not the benign transient
      // straddle of parallel chunks, which at-window queries keep
      // resetting). `current` is an abandoned future generation — serving
      // around it pins its entries forever and leaves the window ahead of
      // real time. Invalidate it and regress the shard so the query's
      // window is current again.
      const std::size_t dropped = shard.current.size();
      shard.current = std::move(shard.previous);
      shard.previous.clear();
      shard.window -= 1;
      shard.regress_streak = 0;
      if (dropped > 0) {
        evictions_.fetch_add(dropped, std::memory_order_relaxed);
        CacheMetrics::get().evictions.add(dropped);
      }
    }
    const auto& gen =
        window == shard.window ? shard.current : shard.previous;
    const auto it = gen.find(key);
    if (it != gen.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::get().hits.add();
      return it->second;
    }
  }

  // Compute outside the shard lock: a concurrent query for the same key may
  // duplicate the work but always produces the same bits.
  Entry entry;
  try {
    entry.valid = true;
    entry.teme_km =
        geo::TemeKm(catalog_.ephemeris(catalog_index).state_teme(jd).position_km);
  } catch (const sgp4::Sgp4Error&) {
    entry.valid = false;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().misses.add();

  {
    const check::MutexLock lock(shard.mu);
    if (window == shard.window) {
      shard.current.emplace(key, entry);
    } else if (window == shard.window - 1) {
      shard.previous.emplace(key, entry);
    }
    // A window that rotated away while we computed is simply not stored.
  }
  return entry;
}

// Memoization is the point of this hot path: a miss inserts under the
// striped shard lock (amortized away on the hit path), and a decayed
// satellite reproduces the uncached call's exception by contract.
// starlint:allow(hotpath-lock) starlint:allow(hotpath-alloc) starlint:allow(hotpath-throw)
STARLAB_HOTPATH geo::TemeKm EphemerisCache::position_teme(
    std::size_t catalog_index, const time::JulianDate& jd) const {
  std::int64_t tick = 0;
  if (!quantize(jd.to_unix_seconds(), tick)) {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    return geo::TemeKm(
        catalog_.ephemeris(catalog_index).state_teme(jd).position_km);
  }
  const Entry entry = lookup_or_compute(catalog_index, tick, jd);
  if (!entry.valid) {
    // Reproduce the direct call's exception (decayed satellite).
    return geo::TemeKm(
        catalog_.ephemeris(catalog_index).state_teme(jd).position_km);
  }
  return entry.teme_km;
}

geo::LookAngles EphemerisCache::look_from(std::size_t catalog_index,
                                          const geo::Geodetic& observer,
                                          const time::JulianDate& jd) const {
  // Same arithmetic as Ephemeris::look_from, with the TEME state memoized:
  // teme -> ecef -> topocentric look angles.
  return geo::look_angles(observer,
                          geo::teme_to_ecef(position_teme(catalog_index, jd), jd));
}

EphemerisCache::Stats EphemerisCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          bypasses_.load(std::memory_order_relaxed),
          evictions_.load(std::memory_order_relaxed)};
}

void EphemerisCache::clear() {
  for (Shard& shard : shards_) {
    const check::MutexLock lock(shard.mu);
    shard.current.clear();
    shard.previous.clear();
    shard.window = INT64_MIN;
    shard.regress_streak = 0;
  }
}

std::size_t EphemerisCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    const check::MutexLock lock(shard.mu);
    n += shard.current.size() + shard.previous.size();
  }
  return n;
}

}  // namespace starlab::constellation
