#include "constellation/walker.hpp"

#include <cmath>

#include "geo/angles.hpp"
#include "geo/wgs.hpp"

namespace starlab::constellation {

double circular_mean_motion_rev_per_day(geo::Km altitude) {
  const double a = geo::kWgs72.radius_km + altitude.value();
  const double n_rad_s = std::sqrt(geo::kWgs72.mu_km3_s2 / (a * a * a));
  return n_rad_s * 86400.0 / geo::kTwoPi;
}

std::vector<WalkerElement> generate_walker(const WalkerShell& shell) {
  std::vector<WalkerElement> out;
  out.reserve(static_cast<std::size_t>(shell.total_satellites()));

  const double raan_step = 360.0 / shell.planes;
  const double slot_step = 360.0 / shell.sats_per_plane;
  // Walker phasing: adjacent planes are offset in mean anomaly by
  // F * 360 / T degrees.
  const double phase_step =
      static_cast<double>(shell.phasing) * 360.0 / shell.total_satellites();
  const double n = circular_mean_motion_rev_per_day(shell.altitude);

  for (int p = 0; p < shell.planes; ++p) {
    for (int s = 0; s < shell.sats_per_plane; ++s) {
      WalkerElement e;
      e.plane = p;
      e.slot = s;
      e.inclination = shell.inclination;
      e.raan = geo::wrap_360(shell.raan_offset + geo::Deg(p * raan_step));
      e.mean_anomaly = geo::Deg(geo::wrap_360(s * slot_step + p * phase_step));
      e.altitude = shell.altitude;
      e.mean_motion_rev_per_day = n;
      out.push_back(e);
    }
  }
  return out;
}

std::vector<WalkerShell> starlink_gen1_shells() {
  return {
      // inclination, altitude, planes, sats/plane, phasing, raan offset
      {geo::Deg(53.0), geo::Km(550.0), 72, 22, 17, geo::Deg(0.0)},
      {geo::Deg(53.2), geo::Km(540.0), 72, 22, 17, geo::Deg(2.5)},
      {geo::Deg(70.0), geo::Km(570.0), 36, 20, 11, geo::Deg(0.0)},
      {geo::Deg(97.6), geo::Km(560.0), 6, 58, 1, geo::Deg(0.0)},
  };
}

WalkerShell starlink_gen2_shell() {
  // Offset half a Gen1 plane spacing so the Gen2 planes interleave with the
  // 53 deg Gen1 shell instead of stacking on it.
  return {geo::Deg(53.0), geo::Km(525.0), 120, 45, 11, geo::Deg(1.5)};
}

std::vector<WalkerShell> starlink_gen2_shells() {
  std::vector<WalkerShell> shells = starlink_gen1_shells();
  shells.push_back(starlink_gen2_shell());
  return shells;
}

}  // namespace starlab::constellation
