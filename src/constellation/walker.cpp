#include "constellation/walker.hpp"

#include <cmath>

#include "geo/angles.hpp"
#include "geo/wgs.hpp"

namespace starlab::constellation {

double circular_mean_motion_rev_per_day(double altitude_km) {
  const double a_km = geo::kWgs72.radius_km + altitude_km;
  const double n_rad_s = std::sqrt(geo::kWgs72.mu_km3_s2 / (a_km * a_km * a_km));
  return n_rad_s * 86400.0 / geo::kTwoPi;
}

std::vector<WalkerElement> generate_walker(const WalkerShell& shell) {
  std::vector<WalkerElement> out;
  out.reserve(static_cast<std::size_t>(shell.total_satellites()));

  const double raan_step = 360.0 / shell.planes;
  const double slot_step = 360.0 / shell.sats_per_plane;
  // Walker phasing: adjacent planes are offset in mean anomaly by
  // F * 360 / T degrees.
  const double phase_step =
      static_cast<double>(shell.phasing) * 360.0 / shell.total_satellites();
  const double n = circular_mean_motion_rev_per_day(shell.altitude_km);

  for (int p = 0; p < shell.planes; ++p) {
    for (int s = 0; s < shell.sats_per_plane; ++s) {
      WalkerElement e;
      e.plane = p;
      e.slot = s;
      e.inclination_deg = shell.inclination_deg;
      e.raan_deg = geo::wrap_360(shell.raan_offset_deg + p * raan_step);
      e.mean_anomaly_deg = geo::wrap_360(s * slot_step + p * phase_step);
      e.altitude_km = shell.altitude_km;
      e.mean_motion_rev_per_day = n;
      out.push_back(e);
    }
  }
  return out;
}

std::vector<WalkerShell> starlink_gen1_shells() {
  return {
      // inclination, altitude, planes, sats/plane, phasing, raan offset
      {53.0, 550.0, 72, 22, 17, 0.0},
      {53.2, 540.0, 72, 22, 17, 2.5},
      {70.0, 570.0, 36, 20, 11, 0.0},
      {97.6, 560.0, 6, 58, 1, 0.0},
  };
}

}  // namespace starlab::constellation
