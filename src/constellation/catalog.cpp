#include "constellation/catalog.hpp"

#include <cstdlib>
#include <unordered_map>

#include "exec/thread_pool.hpp"
#include "geo/frames.hpp"
#include "sun/eclipse.hpp"
#include "sun/solar_ephemeris.hpp"

namespace starlab::constellation {

namespace {

/// Reconstruct an approximate launch date from an international designator
/// "YYNNNx": year from YY, and spread launch numbers across the year. Used
/// only when a catalog is loaded from bare TLE text.
time::UtcTime launch_date_from_designator(const std::string& desig) {
  time::UtcTime t;
  if (desig.size() < 5) return t;
  const int yy = std::atoi(desig.substr(0, 2).c_str());
  const int launch_num = std::atoi(desig.substr(2, 3).c_str());
  t.year = yy < 57 ? 2000 + yy : 1900 + yy;
  // Roughly 100 orbital launches/year worldwide: map launch number to a
  // month bucket.
  t.month = std::min(12, 1 + (launch_num - 1) / 9);
  t.day = 1;
  return t;
}

std::string month_label_of(const time::UtcTime& t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", t.year, t.month);
  return buf;
}

/// Minimum satellites per chunk when partitioning a batch propagation:
/// below this, queueing a chunk costs more than running it inline.
constexpr std::size_t kPropagateChunkGrain = 256;

}  // namespace

Catalog::Catalog(Constellation constellation)
    : records_(std::move(constellation.satellites)),
      launches_(std::move(constellation.launches)) {
  ephemerides_.reserve(records_.size());
  for (const SatelliteRecord& r : records_) {
    ephemerides_.emplace_back(r.tle);
  }
  build_norad_index();
  build_batch_structures();
}

Catalog::Catalog(const std::vector<tle::Tle>& tles) {
  records_.reserve(tles.size());
  std::unordered_map<std::string, int> label_to_launch;
  for (const tle::Tle& t : tles) {
    SatelliteRecord r;
    r.tle = t;
    r.launch_date = launch_date_from_designator(t.intl_designator);
    r.launch_label = month_label_of(r.launch_date);
    auto [it, inserted] = label_to_launch.try_emplace(
        r.launch_label, static_cast<int>(label_to_launch.size()));
    r.launch_index = it->second;
    if (inserted) {
      LaunchBatch batch;
      batch.index = r.launch_index;
      batch.date = r.launch_date;
      batch.label = r.launch_label;
      batch.first_norad_id = t.norad_id;
      launches_.push_back(std::move(batch));
    }
    launches_[static_cast<std::size_t>(r.launch_index)].count += 1;
    records_.push_back(std::move(r));
  }
  ephemerides_.reserve(records_.size());
  for (const SatelliteRecord& r : records_) {
    ephemerides_.emplace_back(r.tle);
  }
  build_norad_index();
  build_batch_structures();
}

void Catalog::build_batch_structures() {
  soa_.reserve(records_.size());
  for (const sgp4::Ephemeris& e : ephemerides_) {
    soa_.push_back(e.propagator().constants());
  }
  index_.build(soa_);
}

void Catalog::build_norad_index() {
  index_by_norad_.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_by_norad_.emplace(records_[i].tle.norad_id, i);
  }
}

std::optional<std::size_t> Catalog::index_of(int norad_id) const {
  const auto it = index_by_norad_.find(norad_id);
  if (it == index_by_norad_.end()) return std::nullopt;
  return it->second;
}

std::vector<Catalog::Snapshot> Catalog::propagate_all_batch(
    const time::JulianDate& jd) const {
  std::vector<Snapshot> out(records_.size());
  // Hoisted per-instant values: the Earth-rotation angle and the Sun
  // position are functions of jd alone, so one evaluation serves every
  // satellite (bit-identical to evaluating them per satellite).
  const geo::TemeToEcefRotation rot = geo::teme_to_ecef_rotation(jd);
  const geo::TemeKm sun_teme = sun::sun_position_teme(jd);
  // Each satellite's snapshot depends only on its own index, so the static
  // partition keeps the result bit-identical at any thread count.
  exec::default_pool().parallel_for_chunks(
      records_.size(), kPropagateChunkGrain,
      // starlint:hotpath
      [&](std::size_t begin, std::size_t end) {
        sgp4::StateVector st;
        for (std::size_t i = begin; i < end; ++i) {
          const double tsince = jd.minutes_since(soa_.epoch(i));
          if (soa_.propagate(i, tsince, st) != sgp4::PropagateStatus::kOk) {
            out[i].valid = false;
            continue;
          }
          const geo::TemeKm teme(st.position_km);
          out[i].valid = true;
          out[i].teme_km = teme;
          out[i].ecef_km = rot.apply(teme);
          out[i].sunlit = sun::is_sunlit(teme, sun_teme);
        }
      });
  return out;
}

/// Pre-cull range shared by every visibility path: a satellite below the
/// elevation cut is certainly farther than the horizon-limited slant range
/// for the highest shell (~1200 km for a 600 km shell at 25 deg), so 3000 km
/// straight-line distance rejects cheaply before the full topocentric
/// transform.
static constexpr double kCullRangeKm = 3000.0;

bool Catalog::sky_entry_from_snapshot(std::size_t i, const Snapshot& snap,
                                      const geo::Geodetic& observer,
                                      const geo::EcefKm& obs_ecef,
                                      double unix_sec,
                                      geo::Deg min_elevation,
                                      SkyEntry& e) const {
  if (!snap.valid) return false;
  if ((snap.ecef_km - obs_ecef).norm() > kCullRangeKm) return false;

  const geo::LookAngles look = geo::look_angles(observer, snap.ecef_km);
  if (look.elevation_deg < min_elevation.value()) return false;

  e.norad_id = records_[i].tle.norad_id;
  e.catalog_index = i;
  e.look = look;
  e.sunlit = snap.sunlit;
  e.age_days = records_[i].age_days(unix_sec);
  e.position_teme_km = snap.teme_km;
  return true;
}

bool Catalog::sky_entry_at(std::size_t i, const geo::Geodetic& observer,
                           const geo::EcefKm& obs_ecef,
                           const time::JulianDate& jd, double unix_sec,
                           geo::Deg min_elevation, SkyEntry& e) const {
  sgp4::StateVector st;
  try {
    st = ephemerides_[i].state_teme(jd);
  } catch (const sgp4::Sgp4Error&) {
    return false;  // decayed satellites silently leave the sky
  }
  const geo::TemeKm teme(st.position_km);
  const geo::EcefKm ecef = geo::teme_to_ecef(teme, jd);
  if ((ecef - obs_ecef).norm() > kCullRangeKm) return false;

  const geo::LookAngles look = geo::look_angles(observer, ecef);
  if (look.elevation_deg < min_elevation.value()) return false;

  e.norad_id = records_[i].tle.norad_id;
  e.catalog_index = i;
  e.look = look;
  e.sunlit = sun::is_sunlit(teme, jd);
  e.age_days = records_[i].age_days(unix_sec);
  e.position_teme_km = teme;
  return true;
}

std::vector<SkyEntry> Catalog::visible_from_snapshots(
    std::span<const Snapshot> snapshots, const geo::Geodetic& observer,
    const time::JulianDate& jd, geo::Deg min_elevation) const {
  std::vector<std::uint32_t> cand;
  if (!index_.candidates(observer, jd, min_elevation, cand)) {
    return visible_from_snapshots_scan(snapshots, observer, jd,
                                       min_elevation);
  }
  std::vector<SkyEntry> out;
  const double unix_sec = jd.to_unix_seconds();
  const geo::EcefKm obs_ecef = geo::geodetic_to_ecef(observer);
  // The index returns a superset of the visible set in ascending catalog
  // order, so re-running the exact check yields the same entries in the
  // same order as the exhaustive scan.
  SkyEntry e;
  for (const std::uint32_t i : cand) {
    if (i >= snapshots.size()) break;
    if (sky_entry_from_snapshot(i, snapshots[i], observer, obs_ecef, unix_sec,
                                min_elevation, e)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<SkyEntry> Catalog::visible_from_snapshots_scan(
    std::span<const Snapshot> snapshots, const geo::Geodetic& observer,
    const time::JulianDate& jd, geo::Deg min_elevation) const {
  std::vector<SkyEntry> out;
  const double unix_sec = jd.to_unix_seconds();
  const geo::EcefKm obs_ecef = geo::geodetic_to_ecef(observer);

  SkyEntry e;
  for (std::size_t i = 0; i < records_.size() && i < snapshots.size(); ++i) {
    if (sky_entry_from_snapshot(i, snapshots[i], observer, obs_ecef, unix_sec,
                                min_elevation, e)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<SkyEntry> Catalog::visible_from(const geo::Geodetic& observer,
                                            const time::JulianDate& jd,
                                            geo::Deg min_elevation) const {
  std::vector<std::uint32_t> cand;
  if (!index_.candidates(observer, jd, min_elevation, cand)) {
    return visible_from_scan(observer, jd, min_elevation);
  }
  std::vector<SkyEntry> out;
  const double unix_sec = jd.to_unix_seconds();
  const geo::EcefKm obs_ecef = geo::geodetic_to_ecef(observer);
  SkyEntry e;
  for (const std::uint32_t i : cand) {
    if (sky_entry_at(i, observer, obs_ecef, jd, unix_sec, min_elevation,
                     e)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<SkyEntry> Catalog::visible_from_scan(
    const geo::Geodetic& observer, const time::JulianDate& jd,
    geo::Deg min_elevation) const {
  std::vector<SkyEntry> out;
  const double unix_sec = jd.to_unix_seconds();
  const geo::EcefKm obs_ecef = geo::geodetic_to_ecef(observer);

  SkyEntry e;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (sky_entry_at(i, observer, obs_ecef, jd, unix_sec, min_elevation,
                     e)) {
      out.push_back(e);
    }
  }
  return out;
}

geo::LookAngles Catalog::look_at(std::size_t index,
                                 const geo::Geodetic& observer,
                                 const time::JulianDate& jd) const {
  return ephemerides_[index].look_from(observer, jd);
}

}  // namespace starlab::constellation
