#include "constellation/catalog.hpp"

#include <cstdlib>
#include <unordered_map>

#include "exec/thread_pool.hpp"
#include "geo/frames.hpp"
#include "sun/eclipse.hpp"

namespace starlab::constellation {

namespace {

/// Reconstruct an approximate launch date from an international designator
/// "YYNNNx": year from YY, and spread launch numbers across the year. Used
/// only when a catalog is loaded from bare TLE text.
time::UtcTime launch_date_from_designator(const std::string& desig) {
  time::UtcTime t;
  if (desig.size() < 5) return t;
  const int yy = std::atoi(desig.substr(0, 2).c_str());
  const int launch_num = std::atoi(desig.substr(2, 3).c_str());
  t.year = yy < 57 ? 2000 + yy : 1900 + yy;
  // Roughly 100 orbital launches/year worldwide: map launch number to a
  // month bucket.
  t.month = std::min(12, 1 + (launch_num - 1) / 9);
  t.day = 1;
  return t;
}

std::string month_label_of(const time::UtcTime& t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", t.year, t.month);
  return buf;
}

}  // namespace

Catalog::Catalog(Constellation constellation)
    : records_(std::move(constellation.satellites)),
      launches_(std::move(constellation.launches)) {
  ephemerides_.reserve(records_.size());
  for (const SatelliteRecord& r : records_) {
    ephemerides_.emplace_back(r.tle);
  }
  build_norad_index();
}

Catalog::Catalog(const std::vector<tle::Tle>& tles) {
  records_.reserve(tles.size());
  std::unordered_map<std::string, int> label_to_launch;
  for (const tle::Tle& t : tles) {
    SatelliteRecord r;
    r.tle = t;
    r.launch_date = launch_date_from_designator(t.intl_designator);
    r.launch_label = month_label_of(r.launch_date);
    auto [it, inserted] = label_to_launch.try_emplace(
        r.launch_label, static_cast<int>(label_to_launch.size()));
    r.launch_index = it->second;
    if (inserted) {
      LaunchBatch batch;
      batch.index = r.launch_index;
      batch.date = r.launch_date;
      batch.label = r.launch_label;
      batch.first_norad_id = t.norad_id;
      launches_.push_back(std::move(batch));
    }
    launches_[static_cast<std::size_t>(r.launch_index)].count += 1;
    records_.push_back(std::move(r));
  }
  ephemerides_.reserve(records_.size());
  for (const SatelliteRecord& r : records_) {
    ephemerides_.emplace_back(r.tle);
  }
  build_norad_index();
}

void Catalog::build_norad_index() {
  index_by_norad_.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_by_norad_.emplace(records_[i].tle.norad_id, i);
  }
}

std::optional<std::size_t> Catalog::index_of(int norad_id) const {
  const auto it = index_by_norad_.find(norad_id);
  if (it == index_by_norad_.end()) return std::nullopt;
  return it->second;
}

std::vector<Catalog::Snapshot> Catalog::propagate_all(
    const time::JulianDate& jd) const {
  std::vector<Snapshot> out(records_.size());
  // Each satellite's snapshot depends only on its own index, so the static
  // partition keeps the result bit-identical at any thread count.
  exec::default_pool().parallel_for(records_.size(), [&](std::size_t i) {
    try {
      const sgp4::StateVector st = ephemerides_[i].state_teme(jd);
      const geo::TemeKm teme(st.position_km);
      out[i].valid = true;
      out[i].teme_km = teme;
      out[i].ecef_km = geo::teme_to_ecef(teme, jd);
      out[i].sunlit = sun::is_sunlit(teme, jd);
    } catch (const sgp4::Sgp4Error&) {
      out[i].valid = false;
    }
  });
  return out;
}

std::vector<SkyEntry> Catalog::visible_from_snapshots(
    std::span<const Snapshot> snapshots, const geo::Geodetic& observer,
    const time::JulianDate& jd, double min_elevation_deg) const {
  std::vector<SkyEntry> out;
  const double unix_sec = jd.to_unix_seconds();
  const geo::EcefKm obs_ecef = geo::geodetic_to_ecef(observer);
  constexpr double kCullRangeKm = 3000.0;

  for (std::size_t i = 0; i < records_.size() && i < snapshots.size(); ++i) {
    const Snapshot& snap = snapshots[i];
    if (!snap.valid) continue;
    if ((snap.ecef_km - obs_ecef).norm() > kCullRangeKm) continue;

    const geo::LookAngles look = geo::look_angles(observer, snap.ecef_km);
    if (look.elevation_deg < min_elevation_deg) continue;

    SkyEntry e;
    e.norad_id = records_[i].tle.norad_id;
    e.catalog_index = i;
    e.look = look;
    e.sunlit = snap.sunlit;
    e.age_days = records_[i].age_days(unix_sec);
    e.position_teme_km = snap.teme_km;
    out.push_back(e);
  }
  return out;
}

std::vector<SkyEntry> Catalog::visible_from(const geo::Geodetic& observer,
                                            const time::JulianDate& jd,
                                            double min_elevation_deg) const {
  std::vector<SkyEntry> out;
  const double unix_sec = jd.to_unix_seconds();
  const geo::EcefKm obs_ecef = geo::geodetic_to_ecef(observer);
  // Cheap pre-cull: a satellite below `min_elevation_deg` is certainly
  // farther than the horizon-limited slant range for the highest shell.
  // For a 600 km shell and 25 deg minimum elevation the slant range is
  // ~1200 km; we cull at 3000 km straight-line distance before running the
  // full topocentric transform.
  constexpr double kCullRangeKm = 3000.0;

  for (std::size_t i = 0; i < records_.size(); ++i) {
    sgp4::StateVector st;
    try {
      st = ephemerides_[i].state_teme(jd);
    } catch (const sgp4::Sgp4Error&) {
      continue;  // decayed satellites silently leave the sky
    }
    const geo::TemeKm teme(st.position_km);
    const geo::EcefKm ecef = geo::teme_to_ecef(teme, jd);
    if ((ecef - obs_ecef).norm() > kCullRangeKm) continue;

    const geo::LookAngles look = geo::look_angles(observer, ecef);
    if (look.elevation_deg < min_elevation_deg) continue;

    SkyEntry e;
    e.norad_id = records_[i].tle.norad_id;
    e.catalog_index = i;
    e.look = look;
    e.sunlit = sun::is_sunlit(teme, jd);
    e.age_days = records_[i].age_days(unix_sec);
    e.position_teme_km = teme;
    out.push_back(e);
  }
  return out;
}

geo::LookAngles Catalog::look_at(std::size_t index,
                                 const geo::Geodetic& observer,
                                 const time::JulianDate& jd) const {
  return ephemerides_[index].look_from(observer, jd);
}

}  // namespace starlab::constellation
