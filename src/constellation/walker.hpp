#pragma once

// Walker-delta constellation geometry.
//
// Starlink's shells are Walker-delta patterns: P equally spaced orbital
// planes, S satellites per plane, with an inter-plane phasing offset F.
// This header generates the mean orbital elements for such a pattern; the
// synthesizer turns them into TLE text.

#include <vector>

#include "geo/units.hpp"

namespace starlab::constellation {

/// One Walker-delta shell specification (i:T/P/F in Walker notation, with
/// T == planes * sats_per_plane).
struct WalkerShell {
  geo::Deg inclination{53.0};
  geo::Km altitude{550.0};
  int planes = 72;
  int sats_per_plane = 22;
  int phasing = 1;  ///< F in Walker notation, 0 <= F < planes
  geo::Deg raan_offset{0.0};  ///< rotation of the whole pattern

  [[nodiscard]] int total_satellites() const { return planes * sats_per_plane; }
};

/// Mean Keplerian elements of one satellite slot in a shell.
struct WalkerElement {
  int plane = 0;
  int slot = 0;
  geo::Deg inclination{0.0};
  geo::Deg raan{0.0};          ///< right ascension of ascending node
  geo::Deg mean_anomaly{0.0};
  geo::Km altitude{0.0};
  double mean_motion_rev_per_day = 0.0;
};

/// Mean motion [rev/day] of a circular orbit at the given altitude (WGS-72,
/// Keplerian two-body; SGP4's J2 correction is absorbed at parse time).
[[nodiscard]] double circular_mean_motion_rev_per_day(geo::Km altitude);

/// All satellite slots of a shell, ordered plane-major.
[[nodiscard]] std::vector<WalkerElement> generate_walker(const WalkerShell& shell);

/// The four Starlink Gen1 shells as licensed at the time of the paper
/// (~4000 satellites): 53.0 deg/550 km 72x22, 53.2 deg/540 km 72x22,
/// 70 deg/570 km 36x20, 97.6 deg/560 km 6x58.
[[nodiscard]] std::vector<WalkerShell> starlink_gen1_shells();

/// The Gen2 extension shell from the FCC Gen2 filing's first tranche:
/// 53 deg, 525 km, 120 planes x 45 slots (5400 satellites).
[[nodiscard]] WalkerShell starlink_gen2_shell();

/// Gen1 plus the Gen2 extension shell (~9.6k satellites total).
[[nodiscard]] std::vector<WalkerShell> starlink_gen2_shells();

}  // namespace starlab::constellation
