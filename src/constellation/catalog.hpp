#pragma once

// Catalog: the propagation-ready form of a constellation. Owns one SGP4
// ephemeris per satellite and answers the query every layer above needs:
// "where is everything in this observer's sky at time t?".

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "constellation/spatial_index.hpp"
#include "constellation/synthesizer.hpp"
#include "geo/geodetic.hpp"
#include "geo/topocentric.hpp"
#include "sgp4/batch.hpp"
#include "sgp4/ephemeris.hpp"
#include "time/julian_date.hpp"

namespace starlab::constellation {

/// One satellite as seen from an observer at one instant.
struct SkyEntry {
  int norad_id = 0;
  std::size_t catalog_index = 0;  ///< index into Catalog::records()
  geo::LookAngles look;           ///< azimuth/elevation/range
  bool sunlit = true;             ///< conical model, penumbra == sunlit
  double age_days = 0.0;          ///< days since launch
  geo::TemeKm position_teme_km;   ///< for shadow/extra geometry
};

class Catalog {
 public:
  /// Build from a synthesized constellation. Throws Sgp4Error if any element
  /// set fails to initialize.
  explicit Catalog(Constellation constellation);

  /// Build from raw TLEs (e.g. loaded from a catalog file); launch metadata
  /// is reconstructed from each TLE's international designator.
  explicit Catalog(const std::vector<tle::Tle>& tles);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<SatelliteRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::vector<LaunchBatch>& launches() const {
    return launches_;
  }

  /// Record lookup by NORAD id; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> index_of(int norad_id) const;

  [[nodiscard]] const SatelliteRecord& record(std::size_t index) const {
    return records_[index];
  }
  [[nodiscard]] const sgp4::Ephemeris& ephemeris(std::size_t index) const {
    return ephemerides_[index];
  }

  /// All satellites above `min_elevation` in the observer's sky at `jd`,
  /// with illumination and age annotated. This is the paper's "available
  /// satellites" set (~40 entries for a Starlink-density constellation at
  /// 25 deg). Served through the spatial index (O(visible) satellites
  /// propagated); falls back to visible_from_scan outside the index's
  /// validity window. Byte-identical to the scan either way.
  [[nodiscard]] std::vector<SkyEntry> visible_from(
      const geo::Geodetic& observer, const time::JulianDate& jd,
      geo::Deg min_elevation = geo::Deg(25.0)) const;

  /// Exhaustive O(catalog) reference for visible_from: propagates and tests
  /// every satellite. Kept public as the cross-check oracle for the spatial
  /// index (tests assert byte-identical results).
  [[nodiscard]] std::vector<SkyEntry> visible_from_scan(
      const geo::Geodetic& observer, const time::JulianDate& jd,
      geo::Deg min_elevation = geo::Deg(25.0)) const;

  /// One satellite's propagated snapshot at a fixed instant, shared across
  /// observers (TEME/ECEF positions are observer-independent).
  struct Snapshot {
    bool valid = false;  ///< false when the satellite decayed / SGP4 failed
    geo::TemeKm teme_km;
    geo::EcefKm ecef_km;
    bool sunlit = true;
  };

  /// Propagate the whole catalog once for an instant. Campaigns evaluating
  /// several terminals at the same slot call this once and then
  /// visible_from_snapshots() per terminal. Delegates to
  /// propagate_all_batch; bit-identical at any thread count.
  [[nodiscard]] std::vector<Snapshot> propagate_all(
      const time::JulianDate& jd) const {
    return propagate_all_batch(jd);
  }

  /// The batch propagation core: walks the structure-of-arrays SGP4
  /// constants in a tight per-chunk loop on the exec::default_pool(), with
  /// the TEME->ECEF rotation and the solar ephemeris hoisted to one
  /// evaluation per instant. Bit-identical to constructing each Snapshot
  /// from Sgp4::propagate / teme_to_ecef / sun::is_sunlit per satellite
  /// (unit-tested), and bit-identical at any thread count.
  [[nodiscard]] std::vector<Snapshot> propagate_all_batch(
      const time::JulianDate& jd) const;

  /// visible_from() against precomputed snapshots. Served through the
  /// spatial index like visible_from(); byte-identical to
  /// visible_from_snapshots_scan.
  [[nodiscard]] std::vector<SkyEntry> visible_from_snapshots(
      std::span<const Snapshot> snapshots, const geo::Geodetic& observer,
      const time::JulianDate& jd, geo::Deg min_elevation = geo::Deg(25.0)) const;

  /// Exhaustive O(catalog) reference for visible_from_snapshots.
  [[nodiscard]] std::vector<SkyEntry> visible_from_snapshots_scan(
      std::span<const Snapshot> snapshots, const geo::Geodetic& observer,
      const time::JulianDate& jd, geo::Deg min_elevation = geo::Deg(25.0)) const;

  /// The spatial candidate index built over this catalog (for tests and
  /// diagnostics).
  [[nodiscard]] const SpatialIndex& spatial_index() const { return index_; }

  /// Look angles of one satellite from an observer (no elevation cut).
  [[nodiscard]] geo::LookAngles look_at(std::size_t index,
                                        const geo::Geodetic& observer,
                                        const time::JulianDate& jd) const;

 private:
  /// Fill index_by_norad_ from records_ (first occurrence wins, matching
  /// the former linear scan's first-match semantics).
  void build_norad_index();

  /// Copy each ephemeris's constant set into the SoA store and build the
  /// spatial index over it. Called at the end of both constructors.
  void build_batch_structures();

  /// The exact per-satellite visibility check shared by the indexed and
  /// exhaustive paths (this sharing is what makes them byte-identical).
  /// Returns true and fills `e` when satellite `i` clears the cut.
  bool sky_entry_at(std::size_t i, const geo::Geodetic& observer,
                    const geo::EcefKm& obs_ecef, const time::JulianDate& jd,
                    double unix_sec, geo::Deg min_elevation,
                    SkyEntry& e) const;

  /// Snapshot-based variant of sky_entry_at.
  bool sky_entry_from_snapshot(std::size_t i, const Snapshot& snap,
                               const geo::Geodetic& observer,
                               const geo::EcefKm& obs_ecef, double unix_sec,
                               geo::Deg min_elevation, SkyEntry& e) const;

  std::vector<SatelliteRecord> records_;
  std::vector<LaunchBatch> launches_;
  std::vector<sgp4::Ephemeris> ephemerides_;
  sgp4::SoaConstants soa_;
  SpatialIndex index_;
  std::unordered_map<int, std::size_t> index_by_norad_;
};

}  // namespace starlab::constellation
