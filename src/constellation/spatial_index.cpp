#include "constellation/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "geo/angles.hpp"
#include "geo/frames.hpp"
#include "geo/wgs.hpp"

namespace starlab::constellation {

namespace {

/// Drag/precession bounds hold for |t - element epoch| up to this horizon.
constexpr double kHorizonMinutes = 30.0 * 24.0 * 60.0;

/// Fixed cross-track slack [rad]: geodetic-vs-geocentric observer tilt
/// (<= 0.0034 rad) plus J2 short-period position periodics (~10 km at
/// Starlink radius, ~0.0015 rad), rounded way up.
constexpr double kBaseMargin = 0.02;

/// A member whose own drift bound exceeds this [rad] would poison its
/// bucket's margin; it goes on the always-candidate list instead.
constexpr double kMaxMemberMargin = 0.5;

/// Radial slack factor for J2 short-period radius periodics.
constexpr double kRadialSlop = 0.005;

/// Bucket quantization: inclination and reference-epoch RAAN [rad].
const double kInclBin = geo::deg_to_rad(0.25);
const double kNodeBin = geo::deg_to_rad(2.0);

constexpr double kTwoPi = geo::kTwoPi;
using geo::wrap_two_pi;

/// Orbital-plane unit normal for (inclination, RAAN).
geo::Vec3 plane_normal(double incl, double node) {
  const double sini = std::sin(incl);
  return {std::sin(node) * sini, -std::cos(node) * sini, std::cos(incl)};
}

}  // namespace

void SpatialIndex::build(const sgp4::SoaConstants& soa) {
  const std::size_t n = soa.size();
  size_ = n;
  planes_.clear();
  always_.clear();
  u_ref_.assign(n, 0.0);
  udot_.assign(n, 0.0);
  horizon_eff_ = -1.0;
  if (n == 0) return;

  t_ref_ = soa.epoch(0);
  const double h = kHorizonMinutes;
  const double h2 = h * h;
  double max_epoch_offset = 0.0;

  std::map<std::pair<long, long>, std::size_t> bucket_of;
  for (std::size_t i = 0; i < n; ++i) {
    const sgp4::CommonConstants c = soa.load(i);
    const double dt0 = t_ref_.minutes_since(c.epoch);
    max_epoch_offset = std::max(max_epoch_offset, std::fabs(dt0));

    // Eccentricity can grow (or shrink) under drag; bound it over the
    // horizon from the secular tempe terms.
    const double e_max = c.ecco + std::fabs(c.bstar * c.cc4) * h +
                         2.0 * std::fabs(c.bstar * c.cc5);

    // Along-track slack: true-vs-mean anomaly (<= 2e + O(e^2), bounded by
    // 2.5 e for the near-circular shells) plus every secular term the
    // linear u(t) model drops — the templ polynomial scaled back to mean
    // anomaly, and the nodecf quadratic that shifts where u is measured
    // from. The omgcof/xmcof periodic terms cancel exactly in
    // u = mm + argpm and need no slack.
    const double drag_u =
        c.no_unkozai *
            (std::fabs(c.t2cof) * h2 + std::fabs(c.t3cof) * h2 * h +
             std::fabs(c.t4cof) * h2 * h2 + std::fabs(c.t5cof) * h2 * h2 * h) +
        std::fabs(c.nodecf) * h2;
    const double along = 2.5 * e_max + drag_u;
    if (!(along <= kMaxMemberMargin)) {  // also catches NaN
      always_.push_back(static_cast<std::uint32_t>(i));
      continue;
    }

    const double udot = c.mdot + c.argpdot;
    u_ref_[i] = wrap_two_pi(c.argpo + c.mo + udot * dt0);
    udot_[i] = udot;

    // Geocentric radius bound: Brouwer semi-major axis inflated by the
    // drag envelope and apogee, plus short-period slop.
    const double tempa_max = 1.0 + std::fabs(c.cc1) * h + std::fabs(c.d2) * h2 +
                             std::fabs(c.d3) * h2 * h + std::fabs(c.d4) * h2 * h2;
    const double r_max = c.ao * tempa_max * tempa_max * (1.0 + e_max) *
                         geo::kWgs72.radius_km * (1.0 + kRadialSlop);

    const double node_ref = wrap_two_pi(c.nodeo + c.nodedot * dt0);
    const auto key = std::make_pair(
        static_cast<long>(std::floor(c.inclo / kInclBin)),
        static_cast<long>(std::floor(node_ref / kNodeBin)));
    auto [it, inserted] = bucket_of.try_emplace(key, planes_.size());
    if (inserted) {
      Plane p;
      p.incl = c.inclo;
      p.node_ref = node_ref;
      p.nodedot = c.nodedot;
      planes_.push_back(std::move(p));
    }
    Plane& plane = planes_[it->second];

    // Cross-track slack vs the bucket representative: plane-normal offset
    // at t_ref, nodal-rate divergence over the horizon, and the dropped
    // nodecf quadratic.
    const double plane_dev =
        plane_normal(c.inclo, node_ref)
            .angle_to(plane_normal(plane.incl, plane.node_ref)) +
        std::fabs(c.nodedot - plane.nodedot) * h + std::fabs(c.nodecf) * h2;

    plane.margin = std::max(plane.margin, along + plane_dev);
    plane.r_sat_max = std::max(plane.r_sat_max, r_max);
    plane.members.push_back(static_cast<std::uint32_t>(i));
  }

  for (Plane& p : planes_) p.margin += kBaseMargin;
  horizon_eff_ = kHorizonMinutes - max_epoch_offset;
}

bool SpatialIndex::candidates(const geo::Geodetic& observer,
                              const time::JulianDate& jd,
                              geo::Deg min_elevation,
                              std::vector<std::uint32_t>& out) const {
  if (horizon_eff_ <= 0.0) return false;
  const double el = geo::deg_to_rad(min_elevation.value());
  // The psi_max(el) relation assumes a positive elevation cut.
  if (!(el >= 0.0)) return false;
  const double dtq = jd.minutes_since(t_ref_);
  if (std::fabs(dtq) > horizon_eff_) return false;

  const geo::EcefKm obs_ecef = geo::geodetic_to_ecef(observer);
  const double r_obs = obs_ecef.norm();
  const geo::Vec3 o = geo::ecef_to_teme(obs_ecef, jd).raw().normalized();
  const double cos_el = std::cos(el);

  out.clear();
  for (const Plane& plane : planes_) {
    // Visibility half-angle for this bucket's highest member, widened by
    // the bucket's conservative slack.
    const double rho = std::min(1.0, r_obs / plane.r_sat_max);
    const double lambda = std::acos(rho * cos_el) - el + plane.margin;
    const double cl = std::cos(lambda);

    const double node = plane.node_ref + plane.nodedot * dtq;
    const double sin_node = std::sin(node);
    const double cos_node = std::cos(node);
    const double sin_incl = std::sin(plane.incl);
    const double cos_incl = std::cos(plane.incl);
    // Direction at argument of latitude u is P cos u + Q sin u.
    const double a = o.x * cos_node + o.y * sin_node;
    const double b = -o.x * cos_incl * sin_node + o.y * cos_incl * cos_node +
                     o.z * sin_incl;
    const double hyp = std::hypot(a, b);
    if (hyp < cl) continue;  // the whole circle misses the cone

    double delta = geo::kPi;
    if (hyp > 1e-12) {
      delta = std::acos(std::clamp(cl / hyp, -1.0, 1.0));
    } else if (cl > 0.0) {
      continue;
    }
    const double u_star = std::atan2(b, a);

    for (const std::uint32_t m : plane.members) {
      const double du =
          std::remainder(u_ref_[m] + udot_[m] * dtq - u_star, kTwoPi);
      if (std::fabs(du) <= delta) out.push_back(m);
    }
  }
  out.insert(out.end(), always_.begin(), always_.end());
  std::sort(out.begin(), out.end());
  return true;
}

}  // namespace starlab::constellation
