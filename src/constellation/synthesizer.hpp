#pragma once

// Synthesizes a Starlink-like constellation as standards-conformant TLE text
// plus a launch ledger.
//
// This replaces the paper's CelesTrak feed (unavailable offline). Satellites
// are assigned to launch batches chronologically — Starlink launches carry
// ~50-60 satellites and fill shells roughly in order — so that the §5.2
// launch-date analysis has realistic structure to find. The launch date is
// also encoded in each TLE's international designator (YYNNNx), exactly
// where the real catalog carries it.

#include <cstdint>
#include <string>
#include <vector>

#include "constellation/walker.hpp"
#include "time/utc_time.hpp"
#include "tle/tle.hpp"

namespace starlab::constellation {

/// One launch in the ledger.
struct LaunchBatch {
  int index = 0;                 ///< 0-based launch number
  time::UtcTime date;            ///< launch date (UTC midnight)
  std::string label;             ///< "YYYY-MM" bin used by the §5.2 analysis
  int first_norad_id = 0;
  int count = 0;
};

/// One synthesized satellite: TLE plus launch metadata.
struct SatelliteRecord {
  tle::Tle tle;
  int shell = 0;
  int launch_index = 0;
  time::UtcTime launch_date;
  std::string launch_label;  ///< "YYYY-MM"

  /// Age in days at a given Unix time.
  [[nodiscard]] double age_days(double unix_sec) const {
    return (unix_sec - launch_date.to_unix_seconds()) / time::kSecondsPerDay;
  }
};

/// How launch dates map onto orbital slots.
enum class LaunchOrdering {
  /// Shells fill one after another (launch date correlates with shell).
  kShellMajor,
  /// Launches draw slots from every shell throughout the campaign, so
  /// launch date is independent of orbital geometry. This is the default:
  /// it isolates the scheduler's launch-recency preference (§5.2) from
  /// shell-geometry confounds that a strictly sequential fill would
  /// introduce at the paper's mid-latitude vantage points.
  kInterleaved,
};

struct SynthesizerConfig {
  std::vector<WalkerShell> shells = starlink_gen1_shells();
  /// Append the Gen2 extension shell (120x45 at 525 km) to `shells`,
  /// growing the catalog to ~9.6k satellites at scale 1. Defaults off so
  /// Gen1 goldens are untouched.
  bool gen2 = false;
  /// Keep only every k-th satellite (k == 1/scale) to trade fidelity for
  /// speed in tests. 1.0 == full constellation.
  double scale = 1.0;
  LaunchOrdering ordering = LaunchOrdering::kInterleaved;
  /// TLE epoch for all satellites (campaigns start here).
  time::UtcTime epoch{2023, 6, 1, 0, 0, 0.0};
  /// First and last launch dates of the ledger.
  time::UtcTime first_launch{2019, 5, 24, 0, 0, 0.0};
  time::UtcTime last_launch{2023, 5, 4, 0, 0, 0.0};
  /// Satellites per launch (Starlink F9 missions carry ~52-60).
  int satellites_per_launch = 56;
  /// First NORAD id to assign.
  int first_norad_id = 44000;
  /// B* drag term for all satellites (typical Starlink magnitude).
  double bstar = 1.0e-4;
  /// Seed for the small random jitter applied to slot assignment so batch
  /// membership is not perfectly correlated with orbital plane.
  std::uint64_t seed = 20230601;
};

struct Constellation {
  std::vector<SatelliteRecord> satellites;
  std::vector<LaunchBatch> launches;

  [[nodiscard]] std::size_t size() const { return satellites.size(); }

  /// All TLEs (e.g. for writing a catalog file).
  [[nodiscard]] std::vector<tle::Tle> tles() const;
};

/// Build the constellation described by `config`.
[[nodiscard]] Constellation synthesize(const SynthesizerConfig& config);

}  // namespace starlab::constellation
