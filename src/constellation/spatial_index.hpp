#pragma once

// Spatial candidate index over a catalog's orbital planes.
//
// visible_from() answers "which satellites clear `min_elevation` from this
// observer right now?". The exhaustive answer tests every satellite, but a
// Walker constellation has structure the query can exploit: satellites live
// on a small number of orbital planes (inclination × RAAN), and from any
// ground point the visibility cone intersects each plane's great circle in
// at most one short arc of argument of latitude. The index buckets
// satellites by (quantized inclination, quantized RAAN at a reference
// epoch), and a query
//   1. rotates the observer into TEME and computes the visibility half-angle
//      psi_max = acos(rho * cos(el_min)) - el_min  (rho = r_obs / r_sat);
//   2. per plane bucket, intersects the cone with the plane's circle: with
//      P = (cos O, sin O, 0), Q = (-cos i sin O, cos i cos O, sin i), the
//      direction at argument of latitude u is P cos u + Q sin u, so
//      cos(angle to observer) = h * cos(u - u*) with A = obs.P, B = obs.Q,
//      h = hypot(A, B), u* = atan2(B, A). The plane contributes no
//      candidates when h < cos(lambda), else the arc |u - u*| <= delta with
//      delta = acos(cos(lambda) / h);
//   3. per member, tests the satellite's mean argument of latitude
//      u_i(t) = u_ref_i + udot_i * (t - t_ref) against the arc.
//
// lambda folds every modelling error into one conservative bound:
// psi_max(r_sat_max) + a fixed base margin (geodetic-vs-geocentric tilt,
// J2 short-period periodics) + per-bucket plane deviation (quantization
// spread plus nodal-drift divergence over the horizon) + per-bucket
// along-track slack (2.5 e for true-vs-mean anomaly plus bounded drag
// drift). The arc test is therefore a *superset* filter: every satellite
// actually above the cut is a candidate, and the caller re-runs the exact
// per-satellite check, so results are byte-identical to the exhaustive
// scan (unit-tested in test_spatial_index.cpp).
//
// Satellites the bounds cannot tame (drag drift beyond kMaxMemberMargin
// within the horizon) go on an always-candidate list instead of poisoning
// their bucket. Queries outside the index's validity window — elevation
// below zero or an instant beyond the drag horizon — report not-indexable
// and the caller falls back to the exhaustive scan.

#include <cstdint>
#include <vector>

#include "geo/geodetic.hpp"
#include "geo/units.hpp"
#include "sgp4/batch.hpp"
#include "time/julian_date.hpp"

namespace starlab::constellation {

class SpatialIndex {
 public:
  SpatialIndex() = default;

  /// Build from the catalog's precomputed SGP4 constant sets. Index i in the
  /// SoA is the catalog index reported back from candidates().
  void build(const sgp4::SoaConstants& soa);

  /// Fill `out` with a superset of the catalog indices visible above
  /// `min_elevation` from `observer` at `jd`, in ascending index order.
  /// Returns false (leaving `out` unspecified) when the query falls outside
  /// the index's validity window and the caller must scan exhaustively.
  [[nodiscard]] bool candidates(const geo::Geodetic& observer,
                                const time::JulianDate& jd,
                                geo::Deg min_elevation,
                                std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t num_planes() const { return planes_.size(); }
  [[nodiscard]] std::size_t num_always() const { return always_.size(); }

 private:
  struct Plane {
    double incl = 0.0;      ///< representative inclination [rad]
    double node_ref = 0.0;  ///< representative RAAN at t_ref [rad]
    double nodedot = 0.0;   ///< representative nodal rate [rad/min]
    double r_sat_max = 0.0; ///< max member geocentric radius bound [km]
    double margin = 0.0;    ///< cross+along-track slack added to psi_max [rad]
    std::vector<std::uint32_t> members;  ///< catalog indices, ascending
  };

  std::vector<Plane> planes_;
  std::vector<std::uint32_t> always_;  ///< unindexable members, ascending
  /// Per-satellite mean argument of latitude at t_ref and its rate, indexed
  /// by catalog index (zeros for always_-listed members).
  std::vector<double> u_ref_;
  std::vector<double> udot_;
  time::JulianDate t_ref_;
  /// Query window [t_ref - h, t_ref + h] within which the drag/precession
  /// bounds hold [minutes]; negative when the index is unusable.
  double horizon_eff_ = -1.0;
  std::size_t size_ = 0;
};

}  // namespace starlab::constellation
