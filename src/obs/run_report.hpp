#pragma once

// Machine-readable summary of one run — a pipeline pass, a campaign, a
// model training, or a bench section. Carries per-stage wall-clock, slot
// quality-flag counts, abstention reasons, the fault plan in force, and
// free-form named values (accuracy, ns/op, ...). Serialized as one JSON
// line via io::report_io so runs append to a JSONL log; the schema is
// documented in docs/FORMATS.md.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace starlab::obs {

/// Accumulated wall-clock of one named stage of a run.
struct StageStat {
  std::string name;
  std::uint64_t wall_ns = 0;
  std::uint64_t calls = 0;
};

struct RunReport {
  std::string kind;     ///< "pipeline" | "campaign" | "train" | "bench"
  std::string label;    ///< e.g. terminal name, bench section
  std::string git_sha;  ///< build provenance; "" when unknown
  std::uint64_t wall_ns = 0;  ///< whole-run wall-clock (0: timing was off)
  /// Deque, not vector: stage() hands out long-lived pointers (held across
  /// the whole run by ScopedStage callers), so growth must not relocate.
  std::deque<StageStat> stages;

  // Slot summary (pipeline/campaign runs; zero elsewhere).
  std::uint64_t slots = 0;
  std::uint64_t decided = 0;    ///< slots with an answer/choice
  std::uint64_t abstained = 0;  ///< slots explicitly declined
  std::uint64_t degraded = 0;   ///< slots carrying any quality flag
  std::uint64_t compared = 0;   ///< slots with both truth and inference
  std::uint64_t correct = 0;    ///< compared slots answered correctly
  double accuracy = 0.0;        ///< correct / compared (0 when none)

  /// Per-quality-flag slot counts, e.g. ("frame_missing", 3).
  std::vector<std::pair<std::string, std::uint64_t>> quality;
  /// Per-abstention-reason slot counts, e.g. ("low_margin", 2).
  std::vector<std::pair<std::string, std::uint64_t>> abstain_reasons;
  /// The fault plan in force (fault::format_fault_plan; "" = clean run).
  std::string fault_plan;
  /// Free-form named numbers (accuracy variants, ns/op, config knobs...).
  std::vector<std::pair<std::string, double>> values;
  /// Chronological resilience decisions ("retry shard=3 attempt=2", "degrade
  /// level=shed_observability", ...). Serialized only when non-empty, so
  /// reports from unsupervised runs keep their historical byte shape.
  std::vector<std::string> events;

  /// Find-or-create a stage by name.
  StageStat& stage(std::string_view name);
  [[nodiscard]] const StageStat* find_stage(std::string_view name) const;
  /// Sum of all stage wall-clocks.
  [[nodiscard]] std::uint64_t stage_total_ns() const;

  void add_value(std::string name, double value);
  [[nodiscard]] double value_or(std::string_view name, double fallback) const;

  /// Increment a named count in `quality` / `abstain_reasons`.
  static void bump(std::vector<std::pair<std::string, std::uint64_t>>& counts,
                   std::string_view name, std::uint64_t by = 1);

  /// Merge another run into this one: wall and stage times add, slot counts
  /// add, named counts add, values add, accuracy is recomputed. Used when a
  /// multi-terminal run aggregates its per-terminal sub-runs.
  void absorb(const RunReport& other);

  /// One-line JSON object (no trailing newline). Field order is fixed so
  /// serialization is deterministic.
  [[nodiscard]] std::string to_json() const;
};

/// RAII stage timer: on destruction adds the elapsed wall-clock and one
/// call to the stage. Pass nullptr when observability is off — the timer
/// then never reads the clock.
class ScopedStage {
 public:
  explicit ScopedStage(StageStat* stage)
      : stage_(stage), start_ns_(stage != nullptr ? monotonic_ns() : 0) {}
  ~ScopedStage() {
    if (stage_ != nullptr) {
      stage_->wall_ns += monotonic_ns() - start_ns_;
      ++stage_->calls;
    }
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageStat* stage_;
  std::uint64_t start_ns_;
};

}  // namespace starlab::obs
