#pragma once

// Minimal compact-JSON emitter shared by the metrics, trace and run-report
// exporters. Produces deterministic output (no whitespace, shortest-exact
// doubles) so serialization tests can compare golden strings.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace starlab::obs {

/// Escape a string for embedding inside JSON quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Format a double the way every starlab JSON export does: shortest form
/// that round-trips ("%.17g" trimmed), "0" for zero, never locale-dependent.
[[nodiscard]] std::string json_number(double value);

/// Streaming writer for compact JSON. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("pipeline");
///   w.key("stages"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   std::string out = std::move(w).str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view name);
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(bool v);

  [[nodiscard]] const std::string& str() const& { return out_; }
  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  void separate();  ///< emit "," before a value/key when one precedes it

  std::string out_;
  /// One entry per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace starlab::obs
