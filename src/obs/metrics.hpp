#pragma once

// Lock-cheap metrics registry. Instrumentation sites pre-register handles
// once (a mutex-guarded name lookup) and then record through them lock-free:
// a counter add is one relaxed atomic fetch_add, gated on the process-wide
// obs::Config so the default-off cost is a single relaxed load. Export is
// Prometheus text exposition or JSON; both walk the registry under the
// registration mutex, which the hot path never takes.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "check/thread_annotations.hpp"
#include "obs/config.hpp"

namespace starlab::obs {

class MetricsRegistry;

/// Prometheus text-exposition escaping (HELP text: `\` and newline; label
/// values additionally `"`), exposed for the metrics conformance tests.
[[nodiscard]] std::string prometheus_escape_help(const std::string& s);
[[nodiscard]] std::string prometheus_escape_label(const std::string& s);

namespace detail {

struct CounterCell {
  std::string name;
  std::string help;
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::string name;
  std::string help;
  std::atomic<double> value{0.0};
};

struct HistogramCell {
  std::string name;
  std::string help;
  std::vector<double> upper_bounds;  ///< ascending, finite; +Inf is implicit
  /// Per-bucket counts, size upper_bounds.size() + 1 (last = overflow).
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

}  // namespace detail

/// Monotone event counter handle. Cheap to copy; never outlives its
/// registry (registries live for the process in practice).
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) const {
    if (cell_ == nullptr || !metrics_enabled()) return;
    cell_->value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) const {
    if (cell_ == nullptr || !metrics_enabled()) return;
    cell_->value.store(v, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const {
    return cell_ == nullptr ? 0.0
                            : cell_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram. Buckets are upper bounds (Prometheus `le`
/// semantics: a value equal to a bound lands in that bound's bucket), with
/// an implicit +Inf overflow bucket.
class Histogram {
 public:
  Histogram() = default;

  /// Non-finite observations are rejected: a single NaN would otherwise
  /// poison `sum` forever, and ±Inf would land in a bucket while making the
  /// mean meaningless.
  void observe(double v) const {
    if (cell_ == nullptr || !metrics_enabled()) return;
    if (!std::isfinite(v)) return;
    const std::vector<double>& ub = cell_->upper_bounds;
    std::size_t i = 0;
    while (i < ub.size() && v > ub[i]) ++i;
    cell_->buckets[i].fetch_add(1, std::memory_order_relaxed);
    cell_->count.fetch_add(1, std::memory_order_relaxed);
    cell_->sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Count in bucket `i` (not cumulative); i == num_buckets()-1 is +Inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return cell_ == nullptr
               ? 0
               : cell_->buckets[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t num_buckets() const {
    return cell_ == nullptr ? 0 : cell_->upper_bounds.size() + 1;
  }
  [[nodiscard]] std::uint64_t count() const {
    return cell_ == nullptr ? 0 : cell_->count.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return cell_ == nullptr ? 0.0
                            : cell_->sum.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every starlab instrumentation site uses.
  [[nodiscard]] static MetricsRegistry& instance();

  /// Find-or-create by name (idempotent; help is kept from the first call).
  [[nodiscard]] Counter counter(const std::string& name,
                                const std::string& help = {}) EXCLUDES(mu_);
  [[nodiscard]] Gauge gauge(const std::string& name,
                            const std::string& help = {}) EXCLUDES(mu_);
  /// `upper_bounds` must be ascending; re-registering an existing name
  /// returns the existing histogram (its original bounds win).
  [[nodiscard]] Histogram histogram(const std::string& name,
                      std::vector<double> upper_bounds,
                      const std::string& help = {}) EXCLUDES(mu_);

  /// Zero every value (registrations persist). Tests and run boundaries.
  void reset_values() EXCLUDES(mu_);

  /// Prometheus text exposition format (histograms with cumulative
  /// `le`-labeled buckets, `_sum` and `_count`).
  [[nodiscard]] std::string prometheus_text() const EXCLUDES(mu_);

  /// The same content as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  [[nodiscard]] std::string json() const EXCLUDES(mu_);

 private:
  /// Guards registration and export, never records: the handles the hot
  /// path records through point at pointer-stable cells inside the guarded
  /// deques and touch only the cells' atomics.
  mutable check::Mutex mu_;
  std::deque<detail::CounterCell> counters_ GUARDED_BY(mu_);
  std::deque<detail::GaugeCell> gauges_ GUARDED_BY(mu_);
  std::deque<detail::HistogramCell> histograms_ GUARDED_BY(mu_);
};

}  // namespace starlab::obs
