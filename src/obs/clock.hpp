#pragma once

// The single monotonic-clock wrapper used by tracing spans, stage timers,
// benches and tests. Promoted out of bench_common so instrumentation and
// benchmarking agree on one time base.

#include <chrono>
#include <cstdint>

namespace starlab::obs {

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock).
[[nodiscard]] inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock timer for progress notes and coarse section timing.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_ns()) {}

  void restart() { start_ns_ = monotonic_ns(); }

  /// Nanoseconds since construction (or the last restart).
  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return monotonic_ns() - start_ns_;
  }

  /// Seconds since construction (or the last restart).
  [[nodiscard]] double seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_ns_;
};

}  // namespace starlab::obs
