#include "obs/prof.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "obs/json_writer.hpp"

namespace starlab::obs {

void P2Quantile::observe(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
      increments_[0] = 0.0;
      increments_[1] = q_ / 2.0;
      increments_[2] = q_;
      increments_[3] = (1.0 + q_) / 2.0;
      increments_[4] = 1.0;
    }
    return;
  }
  ++count_;

  int k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction; fall back to linear when it would
      // cross a neighboring marker.
      const double parabolic =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + s) *
                   (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - s) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double rank = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::record(std::string_view path, std::uint64_t dur_ns) {
  const check::MutexLock lock(mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    it = nodes_.emplace(std::string(path), Node{}).first;
    it->second.min_ns = dur_ns;
    it->second.max_ns = dur_ns;
  }
  Node& node = it->second;
  node.count += 1;
  node.total_ns += dur_ns;
  node.min_ns = std::min(node.min_ns, dur_ns);
  node.max_ns = std::max(node.max_ns, dur_ns);
  const auto dur = static_cast<double>(dur_ns);
  node.p50.observe(dur);
  node.p95.observe(dur);
}

void Profiler::clear() {
  const check::MutexLock lock(mu_);
  nodes_.clear();
}

std::size_t Profiler::size() const {
  const check::MutexLock lock(mu_);
  return nodes_.size();
}

std::vector<SpanStats> Profiler::snapshot() const {
  // Copy the stats out under the lock, then do tree assembly unlocked.
  std::map<std::string, SpanStats> stats;
  {
    const check::MutexLock lock(mu_);
    for (const auto& [path, node] : nodes_) {
      SpanStats s;
      s.path = path;
      s.count = node.count;
      s.total_ns = node.total_ns;
      s.min_ns = node.min_ns;
      s.max_ns = node.max_ns;
      s.p50_ns = node.p50.value();
      s.p95_ns = node.p95.value();
      stats.emplace(path, std::move(s));
    }
  }

  // Synthesize ancestors whose spans have not closed yet (e.g. a snapshot
  // taken inside pipeline.run sees pipeline.run;stage but not pipeline.run).
  std::vector<std::string> missing;
  for (const auto& [path, s] : stats) {
    std::string prefix = path;
    std::size_t cut;
    while ((cut = prefix.rfind(';')) != std::string::npos) {
      prefix.resize(cut);
      if (stats.find(prefix) == stats.end()) missing.push_back(prefix);
    }
  }
  for (const std::string& path : missing) {
    SpanStats s;
    s.path = path;
    stats.emplace(path, std::move(s));
  }

  // A path's lexicographic position is always after its parent's (a prefix
  // sorts before any extension), so one ordered pass resolves parents.
  std::vector<SpanStats> out;
  out.reserve(stats.size());
  std::map<std::string, int, std::less<>> index;
  for (auto& [path, s] : stats) {
    const std::size_t cut = path.rfind(';');
    s.name = cut == std::string::npos ? path : path.substr(cut + 1);
    s.depth = static_cast<std::uint32_t>(
        std::count(path.begin(), path.end(), ';'));
    s.parent =
        cut == std::string::npos
            ? -1
            : index.find(std::string_view(path).substr(0, cut))->second;
    index.emplace(path, static_cast<int>(out.size()));
    out.push_back(std::move(s));
  }

  // Self time: total minus direct children's totals (clamped: a synthesized
  // ancestor has total 0 but positive children).
  std::vector<std::uint64_t> child_total(out.size(), 0);
  for (const SpanStats& s : out) {
    if (s.parent >= 0) {
      child_total[static_cast<std::size_t>(s.parent)] += s.total_ns;
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].self_ns =
        out[i].total_ns > child_total[i] ? out[i].total_ns - child_total[i] : 0;
  }
  return out;
}

std::string Profiler::report_json() const {
  const std::vector<SpanStats> spans = snapshot();

  // Roll up by leaf span name (the granularity budget ceilings use).
  struct NameStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
  };
  std::map<std::string, NameStats> names;
  for (const SpanStats& s : spans) {
    NameStats& n = names[s.name];
    n.count += s.count;
    n.total_ns += s.total_ns;
    n.self_ns += s.self_ns;
  }

  JsonWriter w;
  w.begin_object();
  w.key("kind");
  w.value("profile");
  w.key("spans");
  w.begin_array();
  for (const SpanStats& s : spans) {
    w.begin_object();
    w.key("path");
    w.value(s.path);
    w.key("name");
    w.value(s.name);
    w.key("parent");
    w.value(static_cast<std::int64_t>(s.parent));
    w.key("depth");
    w.value(static_cast<std::uint64_t>(s.depth));
    w.key("count");
    w.value(s.count);
    w.key("total_ns");
    w.value(s.total_ns);
    w.key("self_ns");
    w.value(s.self_ns);
    w.key("min_ns");
    w.value(s.min_ns);
    w.key("max_ns");
    w.value(s.max_ns);
    w.key("p50_ns");
    w.value(s.p50_ns);
    w.key("p95_ns");
    w.value(s.p95_ns);
    w.end_object();
  }
  w.end_array();
  w.key("names");
  w.begin_array();
  for (const auto& [name, n] : names) {
    w.begin_object();
    w.key("name");
    w.value(name);
    w.key("count");
    w.value(n.count);
    w.key("total_ns");
    w.value(n.total_ns);
    w.key("self_ns");
    w.value(n.self_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

std::string Profiler::collapsed_stacks() const {
  std::string out;
  for (const SpanStats& s : snapshot()) {
    if (s.count == 0) continue;  // synthesized ancestor, nothing to attribute
    out += s.path;
    out += ' ';
    out += std::to_string(s.self_ns);
    out += '\n';
  }
  return out;
}

}  // namespace starlab::obs
