#include "obs/config.hpp"

#include <cstdlib>
#include <string>

namespace starlab::obs {

Config init_from_env() {
  const char* raw = std::getenv("STARLAB_OBS");
  if (raw != nullptr) {
    const std::string value(raw);
    Config cfg = config();
    if (value == "1" || value == "all") {
      cfg = Config::all();
    } else if (value == "metrics") {
      cfg.metrics = true;
    } else if (value == "trace" || value == "tracing") {
      cfg.tracing = true;
    } else if (value == "prof" || value == "profile" || value == "profiling") {
      cfg.profiling = true;
    } else if (value.empty() || value == "0" || value == "off") {
      cfg = Config::disabled();
    }
    set_config(cfg);
  }
  return config();
}

}  // namespace starlab::obs
