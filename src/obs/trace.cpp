#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

#include "obs/clock.hpp"
#include "obs/json_writer.hpp"
#include "obs/prof.hpp"

namespace starlab::obs {

namespace {
std::atomic<std::uint32_t> g_next_tid{1};
thread_local std::uint32_t t_tid = 0;
thread_local std::uint32_t t_depth = 0;
/// The calling thread's open profiled spans, outermost first. Views point
/// at the owning ObsSpan's name_, which outlives every nested span.
thread_local std::vector<std::string_view> t_prof_path;
}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::clear() {
  const check::MutexLock lock(mu_);
  events_.clear();
}

std::size_t TraceRecorder::size() const {
  const check::MutexLock lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const check::MutexLock lock(mu_);
  return events_;
}

void TraceRecorder::record(TraceEvent event) {
  const check::MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

std::string TraceRecorder::chrome_trace_json() const {
  std::vector<TraceEvent> sorted = events();
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  const std::uint64_t epoch = sorted.empty() ? 0 : sorted.front().start_ns;

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& e : sorted) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(static_cast<double>(e.start_ns - epoch) * 1e-3);
    w.key("dur");
    w.value(static_cast<double>(e.dur_ns) * 1e-3);
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(e.tid));
    w.key("args");
    w.begin_object();
    w.key("depth");
    w.value(static_cast<std::uint64_t>(e.depth));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return std::move(w).str();
}

std::uint32_t ObsSpan::nesting_depth() { return t_depth; }

std::uint32_t ObsSpan::thread_id() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

ObsSpan::ObsSpan(std::string_view name) {
  const bool tracing = tracing_enabled();
  const bool profiling = profiling_enabled();
  if (!tracing && !profiling) return;
  name_ = name;
  start_ns_ = monotonic_ns();
  if (tracing) {
    depth_ = t_depth++;
    active_ = true;
  }
  if (profiling) {
    t_prof_path.push_back(name_);
    prof_active_ = true;
  }
}

ObsSpan::~ObsSpan() {
  if (!active_ && !prof_active_) return;
  // One duration measurement shared by the trace event and the profiler, so
  // per-name totals in the two exports reconcile exactly.
  const std::uint64_t dur_ns = monotonic_ns() - start_ns_;
  if (prof_active_) {
    std::string path;
    for (const std::string_view part : t_prof_path) {
      if (!path.empty()) path += ';';
      path += part;
    }
    t_prof_path.pop_back();
    Profiler::instance().record(path, dur_ns);
  }
  if (active_) {
    --t_depth;
    TraceEvent e;
    e.name = std::move(name_);
    e.start_ns = start_ns_;
    e.dur_ns = dur_ns;
    e.tid = thread_id();
    e.depth = depth_;
    TraceRecorder::instance().record(std::move(e));
  }
}

}  // namespace starlab::obs
