#include "obs/run_report.hpp"

#include "obs/json_writer.hpp"

namespace starlab::obs {

StageStat& RunReport::stage(std::string_view name) {
  for (StageStat& s : stages) {
    if (s.name == name) return s;
  }
  StageStat& s = stages.emplace_back();
  s.name = name;
  return s;
}

const StageStat* RunReport::find_stage(std::string_view name) const {
  for (const StageStat& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::uint64_t RunReport::stage_total_ns() const {
  std::uint64_t total = 0;
  for (const StageStat& s : stages) total += s.wall_ns;
  return total;
}

void RunReport::add_value(std::string name, double value) {
  for (auto& [n, v] : values) {
    if (n == name) {
      v = value;
      return;
    }
  }
  values.emplace_back(std::move(name), value);
}

double RunReport::value_or(std::string_view name, double fallback) const {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  return fallback;
}

void RunReport::bump(
    std::vector<std::pair<std::string, std::uint64_t>>& counts,
    std::string_view name, std::uint64_t by) {
  for (auto& [n, c] : counts) {
    if (n == name) {
      c += by;
      return;
    }
  }
  counts.emplace_back(std::string(name), by);
}

void RunReport::absorb(const RunReport& other) {
  wall_ns += other.wall_ns;
  for (const StageStat& s : other.stages) {
    StageStat& mine = stage(s.name);
    mine.wall_ns += s.wall_ns;
    mine.calls += s.calls;
  }
  slots += other.slots;
  decided += other.decided;
  abstained += other.abstained;
  degraded += other.degraded;
  compared += other.compared;
  correct += other.correct;
  accuracy = compared == 0 ? 0.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(compared);
  for (const auto& [n, c] : other.quality) bump(quality, n, c);
  for (const auto& [n, c] : other.abstain_reasons) bump(abstain_reasons, n, c);
  for (const auto& [n, v] : other.values) add_value(n, value_or(n, 0.0) + v);
  events.insert(events.end(), other.events.begin(), other.events.end());
  if (fault_plan.empty()) fault_plan = other.fault_plan;
}

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("kind");
  w.value(kind);
  w.key("label");
  w.value(label);
  w.key("git_sha");
  w.value(git_sha);
  w.key("wall_ns");
  w.value(wall_ns);
  w.key("stages");
  w.begin_array();
  for (const StageStat& s : stages) {
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("wall_ns");
    w.value(s.wall_ns);
    w.key("calls");
    w.value(s.calls);
    w.end_object();
  }
  w.end_array();
  w.key("slots");
  w.value(slots);
  w.key("decided");
  w.value(decided);
  w.key("abstained");
  w.value(abstained);
  w.key("degraded");
  w.value(degraded);
  w.key("compared");
  w.value(compared);
  w.key("correct");
  w.value(correct);
  w.key("accuracy");
  w.value(accuracy);
  w.key("quality");
  w.begin_object();
  for (const auto& [n, c] : quality) {
    w.key(n);
    w.value(c);
  }
  w.end_object();
  w.key("abstain_reasons");
  w.begin_object();
  for (const auto& [n, c] : abstain_reasons) {
    w.key(n);
    w.value(c);
  }
  w.end_object();
  w.key("fault_plan");
  w.value(fault_plan);
  if (!events.empty()) {
    w.key("events");
    w.begin_array();
    for (const std::string& e : events) w.value(e);
    w.end_array();
  }
  w.key("values");
  w.begin_object();
  for (const auto& [n, v] : values) {
    w.key(n);
    w.value(v);
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace starlab::obs
