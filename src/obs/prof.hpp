#pragma once

// Hierarchical span-statistics profiler riding the obs::trace spans. Where
// the TraceRecorder keeps every span as an event for a Chrome flame chart,
// the Profiler aggregates spans *by call path* ("pipeline.run;exec.chunk"):
// per-path call count, total and self wall-clock, min/max, and streaming
// p50/p95 (Jain & Chlamtac's P-squared estimator, O(1) memory per path).
// Export is a JSON profile report (consumed by tools/benchdiff's budget
// gate) or Brendan Gregg collapsed-stack text for flamegraph tooling.
//
// Cost model matches the rest of the obs layer: default-off behind
// obs::Config (one relaxed atomic load per span, outputs bit-identical to
// an uninstrumented build), and when on, one short mutex-guarded map update
// per span *close* — spans are coarse (per run, per stage, per slot), never
// per pixel or per DTW cell, so the lock is as cold as the metrics
// registry's registration mutex.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "check/thread_annotations.hpp"
#include "obs/config.hpp"

namespace starlab::obs {

/// Streaming quantile estimator: the P-squared algorithm (Jain & Chlamtac,
/// CACM 1985). Five markers, O(1) memory. Exact for the first five
/// observations, approximate thereafter.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile) : q_(quantile) {}

  void observe(double x);

  /// Current estimate; exact (interpolated) below five observations,
  /// 0.0 when empty.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  double q_;
  std::uint64_t count_ = 0;
  double heights_[5] = {};     ///< marker heights q_i (raw samples while n<5)
  double positions_[5] = {};   ///< actual marker positions n_i
  double desired_[5] = {};     ///< desired marker positions n'_i
  double increments_[5] = {};  ///< dn'_i
};

/// Aggregated statistics for one call path. `path` is the span's name
/// prefixed by every enclosing span's name on the same thread, joined with
/// ';' (the collapsed-stack convention); ';' is therefore reserved in span
/// names. Spans opened on pool worker threads have no enclosing span there,
/// so e.g. exec.chunk appears both nested under pipeline.run (the
/// caller-participates chunk) and as a top-level path (worker chunks).
struct SpanStats {
  std::string path;
  std::string name;       ///< last path component (the span's own name)
  int parent = -1;        ///< index of the parent path in the report; -1 = top
  std::uint32_t depth = 0;  ///< path components minus one
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  /// total_ns minus the direct children's total_ns, clamped at 0 (an
  /// ancestor synthesized for a still-open span has total 0).
  std::uint64_t self_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
};

/// The process-wide span-statistics aggregator. ObsSpan reports every close
/// here when profiling is enabled; tests may call record() directly with a
/// synthetic path.
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] static Profiler& instance();

  /// Fold one span close into the path's aggregate. `path` is the
  /// ';'-joined call path whose last component is the closing span's name.
  void record(std::string_view path, std::uint64_t dur_ns) EXCLUDES(mu_);

  void clear() EXCLUDES(mu_);

  /// Number of distinct call paths recorded.
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_);

  /// Deterministic snapshot: paths in lexicographic order (a parent path
  /// always precedes its children), parent indices resolved, self time
  /// computed. Ancestor paths whose span has not closed yet are synthesized
  /// with zero counts so the tree is always connected.
  [[nodiscard]] std::vector<SpanStats> snapshot() const EXCLUDES(mu_);

  /// JSON profile report:
  ///   {"kind":"profile","spans":[{"path":...,"name":...,"parent":...,
  ///    "depth":...,"count":...,"total_ns":...,"self_ns":...,"min_ns":...,
  ///    "max_ns":...,"p50_ns":...,"p95_ns":...},...],
  ///    "names":[{"name":...,"count":...,"total_ns":...,"self_ns":...},...]}
  /// "spans" is the per-path tree; "names" rolls the same data up by leaf
  /// span name (what bench/budgets.toml ceilings are written against).
  [[nodiscard]] std::string report_json() const EXCLUDES(mu_);

  /// Brendan Gregg collapsed-stack text, one "path value" line per path,
  /// lexicographically sorted; value = self time in nanoseconds. Feed to
  /// flamegraph.pl --countname=ns.
  [[nodiscard]] std::string collapsed_stacks() const EXCLUDES(mu_);

 private:
  struct Node {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    P2Quantile p50{0.5};
    P2Quantile p95{0.95};
  };

  /// Guards the path map. Only span closes and exports take it; span opens
  /// cost a relaxed config load plus a thread-local push.
  mutable check::Mutex mu_;
  std::map<std::string, Node, std::less<>> nodes_ GUARDED_BY(mu_);
};

}  // namespace starlab::obs
