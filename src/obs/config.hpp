#pragma once

// Process-wide observability switch. Instrumentation is compiled in
// everywhere but defaults to the null sink: with both flags off, counters,
// histograms and spans reduce to one relaxed atomic load each, stage timers
// never read the clock, and pipeline/campaign outputs are bit-identical to
// an uninstrumented build (the same guarantee the fault layer makes for
// intensity 0; verified by tests_obs).

#include <atomic>

namespace starlab::obs {

struct Config {
  /// Metrics registry live: counters/gauges/histograms record.
  bool metrics = false;
  /// Tracing live: ObsSpan records into the TraceRecorder.
  bool tracing = false;
  /// Profiling live: ObsSpan closes aggregate into the span Profiler.
  bool profiling = false;

  [[nodiscard]] static Config disabled() { return {}; }
  [[nodiscard]] static Config all() { return {true, true, true}; }
};

namespace detail {
inline std::atomic<bool> g_metrics{false};
inline std::atomic<bool> g_tracing{false};
inline std::atomic<bool> g_profiling{false};
}  // namespace detail

inline void set_config(const Config& config) {
  detail::g_metrics.store(config.metrics, std::memory_order_relaxed);
  detail::g_tracing.store(config.tracing, std::memory_order_relaxed);
  detail::g_profiling.store(config.profiling, std::memory_order_relaxed);
}

[[nodiscard]] inline Config config() {
  return {detail::g_metrics.load(std::memory_order_relaxed),
          detail::g_tracing.load(std::memory_order_relaxed),
          detail::g_profiling.load(std::memory_order_relaxed)};
}

[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics.load(std::memory_order_relaxed);
}

[[nodiscard]] inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

[[nodiscard]] inline bool profiling_enabled() {
  return detail::g_profiling.load(std::memory_order_relaxed);
}

/// Any instrumentation live at all (gates stage-timer clock reads).
[[nodiscard]] inline bool enabled() {
  return metrics_enabled() || tracing_enabled() || profiling_enabled();
}

/// Apply the STARLAB_OBS environment variable, if set: "" or "0" leaves the
/// null sink, "metrics" / "trace" / "prof" enable one side, "1" / "all"
/// enable everything. Returns the resulting config. Benches call this so
/// instrumented runs need no code change.
Config init_from_env();

}  // namespace starlab::obs
