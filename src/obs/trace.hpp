#pragma once

// RAII tracing spans with thread-local nesting, recorded against the
// monotonic clock and exported as Chrome trace_event JSON — open a run in
// chrome://tracing or https://ui.perfetto.dev to see where the wall-clock
// went. Spans are compiled in everywhere and cost one relaxed atomic load
// when tracing is off; when on, a span is two clock reads plus one
// mutex-guarded append at end-of-scope (spans are coarse: per run, per
// stage, per slot — never per pixel or per DTW cell).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "check/thread_annotations.hpp"
#include "obs/config.hpp"

namespace starlab::obs {

struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;  ///< monotonic_ns() at span open
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< small per-thread id (1, 2, ...)
  std::uint32_t depth = 0;  ///< nesting depth on that thread (0 = outermost)
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder every ObsSpan reports to.
  [[nodiscard]] static TraceRecorder& instance();

  void clear() EXCLUDES(mu_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_);
  [[nodiscard]] std::vector<TraceEvent> events() const EXCLUDES(mu_);

  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  /// Timestamps are rebased to the earliest event and expressed in
  /// microseconds, events sorted by start time.
  [[nodiscard]] std::string chrome_trace_json() const EXCLUDES(mu_);

  void record(TraceEvent event) EXCLUDES(mu_);

 private:
  mutable check::Mutex mu_;
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
};

/// One timed scope. Construct with tracing enabled to record an event, with
/// profiling enabled to fold the duration into the span Profiler (both use
/// the same single duration measurement, so trace and profile totals
/// reconcile exactly); with both off the constructor is two relaxed loads
/// and nothing else happens.
class ObsSpan {
 public:
  explicit ObsSpan(std::string_view name);
  ~ObsSpan();
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Nesting depth of the calling thread's open spans.
  [[nodiscard]] static std::uint32_t nesting_depth();
  /// The calling thread's trace id (assigned on first use, starting at 1).
  [[nodiscard]] static std::uint32_t thread_id();

 private:
  std::string name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;       ///< recording a TraceEvent (tracing on at open)
  bool prof_active_ = false;  ///< on this thread's profile path (prof at open)
};

}  // namespace starlab::obs
