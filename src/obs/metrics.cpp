#include "obs/metrics.hpp"

#include "obs/json_writer.hpp"

namespace starlab::obs {

namespace {

/// Prometheus text-exposition escaping for HELP lines: backslash and
/// newline only (help text may not otherwise break the line protocol).
std::string prom_escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Label-value escaping: backslash, double quote, and newline.
std::string prom_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

/// Exposed for the conformance tests in tests/test_obs_metrics.cpp.
std::string prometheus_escape_help(const std::string& s) {
  return prom_escape_help(s);
}
std::string prometheus_escape_label(const std::string& s) {
  return prom_escape_label(s);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& help) {
  const check::MutexLock lock(mu_);
  for (detail::CounterCell& c : counters_) {
    if (c.name == name) return Counter(&c);
  }
  detail::CounterCell& cell = counters_.emplace_back();
  cell.name = name;
  cell.help = help;
  return Counter(&cell);
}

Gauge MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  const check::MutexLock lock(mu_);
  for (detail::GaugeCell& g : gauges_) {
    if (g.name == name) return Gauge(&g);
  }
  detail::GaugeCell& cell = gauges_.emplace_back();
  cell.name = name;
  cell.help = help;
  return Gauge(&cell);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> upper_bounds,
                                     const std::string& help) {
  const check::MutexLock lock(mu_);
  for (detail::HistogramCell& h : histograms_) {
    if (h.name == name) return Histogram(&h);
  }
  detail::HistogramCell& cell = histograms_.emplace_back();
  cell.name = name;
  cell.help = help;
  cell.upper_bounds = std::move(upper_bounds);
  cell.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
      cell.upper_bounds.size() + 1);
  for (std::size_t i = 0; i <= cell.upper_bounds.size(); ++i) {
    cell.buckets[i].store(0, std::memory_order_relaxed);
  }
  return Histogram(&cell);
}

void MetricsRegistry::reset_values() {
  const check::MutexLock lock(mu_);
  for (detail::CounterCell& c : counters_) {
    c.value.store(0, std::memory_order_relaxed);
  }
  for (detail::GaugeCell& g : gauges_) {
    g.value.store(0.0, std::memory_order_relaxed);
  }
  for (detail::HistogramCell& h : histograms_) {
    for (std::size_t i = 0; i <= h.upper_bounds.size(); ++i) {
      h.buckets[i].store(0, std::memory_order_relaxed);
    }
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::prometheus_text() const {
  const check::MutexLock lock(mu_);
  std::string out;
  const auto header = [&out](const std::string& name, const std::string& help,
                             const char* type) {
    if (!help.empty()) {
      out += "# HELP " + name + " " + prom_escape_help(help) + "\n";
    }
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const detail::CounterCell& c : counters_) {
    // OpenMetrics conformance: a counter's sample is `<name>_total`; the
    // suffix is appended for the rare counter registered without it.
    const std::string sample =
        ends_with(c.name, "_total") ? c.name : c.name + "_total";
    header(sample, c.help, "counter");
    out += sample + " " +
           std::to_string(c.value.load(std::memory_order_relaxed)) + "\n";
  }
  for (const detail::GaugeCell& g : gauges_) {
    header(g.name, g.help, "gauge");
    out += g.name + " " +
           json_number(g.value.load(std::memory_order_relaxed)) + "\n";
  }
  for (const detail::HistogramCell& h : histograms_) {
    header(h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += h.buckets[i].load(std::memory_order_relaxed);
      out += h.name + "_bucket{le=\"" +
             prom_escape_label(json_number(h.upper_bounds[i])) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative +=
        h.buckets[h.upper_bounds.size()].load(std::memory_order_relaxed);
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += h.name + "_sum " +
           json_number(h.sum.load(std::memory_order_relaxed)) + "\n";
    out += h.name + "_count " +
           std::to_string(h.count.load(std::memory_order_relaxed)) + "\n";
  }
  return out;
}

std::string MetricsRegistry::json() const {
  const check::MutexLock lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const detail::CounterCell& c : counters_) {
    w.key(c.name);
    w.value(c.value.load(std::memory_order_relaxed));
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const detail::GaugeCell& g : gauges_) {
    w.key(g.name);
    w.value(g.value.load(std::memory_order_relaxed));
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const detail::HistogramCell& h : histograms_) {
    w.key(h.name);
    w.begin_object();
    w.key("upper_bounds");
    w.begin_array();
    for (const double b : h.upper_bounds) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i <= h.upper_bounds.size(); ++i) {
      w.value(h.buckets[i].load(std::memory_order_relaxed));
    }
    w.end_array();
    w.key("sum");
    w.value(h.sum.load(std::memory_order_relaxed));
    w.key("count");
    w.value(h.count.load(std::memory_order_relaxed));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace starlab::obs
