#include "obs/metrics.hpp"

#include "obs/json_writer.hpp"

namespace starlab::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& help) {
  const check::MutexLock lock(mu_);
  for (detail::CounterCell& c : counters_) {
    if (c.name == name) return Counter(&c);
  }
  detail::CounterCell& cell = counters_.emplace_back();
  cell.name = name;
  cell.help = help;
  return Counter(&cell);
}

Gauge MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  const check::MutexLock lock(mu_);
  for (detail::GaugeCell& g : gauges_) {
    if (g.name == name) return Gauge(&g);
  }
  detail::GaugeCell& cell = gauges_.emplace_back();
  cell.name = name;
  cell.help = help;
  return Gauge(&cell);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> upper_bounds,
                                     const std::string& help) {
  const check::MutexLock lock(mu_);
  for (detail::HistogramCell& h : histograms_) {
    if (h.name == name) return Histogram(&h);
  }
  detail::HistogramCell& cell = histograms_.emplace_back();
  cell.name = name;
  cell.help = help;
  cell.upper_bounds = std::move(upper_bounds);
  cell.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
      cell.upper_bounds.size() + 1);
  for (std::size_t i = 0; i <= cell.upper_bounds.size(); ++i) {
    cell.buckets[i].store(0, std::memory_order_relaxed);
  }
  return Histogram(&cell);
}

void MetricsRegistry::reset_values() {
  const check::MutexLock lock(mu_);
  for (detail::CounterCell& c : counters_) {
    c.value.store(0, std::memory_order_relaxed);
  }
  for (detail::GaugeCell& g : gauges_) {
    g.value.store(0.0, std::memory_order_relaxed);
  }
  for (detail::HistogramCell& h : histograms_) {
    for (std::size_t i = 0; i <= h.upper_bounds.size(); ++i) {
      h.buckets[i].store(0, std::memory_order_relaxed);
    }
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::prometheus_text() const {
  const check::MutexLock lock(mu_);
  std::string out;
  const auto header = [&out](const std::string& name, const std::string& help,
                             const char* type) {
    if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const detail::CounterCell& c : counters_) {
    header(c.name, c.help, "counter");
    out += c.name + " " +
           std::to_string(c.value.load(std::memory_order_relaxed)) + "\n";
  }
  for (const detail::GaugeCell& g : gauges_) {
    header(g.name, g.help, "gauge");
    out += g.name + " " +
           json_number(g.value.load(std::memory_order_relaxed)) + "\n";
  }
  for (const detail::HistogramCell& h : histograms_) {
    header(h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += h.buckets[i].load(std::memory_order_relaxed);
      out += h.name + "_bucket{le=\"" + json_number(h.upper_bounds[i]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    cumulative +=
        h.buckets[h.upper_bounds.size()].load(std::memory_order_relaxed);
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += h.name + "_sum " +
           json_number(h.sum.load(std::memory_order_relaxed)) + "\n";
    out += h.name + "_count " +
           std::to_string(h.count.load(std::memory_order_relaxed)) + "\n";
  }
  return out;
}

std::string MetricsRegistry::json() const {
  const check::MutexLock lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const detail::CounterCell& c : counters_) {
    w.key(c.name);
    w.value(c.value.load(std::memory_order_relaxed));
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const detail::GaugeCell& g : gauges_) {
    w.key(g.name);
    w.value(g.value.load(std::memory_order_relaxed));
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const detail::HistogramCell& h : histograms_) {
    w.key(h.name);
    w.begin_object();
    w.key("upper_bounds");
    w.begin_array();
    for (const double b : h.upper_bounds) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i <= h.upper_bounds.size(); ++i) {
      w.value(h.buckets[i].load(std::memory_order_relaxed));
    }
    w.end_array();
    w.key("sum");
    w.value(h.sum.load(std::memory_order_relaxed));
    w.key("count");
    w.value(h.count.load(std::memory_order_relaxed));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace starlab::obs
