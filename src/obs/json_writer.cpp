#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace starlab::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return value > 0 ? "1e308" : "-1e308";
  // Shortest representation that still round-trips exactly.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buf;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  out_ += '}';
  has_element_.pop_back();
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  out_ += ']';
  has_element_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  separate();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separate();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(double v) {
  separate();
  out_ += json_number(v);
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
}

}  // namespace starlab::obs
