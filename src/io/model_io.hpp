#pragma once

// File-level wrappers around the ml:: model release format.
//
// RandomForest knows how to (de)serialize itself on streams; this adds the
// path-taking helpers every other artifact already has, with the same
// classified FileError behavior (missing vs unreadable vs empty) so a
// service that loads a model at startup can tell a bad deploy from a bad
// filesystem.

#include <string>

#include "ml/random_forest.hpp"

namespace starlab::io {

/// Write the forest's release format to `path` (truncates).
void save_forest_file(const std::string& path, const ml::RandomForest& forest);

/// Load a forest written by save_forest_file. Throws FileError for file
/// problems, std::runtime_error for a malformed stream.
[[nodiscard]] ml::RandomForest load_forest_file(const std::string& path);

}  // namespace starlab::io
