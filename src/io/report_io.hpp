#pragma once

// RunReport JSONL persistence: one compact JSON object per line, append-only
// — the machine-readable run log the benches and the CLI write so a perf /
// accuracy trajectory can be tracked across commits (see docs/FORMATS.md).

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/run_report.hpp"

namespace starlab::io {

/// Write one report as a single JSON line (with trailing newline).
void append_run_report(std::ostream& out, const obs::RunReport& report);

/// Write each report as one JSON line.
void save_run_reports(std::ostream& out,
                      const std::vector<obs::RunReport>& reports);

/// Parse a JSONL stream written by the functions above. Blank lines are
/// skipped; a malformed line throws std::runtime_error naming the line
/// number. Unknown keys are ignored (forward compatibility).
[[nodiscard]] std::vector<obs::RunReport> load_run_reports(std::istream& in);

/// File conveniences. `append_run_report_file` opens in append mode so
/// successive runs accumulate a log.
void append_run_report_file(const std::string& path,
                            const obs::RunReport& report);
void save_run_reports_file(const std::string& path,
                           const std::vector<obs::RunReport>& reports);
[[nodiscard]] std::vector<obs::RunReport> load_run_reports_file(
    const std::string& path);

}  // namespace starlab::io
