#include "io/campaign_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "io/csv.hpp"
#include "io/file_util.hpp"

namespace starlab::io {

namespace {

constexpr std::size_t kLegacyColumns = 11;   // pre-quality exports
constexpr std::size_t kCurrentColumns = 13;  // + quality, confidence

std::string fmt(double v, const char* spec = "%.6f") {
  char buf[40];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

double to_double(const std::string& s, std::size_t row, const char* column) {
  double v = 0.0;
  try {
    v = std::stod(s);
  } catch (const std::exception&) {
    throw std::runtime_error("campaign CSV row " + std::to_string(row) +
                             ": bad " + column + " value '" + s + "'");
  }
  if (!std::isfinite(v)) {
    throw std::runtime_error("campaign CSV row " + std::to_string(row) +
                             ": non-finite " + column + " value '" + s + "'");
  }
  return v;
}

int to_int(const std::string& s, std::size_t row, const char* column) {
  try {
    return std::stoi(s);
  } catch (const std::exception&) {
    throw std::runtime_error("campaign CSV row " + std::to_string(row) +
                             ": bad " + column + " value '" + s + "'");
  }
}

long long to_ll(const std::string& s, std::size_t row, const char* column) {
  try {
    return std::stoll(s);
  } catch (const std::exception&) {
    throw std::runtime_error("campaign CSV row " + std::to_string(row) +
                             ": bad " + column + " value '" + s + "'");
  }
}

core::CampaignData load_campaign_impl(std::istream& in, ParseReport* report) {
  const std::vector<CsvRow> rows = read_csv(in);
  if (rows.empty()) throw std::runtime_error("empty campaign CSV");
  const std::size_t width = rows.front().size();
  if ((width != kLegacyColumns && width != kCurrentColumns) ||
      rows.front()[0] != "slot") {
    throw std::runtime_error("campaign CSV header mismatch");
  }

  core::CampaignData data;
  core::SlotObs* current = nullptr;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    try {
      if (row.size() != width) {
        throw std::runtime_error("campaign CSV " +
                                 csv_width_error(r + 1, width, row.size()));
      }
      const auto slot =
          static_cast<time::SlotIndex>(to_ll(row[0], r + 1, "slot"));
      const auto terminal_index =
          static_cast<std::size_t>(to_int(row[1], r + 1, "terminal_index"));

      if (terminal_index >= data.terminal_names.size()) {
        data.terminal_names.resize(terminal_index + 1);
      }
      if (data.terminal_names[terminal_index].empty()) {
        data.terminal_names[terminal_index] = row[2];
      }

      const bool new_slot = current == nullptr || current->slot != slot ||
                            current->terminal_index != terminal_index;
      if (new_slot) {
        core::SlotObs obs;
        obs.slot = slot;
        obs.terminal_index = terminal_index;
        obs.unix_mid = to_double(row[3], r + 1, "unix_mid");
        obs.local_hour = to_double(row[4], r + 1, "local_hour");
        if (width == kCurrentColumns) {
          obs.quality =
              static_cast<std::uint32_t>(to_ll(row[11], r + 1, "quality"));
          obs.confidence = to_double(row[12], r + 1, "confidence");
        } else {
          obs.confidence = 0.0;  // fixed up when a chosen row arrives
        }
        data.slots.push_back(std::move(obs));
        current = &data.slots.back();
      }

      if (row[5].empty()) continue;  // candidate-less slot marker
      core::CandidateObs c;
      c.norad_id = to_int(row[5], r + 1, "norad_id");
      c.azimuth_deg = to_double(row[6], r + 1, "azimuth_deg");
      c.elevation_deg = to_double(row[7], r + 1, "elevation_deg");
      c.age_days = to_double(row[8], r + 1, "age_days");
      c.sunlit = row[9] == "1";
      if (row[10] == "1") {
        current->chosen = static_cast<int>(current->available.size());
        // Legacy files carry no confidence column; a labeled slot there
        // means an oracle-grade label.
        if (width == kLegacyColumns) current->confidence = 1.0;
      }
      current->available.push_back(c);
      if (report != nullptr) ++report->records_ok;
    } catch (const std::runtime_error& e) {
      if (report == nullptr) throw;
      report->add(r + 1, e.what());
    }
  }
  return data;
}

}  // namespace

void save_campaign(std::ostream& out, const core::CampaignData& data) {
  write_csv_row(out, {"slot", "terminal_index", "terminal", "unix_mid",
                      "local_hour", "norad_id", "azimuth_deg", "elevation_deg",
                      "age_days", "sunlit", "chosen", "quality", "confidence"});
  for (const core::SlotObs& s : data.slots) {
    const std::string terminal =
        s.terminal_index < data.terminal_names.size()
            ? data.terminal_names[s.terminal_index]
            : "";
    const std::string quality = std::to_string(s.quality);
    const std::string confidence = fmt(s.confidence, "%.4f");
    for (std::size_t i = 0; i < s.available.size(); ++i) {
      const core::CandidateObs& c = s.available[i];
      write_csv_row(
          out, {std::to_string(s.slot), std::to_string(s.terminal_index),
                terminal, fmt(s.unix_mid, "%.3f"), fmt(s.local_hour, "%.5f"),
                std::to_string(c.norad_id), fmt(c.azimuth_deg, "%.4f"),
                fmt(c.elevation_deg, "%.4f"), fmt(c.age_days, "%.3f"),
                c.sunlit ? "1" : "0",
                static_cast<int>(i) == s.chosen ? "1" : "0", quality,
                confidence});
    }
    // Slots with no candidates still need a row to survive the round trip.
    if (s.available.empty()) {
      write_csv_row(out,
                    {std::to_string(s.slot), std::to_string(s.terminal_index),
                     terminal, fmt(s.unix_mid, "%.3f"),
                     fmt(s.local_hour, "%.5f"), "", "", "", "", "", "",
                     quality, confidence});
    }
  }
}

core::CampaignData load_campaign(std::istream& in) {
  return load_campaign_impl(in, nullptr);
}

core::CampaignData load_campaign_lenient(std::istream& in,
                                         ParseReport& report) {
  return load_campaign_impl(in, &report);
}

void save_campaign_file(const std::string& path,
                        const core::CampaignData& data) {
  std::ofstream out = open_output_file(path, "campaign CSV");
  save_campaign(out, data);
  require_write_ok(out, path, "campaign CSV");
}

core::CampaignData load_campaign_file(const std::string& path) {
  std::ifstream in = open_input_file(path, "campaign CSV");
  return load_campaign(in);
}

core::CampaignData load_campaign_file_lenient(const std::string& path,
                                              ParseReport& report) {
  std::ifstream in = open_input_file(path, "campaign CSV");
  return load_campaign_lenient(in, report);
}

}  // namespace starlab::io
