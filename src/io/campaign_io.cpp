#include "io/campaign_io.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "io/csv.hpp"

namespace starlab::io {

namespace {

std::string fmt(double v, const char* spec = "%.6f") {
  char buf[40];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

double to_double(const std::string& s) { return std::stod(s); }
int to_int(const std::string& s) { return std::stoi(s); }

}  // namespace

void save_campaign(std::ostream& out, const core::CampaignData& data) {
  write_csv_row(out, {"slot", "terminal_index", "terminal", "unix_mid",
                      "local_hour", "norad_id", "azimuth_deg", "elevation_deg",
                      "age_days", "sunlit", "chosen"});
  for (const core::SlotObs& s : data.slots) {
    const std::string terminal =
        s.terminal_index < data.terminal_names.size()
            ? data.terminal_names[s.terminal_index]
            : "";
    for (std::size_t i = 0; i < s.available.size(); ++i) {
      const core::CandidateObs& c = s.available[i];
      write_csv_row(
          out, {std::to_string(s.slot), std::to_string(s.terminal_index),
                terminal, fmt(s.unix_mid, "%.3f"), fmt(s.local_hour, "%.5f"),
                std::to_string(c.norad_id), fmt(c.azimuth_deg, "%.4f"),
                fmt(c.elevation_deg, "%.4f"), fmt(c.age_days, "%.3f"),
                c.sunlit ? "1" : "0",
                static_cast<int>(i) == s.chosen ? "1" : "0"});
    }
    // Slots with no candidates still need a row to survive the round trip.
    if (s.available.empty()) {
      write_csv_row(out,
                    {std::to_string(s.slot), std::to_string(s.terminal_index),
                     terminal, fmt(s.unix_mid, "%.3f"),
                     fmt(s.local_hour, "%.5f"), "", "", "", "", "", ""});
    }
  }
}

core::CampaignData load_campaign(std::istream& in) {
  const std::vector<CsvRow> rows = read_csv(in);
  if (rows.empty()) throw std::runtime_error("empty campaign CSV");
  if (rows.front().size() != 11 || rows.front()[0] != "slot") {
    throw std::runtime_error("campaign CSV header mismatch");
  }

  core::CampaignData data;
  core::SlotObs* current = nullptr;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() != 11) {
      throw std::runtime_error("campaign CSV row width mismatch at line " +
                               std::to_string(r + 1));
    }
    const auto slot = static_cast<time::SlotIndex>(std::stoll(row[0]));
    const auto terminal_index = static_cast<std::size_t>(to_int(row[1]));

    if (terminal_index >= data.terminal_names.size()) {
      data.terminal_names.resize(terminal_index + 1);
    }
    if (data.terminal_names[terminal_index].empty()) {
      data.terminal_names[terminal_index] = row[2];
    }

    const bool new_slot = current == nullptr || current->slot != slot ||
                          current->terminal_index != terminal_index;
    if (new_slot) {
      core::SlotObs obs;
      obs.slot = slot;
      obs.terminal_index = terminal_index;
      obs.unix_mid = to_double(row[3]);
      obs.local_hour = to_double(row[4]);
      data.slots.push_back(std::move(obs));
      current = &data.slots.back();
    }

    if (row[5].empty()) continue;  // candidate-less slot marker
    core::CandidateObs c;
    c.norad_id = to_int(row[5]);
    c.azimuth_deg = to_double(row[6]);
    c.elevation_deg = to_double(row[7]);
    c.age_days = to_double(row[8]);
    c.sunlit = row[9] == "1";
    if (row[10] == "1") {
      current->chosen = static_cast<int>(current->available.size());
    }
    current->available.push_back(c);
  }
  return data;
}

void save_campaign_file(const std::string& path,
                        const core::CampaignData& data) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write campaign CSV: " + path);
  save_campaign(out, data);
  if (!out) throw std::runtime_error("IO error writing campaign CSV: " + path);
}

core::CampaignData load_campaign_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open campaign CSV: " + path);
  return load_campaign(in);
}

}  // namespace starlab::io
