#include "io/csv.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace starlab::io {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& out, const CsvRow& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ',';
    out << csv_escape(fields[i]);
  }
  out << '\n';
}

CsvRow parse_csv_line(const std::string& line) {
  CsvRow out;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      field += c;
    }
  }
  out.push_back(std::move(field));
  return out;
}

std::vector<CsvRow> read_csv(std::istream& in) {
  std::vector<CsvRow> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    out.push_back(parse_csv_line(line));
  }
  return out;
}

std::string csv_width_error(std::size_t row_index_1based, std::size_t expected,
                            std::size_t actual) {
  return "row " + std::to_string(row_index_1based) + ": expected " +
         std::to_string(expected) + " columns, got " + std::to_string(actual);
}

std::vector<CsvRow> read_csv_checked(std::istream& in,
                                     std::size_t expected_columns) {
  std::vector<CsvRow> out;
  std::string line;
  std::size_t row_index = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    ++row_index;
    CsvRow row = parse_csv_line(line);
    if (row.size() != expected_columns) {
      throw std::runtime_error(
          csv_width_error(row_index, expected_columns, row.size()));
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<CsvRow> read_csv_lenient(std::istream& in,
                                     std::size_t expected_columns,
                                     ParseReport& report) {
  std::vector<CsvRow> out;
  std::string line;
  std::size_t row_index = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    ++row_index;
    CsvRow row = parse_csv_line(line);
    if (row.size() != expected_columns) {
      report.add(row_index,
                 csv_width_error(row_index, expected_columns, row.size()));
      continue;
    }
    ++report.records_ok;
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace starlab::io
