#pragma once

// Minimal RFC-4180-style CSV reading/writing: quoting, embedded commas and
// quotes, CRLF tolerance. Used by the dataset-release exporters (the paper
// publishes its data and model; starlab's campaigns round-trip through
// these files).

#include <iosfwd>
#include <string>
#include <vector>

namespace starlab::io {

/// One parsed row.
using CsvRow = std::vector<std::string>;

/// Quote a field if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Write one row (fields escaped as needed) terminated by '\n'.
void write_csv_row(std::ostream& out, const CsvRow& fields);

/// Parse one CSV line (no embedded newlines inside quoted fields across
/// lines — starlab's exporters never produce them).
[[nodiscard]] CsvRow parse_csv_line(const std::string& line);

/// Read all rows from a stream, skipping blank lines.
[[nodiscard]] std::vector<CsvRow> read_csv(std::istream& in);

}  // namespace starlab::io
