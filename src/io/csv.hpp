#pragma once

// Minimal RFC-4180-style CSV reading/writing: quoting, embedded commas and
// quotes, CRLF tolerance. Used by the dataset-release exporters (the paper
// publishes its data and model; starlab's campaigns round-trip through
// these files).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/parse_report.hpp"

namespace starlab::io {

/// One parsed row.
using CsvRow = std::vector<std::string>;

/// Quote a field if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Write one row (fields escaped as needed) terminated by '\n'.
void write_csv_row(std::ostream& out, const CsvRow& fields);

/// Parse one CSV line (no embedded newlines inside quoted fields across
/// lines — starlab's exporters never produce them).
[[nodiscard]] CsvRow parse_csv_line(const std::string& line);

/// Read all rows from a stream, skipping blank lines.
[[nodiscard]] std::vector<CsvRow> read_csv(std::istream& in);

/// read_csv enforcing a uniform column count: any row that does not have
/// exactly `expected_columns` fields throws std::runtime_error naming the
/// 1-based row index and the expected/actual widths — a clear failure at
/// the parse boundary instead of out-of-range access downstream.
[[nodiscard]] std::vector<CsvRow> read_csv_checked(std::istream& in,
                                                   std::size_t expected_columns);

/// Lenient variant: rows with a mismatched column count are skipped and
/// logged in `report` (row index + expected/actual width); every
/// well-formed row is kept.
[[nodiscard]] std::vector<CsvRow> read_csv_lenient(std::istream& in,
                                                   std::size_t expected_columns,
                                                   ParseReport& report);

/// The "row 7: expected 11 columns, got 9" message shared by the checked
/// readers and by callers that validate width themselves.
[[nodiscard]] std::string csv_width_error(std::size_t row_index_1based,
                                          std::size_t expected,
                                          std::size_t actual);

}  // namespace starlab::io
