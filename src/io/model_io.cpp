#include "io/model_io.hpp"

#include "io/file_util.hpp"

namespace starlab::io {

void save_forest_file(const std::string& path,
                      const ml::RandomForest& forest) {
  std::ofstream out = open_output_file(path, "forest model");
  forest.save(out);
  require_write_ok(out, path, "forest model");
}

ml::RandomForest load_forest_file(const std::string& path) {
  std::ifstream in = open_input_file(path, "forest model");
  return ml::RandomForest::load(in);
}

}  // namespace starlab::io
