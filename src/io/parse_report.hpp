#pragma once

// Structured skip-and-report accounting for lenient parsers.
//
// Production catalogs and campaign files arrive damaged (truncated pulls,
// corrupted records, half-written rows). The strict parsers throw on the
// first problem; their *_lenient counterparts keep every record that parses
// and log each skip here with its line/row provenance, so a caller can
// decide whether 3 skipped records out of 4000 is acceptable — instead of
// losing the whole file.
//
// Header-only on purpose: tle:: sits below io:: in the library graph and
// includes this without linking starlab::io.

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace starlab::io {

/// One skipped record/row.
struct ParseIssue {
  std::size_t line = 0;  ///< 1-based line (or row) number in the source
  std::string reason;
};

struct ParseReport {
  std::size_t records_ok = 0;       ///< records that survived
  std::size_t records_skipped = 0;  ///< records dropped (== issues.size())
  std::vector<ParseIssue> issues;

  [[nodiscard]] bool clean() const { return issues.empty(); }

  void add(std::size_t line, std::string reason) {
    ++records_skipped;
    issues.push_back({line, std::move(reason)});
  }

  /// "ok=412 skipped=3: line 17: bad checksum; line 52: ..." (for logs).
  [[nodiscard]] std::string summary() const {
    std::ostringstream out;
    out << "ok=" << records_ok << " skipped=" << records_skipped;
    const char* sep = ": ";
    for (const ParseIssue& issue : issues) {
      out << sep << "line " << issue.line << ": " << issue.reason;
      sep = "; ";
    }
    return out.str();
  }
};

}  // namespace starlab::io
