#pragma once

// Campaign-data release format: one CSV row per (slot, candidate), with the
// chosen candidate flagged — the shape of the dataset the paper published
// alongside its model. Round-trips losslessly to the precision written.
//
// Since the fault-injection work the export also carries each slot's
// data-quality flags and identification confidence (see docs/FORMATS.md);
// files written by older versions (11 columns, no quality/confidence) are
// still read, with clean-slot defaults.

#include <iosfwd>
#include <string>

#include "core/campaign.hpp"
#include "io/parse_report.hpp"

namespace starlab::io {

/// Column layout written by save_campaign (header row included):
///   slot, terminal_index, terminal, unix_mid, local_hour,
///   norad_id, azimuth_deg, elevation_deg, age_days, sunlit, chosen,
///   quality, confidence
void save_campaign(std::ostream& out, const core::CampaignData& data);

/// Load a campaign written by save_campaign (current 13-column or legacy
/// 11-column layout). Throws std::runtime_error on a malformed file, naming
/// the offending row and what was expected.
[[nodiscard]] core::CampaignData load_campaign(std::istream& in);

/// Lenient load: malformed rows (wrong width, unparsable numbers) are
/// skipped and logged in `report` with row provenance; every well-formed
/// row is kept. Only a missing/mismatched header still throws.
[[nodiscard]] core::CampaignData load_campaign_lenient(std::istream& in,
                                                       ParseReport& report);

/// File conveniences.
void save_campaign_file(const std::string& path,
                        const core::CampaignData& data);
[[nodiscard]] core::CampaignData load_campaign_file(const std::string& path);
[[nodiscard]] core::CampaignData load_campaign_file_lenient(
    const std::string& path, ParseReport& report);

}  // namespace starlab::io
