#pragma once

// Campaign-data release format: one CSV row per (slot, candidate), with the
// chosen candidate flagged — the shape of the dataset the paper published
// alongside its model. Round-trips losslessly to the precision written.

#include <iosfwd>
#include <string>

#include "core/campaign.hpp"

namespace starlab::io {

/// Column layout written by save_campaign (header row included):
///   slot, terminal_index, terminal, unix_mid, local_hour,
///   norad_id, azimuth_deg, elevation_deg, age_days, sunlit, chosen
void save_campaign(std::ostream& out, const core::CampaignData& data);

/// Load a campaign written by save_campaign. Throws std::runtime_error on a
/// malformed file.
[[nodiscard]] core::CampaignData load_campaign(std::istream& in);

/// File conveniences.
void save_campaign_file(const std::string& path,
                        const core::CampaignData& data);
[[nodiscard]] core::CampaignData load_campaign_file(const std::string& path);

}  // namespace starlab::io
