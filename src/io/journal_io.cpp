#include "io/journal_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/file_util.hpp"

namespace starlab::io {

namespace {

std::string segment_path(const std::string& base, std::size_t index) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".seg%06zu", index);
  return base + suffix;
}

bool file_exists(const std::string& path) {
  struct ::stat st = {};
  return ::stat(path.c_str(), &st) == 0;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw FileError(FileError::Kind::kUnreadable, path,
                    "journal segment unreadable: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Walk the frames of one segment. Valid payloads are appended to
/// `records` (when non-null) and `valid_len` tracks the byte length of the
/// verified prefix. Returns false when the segment ends in a damaged or
/// torn frame.
bool scan_segment(const std::string& data, std::vector<std::string>* records,
                  std::uint64_t* valid_len) {
  if (valid_len != nullptr) *valid_len = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t p = pos;
    if (data.size() - p < 3 || data.compare(p, 3, "J1 ") != 0) return false;
    p += 3;
    if (data.size() - p < 9) return false;
    std::uint32_t crc = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const char c = data[p + i];
      std::uint32_t nibble = 0;
      if (c >= '0' && c <= '9') nibble = static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') nibble = static_cast<std::uint32_t>(c - 'a' + 10);
      else return false;
      crc = (crc << 4) | nibble;
    }
    if (data[p + 8] != ' ') return false;
    p += 9;
    std::uint64_t len = 0;
    bool any_digit = false;
    while (p < data.size() && data[p] >= '0' && data[p] <= '9') {
      len = len * 10 + static_cast<std::uint64_t>(data[p] - '0');
      if (len > data.size()) return false;  // cannot possibly fit
      ++p;
      any_digit = true;
    }
    if (!any_digit || p >= data.size() || data[p] != ' ') return false;
    ++p;
    if (data.size() - p < len + 1) return false;  // torn payload
    const std::string_view payload(data.data() + p, len);
    if (data[p + len] != '\n') return false;
    if (crc32(payload) != crc) return false;
    if (records != nullptr) records->emplace_back(payload);
    pos = p + len + 1;
    if (valid_len != nullptr) *valid_len = pos;
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::string> journal_segment_paths(const std::string& path) {
  std::vector<std::string> out;
  for (std::size_t i = 0;; ++i) {
    std::string seg = segment_path(path, i);
    if (!file_exists(seg)) break;
    out.push_back(std::move(seg));
  }
  return out;
}

JournalReplay replay_journal(const std::string& path) {
  JournalReplay replay;
  const std::vector<std::string> segments = journal_segment_paths(path);
  replay.segments = segments.size();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string data = read_file_bytes(segments[i]);
    std::uint64_t valid_len = 0;
    if (!scan_segment(data, &replay.records, &valid_len)) {
      replay.torn = true;
      replay.untrusted_bytes += data.size() - valid_len;
      // Segments past a damaged frame were written after it and cannot be
      // ordered relative to the lost record — report, never trust.
      for (std::size_t j = i + 1; j < segments.size(); ++j) {
        struct ::stat st = {};
        if (::stat(segments[j].c_str(), &st) == 0) {
          replay.untrusted_bytes += static_cast<std::uint64_t>(st.st_size);
        }
      }
      break;
    }
  }
  return replay;
}

void remove_journal(const std::string& path) {
  for (const std::string& seg : journal_segment_paths(path)) {
    (void)::unlink(seg.c_str());
  }
}

JournalWriter::JournalWriter(JournalConfig config,
                             fault::WriteKillPoint* kill)
    : config_(std::move(config)), kill_(kill) {
  if (config_.path.empty()) {
    throw std::invalid_argument("journal path is empty");
  }
  const std::vector<std::string> segments =
      journal_segment_paths(config_.path);
  if (segments.empty()) {
    open_segment(0, 0);
    return;
  }
  // Repair-on-open: find the last fully valid frame, truncate the torn
  // tail, and drop untrusted later segments so appends extend a clean
  // prefix of the record stream.
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string data = read_file_bytes(segments[i]);
    std::uint64_t valid_len = 0;
    const bool clean = scan_segment(data, nullptr, &valid_len);
    if (clean && i + 1 < segments.size()) continue;
    for (std::size_t j = i + 1; j < segments.size(); ++j) {
      (void)::unlink(segments[j].c_str());
    }
    open_segment(i, valid_len);
    return;
  }
}

JournalWriter::~JournalWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; a failed final sync leaves a valid
    // prefix on disk, which is the journal's crash contract anyway.
  }
}

void JournalWriter::open_segment(std::size_t index,
                                 std::uint64_t resume_size) {
  const std::string path = segment_path(config_.path, index);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    throw FileError(FileError::Kind::kWrite, path,
                    "cannot open journal segment: " + path);
  }
  if (::ftruncate(fd, static_cast<off_t>(resume_size)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    throw FileError(FileError::Kind::kWrite, path,
                    "cannot position journal segment: " + path);
  }
  fd_ = fd;
  segment_index_ = index;
  segment_size_ = resume_size;
}

void JournalWriter::write_all(const char* data, std::size_t n) {
  std::size_t written = 0;
  while (written < n) {
    const ssize_t rc = ::write(fd_, data + written, n - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw FileError(FileError::Kind::kWrite,
                      segment_path(config_.path, segment_index_),
                      "journal write failed: " +
                          segment_path(config_.path, segment_index_));
    }
    written += static_cast<std::size_t>(rc);
  }
}

void JournalWriter::append(std::string_view payload) {
  if (fd_ < 0) throw std::logic_error("append on a closed journal writer");
  if (payload.find('\n') != std::string_view::npos) {
    throw std::invalid_argument("journal payload contains a newline");
  }
  char head[32];
  const int head_len =
      std::snprintf(head, sizeof(head), "J1 %08x %zu ", crc32(payload),
                    payload.size());
  std::string frame;
  frame.reserve(static_cast<std::size_t>(head_len) + payload.size() + 1);
  frame.append(head, static_cast<std::size_t>(head_len));
  frame.append(payload);
  frame.push_back('\n');

  if (segment_size_ > 0 && segment_size_ + frame.size() > config_.segment_bytes) {
    // Rotate: the finished segment is synced before the next one exists,
    // so a crash between the two leaves a fully valid journal.
    (void)::fdatasync(fd_);
    (void)::close(fd_);
    fd_ = -1;
    open_segment(segment_index_ + 1, 0);
  }

  const std::uint64_t want = frame.size();
  const std::uint64_t granted = kill_ != nullptr ? kill_->grant(want) : want;
  write_all(frame.data(), static_cast<std::size_t>(granted));
  if (granted < want) {
    // Simulated process death mid-write: the granted prefix is on disk,
    // nothing else ever will be.
    const int fd = fd_;
    fd_ = -1;
    (void)::close(fd);
    throw fault::WriteKilled(kill_->granted());
  }
  segment_size_ += want;
  bytes_appended_ += want;
  ++records_appended_;
  if (config_.fsync) (void)::fdatasync(fd_);
}

void JournalWriter::close() {
  if (fd_ < 0) return;
  const int fd = fd_;
  fd_ = -1;
  (void)::fdatasync(fd);
  if (::close(fd) != 0) {
    throw FileError(FileError::Kind::kWrite,
                    segment_path(config_.path, segment_index_),
                    "cannot close journal segment: " +
                        segment_path(config_.path, segment_index_));
  }
}

}  // namespace starlab::io
