#pragma once

// Errno-aware file-open helpers shared by every load_*_file / save_*_file.
//
// "cannot open X" tells an operator nothing at 3 a.m. A days-long campaign
// that dies on a file error needs the failure class up front: a *missing*
// file means a config typo or an unfinished producer, an *unreadable* one
// means permissions or a path that is really a directory, an *empty* one
// means a writer crashed before its first flush. The helpers here classify
// via stat(2)/errno and throw FileError carrying the kind, the path and the
// strerror text, so call sites keep their one-liner shape.
//
// Header-only on purpose (like parse_report.hpp): tle:: sits below io:: in
// the library graph and uses this without linking starlab::io.

#include <sys/stat.h>

#include <cerrno>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>

namespace starlab::io {

/// Classified file I/O failure. Derives from std::runtime_error so legacy
/// catch sites keep working; new ones can switch on kind().
class FileError : public std::runtime_error {
 public:
  enum class Kind {
    kMissing,     ///< path does not exist (ENOENT)
    kUnreadable,  ///< exists but cannot be read (EACCES, EISDIR, ...)
    kEmpty,       ///< exists, readable, zero bytes
    kWrite,       ///< cannot be created or written
  };

  FileError(Kind kind, std::string path, const std::string& detail)
      : std::runtime_error(detail), kind_(kind), path_(std::move(path)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Kind kind_;
  std::string path_;
};

namespace detail {
inline std::string errno_text(int err) {
  return std::make_error_code(static_cast<std::errc>(err)).message();
}
}  // namespace detail

/// Open `path` for reading or throw a classified FileError. `what` names
/// the artifact in messages ("TLE catalog", "campaign CSV", ...).
/// `allow_empty` skips the zero-byte check for formats where an empty file
/// is meaningful.
[[nodiscard]] inline std::ifstream open_input_file(const std::string& path,
                                                   const std::string& what,
                                                   bool allow_empty = false) {
  struct ::stat st = {};
  if (::stat(path.c_str(), &st) != 0) {
    const int err = errno;
    if (err == ENOENT || err == ENOTDIR) {
      throw FileError(
          FileError::Kind::kMissing, path,
          what + " missing: " + path + " (" + detail::errno_text(err) + ")");
    }
    throw FileError(
        FileError::Kind::kUnreadable, path,
        what + " unreadable: " + path + " (" + detail::errno_text(err) + ")");
  }
  if (S_ISDIR(st.st_mode)) {
    throw FileError(FileError::Kind::kUnreadable, path,
                    what + " unreadable: " + path + " (is a directory)");
  }
  std::ifstream in(path);
  if (!in) {
    const int err = errno;
    throw FileError(
        FileError::Kind::kUnreadable, path,
        what + " unreadable: " + path + " (" +
            (err != 0 ? detail::errno_text(err) : std::string("open failed")) +
            ")");
  }
  if (!allow_empty && st.st_size == 0) {
    throw FileError(FileError::Kind::kEmpty, path, what + " is empty: " + path);
  }
  return in;
}

/// Open `path` for writing (truncate) or throw FileError{kWrite}.
[[nodiscard]] inline std::ofstream open_output_file(const std::string& path,
                                                    const std::string& what) {
  std::ofstream out(path);
  if (!out) {
    const int err = errno;
    throw FileError(
        FileError::Kind::kWrite, path,
        "cannot write " + what + ": " + path + " (" +
            (err != 0 ? detail::errno_text(err) : std::string("open failed")) +
            ")");
  }
  return out;
}

/// Throw FileError{kWrite} if `out` is in a failed state after writing.
inline void require_write_ok(const std::ofstream& out, const std::string& path,
                             const std::string& what) {
  if (!out) {
    throw FileError(FileError::Kind::kWrite, path,
                    "IO error writing " + what + ": " + path);
  }
}

}  // namespace starlab::io
