#include "io/rtt_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "io/csv.hpp"
#include "io/file_util.hpp"

namespace starlab::io {

void save_rtt_series(std::ostream& out, const measurement::RttSeries& series) {
  // Metadata travels in the first two columns of a marker row so the file
  // stays a plain CSV.
  write_csv_row(out, {"#terminal", series.terminal,
                      std::to_string(series.interval_ms)});
  write_csv_row(out, {"unix_sec", "rtt_ms", "lost", "slot"});
  char buf[40];
  for (const measurement::RttSample& s : series.samples) {
    std::snprintf(buf, sizeof(buf), "%.6f", s.unix_sec);
    std::string rtt;
    if (!s.lost) {
      char rbuf[40];
      std::snprintf(rbuf, sizeof(rbuf), "%.6f", s.rtt_ms);
      rtt = rbuf;
    }
    write_csv_row(out, {buf, rtt, s.lost ? "1" : "0", std::to_string(s.slot)});
  }
}

measurement::RttSeries load_rtt_series(std::istream& in) {
  const std::vector<CsvRow> rows = read_csv(in);
  if (rows.size() < 2 || rows[0].empty() || rows[0][0] != "#terminal") {
    throw std::runtime_error("RTT CSV missing metadata row");
  }

  measurement::RttSeries series;
  series.terminal = rows[0].size() > 1 ? rows[0][1] : "";
  series.interval_ms = rows[0].size() > 2 ? std::stod(rows[0][2]) : 20.0;
  if (!std::isfinite(series.interval_ms)) {
    throw std::runtime_error("RTT CSV metadata row: non-finite interval_ms");
  }

  for (std::size_t r = 2; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() != 4) {
      throw std::runtime_error("RTT CSV " +
                               csv_width_error(r + 1, 4, row.size()));
    }
    measurement::RttSample s;
    try {
      s.unix_sec = std::stod(row[0]);
      s.lost = row[2] == "1";
      if (!s.lost) s.rtt_ms = std::stod(row[1]);
      s.slot = static_cast<time::SlotIndex>(std::stoll(row[3]));
    } catch (const std::exception&) {
      throw std::runtime_error("RTT CSV row " + std::to_string(r + 1) +
                               ": unparsable numeric field");
    }
    if (!std::isfinite(s.unix_sec) || !std::isfinite(s.rtt_ms)) {
      throw std::runtime_error("RTT CSV row " + std::to_string(r + 1) +
                               ": non-finite numeric field");
    }
    series.samples.push_back(s);
  }
  return series;
}

void save_rtt_series_file(const std::string& path,
                          const measurement::RttSeries& series) {
  std::ofstream out = open_output_file(path, "RTT CSV");
  save_rtt_series(out, series);
  require_write_ok(out, path, "RTT CSV");
}

measurement::RttSeries load_rtt_series_file(const std::string& path) {
  std::ifstream in = open_input_file(path, "RTT CSV");
  return load_rtt_series(in);
}

}  // namespace starlab::io
