#pragma once

// Append-only, CRC-guarded record journal — the persistence layer behind
// campaign checkpoint/resume.
//
// A journal is a sequence of single-line framed records spread over
// numbered segment files (`<path>.seg000000`, `.seg000001`, ...). Each
// record is framed as
//
//     J1 <crc32:8 hex> <len:decimal> <payload>\n
//
// where the CRC-32 (IEEE) covers exactly the payload bytes. Frames are
// written with plain write(2) followed by fdatasync, so after a crash the
// on-disk state is a valid prefix plus at most one torn frame; replay
// walks segments in order, verifies every frame, and stops at the first
// damaged one — whatever follows (the torn tail, later segments) is
// reported but never trusted. A writer reopening an existing journal
// truncates that torn tail and removes the untrusted later segments before
// appending, so the journal is always a clean prefix of the logical record
// stream. Rotation starts a fresh segment once the current one exceeds
// segment_bytes; the old segment is synced before the new one is created.
//
// Payloads are opaque bytes minus '\n' (the frame terminator); encoding
// structure into them is the caller's business (see resilience/checkpoint).
// The fault::WriteKillPoint hook makes every byte offset of this format a
// testable crash site.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injectors.hpp"

namespace starlab::io {

/// CRC-32 (IEEE 802.3, reflected) — the journal's per-record guard.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

struct JournalConfig {
  std::string path;  ///< base path; segments live at path.segNNNNNN
  /// Rotate to a new segment once the current one reaches this size.
  std::uint64_t segment_bytes = 1u << 20;
  /// fdatasync after every append (the durability the resume contract
  /// assumes). The degradation ladder sheds this first.
  bool fsync = true;
};

/// What replay found on disk.
struct JournalReplay {
  std::vector<std::string> records;  ///< valid payloads, in append order
  std::size_t segments = 0;          ///< segment files present
  /// Bytes after the last valid record (torn frame + untrusted segments).
  std::uint64_t untrusted_bytes = 0;
  bool torn = false;  ///< replay stopped at a damaged frame
};

/// Replay every valid record of the journal at `path`. A journal with no
/// segments yields an empty replay (not an error).
[[nodiscard]] JournalReplay replay_journal(const std::string& path);

/// Existing segment files of the journal, in index order.
[[nodiscard]] std::vector<std::string> journal_segment_paths(
    const std::string& path);

/// Delete every segment of the journal (a missing journal is a no-op).
void remove_journal(const std::string& path);

class JournalWriter {
 public:
  /// Open for append. An existing journal is first repaired: the torn tail
  /// of the last valid segment is truncated and untrusted later segments
  /// are deleted, so appends continue the valid record stream. `kill` is a
  /// non-owning crash gate for torn-write tests; writes beyond its budget
  /// throw fault::WriteKilled after persisting exactly the granted prefix.
  explicit JournalWriter(JournalConfig config,
                         fault::WriteKillPoint* kill = nullptr);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Append one record. The payload must not contain '\n'.
  void append(std::string_view payload);

  /// Flush and close (idempotent; the destructor calls it).
  void close();

  /// Toggle per-append fdatasync (degradation ladder: shed fsync first).
  void set_fsync(bool on) { config_.fsync = on; }

  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_appended_; }
  [[nodiscard]] std::size_t records_appended() const {
    return records_appended_;
  }

 private:
  void open_segment(std::size_t index, std::uint64_t resume_size);
  void write_all(const char* data, std::size_t n);

  JournalConfig config_;
  fault::WriteKillPoint* kill_;
  int fd_ = -1;
  std::size_t segment_index_ = 0;
  std::uint64_t segment_size_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::size_t records_appended_ = 0;
};

}  // namespace starlab::io
