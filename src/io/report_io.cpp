#include "io/report_io.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace starlab::io {

namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader covering exactly what RunReport::to_json emits:
// objects, arrays, strings with escapes, numbers, booleans, null. Kept
// private to this translation unit — it is a parsing detail of the report
// log, not a general-purpose JSON library.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered object members.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned long code =
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16);
          pos_ += 4;
          // The writer only emits \u00XX control escapes; decode the
          // low byte and fall back to '?' outside Latin-1.
          out += code <= 0xFF ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected boolean");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("expected null");
    pos_ += 4;
    return {};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string get_string(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kString ? v->string : "";
}

double get_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number : 0.0;
}

std::uint64_t get_u64(const JsonValue& obj, const std::string& key) {
  return static_cast<std::uint64_t>(get_number(obj, key));
}

std::vector<std::pair<std::string, std::uint64_t>> get_count_map(
    const JsonValue& obj, const std::string& key) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (const JsonValue* v = obj.find(key);
      v != nullptr && v->type == JsonValue::Type::kObject) {
    for (const auto& [n, c] : v->object) {
      out.emplace_back(n, static_cast<std::uint64_t>(c.number));
    }
  }
  return out;
}

obs::RunReport report_from_json(const JsonValue& obj) {
  obs::RunReport r;
  r.kind = get_string(obj, "kind");
  r.label = get_string(obj, "label");
  r.git_sha = get_string(obj, "git_sha");
  r.wall_ns = get_u64(obj, "wall_ns");
  if (const JsonValue* stages = obj.find("stages");
      stages != nullptr && stages->type == JsonValue::Type::kArray) {
    for (const JsonValue& s : stages->array) {
      obs::StageStat& stage = r.stage(get_string(s, "name"));
      stage.wall_ns = get_u64(s, "wall_ns");
      stage.calls = get_u64(s, "calls");
    }
  }
  r.slots = get_u64(obj, "slots");
  r.decided = get_u64(obj, "decided");
  r.abstained = get_u64(obj, "abstained");
  r.degraded = get_u64(obj, "degraded");
  r.compared = get_u64(obj, "compared");
  r.correct = get_u64(obj, "correct");
  r.accuracy = get_number(obj, "accuracy");
  r.quality = get_count_map(obj, "quality");
  r.abstain_reasons = get_count_map(obj, "abstain_reasons");
  r.fault_plan = get_string(obj, "fault_plan");
  if (const JsonValue* events = obj.find("events");
      events != nullptr && events->type == JsonValue::Type::kArray) {
    for (const JsonValue& e : events->array) {
      if (e.type == JsonValue::Type::kString) r.events.push_back(e.string);
    }
  }
  if (const JsonValue* values = obj.find("values");
      values != nullptr && values->type == JsonValue::Type::kObject) {
    for (const auto& [n, v] : values->object) r.add_value(n, v.number);
  }
  return r;
}

}  // namespace

void append_run_report(std::ostream& out, const obs::RunReport& report) {
  out << report.to_json() << '\n';
}

void save_run_reports(std::ostream& out,
                      const std::vector<obs::RunReport>& reports) {
  for (const obs::RunReport& r : reports) append_run_report(out, r);
}

std::vector<obs::RunReport> load_run_reports(std::istream& in) {
  std::vector<obs::RunReport> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      const JsonValue obj = JsonParser(line).parse();
      if (obj.type != JsonValue::Type::kObject) {
        throw std::runtime_error("top-level value is not an object");
      }
      out.push_back(report_from_json(obj));
    } catch (const std::exception& e) {
      throw std::runtime_error("report log line " + std::to_string(line_no) +
                               ": " + e.what());
    }
  }
  return out;
}

void append_run_report_file(const std::string& path,
                            const obs::RunReport& report) {
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("cannot open " + path + " for append");
  append_run_report(out, report);
}

void save_run_reports_file(const std::string& path,
                           const std::vector<obs::RunReport>& reports) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  save_run_reports(out, reports);
}

std::vector<obs::RunReport> load_run_reports_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load_run_reports(in);
}

}  // namespace starlab::io
