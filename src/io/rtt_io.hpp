#pragma once

// RTT trace export/import: one CSV row per probe, as an iRTT-style logger
// would record. Lets RTT analysis (change points, Mann-Whitney, epoch
// recovery) run on traces captured elsewhere — including real dish traces
// with the same columns.

#include <iosfwd>
#include <string>

#include "measurement/rtt_prober.hpp"

namespace starlab::io {

/// Columns: unix_sec, rtt_ms (empty when lost), lost, slot.
void save_rtt_series(std::ostream& out, const measurement::RttSeries& series);

/// Load a trace written by save_rtt_series (terminal name and interval are
/// restored from the header comment row).
[[nodiscard]] measurement::RttSeries load_rtt_series(std::istream& in);

void save_rtt_series_file(const std::string& path,
                          const measurement::RttSeries& series);
[[nodiscard]] measurement::RttSeries load_rtt_series_file(
    const std::string& path);

}  // namespace starlab::io
