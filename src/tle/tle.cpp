#include "tle/tle.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace starlab::tle {

namespace {

/// Extract columns [begin, end) (0-based, end exclusive) with whitespace
/// trimmed. TLE column specs in comments below use the conventional 1-based
/// inclusive numbering.
std::string field(const std::string& line, std::size_t begin, std::size_t end) {
  if (line.size() < end) throw TleParseError("TLE line too short: " + line);
  std::string f = line.substr(begin, end - begin);
  const auto first = f.find_first_not_of(' ');
  if (first == std::string::npos) return {};
  const auto last = f.find_last_not_of(' ');
  return f.substr(first, last - first + 1);
}

double to_double(const std::string& s, const char* what) {
  if (s.empty()) return 0.0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    throw TleParseError(std::string("bad numeric TLE field (") + what + "): '" +
                        s + "'");
  }
  // strtod happily accepts "nan"/"inf" spellings; orbital elements are
  // always finite, so treat them as corruption, not numbers.
  if (!std::isfinite(v)) {
    throw TleParseError(std::string("non-finite TLE field (") + what + "): '" +
                        s + "'");
  }
  return v;
}

int to_int(const std::string& s, const char* what) {
  if (s.empty()) return 0;
  return static_cast<int>(to_double(s, what));
}

}  // namespace

int tle_checksum(const std::string& line) {
  int sum = 0;
  const std::size_t n = std::min<std::size_t>(line.size(), 68);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = line[i];
    if (c >= '0' && c <= '9') sum += c - '0';
    if (c == '-') sum += 1;
  }
  return sum % 10;
}

double decode_implied_exponent(const std::string& raw) {
  // Layout: [sign][ddddd][esign][e]  e.g. " 12345-4" -> +0.12345e-4.
  std::string f = raw;
  // Normalize to 8 chars by left-padding (some writers drop the lead blank).
  while (f.size() < 8) f.insert(f.begin(), ' ');

  const std::string trimmed = [&] {
    const auto first = f.find_first_not_of(' ');
    return first == std::string::npos ? std::string{} : f.substr(first);
  }();
  if (trimmed.empty() || trimmed == "00000-0" || trimmed == "00000+0") {
    return 0.0;
  }

  const double sign = (f[0] == '-') ? -1.0 : 1.0;
  const std::string mantissa_digits = field(f, 1, 6);
  const double mantissa = to_double(mantissa_digits, "implied mantissa") / 1e5;
  const double exp_sign = (f[6] == '-') ? -1.0 : 1.0;
  const double exponent = to_double(f.substr(7, 1), "implied exponent");
  return sign * mantissa * std::pow(10.0, exp_sign * exponent);
}

std::string encode_implied_exponent(double value) {
  if (value == 0.0) return " 00000+0";

  const char sign = value < 0.0 ? '-' : ' ';
  double mag = std::fabs(value);

  // Find exponent e such that mantissa = mag / 10^e is in [0.1, 1).
  int exp = 0;
  while (mag >= 1.0) {
    mag /= 10.0;
    ++exp;
  }
  while (mag < 0.1) {
    mag *= 10.0;
    --exp;
  }
  int mantissa = static_cast<int>(std::lround(mag * 1e5));
  if (mantissa == 100000) {  // rounding pushed us to 1.0
    mantissa = 10000;
    ++exp;
  }

  char buf[16];
  std::snprintf(buf, sizeof(buf), "%c%05d%c%1d", sign, mantissa,
                exp < 0 ? '-' : '+', std::abs(exp) % 10);
  return buf;
}

starlab::time::JulianDate Tle::epoch_jd() const {
  using starlab::time::JulianDate;
  const JulianDate jan1 =
      JulianDate::from_calendar(epoch_year, 1, 1, 0, 0, 0.0);
  return jan1.plus_days(epoch_day - 1.0);
}

Tle Tle::parse(const std::string& line1, const std::string& line2,
               const std::string& name) {
  if (line1.size() < 69) throw TleParseError("line 1 shorter than 69 chars");
  if (line2.size() < 69) throw TleParseError("line 2 shorter than 69 chars");
  if (line1[0] != '1') throw TleParseError("line 1 must start with '1'");
  if (line2[0] != '2') throw TleParseError("line 2 must start with '2'");

  const int check1 = line1[68] - '0';
  if (tle_checksum(line1) != check1) {
    throw TleParseError("line 1 checksum mismatch");
  }
  const int check2 = line2[68] - '0';
  if (tle_checksum(line2) != check2) {
    throw TleParseError("line 2 checksum mismatch");
  }

  Tle t;
  t.name = name;

  // Line 1. Columns (1-based): 3-7 satnum, 8 class, 10-17 intl designator,
  // 19-20 epoch year, 21-32 epoch day, 34-43 ndot/2, 45-52 nddot/6,
  // 54-61 bstar, 65-68 element set number.
  t.norad_id = to_int(field(line1, 2, 7), "satnum");
  t.classification = line1[7] == ' ' ? 'U' : line1[7];
  t.intl_designator = field(line1, 9, 17);
  const int yy = to_int(field(line1, 18, 20), "epoch year");
  t.epoch_year = yy < 57 ? 2000 + yy : 1900 + yy;  // TLE convention
  t.epoch_day = to_double(field(line1, 20, 32), "epoch day");
  {
    // ndot field has an implied leading "0": " .00001234".
    std::string nd = field(line1, 33, 43);
    t.ndot_over_2 = to_double(nd, "ndot");
  }
  t.nddot_over_6 = decode_implied_exponent(line1.substr(44, 8));
  t.bstar = decode_implied_exponent(line1.substr(53, 8));
  t.element_set_number = to_int(field(line1, 64, 68), "element set number");

  // Line 2. Columns: 3-7 satnum, 9-16 inclination, 18-25 raan, 27-33 ecc
  // (implied leading decimal point), 35-42 argp, 44-51 mean anomaly,
  // 53-63 mean motion, 64-68 rev number.
  const int satnum2 = to_int(field(line2, 2, 7), "satnum line2");
  if (satnum2 != t.norad_id) {
    throw TleParseError("catalog number differs between lines");
  }
  t.inclination_deg = to_double(field(line2, 8, 16), "inclination");
  t.raan_deg = to_double(field(line2, 17, 25), "raan");
  t.eccentricity = to_double(field(line2, 26, 33), "eccentricity") / 1e7;
  t.arg_perigee_deg = to_double(field(line2, 34, 42), "arg perigee");
  t.mean_anomaly_deg = to_double(field(line2, 43, 51), "mean anomaly");
  t.mean_motion_rev_per_day = to_double(field(line2, 52, 63), "mean motion");
  t.rev_number = to_int(field(line2, 63, 68), "rev number");

  if (t.eccentricity < 0.0 || t.eccentricity >= 1.0) {
    throw TleParseError("eccentricity out of range");
  }
  if (t.mean_motion_rev_per_day <= 0.0) {
    throw TleParseError("non-positive mean motion");
  }
  return t;
}

std::string Tle::format_line1() const {
  // ndot/2 field: sign + ".dddddddd" with implied leading zero.
  char ndot_buf[16];
  {
    const double v = ndot_over_2;
    char sign = v < 0.0 ? '-' : ' ';
    std::snprintf(ndot_buf, sizeof(ndot_buf), "%c.%08d", sign,
                  static_cast<int>(std::lround(std::fabs(v) * 1e8)));
  }

  char epoch_buf[24];
  std::snprintf(epoch_buf, sizeof(epoch_buf), "%02d%012.8f", epoch_year % 100,
                epoch_day);

  char buf[80];
  std::snprintf(buf, sizeof(buf), "1 %05d%c %-8s %s %s %s %s 0 %4d", norad_id,
                classification, intl_designator.c_str(), epoch_buf, ndot_buf,
                encode_implied_exponent(nddot_over_6).c_str(),
                encode_implied_exponent(bstar).c_str(),
                element_set_number % 10000);
  std::string line(buf);
  line.resize(68, ' ');
  line.push_back(static_cast<char>('0' + tle_checksum(line)));
  return line;
}

std::string Tle::format_line2() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f%5d",
                norad_id, inclination_deg, raan_deg,
                static_cast<int>(std::lround(eccentricity * 1e7)),
                arg_perigee_deg, mean_anomaly_deg, mean_motion_rev_per_day,
                rev_number % 100000);
  std::string line(buf);
  line.resize(68, ' ');
  line.push_back(static_cast<char>('0' + tle_checksum(line)));
  return line;
}

}  // namespace starlab::tle
