#include "tle/catalog_io.hpp"

#include <fstream>
#include <sstream>

namespace starlab::tle {

namespace {

bool is_blank(const std::string& s) {
  return s.find_first_not_of(" \t\r") == std::string::npos;
}

std::string strip_cr(std::string s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == '\n')) s.pop_back();
  return s;
}

}  // namespace

std::vector<Tle> read_catalog(std::istream& in) {
  std::vector<Tle> out;
  std::string pending_name;
  std::string line;
  std::string line1;

  while (std::getline(in, line)) {
    line = strip_cr(line);
    if (is_blank(line)) continue;

    if (line.size() >= 2 && line[0] == '1' && line[1] == ' ') {
      line1 = line;
      continue;
    }
    if (line.size() >= 2 && line[0] == '2' && line[1] == ' ') {
      if (line1.empty()) {
        throw TleParseError("element line 2 without a preceding line 1");
      }
      out.push_back(Tle::parse(line1, line, pending_name));
      line1.clear();
      pending_name.clear();
      continue;
    }
    // Anything else is a title line for the next record.
    if (!line1.empty()) {
      throw TleParseError("element line 1 not followed by line 2");
    }
    // Trim trailing spaces of the name.
    const auto last = line.find_last_not_of(' ');
    pending_name = line.substr(0, last + 1);
  }
  if (!line1.empty()) {
    throw TleParseError("dangling element line 1 at end of catalog");
  }
  return out;
}

std::vector<Tle> read_catalog_string(const std::string& text) {
  std::istringstream in(text);
  return read_catalog(in);
}

std::vector<Tle> load_catalog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open TLE catalog: " + path);
  return read_catalog(in);
}

void write_catalog(std::ostream& out, const std::vector<Tle>& catalog) {
  for (const Tle& t : catalog) {
    if (!t.name.empty()) out << t.name << '\n';
    out << t.format_line1() << '\n' << t.format_line2() << '\n';
  }
}

void save_catalog_file(const std::string& path,
                       const std::vector<Tle>& catalog) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write TLE catalog: " + path);
  write_catalog(out, catalog);
  if (!out) throw std::runtime_error("IO error writing TLE catalog: " + path);
}

}  // namespace starlab::tle
