#include "tle/catalog_io.hpp"

#include <fstream>
#include <sstream>

#include "io/file_util.hpp"

namespace starlab::tle {

namespace {

bool is_blank(const std::string& s) {
  return s.find_first_not_of(" \t\r") == std::string::npos;
}

std::string strip_cr(std::string s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == '\n')) s.pop_back();
  return s;
}

/// Shared strict/lenient reader. With `report == nullptr` any malformed
/// record throws TleParseError (strict, the historical behavior); with a
/// report, the offending record is skipped with line provenance and parsing
/// resynchronizes at the next record boundary.
std::vector<Tle> read_catalog_impl(std::istream& in, io::ParseReport* report) {
  std::vector<Tle> out;
  std::string pending_name;
  std::string line;
  std::string line1;
  std::size_t lineno = 0;
  std::size_t line1_no = 0;

  const auto fail = [&](std::size_t at, const std::string& why) {
    if (report == nullptr) throw TleParseError(why);
    report->add(at, why);
  };

  while (std::getline(in, line)) {
    ++lineno;
    line = strip_cr(line);
    if (is_blank(line)) continue;

    if (line.size() >= 2 && line[0] == '1' && line[1] == ' ') {
      if (!line1.empty() && report != nullptr) {
        // Lenient only: a second line 1 before any line 2 means the previous
        // record lost its second line; skip it and resync on this one.
        fail(line1_no, "element line 1 not followed by line 2");
      }
      line1 = line;
      line1_no = lineno;
      continue;
    }
    if (line.size() >= 2 && line[0] == '2' && line[1] == ' ') {
      if (line1.empty()) {
        fail(lineno, "element line 2 without a preceding line 1");
        pending_name.clear();
        continue;
      }
      try {
        out.push_back(Tle::parse(line1, line, pending_name));
        if (report != nullptr) ++report->records_ok;
      } catch (const TleParseError& e) {
        if (report == nullptr) throw;
        report->add(line1_no, e.what());
      }
      line1.clear();
      pending_name.clear();
      continue;
    }
    // Anything else is a title line for the next record.
    if (!line1.empty()) {
      fail(line1_no, "element line 1 not followed by line 2");
      line1.clear();
    }
    // Trim trailing spaces of the name.
    const auto last = line.find_last_not_of(' ');
    pending_name = line.substr(0, last + 1);
  }
  if (!line1.empty()) {
    fail(line1_no, "dangling element line 1 at end of catalog");
  }
  return out;
}

}  // namespace

std::vector<Tle> read_catalog(std::istream& in) {
  return read_catalog_impl(in, nullptr);
}

std::vector<Tle> read_catalog_string(const std::string& text) {
  std::istringstream in(text);
  return read_catalog(in);
}

std::vector<Tle> load_catalog_file(const std::string& path) {
  std::ifstream in = io::open_input_file(path, "TLE catalog");
  return read_catalog(in);
}

std::vector<Tle> read_catalog_lenient(std::istream& in,
                                      io::ParseReport& report) {
  return read_catalog_impl(in, &report);
}

std::vector<Tle> read_catalog_string_lenient(const std::string& text,
                                             io::ParseReport& report) {
  std::istringstream in(text);
  return read_catalog_lenient(in, report);
}

std::vector<Tle> load_catalog_file_lenient(const std::string& path,
                                           io::ParseReport& report) {
  std::ifstream in = io::open_input_file(path, "TLE catalog");
  return read_catalog_lenient(in, report);
}

void write_catalog(std::ostream& out, const std::vector<Tle>& catalog) {
  for (const Tle& t : catalog) {
    if (!t.name.empty()) out << t.name << '\n';
    out << t.format_line1() << '\n' << t.format_line2() << '\n';
  }
}

void save_catalog_file(const std::string& path,
                       const std::vector<Tle>& catalog) {
  std::ofstream out = io::open_output_file(path, "TLE catalog");
  write_catalog(out, catalog);
  io::require_write_ok(out, path, "TLE catalog");
}

}  // namespace starlab::tle
