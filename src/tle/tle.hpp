#pragma once

// Two-line element (TLE) sets.
//
// The paper pulls Starlink TLEs from CelesTrak and propagates them with SGP4
// to compute which satellites are in a terminal's field of view. starlab's
// constellation synthesizer emits standards-conformant TLE text so that the
// identical parse -> propagate -> look-angle path runs against the simulated
// constellation. Both directions (parse and format) are implemented and
// round-trip exactly to TLE field precision.

#include <optional>
#include <stdexcept>
#include <string>

#include "time/julian_date.hpp"

namespace starlab::tle {

/// Error thrown on malformed TLE text.
class TleParseError : public std::runtime_error {
 public:
  explicit TleParseError(const std::string& what) : std::runtime_error(what) {}
};

/// One parsed element set. Angles in degrees, mean motion in revolutions per
/// day — the native TLE units; the SGP4 layer converts to radians/minute.
struct Tle {
  std::string name;             ///< satellite name (line 0), may be empty
  int norad_id = 0;             ///< catalog number
  char classification = 'U';    ///< U/C/S
  std::string intl_designator;  ///< e.g. "19029A" (launch year/number/piece)
  int epoch_year = 2000;        ///< full 4-digit year
  double epoch_day = 1.0;       ///< fractional day of year, 1.0 == Jan 1 00:00
  double ndot_over_2 = 0.0;     ///< rev/day^2 (first derivative of n over 2)
  double nddot_over_6 = 0.0;    ///< rev/day^3 (second derivative over 6)
  double bstar = 0.0;           ///< drag term [1/earth radii]
  int element_set_number = 999;
  double inclination_deg = 0.0;
  double raan_deg = 0.0;        ///< right ascension of ascending node
  double eccentricity = 0.0;
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  double mean_motion_rev_per_day = 0.0;
  int rev_number = 0;

  /// Epoch as a Julian date (UTC).
  [[nodiscard]] starlab::time::JulianDate epoch_jd() const;

  /// Orbital period implied by the (Kozai) mean motion [minutes].
  [[nodiscard]] double period_minutes() const {
    return 1440.0 / mean_motion_rev_per_day;
  }

  /// Parse from the two element lines; `name` may come from a preceding
  /// title line. Verifies line numbers, catalog-number consistency and both
  /// checksums. Throws TleParseError on any violation.
  [[nodiscard]] static Tle parse(const std::string& line1, const std::string& line2,
                   const std::string& name = {});

  /// Format line 1 (69 chars, checksummed).
  [[nodiscard]] std::string format_line1() const;

  /// Format line 2 (69 chars, checksummed).
  [[nodiscard]] std::string format_line2() const;
};

/// TLE modulo-10 checksum of the first 68 characters ('-' counts as 1,
/// digits as themselves, everything else 0).
[[nodiscard]] int tle_checksum(const std::string& line);

/// Decode a TLE "implied decimal point, implied exponent" field such as
/// " 12345-4" (== 0.12345e-4). Whitespace-only decodes to 0.
[[nodiscard]] double decode_implied_exponent(const std::string& field);

/// Encode into the 8-character implied-exponent representation.
[[nodiscard]] std::string encode_implied_exponent(double value);

}  // namespace starlab::tle
