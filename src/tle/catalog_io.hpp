#pragma once

// Reading/writing multi-satellite TLE files in the 3-line (name + two element
// lines) CelesTrak format, plus the bare 2-line variant.

#include <iosfwd>
#include <string>
#include <vector>

#include "io/parse_report.hpp"
#include "tle/tle.hpp"

namespace starlab::tle {

/// Parse every TLE in a stream. Accepts both 3-line (named) and 2-line
/// records, mixed freely; blank lines are skipped. Throws TleParseError on
/// malformed records.
[[nodiscard]] std::vector<Tle> read_catalog(std::istream& in);

/// Parse a catalog from a string (convenience for tests and the synthesizer).
[[nodiscard]] std::vector<Tle> read_catalog_string(const std::string& text);

/// Load a catalog from a file. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Tle> load_catalog_file(const std::string& path);

/// Lenient variants: a malformed record is skipped (with its line number and
/// reason appended to `report`) instead of aborting the whole catalog, and
/// parsing resynchronizes at the next record boundary. Only unreadable
/// files still throw.
[[nodiscard]] std::vector<Tle> read_catalog_lenient(std::istream& in,
                                                    io::ParseReport& report);
[[nodiscard]] std::vector<Tle> read_catalog_string_lenient(
    const std::string& text, io::ParseReport& report);
[[nodiscard]] std::vector<Tle> load_catalog_file_lenient(
    const std::string& path, io::ParseReport& report);

/// Write a catalog in 3-line format (names included when present).
void write_catalog(std::ostream& out, const std::vector<Tle>& catalog);

/// Save to a file. Throws std::runtime_error on IO failure.
void save_catalog_file(const std::string& path, const std::vector<Tle>& catalog);

}  // namespace starlab::tle
