#pragma once

// From an XOR-isolated pixel blob to an ordered planar trajectory.
//
// The XOR of two consecutive obstruction-map frames yields an *unordered*
// set of pixels. DTW needs sequences, so the pixels are chained into a path:
// start from an extremal pixel (one end of the streak) and repeatedly hop to
// the nearest unvisited pixel. Both traversal directions are kept by the
// identifier since the map does not encode the satellite's direction of
// motion. Conversion to Cartesian uses the (possibly recovered) map
// geometry, mirroring the paper's polar -> Cartesian step.

#include <vector>

#include "match/dtw.hpp"
#include "obsmap/map_geometry.hpp"
#include "obsmap/obstruction_map.hpp"

namespace starlab::match {

/// Planar coordinates (pixel units, polar-plot plane) of a sky direction.
[[nodiscard]] Point2 sky_to_plane(const obsmap::SkyPoint& sky,
                                  const obsmap::MapGeometry& geometry);

/// Order a pixel blob into a path by nearest-neighbour chaining from the
/// farthest-pair endpoint. Returns pixel-centre coordinates.
[[nodiscard]] std::vector<Point2> chain_pixels(
    const std::vector<obsmap::Pixel>& pixels);

/// Full extraction: set pixels of an isolated frame, chained, as plane
/// points. Pixels outside the polar plot (per `geometry`) are dropped.
[[nodiscard]] std::vector<Point2> extract_trajectory(
    const obsmap::ObstructionMap& isolated,
    const obsmap::MapGeometry& geometry);

/// Convenience for tests: the (azimuth, elevation) samples of an isolated
/// frame, unchained.
[[nodiscard]] std::vector<obsmap::SkyPoint> extract_sky_points(
    const obsmap::ObstructionMap& isolated,
    const obsmap::MapGeometry& geometry);

}  // namespace starlab::match
