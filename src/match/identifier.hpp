#pragma once

// §4's headline method: identify the serving satellite from an isolated
// obstruction-map trajectory.
//
// For one 15-second slot: take the XOR-isolated trajectory, chain it into a
// sequence, and compare against the painted sky path of every candidate
// satellite in the terminal's field of view (propagated from TLEs). The
// candidate with the lowest DTW distance is declared the serving satellite.
// Both traversal directions of the isolated path are tried because the map
// does not encode motion direction.

#include <optional>
#include <vector>

#include "constellation/catalog.hpp"
#include "ground/terminal.hpp"
#include "match/dtw.hpp"
#include "match/trajectory.hpp"
#include "obsmap/obstruction_map.hpp"
#include "time/slot_grid.hpp"

namespace starlab::match {

/// One candidate's match score.
struct MatchScore {
  std::size_t catalog_index = 0;
  int norad_id = 0;
  double dtw = 1e300;  ///< normalized DTW distance (lower is better)
};

/// Identification outcome for one slot.
struct Identification {
  std::optional<MatchScore> best;     ///< empty if no candidate/trajectory
  std::vector<MatchScore> ranked;     ///< all candidates, ascending DTW
  std::size_t trajectory_pixels = 0;  ///< size of the isolated trajectory
  int num_candidates = 0;
  /// True when the frame pair betrayed an unnoticed dish reboot (the new
  /// frame lost pixels the old one had); identification then ran on the
  /// fresh frame directly instead of the XOR.
  bool reset_detected = false;
};

struct IdentifierConfig {
  double min_elevation_deg = 25.0;   ///< candidate field-of-view floor
  double sample_interval_sec = 1.0;  ///< candidate-path sampling
  int dtw_band = 16;                 ///< Sakoe-Chiba half-width (pixels ~ samples)
  std::size_t min_trajectory_pixels = 4;  ///< below this, give up
  /// Match only the largest connected component of the isolated frame —
  /// stray un-cancelled pixels from partial overlaps would otherwise drag
  /// the chained trajectory across the sky.
  bool use_largest_component = true;
};

class SatelliteIdentifier {
 public:
  SatelliteIdentifier(const constellation::Catalog& catalog,
                      obsmap::MapGeometry geometry, time::SlotGrid grid,
                      IdentifierConfig config = {})
      : catalog_(catalog), geometry_(geometry), grid_(grid), config_(config) {}

  /// Identify the satellite serving `terminal` during `slot`, from the
  /// obstruction-map frames fetched at the end of slot-1 and slot.
  [[nodiscard]] Identification identify(const ground::Terminal& terminal,
                                        time::SlotIndex slot,
                                        const obsmap::ObstructionMap& prev_frame,
                                        const obsmap::ObstructionMap& curr_frame) const;

  /// Identify from an already-isolated trajectory frame.
  [[nodiscard]] Identification identify_isolated(
      const ground::Terminal& terminal, time::SlotIndex slot,
      const obsmap::ObstructionMap& isolated) const;

  /// The painted sky path a candidate would leave during a slot, in plane
  /// coordinates (exposed for validation plots and tests).
  [[nodiscard]] std::vector<Point2> candidate_path(
      std::size_t catalog_index, const ground::Terminal& terminal,
      time::SlotIndex slot) const;

 private:
  const constellation::Catalog& catalog_;
  obsmap::MapGeometry geometry_;
  time::SlotGrid grid_;
  IdentifierConfig config_;
};

}  // namespace starlab::match
