#pragma once

// §4's headline method: identify the serving satellite from an isolated
// obstruction-map trajectory.
//
// For one 15-second slot: take the XOR-isolated trajectory, chain it into a
// sequence, and compare against the painted sky path of every candidate
// satellite in the terminal's field of view (propagated from TLEs). The
// candidate with the lowest DTW distance is declared the serving satellite.
// Both traversal directions of the isolated path are tried because the map
// does not encode motion direction.

#include <optional>
#include <span>
#include <vector>

#include "constellation/catalog.hpp"
#include "constellation/ephemeris_cache.hpp"
#include "ground/terminal.hpp"
#include "match/dtw.hpp"
#include "match/trajectory.hpp"
#include "obsmap/obstruction_map.hpp"
#include "time/slot_grid.hpp"

namespace starlab::match {

/// One candidate's match score.
struct MatchScore {
  std::size_t catalog_index = 0;
  int norad_id = 0;
  double dtw = 1e300;  ///< normalized DTW distance (lower is better)
};

/// Why the identifier declined to name a satellite. With degraded inputs
/// (dropped frames, bit flips, stale XOR baselines) guessing is worse than
/// abstaining: an abstained slot is simply missing from the §5 statistics,
/// while a mis-identified one poisons them.
enum class AbstainReason {
  kNone = 0,             ///< not abstained: `best` carries the answer
  kStarvedTrajectory,    ///< too few trajectory pixels to match
  kAmbiguousComponents,  ///< two comparable blobs: trajectories got mixed
  kHighDistance,         ///< even the best candidate matches poorly
  kLowMargin,            ///< runner-up is indistinguishable from the winner
};

/// Machine-readable reason name — the key the observability layer uses in
/// RunReport abstention counts.
[[nodiscard]] constexpr const char* abstain_reason_name(AbstainReason r) {
  switch (r) {
    case AbstainReason::kNone: return "none";
    case AbstainReason::kStarvedTrajectory: return "starved_trajectory";
    case AbstainReason::kAmbiguousComponents: return "ambiguous_components";
    case AbstainReason::kHighDistance: return "high_distance";
    case AbstainReason::kLowMargin: return "low_margin";
  }
  return "unknown";
}

/// Identification outcome for one slot.
struct Identification {
  std::optional<MatchScore> best;     ///< empty if abstained / no evidence
  std::vector<MatchScore> ranked;     ///< all candidates, ascending DTW
  std::size_t trajectory_pixels = 0;  ///< size of the isolated trajectory
  int num_candidates = 0;
  /// True when the frame pair betrayed an unnoticed dish reboot (the new
  /// frame lost pixels the old one had); identification then ran on the
  /// fresh frame directly instead of the XOR.
  bool reset_detected = false;
  /// Connected components in the isolated frame (diagnostic; 1 is clean).
  std::size_t num_components = 0;
  /// Confidence in `best`, in [0, 1]: the relative DTW margin over the
  /// runner-up, attenuated when the winning distance itself is poor. 0 when
  /// abstained or without evidence.
  double confidence = 0.0;
  AbstainReason abstain = AbstainReason::kNone;

  [[nodiscard]] bool abstained() const {
    return abstain != AbstainReason::kNone;
  }
};

struct IdentifierConfig {
  geo::Deg min_elevation = geo::Deg(25.0);  ///< candidate field-of-view floor
  double sample_interval_sec = 1.0;  ///< candidate-path sampling
  int dtw_band = 16;                 ///< Sakoe-Chiba half-width (pixels ~ samples)
  std::size_t min_trajectory_pixels = 4;  ///< below this, give up
  /// Match only the largest connected component of the isolated frame —
  /// stray un-cancelled pixels from partial overlaps would otherwise drag
  /// the chained trajectory across the sky.
  bool use_largest_component = true;

  // Abstention thresholds. Each one set to 0 disables that check (the
  // identifier then answers whenever it has any finite-distance candidate,
  // the pre-abstention behavior).
  /// Abstain when the runner-up's DTW distance is within this relative
  /// margin of the winner's: the evidence cannot tell the two apart.
  double abstain_margin = 0.02;
  /// Abstain when the winning normalized DTW distance (squared pixels per
  /// warping step) exceeds this: nothing in the sky actually fits the blob.
  double abstain_max_dtw = 30.0;
  /// Abstain when the second-largest connected component holds at least
  /// this fraction of the largest one's pixels (and is itself at least
  /// min_trajectory_pixels): two trajectories are mixed in one frame, and
  /// which of them belongs to *this* slot is unknowable.
  double ambiguous_component_ratio = 0.6;
  /// Reset detection: how many accumulated pixels the current frame may
  /// have *lost* before the pair is declared a reboot. A genuine reset
  /// wipes hundreds of pixels; transport bit flips lose a handful, and a
  /// strict subset test would misread every flipped pixel as a reset. 0
  /// keeps the strict test. On clean frames nothing is ever lost, so any
  /// tolerance leaves clean-data behavior bit-identical.
  int reset_pixel_tolerance = 8;
};

class SatelliteIdentifier {
 public:
  SatelliteIdentifier(const constellation::Catalog& catalog,
                      obsmap::MapGeometry geometry, time::SlotGrid grid,
                      IdentifierConfig config = {})
      : catalog_(catalog), geometry_(geometry), grid_(grid), config_(config) {}

  /// Identify the satellite serving `terminal` during `slot`, from the
  /// obstruction-map frames fetched at the end of slot-1 and slot. When the
  /// caller already holds a whole-catalog propagation for the slot midpoint
  /// (the pipeline computes one per slot), pass it as `snapshots` so the
  /// candidate query reuses it instead of re-propagating the catalog.
  [[nodiscard]] Identification identify(
      const ground::Terminal& terminal, time::SlotIndex slot,
      const obsmap::ObstructionMap& prev_frame,
      const obsmap::ObstructionMap& curr_frame,
      std::span<const constellation::Catalog::Snapshot> snapshots = {}) const;

  /// Identify from an already-isolated trajectory frame. Candidate scoring
  /// (path sampling + both DTW traversals per candidate) is partitioned over
  /// the exec::default_pool(); scores are assembled in candidate order so
  /// the result is bit-identical at any thread count.
  [[nodiscard]] Identification identify_isolated(
      const ground::Terminal& terminal, time::SlotIndex slot,
      const obsmap::ObstructionMap& isolated,
      std::span<const constellation::Catalog::Snapshot> snapshots = {}) const;

  /// The painted sky path a candidate would leave during a slot, in plane
  /// coordinates (exposed for validation plots and tests).
  [[nodiscard]] std::vector<Point2> candidate_path(
      std::size_t catalog_index, const ground::Terminal& terminal,
      time::SlotIndex slot) const;

  /// Route candidate-path SGP4 sampling through a memoized ephemeris cache
  /// (bit-identical; see constellation::EphemerisCache). The cache must
  /// outlive the identifier; nullptr restores direct propagation.
  void set_ephemeris_cache(const constellation::EphemerisCache* cache) {
    ephemeris_cache_ = cache;
  }

 private:
  const constellation::Catalog& catalog_;
  obsmap::MapGeometry geometry_;
  time::SlotGrid grid_;
  IdentifierConfig config_;
  const constellation::EphemerisCache* ephemeris_cache_ = nullptr;
};

}  // namespace starlab::match
