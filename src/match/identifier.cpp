#include "match/identifier.hpp"

#include <algorithm>

#include "obsmap/components.hpp"

namespace starlab::match {

std::vector<Point2> SatelliteIdentifier::candidate_path(
    std::size_t catalog_index, const ground::Terminal& terminal,
    time::SlotIndex slot) const {
  std::vector<Point2> path;
  const double t_begin = grid_.slot_start(slot);
  const double t_end = grid_.slot_end(slot);
  for (double t = t_begin; t < t_end; t += config_.sample_interval_sec) {
    const time::JulianDate jd = time::JulianDate::from_unix_seconds(t);
    const geo::LookAngles look =
        catalog_.look_at(catalog_index, terminal.site(), jd);
    if (look.elevation_deg < geometry_.min_elevation_deg) continue;
    path.push_back(
        sky_to_plane({look.azimuth_deg, look.elevation_deg}, geometry_));
  }
  return path;
}

Identification SatelliteIdentifier::identify_isolated(
    const ground::Terminal& terminal, time::SlotIndex slot,
    const obsmap::ObstructionMap& isolated) const {
  Identification out;

  const std::vector<Point2> traj =
      config_.use_largest_component
          ? extract_trajectory(obsmap::largest_component(isolated), geometry_)
          : extract_trajectory(isolated, geometry_);
  out.trajectory_pixels = traj.size();
  if (traj.size() < config_.min_trajectory_pixels) return out;

  // The map does not encode direction of motion: score both traversals.
  std::vector<Point2> reversed(traj.rbegin(), traj.rend());

  const time::JulianDate jd_mid =
      time::JulianDate::from_unix_seconds(grid_.slot_mid(slot));
  const std::vector<constellation::SkyEntry> candidates =
      catalog_.visible_from(terminal.site(), jd_mid, config_.min_elevation_deg);
  out.num_candidates = static_cast<int>(candidates.size());

  for (const constellation::SkyEntry& c : candidates) {
    const std::vector<Point2> path =
        candidate_path(c.catalog_index, terminal, slot);
    if (path.empty()) continue;

    const double d_fwd = dtw_distance_normalized(traj, path, config_.dtw_band);
    const double d_rev =
        dtw_distance_normalized(reversed, path, config_.dtw_band);

    MatchScore s;
    s.catalog_index = c.catalog_index;
    s.norad_id = c.norad_id;
    s.dtw = std::min(d_fwd, d_rev);
    out.ranked.push_back(s);
  }

  std::sort(out.ranked.begin(), out.ranked.end(),
            [](const MatchScore& a, const MatchScore& b) {
              return a.dtw < b.dtw;
            });
  if (!out.ranked.empty() && out.ranked.front().dtw < 1e300) {
    out.best = out.ranked.front();
  }
  return out;
}

Identification SatelliteIdentifier::identify(
    const ground::Terminal& terminal, time::SlotIndex slot,
    const obsmap::ObstructionMap& prev_frame,
    const obsmap::ObstructionMap& curr_frame) const {
  // A dish accumulates monotonically between reboots: if the previous frame
  // is NOT a subset of the current one, the dish was reset in between and
  // the current frame holds only the newest trajectory — use it directly
  // instead of an XOR that would resurrect the whole old sky.
  if (!prev_frame.subset_of(curr_frame)) {
    Identification id = identify_isolated(terminal, slot, curr_frame);
    id.reset_detected = true;
    return id;
  }
  return identify_isolated(terminal, slot, curr_frame.exclusive_or(prev_frame));
}

}  // namespace starlab::match
