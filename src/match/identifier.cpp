#include "match/identifier.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "check/contracts.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obsmap/components.hpp"

namespace starlab::match {

namespace {

/// Pre-registered identifier metrics: the DTW candidate loop is the §4 hot
/// path, so every handle is an atomic add behind the process-wide switch.
struct IdentifierMetrics {
  obs::Counter slots, candidates_scored, dtw_evals, abstentions, resets;
  obs::Histogram candidates_per_slot, best_dtw, trajectory_pixels;

  static const IdentifierMetrics& get() {
    static const IdentifierMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      IdentifierMetrics x;
      x.slots = reg.counter("starlab_identifier_slots_total",
                            "Slots the identifier was asked about");
      x.candidates_scored =
          reg.counter("starlab_identifier_candidates_scored_total",
                      "Candidate satellites scored against a trajectory");
      x.dtw_evals = reg.counter(
          "starlab_identifier_dtw_evals_total",
          "DTW distance evaluations (two traversals per candidate)");
      x.abstentions = reg.counter("starlab_identifier_abstentions_total",
                                  "Slots the identifier declined to answer");
      x.resets = reg.counter("starlab_identifier_resets_detected_total",
                             "Frame pairs betraying an unnoticed dish reset");
      x.candidates_per_slot = reg.histogram(
          "starlab_identifier_candidates_per_slot",
          {5.0, 10.0, 20.0, 40.0, 80.0, 160.0},
          "Candidate satellites in the field of view per identified slot");
      x.best_dtw = reg.histogram(
          "starlab_identifier_best_dtw",
          {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0},
          "Winning normalized DTW distance per decided slot");
      x.trajectory_pixels = reg.histogram(
          "starlab_identifier_trajectory_pixels",
          {4.0, 8.0, 16.0, 32.0, 64.0, 128.0},
          "Isolated trajectory size per slot, in pixels");
      return x;
    }();
    return m;
  }
};

}  // namespace

std::vector<Point2> SatelliteIdentifier::candidate_path(
    std::size_t catalog_index, const ground::Terminal& terminal,
    time::SlotIndex slot) const {
  std::vector<Point2> path;
  const double t_begin = grid_.slot_start(slot);
  const double t_end = grid_.slot_end(slot);
  for (double t = t_begin; t < t_end; t += config_.sample_interval_sec) {
    const time::JulianDate jd = time::JulianDate::from_unix_seconds(t);
    const geo::LookAngles look =
        ephemeris_cache_ != nullptr
            ? ephemeris_cache_->look_from(catalog_index, terminal.site(), jd)
            : catalog_.look_at(catalog_index, terminal.site(), jd);
    if (look.elevation() < geometry_.min_elevation) continue;
    path.push_back(sky_to_plane(
        obsmap::SkyPoint::from(look.azimuth(), look.elevation()), geometry_));
  }
  return path;
}

Identification SatelliteIdentifier::identify_isolated(
    const ground::Terminal& terminal, time::SlotIndex slot,
    const obsmap::ObstructionMap& isolated,
    std::span<const constellation::Catalog::Snapshot> snapshots) const {
  const obs::ObsSpan span("identifier.identify");
  const IdentifierMetrics& metrics = IdentifierMetrics::get();
  metrics.slots.add();
  Identification out;

  std::vector<Point2> traj;
  if (config_.use_largest_component) {
    const std::vector<std::vector<obsmap::Pixel>> components =
        obsmap::connected_components(isolated);
    out.num_components = components.size();
    if (!components.empty()) {
      obsmap::ObstructionMap dominant;
      for (const obsmap::Pixel& p : components.front()) dominant.set(p);
      traj = extract_trajectory(dominant, geometry_);
    }
    // Two comparable blobs mean two satellites' paths ended up in one
    // isolated frame (stale XOR baseline, mid-window reboot): whichever one
    // we match, the slot attribution would be a guess.
    if (config_.ambiguous_component_ratio > 0.0 && components.size() >= 2 &&
        components[1].size() >= config_.min_trajectory_pixels &&
        static_cast<double>(components[1].size()) >=
            config_.ambiguous_component_ratio *
                static_cast<double>(components[0].size())) {
      out.abstain = AbstainReason::kAmbiguousComponents;
    }
  } else {
    traj = extract_trajectory(isolated, geometry_);
    out.num_components = isolated.popcount() > 0 ? 1 : 0;
  }
  out.trajectory_pixels = traj.size();
  metrics.trajectory_pixels.observe(static_cast<double>(traj.size()));
  if (traj.size() < config_.min_trajectory_pixels) {
    out.abstain = AbstainReason::kStarvedTrajectory;
    metrics.abstentions.add();
    return out;
  }
  if (out.abstained()) {
    metrics.abstentions.add();
    return out;
  }

  // The map does not encode direction of motion: score both traversals.
  std::vector<Point2> reversed(traj.rbegin(), traj.rend());

  const time::JulianDate jd_mid =
      time::JulianDate::from_unix_seconds(grid_.slot_mid(slot));
  // Candidate query: against the caller's whole-catalog snapshots when
  // provided, otherwise one (parallel) propagation here. Both paths produce
  // the same entries visible_from() would.
  const std::vector<constellation::SkyEntry> candidates =
      snapshots.empty()
          ? catalog_.visible_from_snapshots(catalog_.propagate_all(jd_mid),
                                            terminal.site(), jd_mid,
                                            config_.min_elevation)
          : catalog_.visible_from_snapshots(snapshots, terminal.site(), jd_mid,
                                            config_.min_elevation);
  out.num_candidates = static_cast<int>(candidates.size());
  metrics.candidates_per_slot.observe(static_cast<double>(candidates.size()));

  // §4's hot loop: per-candidate path sampling plus two DTW traversals.
  // Scored in parallel into a slot-per-candidate buffer, then assembled in
  // candidate order — bit-identical to the serial loop at any thread count.
  struct ScoredCandidate {
    bool present = false;
    MatchScore score;
  };
  std::vector<ScoredCandidate> scored(candidates.size());
  // The per-candidate path buffer is this loop's output, and the ephemeris
  // cache behind candidate_path locks/inserts/throws by design (see
  // EphemerisCache::position_teme); DTW itself stays allocation-free.
  // starlint:hotpath starlint:allow(hotpath-alloc) starlint:allow(hotpath-lock) starlint:allow(hotpath-throw)
  exec::default_pool().parallel_for(candidates.size(), [&](std::size_t k) {
    const constellation::SkyEntry& c = candidates[k];
    const std::vector<Point2> path =
        candidate_path(c.catalog_index, terminal, slot);
    if (path.empty()) return;

    const double d_fwd = dtw_distance_normalized(traj, path, config_.dtw_band);
    const double d_rev =
        dtw_distance_normalized(reversed, path, config_.dtw_band);

    scored[k].present = true;
    scored[k].score.catalog_index = c.catalog_index;
    scored[k].score.norad_id = c.norad_id;
    scored[k].score.dtw = std::min(d_fwd, d_rev);
  });
  for (const ScoredCandidate& sc : scored) {
    if (sc.present) out.ranked.push_back(sc.score);
  }
  metrics.dtw_evals.add(2 * out.ranked.size());
  metrics.candidates_scored.add(out.ranked.size());

  std::sort(out.ranked.begin(), out.ranked.end(),
            [](const MatchScore& a, const MatchScore& b) {
              return a.dtw < b.dtw;
            });
  STARLAB_INVARIANT(
      out.ranked.empty() || out.ranked.front().dtw >= 0.0,
      "DTW distances must be non-negative after ranking");
  if (out.ranked.empty() || out.ranked.front().dtw >= 1e300) return out;

  const double d_best = out.ranked.front().dtw;
  double margin = 1.0;
  if (out.ranked.size() >= 2 && out.ranked[1].dtw < 1e300 &&
      out.ranked[1].dtw > 0.0) {
    margin = (out.ranked[1].dtw - d_best) / out.ranked[1].dtw;
  }
  const double fit = config_.abstain_max_dtw > 0.0
                         ? std::max(0.0, 1.0 - d_best / config_.abstain_max_dtw)
                         : 1.0;
  out.confidence = margin * fit;
  STARLAB_ENSURE(out.confidence >= 0.0 && out.confidence <= 1.0,
                 "identifier confidence out of [0, 1]: " +
                     std::to_string(out.confidence));

  if (config_.abstain_max_dtw > 0.0 && d_best > config_.abstain_max_dtw) {
    out.abstain = AbstainReason::kHighDistance;
    out.confidence = 0.0;
    metrics.abstentions.add();
    return out;
  }
  if (config_.abstain_margin > 0.0 && margin < config_.abstain_margin) {
    out.abstain = AbstainReason::kLowMargin;
    out.confidence = 0.0;
    metrics.abstentions.add();
    return out;
  }
  out.best = out.ranked.front();
  metrics.best_dtw.observe(d_best);
  return out;
}

namespace {

/// Pixels set in `prev` but missing from `curr` — the evidence that the
/// dish's monotone accumulation was interrupted. Word-wise: pixels are
/// 0x00/0x01 bytes, so `prev & ~curr` has exactly one bit per lost pixel.
int pixels_lost(const obsmap::ObstructionMap& prev,
                const obsmap::ObstructionMap& curr) {
  int lost = 0;
  for (std::size_t i = 0; i < obsmap::ObstructionMap::kNumWords; ++i) {
    lost += std::popcount(prev.word(i) & ~curr.word(i));
  }
  return lost;
}

}  // namespace

Identification SatelliteIdentifier::identify(
    const ground::Terminal& terminal, time::SlotIndex slot,
    const obsmap::ObstructionMap& prev_frame,
    const obsmap::ObstructionMap& curr_frame,
    std::span<const constellation::Catalog::Snapshot> snapshots) const {
  // A dish accumulates monotonically between reboots: if the previous frame
  // is NOT a subset of the current one, the dish was reset in between and
  // the current frame holds only the newest trajectory — use it directly
  // instead of an XOR that would resurrect the whole old sky. A few lost
  // pixels are tolerated (transport bit flips, see reset_pixel_tolerance):
  // they end up as stray XOR pixels that the largest-component filter
  // already discards, while treating them as a reboot would wrongly match
  // against the whole accumulated sky.
  const bool reset = config_.reset_pixel_tolerance > 0
                         ? pixels_lost(prev_frame, curr_frame) >
                               config_.reset_pixel_tolerance
                         : !prev_frame.subset_of(curr_frame);
  if (reset) {
    Identification id = identify_isolated(terminal, slot, curr_frame, snapshots);
    id.reset_detected = true;
    IdentifierMetrics::get().resets.add();
    return id;
  }
  return identify_isolated(terminal, slot, curr_frame.exclusive_or(prev_frame),
                           snapshots);
}

}  // namespace starlab::match
