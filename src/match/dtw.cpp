#include "match/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "check/contracts.hpp"
#include "check/hotpath.hpp"

namespace starlab::match {

namespace {

constexpr double kInf = 1e300;

/// The two DP rows, reused across calls. DTW scoring runs once per
/// (observed window, candidate satellite) pair inside the matching loop, so
/// a fresh pair of vectors per call dominated the small-window cost; the
/// rows only ever grow to the longest trajectory seen on this thread.
struct DtwScratch {
  std::vector<double> prev;
  std::vector<double> curr;
};

}  // namespace

STARLAB_HOTPATH double local_cost(const Point2& a, const Point2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

STARLAB_HOTPATH double dtw_distance(std::span<const Point2> a,
                                    std::span<const Point2> b, int band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return kInf;

  // Rolling two-row dynamic program over the (n+1) x (m+1) grid.
  thread_local DtwScratch scratch;
  if (scratch.prev.size() < m + 1) {
    scratch.prev.resize(m + 1);  // starlint:allow(hotpath-alloc) amortized
    scratch.curr.resize(m + 1);  // starlint:allow(hotpath-alloc) amortized
  }
  std::vector<double>& prev = scratch.prev;
  std::vector<double>& curr = scratch.curr;
  std::fill(prev.begin(), prev.begin() + static_cast<std::ptrdiff_t>(m + 1),
            kInf);
  prev[0] = 0.0;

  const double slope = static_cast<double>(m) / static_cast<double>(n);

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(),
              curr.begin() + static_cast<std::ptrdiff_t>(m + 1), kInf);

    std::size_t j_lo = 1, j_hi = m;
    if (band >= 0) {
      // Sakoe-Chiba window around the slope-normalized diagonal.
      const double center = static_cast<double>(i) * slope;
      j_lo = static_cast<std::size_t>(
          std::max(1.0, std::ceil(center - band)));
      j_hi = static_cast<std::size_t>(
          std::min(static_cast<double>(m), std::floor(center + band)));
      if (j_lo > j_hi) return kInf;  // infeasible band
    }

    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = local_cost(a[i - 1], b[j - 1]);
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      if (best >= kInf) continue;
      curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  // The warping path only accumulates non-negative local costs, so a
  // feasible alignment can never report a negative distance.
  STARLAB_ENSURE(prev[m] >= 0.0, "negative DTW distance");
  return prev[m];
}

STARLAB_HOTPATH double dtw_distance_normalized(std::span<const Point2> a,
                                               std::span<const Point2> b,
                                               int band) {
  const double d = dtw_distance(a, b, band);
  if (d >= kInf) return d;
  return d / static_cast<double>(a.size() + b.size());
}

}  // namespace starlab::match
