#include "match/trajectory.hpp"

#include <algorithm>
#include <cmath>

namespace starlab::match {

Point2 sky_to_plane(const obsmap::SkyPoint& sky,
                    const obsmap::MapGeometry& g) {
  // Same polar mapping the map itself uses, kept in continuous coordinates.
  const double r = (g.max_elevation - sky.elevation()) /
                   (g.max_elevation - g.min_elevation) * g.radius_px;
  const double az = sky.azimuth_deg * M_PI / 180.0;
  return {g.center_x + r * std::sin(az), g.center_y - r * std::cos(az)};
}

std::vector<Point2> chain_pixels(const std::vector<obsmap::Pixel>& pixels) {
  std::vector<Point2> pts;
  pts.reserve(pixels.size());
  for (const obsmap::Pixel& p : pixels) {
    pts.push_back({static_cast<double>(p.x), static_cast<double>(p.y)});
  }
  if (pts.size() <= 2) return pts;

  // Endpoint: the pixel farthest from the blob centroid (an end of the
  // streak, not its middle).
  Point2 centroid{0.0, 0.0};
  for (const Point2& p : pts) {
    centroid.x += p.x;
    centroid.y += p.y;
  }
  centroid.x /= static_cast<double>(pts.size());
  centroid.y /= static_cast<double>(pts.size());

  std::size_t start = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d = local_cost(pts[i], centroid);
    if (d > best) {
      best = d;
      start = i;
    }
  }

  // Greedy nearest-neighbour chain.
  std::vector<Point2> ordered;
  ordered.reserve(pts.size());
  std::vector<bool> used(pts.size(), false);
  std::size_t current = start;
  used[current] = true;
  ordered.push_back(pts[current]);
  for (std::size_t step = 1; step < pts.size(); ++step) {
    double nearest = 1e300;
    std::size_t next = pts.size();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (used[i]) continue;
      const double d = local_cost(pts[current], pts[i]);
      if (d < nearest) {
        nearest = d;
        next = i;
      }
    }
    if (next == pts.size()) break;
    used[next] = true;
    ordered.push_back(pts[next]);
    current = next;
  }
  return ordered;
}

std::vector<Point2> extract_trajectory(const obsmap::ObstructionMap& isolated,
                                       const obsmap::MapGeometry& geometry) {
  std::vector<obsmap::Pixel> inside;
  for (const obsmap::Pixel& p : isolated.set_pixels()) {
    if (geometry.sky_of(p).has_value()) inside.push_back(p);
  }
  return chain_pixels(inside);
}

std::vector<obsmap::SkyPoint> extract_sky_points(
    const obsmap::ObstructionMap& isolated,
    const obsmap::MapGeometry& geometry) {
  std::vector<obsmap::SkyPoint> out;
  for (const obsmap::Pixel& p : isolated.set_pixels()) {
    if (const auto sky = geometry.sky_of(p)) out.push_back(*sky);
  }
  return out;
}

}  // namespace starlab::match
