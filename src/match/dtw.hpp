#pragma once

// Dynamic Time Warping between planar point sequences.
//
// The paper matches an isolated obstruction-map trajectory against the
// TLE-propagated paths of every candidate satellite by DTW distance, after
// converting both from polar (AOE/azimuth) to Cartesian coordinates. The
// full O(n*m) dynamic program is implemented along with the Sakoe-Chiba
// banded variant for the performance-sensitive sweeps.

#include <span>
#include <vector>

namespace starlab::match {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Squared-Euclidean local cost (monotone in Euclidean; cheaper, same argmin).
[[nodiscard]] double local_cost(const Point2& a, const Point2& b);

/// DTW distance with the standard step pattern (match/insert/delete).
/// `band` restricts |i - j| to a Sakoe-Chiba window of that half-width
/// (after slope normalization for unequal lengths); band < 0 means
/// unconstrained. Returns +inf-like 1e300 for empty inputs or an infeasible
/// band.
[[nodiscard]] double dtw_distance(std::span<const Point2> a,
                                  std::span<const Point2> b, int band = -1);

/// DTW distance normalized by the warping-path length (so trajectories of
/// different sample counts compare fairly).
[[nodiscard]] double dtw_distance_normalized(std::span<const Point2> a,
                                             std::span<const Point2> b,
                                             int band = -1);

}  // namespace starlab::match
