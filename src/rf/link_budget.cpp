#include "rf/link_budget.hpp"

#include <cmath>

namespace starlab::rf {

LinkParams ku_user_downlink() { return LinkParams{}; }

double fspl_db(geo::Km range, double frequency_ghz) {
  // FSPL(dB) = 20 log10(d_km) + 20 log10(f_GHz) + 92.45.
  return 20.0 * std::log10(range.value()) + 20.0 * std::log10(frequency_ghz) +
         92.45;
}

double received_power_dbw(const LinkParams& link, geo::Km range) {
  return link.eirp_dbw + link.rx_gain_dbi -
         fspl_db(range, link.frequency_ghz) - link.misc_losses_db;
}

double cn_db(const LinkParams& link, geo::Km range) {
  // Noise power N = k T B.
  const double noise_dbw = kBoltzmannDbw + 10.0 * std::log10(link.noise_temp_k) +
                           10.0 * std::log10(link.bandwidth_mhz * 1e6);
  return received_power_dbw(link, range) - noise_dbw;
}

double shannon_capacity_mbps(const LinkParams& link, geo::Km range,
                             double efficiency) {
  const double snr_linear = std::pow(10.0, cn_db(link, range) / 10.0);
  const double bits_per_hz = std::log2(1.0 + snr_linear);
  return efficiency * bits_per_hz * link.bandwidth_mhz;
}

double required_eirp_dbw(const LinkParams& link, geo::Km range,
                         double target_cn_db) {
  const double achieved = cn_db(link, range);
  return link.eirp_dbw + (target_cn_db - achieved);
}

}  // namespace starlab::rf
