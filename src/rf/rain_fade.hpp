#pragma once

// Rain attenuation for Ku-band slant paths (simplified ITU-R P.838/P.618).
//
// Rain is the dominant weather impairment at 12 GHz and degrades low-
// elevation links disproportionately (longer path through the rain layer) —
// reinforcing the scheduler's high-AOE preference during weather. The model
// here is the standard power-law specific attenuation gamma = k * R^alpha
// integrated over an elevation-dependent effective path length.

#include "geo/units.hpp"

namespace starlab::rf {

struct RainModel {
  /// Power-law coefficients at the carrier frequency (defaults: 12 GHz,
  /// horizontal polarization, ITU-R P.838-3).
  double k = 0.02386;
  double alpha = 1.1825;
  /// Mean rain-layer height above the ground station.
  geo::Km rain_height{3.0};
  /// Horizontal-path reduction factor (accounts for rain-cell size).
  double path_reduction = 0.9;
};

/// Specific attenuation [dB/km] at rain rate R [mm/h].
[[nodiscard]] double specific_attenuation(double rain_rate_mm_h,
                                          const RainModel& model = {});

/// Effective slant-path length through the rain layer at the given
/// elevation. Clamped below 5 deg elevation to avoid the flat-earth
/// singularity (the hardware never operates below 25 deg anyway).
[[nodiscard]] geo::Km effective_path(geo::Deg elevation,
                                     const RainModel& model = {});

/// Total rain attenuation [dB] on a slant path.
[[nodiscard]] double rain_attenuation_db(double rain_rate_mm_h,
                                         geo::Deg elevation,
                                         const RainModel& model = {});

}  // namespace starlab::rf
