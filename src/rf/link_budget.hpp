#pragma once

// Ku-band link-budget model.
//
// The paper's §5 rationales lean on RF physics: "RF power decreases
// inversely with distance, so satellites farther away need significantly
// more power" (why high-AOE birds are preferred, and why *dark* ones are
// only used near zenith). This module makes that argument quantitative —
// free-space path loss, received SNR and Shannon-bounded capacity as a
// function of slant range — and feeds the throughput model.

#include "geo/units.hpp"

namespace starlab::rf {

/// Boltzmann constant [dBW/K/Hz].
inline constexpr double kBoltzmannDbw = -228.6;

/// One direction of a radio link.
struct LinkParams {
  double eirp_dbw = 36.0;        ///< transmit EIRP
  double rx_gain_dbi = 33.0;     ///< receive antenna gain
  double frequency_ghz = 12.0;   ///< carrier (Ku-band user downlink)
  double bandwidth_mhz = 240.0;  ///< channel bandwidth
  double noise_temp_k = 290.0;   ///< receiver system noise temperature
  double misc_losses_db = 2.0;   ///< pointing, polarization, atmosphere
};

/// Starlink-like Ku user downlink (satellite -> dish).
[[nodiscard]] LinkParams ku_user_downlink();

/// Free-space path loss [dB] for a slant range and carrier frequency.
[[nodiscard]] double fspl_db(geo::Km range, double frequency_ghz);

/// Received carrier power [dBW] at the given slant range.
[[nodiscard]] double received_power_dbw(const LinkParams& link,
                                        geo::Km range);

/// Carrier-to-noise ratio [dB] at the given slant range.
[[nodiscard]] double cn_db(const LinkParams& link, geo::Km range);

/// Shannon-bounded link capacity [Mbit/s] at the given slant range, scaled
/// by an implementation efficiency in (0, 1].
[[nodiscard]] double shannon_capacity_mbps(const LinkParams& link,
                                           geo::Km range,
                                           double efficiency = 0.65);

/// Transmit power [dBW] needed to hold a target C/N at the given range —
/// the energy cost the scheduler's dark-satellite logic trades against.
[[nodiscard]] double required_eirp_dbw(const LinkParams& link, geo::Km range,
                                       double target_cn_db);

}  // namespace starlab::rf
