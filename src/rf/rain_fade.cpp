#include "rf/rain_fade.hpp"

#include <algorithm>
#include <cmath>

#include "geo/angles.hpp"

namespace starlab::rf {

double specific_attenuation(double rain_rate_mm_h, const RainModel& model) {
  if (rain_rate_mm_h <= 0.0) return 0.0;
  return model.k * std::pow(rain_rate_mm_h, model.alpha);
}

geo::Km effective_path(geo::Deg elevation, const RainModel& model) {
  const geo::Deg el = std::max(elevation, geo::Deg(5.0));
  return model.rain_height / std::sin(geo::to_rad(el).value()) *
         model.path_reduction;
}

double rain_attenuation_db(double rain_rate_mm_h, geo::Deg elevation,
                           const RainModel& model) {
  return specific_attenuation(rain_rate_mm_h, model) *
         effective_path(elevation, model).value();
}

}  // namespace starlab::rf
