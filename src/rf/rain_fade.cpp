#include "rf/rain_fade.hpp"

#include <algorithm>
#include <cmath>

#include "geo/angles.hpp"

namespace starlab::rf {

double specific_attenuation_db_per_km(double rain_rate_mm_h,
                                      const RainModel& model) {
  if (rain_rate_mm_h <= 0.0) return 0.0;
  return model.k * std::pow(rain_rate_mm_h, model.alpha);
}

double effective_path_km(double elevation_deg, const RainModel& model) {
  const double el = std::max(elevation_deg, 5.0);
  return model.rain_height_km / std::sin(geo::deg_to_rad(el)) *
         model.path_reduction;
}

double rain_attenuation_db(double rain_rate_mm_h, double elevation_deg,
                           const RainModel& model) {
  return specific_attenuation_db_per_km(rain_rate_mm_h, model) *
         effective_path_km(elevation_deg, model);
}

}  // namespace starlab::rf
