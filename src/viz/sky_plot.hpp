#pragma once

// Terminal-centric sky plots: an ASCII polar rendering of the field of view
// (the same projection as the obstruction maps — north up, azimuth
// clockwise, elevation radial from 90 deg at the centre to a configurable
// rim). Used by the examples to show candidates, picks, the GSO arc and
// obstruction masks at a glance.

#include <string>
#include <vector>

namespace starlab::viz {

/// One marker on the sky plot.
struct SkyMark {
  double azimuth_deg = 0.0;
  double elevation_deg = 0.0;
  char symbol = '*';
};

struct SkyPlotConfig {
  int radius_chars = 20;        ///< plot radius in character cells
  double rim_elevation_deg = 25.0;  ///< elevation at the rim (hardware FoV)
  bool compass_labels = true;   ///< print N/E/S/W at the rim
};

/// Render marks onto a polar sky plot. Later marks overwrite earlier ones on
/// collisions (so draw the important ones last). Marks below the rim
/// elevation are dropped.
[[nodiscard]] std::string render_sky(const std::vector<SkyMark>& marks,
                                     const SkyPlotConfig& config = {});

}  // namespace starlab::viz
