#include "viz/sky_plot.hpp"

#include <cmath>

#include "geo/angles.hpp"

namespace starlab::viz {

std::string render_sky(const std::vector<SkyMark>& marks,
                       const SkyPlotConfig& config) {
  const int r = config.radius_chars;
  const int height = 2 * r + 1;
  // Terminal cells are ~2x taller than wide: double the horizontal scale so
  // the plot renders round.
  const int width = 4 * r + 1;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  const double cx = 2.0 * r;
  const double cy = r;

  // Rim circle.
  for (double az = 0.0; az < 360.0; az += 2.0) {
    const double a = geo::deg_to_rad(az);
    const int x = static_cast<int>(std::lround(cx + 2.0 * r * std::sin(a)));
    const int y = static_cast<int>(std::lround(cy - r * std::cos(a)));
    if (y >= 0 && y < height && x >= 0 && x < width) {
      grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = '.';
    }
  }

  // Marks.
  const double span = 90.0 - config.rim_elevation_deg;
  for (const SkyMark& m : marks) {
    if (m.elevation_deg < config.rim_elevation_deg) continue;
    const double rho = (90.0 - m.elevation_deg) / span;  // 0 centre, 1 rim
    const double a = geo::deg_to_rad(m.azimuth_deg);
    const int x = static_cast<int>(std::lround(cx + 2.0 * r * rho * std::sin(a)));
    const int y = static_cast<int>(std::lround(cy - r * rho * std::cos(a)));
    if (y >= 0 && y < height && x >= 0 && x < width) {
      grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = m.symbol;
    }
  }

  if (config.compass_labels) {
    grid[0][static_cast<std::size_t>(cx)] = 'N';
    grid[static_cast<std::size_t>(height - 1)][static_cast<std::size_t>(cx)] = 'S';
    grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(width - 1)] = 'E';
    grid[static_cast<std::size_t>(cy)][0] = 'W';
  }

  std::string out;
  for (const std::string& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace starlab::viz
