#include "viz/world_map.hpp"

#include <algorithm>
#include <cmath>

#include "geo/angles.hpp"

namespace starlab::viz {

WorldMap::WorldMap(int width, int height)
    : width_(width),
      height_(height),
      grid_(static_cast<std::size_t>(height),
            std::string(static_cast<std::size_t>(width), ' ')) {
  // Faint equator and prime-meridian rules for orientation.
  const int eq = height_ / 2;
  for (int x = 0; x < width_; ++x) {
    grid_[static_cast<std::size_t>(eq)][static_cast<std::size_t>(x)] = '-';
  }
  const int pm = width_ / 2;
  for (int y = 0; y < height_; ++y) {
    char& c = grid_[static_cast<std::size_t>(y)][static_cast<std::size_t>(pm)];
    c = (y == eq) ? '+' : '|';
  }
}

void WorldMap::plot(geo::Deg latitude, geo::Deg longitude, char symbol) {
  const double lon = geo::wrap_180(longitude.value());
  const double lat = std::clamp(latitude.value(), -90.0, 90.0);
  int col = static_cast<int>((lon + 180.0) / 360.0 * width_);
  int row = static_cast<int>((90.0 - lat) / 180.0 * height_);
  col = std::clamp(col, 0, width_ - 1);
  row = std::clamp(row, 0, height_ - 1);
  grid_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = symbol;
}

void WorldMap::plot_all(const std::vector<MapMark>& marks) {
  for (const MapMark& m : marks) plot(m.latitude, m.longitude, m.symbol);
}

std::string WorldMap::render() const {
  std::string out = "+" + std::string(static_cast<std::size_t>(width_), '-') + "+\n";
  for (const std::string& row : grid_) {
    out += "|" + row + "|\n";
  }
  out += "+" + std::string(static_cast<std::size_t>(width_), '-') + "+\n";
  return out;
}

}  // namespace starlab::viz
