#pragma once

// Equirectangular ASCII world canvas for ground tracks, gateway networks and
// terminal fleets. No basemap — just a lat/lon grid with plotted markers —
// which is enough to eyeball constellation coverage and gateway placement.

#include <string>
#include <vector>

#include "geo/units.hpp"

namespace starlab::viz {

struct MapMark {
  geo::Deg latitude;
  geo::Deg longitude;
  char symbol = '*';
};

class WorldMap {
 public:
  /// `width` columns cover longitude [-180, 180); `height` rows cover
  /// latitude [+90, -90] top-down.
  explicit WorldMap(int width = 90, int height = 30);

  void plot(geo::Deg latitude, geo::Deg longitude, char symbol);
  void plot_all(const std::vector<MapMark>& marks);

  /// Render with a simple frame and equator/meridian rules.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  /// Character at a cell (row 0 == +90 lat edge); for tests.
  [[nodiscard]] char at(int row, int col) const {
    return grid_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
  }

 private:
  int width_;
  int height_;
  std::vector<std::string> grid_;
};

}  // namespace starlab::viz
