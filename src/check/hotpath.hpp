#pragma once

// STARLAB_HOTPATH — a zero-cost annotation for functions on the 15-second
// scheduling loop's hot paths (SGP4 propagation, DTW scoring, ephemeris
// cache lookups, obstruction-map scans, parallel_for bodies).
//
// The macro expands to nothing: it exists for starlint's whole-program
// call-graph pass (tools/starlint/callgraph.cpp), which requires every
// annotated function to be transitively free of allocation, mutex
// acquisition, throw, and stream/file I/O — modulo the explicit allowlist
// in tools/starlint/hotpath.toml and per-line starlint:allow(...)
// suppressions with a justification comment.
//
// Usage:
//   STARLAB_HOTPATH PropagateStatus propagate_common(...) noexcept { ... }
//
// Lambdas cannot carry a macro in their head; mark them with a trailing
// comment on the line opening the body (or the line above):
//   pool.parallel_for(n, [&](std::size_t i) {  // starlint:hotpath
//
// Like src/check/thread_annotations.hpp this header is layer-neutral (an
// interface header in tools/starlint/layers.toml): any subsystem may
// include it without creating a dependency edge on check.

#define STARLAB_HOTPATH
