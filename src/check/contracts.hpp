#pragma once

// Runtime contracts for the paper's invariants.
//
// The inference chain (TLE -> SGP4 -> look angles -> DTW -> scheduler model)
// is long enough that a violated assumption in one stage surfaces as a
// subtly wrong figure three stages later. These macros state the assumptions
// at module boundaries so they fail *where* they break:
//
//   STARLAB_EXPECT(cond, detail)    — precondition on inputs
//   STARLAB_ENSURE(cond, detail)    — postcondition on outputs
//   STARLAB_INVARIANT(cond, detail) — relation that must hold mid-flight
//
// `detail` is any expression convertible to std::string; it is evaluated
// only when the condition fails, so checks cost one branch on the happy
// path. Configure with -DSTARLAB_CHECKS=OFF to compile every check out
// entirely (the expression is still type-checked, never evaluated) — the
// release build is then bit-identical to one that never had them.
//
// What happens on a violation is a process-wide mode (default abort, or the
// STARLAB_CHECK_MODE environment variable at first use):
//   kAbort — message to stderr, std::abort(). A violated contract is a bug.
//   kThrow — throw check::ContractViolation (tests assert on violations;
//            services that prefer unwinding over dying pick this).
//   kLog   — message to stderr, increment the `check_violations_total` obs
//            counter (when metrics are live), and continue degraded.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace starlab::check {

enum class Mode {
  kAbort = 0,
  kThrow,
  kLog,
};

/// Current violation-handling mode. First call reads STARLAB_CHECK_MODE
/// ("abort", "throw", "log"); unset or unknown keeps kAbort.
[[nodiscard]] Mode mode();

/// Override the mode (tests; long-running services choosing kLog).
void set_mode(Mode m);

/// Thrown by failing checks in kThrow mode.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Violations observed so far in kLog mode (process-wide).
[[nodiscard]] std::uint64_t violation_count();

/// Failure funnel behind the macros. Returns only in kLog mode.
void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& detail);

}  // namespace starlab::check

#if defined(STARLAB_CHECKS) && STARLAB_CHECKS
#define STARLAB_CHECK_IMPL_(kind, cond, detail)                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::starlab::check::fail(kind, #cond, __FILE__, __LINE__, (detail));     \
    }                                                                        \
  } while (false)
#else
// Compiled out: the condition stays type-checked (sizeof is unevaluated) so
// an OFF build cannot rot, but nothing runs and no code is emitted.
#define STARLAB_CHECK_IMPL_(kind, cond, detail) \
  do {                                          \
    if (false) {                                \
      (void)sizeof((cond) ? 1 : 0);             \
    }                                           \
  } while (false)
#endif

#define STARLAB_EXPECT(cond, detail) STARLAB_CHECK_IMPL_("EXPECT", cond, detail)
#define STARLAB_ENSURE(cond, detail) STARLAB_CHECK_IMPL_("ENSURE", cond, detail)
#define STARLAB_INVARIANT(cond, detail) \
  STARLAB_CHECK_IMPL_("INVARIANT", cond, detail)
