#pragma once

// Clang Thread Safety Analysis annotations + the annotated lock vocabulary
// the concurrency layer uses (ThreadPool, metrics registry, trace sinks,
// EphemerisCache shards, forest OOB merge, Supervisor, campaign journal).
//
// Under clang, GUARDED_BY/REQUIRES/EXCLUDES/... expand to the attributes
// behind -Wthread-safety, turning "which mutex guards this field" from a
// comment into a compile-time property: touching a GUARDED_BY(mu) member
// without holding mu is a build error in the CI thread-safety job
// (-Wthread-safety -Werror). Under every other compiler the macros expand
// to nothing and the wrapper types below degrade to the plain std
// primitives they wrap — zero overhead, zero behavior change.
//
// Layer-neutral on purpose (like io/parse_report.hpp): every subsystem may
// include this without creating a dependency edge; it pulls in nothing but
// the standard library. Declared as an interface header in
// tools/starlint/layers.toml.
//
// Conventions (enforced by review + the thread-safety CI job):
//   * a mutex-guarded field is declared `T field GUARDED_BY(mu);`
//   * mutexes in annotated classes are `check::Mutex`, locked via the
//     scoped `check::MutexLock` (never a bare lock()/unlock() pair);
//   * condition waits go through `check::CondVar::wait(mu)` inside a
//     while-loop re-checking the guarded predicate;
//   * public methods that take an internal lock are annotated
//     EXCLUDES(mu) so re-entrant self-deadlock is a compile error.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define STARLAB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef STARLAB_THREAD_ANNOTATION
#define STARLAB_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) STARLAB_THREAD_ANNOTATION(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY STARLAB_THREAD_ANNOTATION(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) STARLAB_THREAD_ANNOTATION(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) STARLAB_THREAD_ANNOTATION(pt_guarded_by(x))
#endif
#ifndef REQUIRES
#define REQUIRES(...) \
  STARLAB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) STARLAB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) \
  STARLAB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) \
  STARLAB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  STARLAB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) STARLAB_THREAD_ANNOTATION(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) STARLAB_THREAD_ANNOTATION(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  STARLAB_THREAD_ANNOTATION(no_thread_safety_analysis)
#endif

namespace starlab::check {

/// std::mutex with the `capability` attribute the analysis tracks. Lock it
/// through MutexLock; `native()` exists only for CondVar's adopt-lock wait.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for interop that stays invisible to the analysis
  /// (CondVar re-acquires through it while the capability is formally held).
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex — the std::lock_guard of the annotated world.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable for Mutex. wait() requires the capability: the real
/// unlock/relock happens on the native handle via adopt_lock, so to the
/// analysis the caller holds `mu` across the wait — exactly the guarantee
/// the guarded predicate re-check relies on. Standard spurious-wakeup
/// discipline applies: always wait inside `while (!predicate)`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the capability
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace starlab::check
