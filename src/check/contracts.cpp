#include "check/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"

namespace starlab::check {

namespace {

std::atomic<Mode> g_mode{Mode::kAbort};
std::atomic<std::uint64_t> g_violations{0};
std::once_flag g_env_once;

void init_mode_from_env() {
  const char* env = std::getenv("STARLAB_CHECK_MODE");
  if (env == nullptr) return;
  if (std::strcmp(env, "throw") == 0) {
    g_mode.store(Mode::kThrow, std::memory_order_relaxed);
  } else if (std::strcmp(env, "log") == 0) {
    g_mode.store(Mode::kLog, std::memory_order_relaxed);
  } else if (std::strcmp(env, "abort") == 0) {
    g_mode.store(Mode::kAbort, std::memory_order_relaxed);
  }
  // Unknown values keep the abort default: a contract violation is a bug,
  // and a typo in an env var should not soften that.
}

std::string compose(const char* kind, const char* expr, const char* file,
                    int line, const std::string& detail) {
  std::ostringstream out;
  out << "STARLAB_" << kind << " failed at " << file << ':' << line << ": "
      << expr;
  if (!detail.empty()) out << " — " << detail;
  return out.str();
}

}  // namespace

Mode mode() {
  std::call_once(g_env_once, init_mode_from_env);
  return g_mode.load(std::memory_order_relaxed);
}

void set_mode(Mode m) {
  std::call_once(g_env_once, init_mode_from_env);  // env never overrides later
  g_mode.store(m, std::memory_order_relaxed);
}

std::uint64_t violation_count() {
  return g_violations.load(std::memory_order_relaxed);
}

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& detail) {
  const std::string message = compose(kind, expr, file, line, detail);
  switch (mode()) {
    case Mode::kThrow:
      throw ContractViolation(message);
    case Mode::kLog: {
      g_violations.fetch_add(1, std::memory_order_relaxed);
      static const obs::Counter counter = obs::MetricsRegistry::instance().counter(
          "check_violations_total",
          "contract violations observed in log mode");
      counter.add();
      std::fprintf(stderr, "%s\n", message.c_str());
      return;
    }
    case Mode::kAbort:
      break;
  }
  std::fprintf(stderr, "%s\n", message.c_str());
  std::abort();
}

}  // namespace starlab::check
