#include "geo/frames.hpp"

#include <cmath>

#include "time/gmst.hpp"

namespace starlab::geo {

Vec3 rotate_z(const Vec3& v, double angle_rad) {
  const double c = std::cos(angle_rad);
  const double s = std::sin(angle_rad);
  return {c * v.x - s * v.y, s * v.x + c * v.y, v.z};
}

EcefKm teme_to_ecef(const TemeKm& teme_km,
                    const starlab::time::JulianDate& jd_utc) {
  // ECEF = Rz(-gmst) * TEME: the Earth-fixed frame rotates eastward by gmst
  // relative to the inertial frame.
  return EcefKm(rotate_z(teme_km.raw(), -starlab::time::gmst_radians(jd_utc)));
}

TemeToEcefRotation teme_to_ecef_rotation(
    const starlab::time::JulianDate& jd_utc) {
  const double angle = -starlab::time::gmst_radians(jd_utc);
  return {std::cos(angle), std::sin(angle)};
}

TemeKm ecef_to_teme(const EcefKm& ecef_km,
                    const starlab::time::JulianDate& jd_utc) {
  return TemeKm(rotate_z(ecef_km.raw(), starlab::time::gmst_radians(jd_utc)));
}

}  // namespace starlab::geo
