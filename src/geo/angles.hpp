#pragma once

// Angle helpers shared across the library. All public starlab APIs take and
// return degrees (matching the paper's figures); internal math uses radians.

#include <cmath>
#include <numbers>

namespace starlab::geo {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;
inline constexpr double kDegPerRad = 180.0 / std::numbers::pi;
inline constexpr double kRadPerDeg = std::numbers::pi / 180.0;

[[nodiscard]] constexpr double deg_to_rad(double deg) { return deg * kRadPerDeg; }
[[nodiscard]] constexpr double rad_to_deg(double rad) { return rad * kDegPerRad; }

/// Wrap an angle in radians to [0, 2*pi).
[[nodiscard]] inline double wrap_two_pi(double rad) {
  double w = std::fmod(rad, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

/// Wrap an angle in degrees to [0, 360).
[[nodiscard]] inline double wrap_360(double deg) {
  double w = std::fmod(deg, 360.0);
  if (w < 0.0) w += 360.0;
  // A negative epsilon rounds to exactly 360.0 in the addition above; the
  // half-open interval makes that the same direction as 0.
  if (w >= 360.0) w = 0.0;
  return w;
}

/// Wrap an angle in degrees to (-180, 180].
[[nodiscard]] inline double wrap_180(double deg) {
  double w = wrap_360(deg);
  if (w > 180.0) w -= 360.0;
  return w;
}

/// Smallest absolute difference between two angles in degrees, in [0, 180].
[[nodiscard]] inline double angular_difference_deg(double a, double b) {
  return std::fabs(wrap_180(a - b));
}

}  // namespace starlab::geo
