#pragma once

// Strong unit types for the quantities the pipeline confuses most easily:
// degrees vs radians and kilometres vs everything else. Each wrapper is a
// single double with an *explicit* constructor, so passing radians where
// degrees are expected — the silent catastrophe in a TLE -> SGP4 -> look
// angle -> DTW chain — is a compile error instead of a corrupted Fig 3.
//
// Conventions (see docs/STATIC_ANALYSIS.md):
//   * Public APIs on the high-risk call chains take/return Deg, Rad, Km,
//     TemeKm or EcefKm (frame_vec.hpp). Plain-data structs may keep raw
//     `double *_deg` fields for serialization compatibility, but expose
//     typed accessors (e.g. LookAngles::azimuth()).
//   * Conversions are explicit and constexpr: to_rad(Deg), to_deg(Rad).
//   * scripts/lint.sh bans *new* raw `double *_deg/_rad/_km` declarations
//     outside src/geo/ (existing ones are baselined).
//
// All wrappers are zero-overhead: no virtuals, no invariants enforced at
// construction, layout-identical to double.

#include "geo/angles.hpp"

namespace starlab::geo {

/// One physical quantity: a double tagged with its unit. Arithmetic stays
/// within the unit; scaling by a dimensionless factor is allowed; the ratio
/// of two like quantities is dimensionless.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  explicit constexpr Quantity(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  [[nodiscard]] friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.v_ + b.v_);
  }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.v_ - b.v_);
  }
  [[nodiscard]] constexpr Quantity operator-() const { return Quantity(-v_); }
  [[nodiscard]] friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.v_ * s);
  }
  [[nodiscard]] friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.v_);
  }
  [[nodiscard]] friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.v_ / s);
  }
  /// Ratio of two like quantities (dimensionless).
  [[nodiscard]] friend constexpr double operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }

  [[nodiscard]] friend constexpr auto operator<=>(Quantity a, Quantity b) {
    return a.v_ <=> b.v_;
  }
  [[nodiscard]] friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.v_ == b.v_;
  }

 private:
  double v_ = 0.0;
};

struct DegTag {};
struct RadTag {};
struct KmTag {};

/// An angle in degrees (the paper's public-facing unit).
using Deg = Quantity<DegTag>;
/// An angle in radians (internal trigonometry).
using Rad = Quantity<RadTag>;
/// A distance in kilometres (the library-wide length unit).
using Km = Quantity<KmTag>;

[[nodiscard]] constexpr Rad to_rad(Deg d) { return Rad(d.value() * kRadPerDeg); }
[[nodiscard]] constexpr Deg to_deg(Rad r) { return Deg(r.value() * kDegPerRad); }

/// Typed overloads of the raw-double angle helpers in angles.hpp.
[[nodiscard]] inline Deg wrap_360(Deg d) { return Deg(wrap_360(d.value())); }
[[nodiscard]] inline Deg wrap_180(Deg d) { return Deg(wrap_180(d.value())); }
[[nodiscard]] inline Rad wrap_two_pi(Rad r) { return Rad(wrap_two_pi(r.value())); }
[[nodiscard]] inline Deg angular_difference(Deg a, Deg b) {
  return Deg(angular_difference_deg(a.value(), b.value()));
}

namespace literals {
[[nodiscard]] constexpr Deg operator""_deg(long double v) {
  return Deg(static_cast<double>(v));
}
[[nodiscard]] constexpr Deg operator""_deg(unsigned long long v) {
  return Deg(static_cast<double>(v));
}
[[nodiscard]] constexpr Rad operator""_rad(long double v) {
  return Rad(static_cast<double>(v));
}
[[nodiscard]] constexpr Rad operator""_rad(unsigned long long v) {
  return Rad(static_cast<double>(v));
}
[[nodiscard]] constexpr Km operator""_km(long double v) {
  return Km(static_cast<double>(v));
}
[[nodiscard]] constexpr Km operator""_km(unsigned long long v) {
  return Km(static_cast<double>(v));
}
}  // namespace literals

}  // namespace starlab::geo
