#pragma once

// Geometry of the geostationary (GSO) arc as seen from a ground location.
//
// 47 CFR § 25.289 obliges NGSO systems to protect GSO networks: a LEO
// satellite must not transmit to/from a terminal while it sits (as seen from
// that terminal) within a protection angle of the GSO arc. The paper (§5.1)
// identifies this rule as the reason Starlink's global scheduler points
// northern-hemisphere terminals high and north. GsoArc evaluates that
// predicate exactly: it samples the visible GSO arc and measures the angular
// separation of a candidate sky position from it.

#include <vector>

#include "geo/geodetic.hpp"
#include "geo/topocentric.hpp"
#include "geo/units.hpp"

namespace starlab::geo {

class GsoArc {
 public:
  /// Precompute the GSO arc in the sky of `site`. The arc is sampled at
  /// `step` of GSO longitude across all longitudes where the arc is above
  /// `min_elevation`.
  explicit GsoArc(const Geodetic& site, Deg step = Deg(0.5),
                  Deg min_elevation = Deg(-5.0));

  /// Smallest angular separation between the sky position (az, el) and the
  /// visible GSO arc. Returns a +inf-like large value (1e9 deg) if no part
  /// of the arc is visible from the site (|latitude| > ~81 deg).
  [[nodiscard]] Deg separation(Deg azimuth, Deg elevation) const;

  /// True if the sky position violates the GSO exclusion zone of
  /// `protection` half-width.
  [[nodiscard]] bool excluded(Deg azimuth, Deg elevation,
                              Deg protection) const {
    return separation(azimuth, elevation) < protection;
  }

  /// The sampled arc (for plotting and tests). Ordered by GSO longitude.
  [[nodiscard]] const std::vector<LookAngles>& samples() const {
    return samples_;
  }

  /// Highest elevation the arc reaches in this sky (the arc's culmination,
  /// due south in the northern hemisphere).
  [[nodiscard]] Deg max_elevation() const { return max_elevation_; }

 private:
  std::vector<LookAngles> samples_;
  Deg max_elevation_{-90.0};
};

}  // namespace starlab::geo
