#pragma once

// Geometry of the geostationary (GSO) arc as seen from a ground location.
//
// 47 CFR § 25.289 obliges NGSO systems to protect GSO networks: a LEO
// satellite must not transmit to/from a terminal while it sits (as seen from
// that terminal) within a protection angle of the GSO arc. The paper (§5.1)
// identifies this rule as the reason Starlink's global scheduler points
// northern-hemisphere terminals high and north. GsoArc evaluates that
// predicate exactly: it samples the visible GSO arc and measures the angular
// separation of a candidate sky position from it.

#include <vector>

#include "geo/geodetic.hpp"
#include "geo/topocentric.hpp"

namespace starlab::geo {

class GsoArc {
 public:
  /// Precompute the GSO arc in the sky of `site`. The arc is sampled at
  /// `step_deg` of GSO longitude across all longitudes where the arc is above
  /// `min_elevation_deg`.
  explicit GsoArc(const Geodetic& site, double step_deg = 0.5,
                  double min_elevation_deg = -5.0);

  /// Smallest angular separation [deg] between the sky position (az, el) and
  /// the visible GSO arc. Returns +inf-like large value (1e9) if no part of
  /// the arc is visible from the site (|latitude| > ~81 deg).
  [[nodiscard]] double separation_deg(double azimuth_deg,
                                      double elevation_deg) const;

  /// True if the sky position violates the GSO exclusion zone of
  /// `protection_deg` half-width.
  [[nodiscard]] bool excluded(double azimuth_deg, double elevation_deg,
                              double protection_deg) const {
    return separation_deg(azimuth_deg, elevation_deg) < protection_deg;
  }

  /// The sampled arc (for plotting and tests). Ordered by GSO longitude.
  [[nodiscard]] const std::vector<LookAngles>& samples() const {
    return samples_;
  }

  /// Highest elevation the arc reaches in this sky (the arc's culmination,
  /// due south in the northern hemisphere).
  [[nodiscard]] double max_elevation_deg() const { return max_elevation_deg_; }

 private:
  std::vector<LookAngles> samples_;
  double max_elevation_deg_ = -90.0;
};

}  // namespace starlab::geo
