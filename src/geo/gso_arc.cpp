#include "geo/gso_arc.hpp"

#include <algorithm>
#include <cmath>

#include "geo/angles.hpp"
#include "geo/wgs.hpp"

namespace starlab::geo {

GsoArc::GsoArc(const Geodetic& site, Deg step, Deg min_elevation) {
  // A geostationary satellite sits on the equatorial plane at radius
  // kGsoRadiusKm; in ECEF it is fixed, so the arc can be sampled once.
  for (double lon = -180.0; lon < 180.0; lon += step.value()) {
    const double lon_rad = deg_to_rad(lon);
    const EcefKm gso_ecef{kGsoRadiusKm * std::cos(lon_rad),
                          kGsoRadiusKm * std::sin(lon_rad), 0.0};
    const LookAngles la = look_angles(site, gso_ecef);
    if (la.elevation() >= min_elevation) {
      samples_.push_back(la);
      max_elevation_ = std::max(max_elevation_, la.elevation());
    }
  }
}

Deg GsoArc::separation(Deg azimuth, Deg elevation) const {
  if (samples_.empty()) return Deg(1e9);
  Deg best(1e9);
  for (const LookAngles& s : samples_) {
    best = std::min(best, sky_separation(azimuth, elevation, s.azimuth(),
                                         s.elevation()));
  }
  return best;
}

}  // namespace starlab::geo
