#include "geo/gso_arc.hpp"

#include <algorithm>
#include <cmath>

#include "geo/angles.hpp"
#include "geo/wgs.hpp"

namespace starlab::geo {

GsoArc::GsoArc(const Geodetic& site, double step_deg,
               double min_elevation_deg) {
  // A geostationary satellite sits on the equatorial plane at radius
  // kGsoRadiusKm; in ECEF it is fixed, so the arc can be sampled once.
  for (double lon = -180.0; lon < 180.0; lon += step_deg) {
    const double lon_rad = deg_to_rad(lon);
    const EcefKm gso_ecef{kGsoRadiusKm * std::cos(lon_rad),
                          kGsoRadiusKm * std::sin(lon_rad), 0.0};
    const LookAngles la = look_angles(site, gso_ecef);
    if (la.elevation_deg >= min_elevation_deg) {
      samples_.push_back(la);
      max_elevation_deg_ = std::max(max_elevation_deg_, la.elevation_deg);
    }
  }
}

double GsoArc::separation_deg(double azimuth_deg, double elevation_deg) const {
  if (samples_.empty()) return 1e9;
  double best = 1e9;
  for (const LookAngles& s : samples_) {
    best = std::min(best, sky_separation_deg(azimuth_deg, elevation_deg,
                                             s.azimuth_deg, s.elevation_deg));
  }
  return best;
}

}  // namespace starlab::geo
