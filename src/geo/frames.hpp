#pragma once

// Reference-frame rotations. SGP4 emits positions in the TEME (True Equator,
// Mean Equinox) inertial frame; ground geometry lives in ECEF. The two are
// related by a rotation about the pole through GMST. Polar motion (< 15 m) is
// neglected — three orders of magnitude below obstruction-map pixel size.

#include "geo/vec3.hpp"
#include "time/julian_date.hpp"

namespace starlab::geo {

/// TEME position [km] -> ECEF position [km] at the given UTC instant.
[[nodiscard]] Vec3 teme_to_ecef(const Vec3& teme_km,
                                const starlab::time::JulianDate& jd_utc);

/// ECEF position [km] -> TEME position [km] at the given UTC instant.
[[nodiscard]] Vec3 ecef_to_teme(const Vec3& ecef_km,
                                const starlab::time::JulianDate& jd_utc);

/// Rotate a vector about the z axis by `angle_rad` (right-handed).
[[nodiscard]] Vec3 rotate_z(const Vec3& v, double angle_rad);

}  // namespace starlab::geo
