#pragma once

// Reference-frame rotations. SGP4 emits positions in the TEME (True Equator,
// Mean Equinox) inertial frame; ground geometry lives in ECEF. The two are
// related by a rotation about the pole through GMST. Polar motion (< 15 m) is
// neglected — three orders of magnitude below obstruction-map pixel size.

#include "geo/frame_vec.hpp"
#include "geo/vec3.hpp"
#include "time/julian_date.hpp"

namespace starlab::geo {

/// TEME position [km] -> ECEF position [km] at the given UTC instant. The
/// tagged signatures are the *only* bridge between the two frames: an ECEF
/// vector cannot reach a TEME consumer (or vice versa) without coming
/// through here, which forces the rotation epoch to be stated.
[[nodiscard]] EcefKm teme_to_ecef(const TemeKm& teme_km,
                                  const starlab::time::JulianDate& jd_utc);

/// The TEME -> ECEF rotation at one UTC instant, precomputed so a batch
/// loop over a whole catalog pays cos/sin of GMST once per instant instead
/// of once per satellite. Applying it is bit-identical to the JulianDate
/// overload: both evaluate cos/sin of the same -gmst angle and the same
/// rotate_z arithmetic.
struct TemeToEcefRotation {
  double cos_gmst = 1.0;  ///< cos(-gmst)
  double sin_gmst = 0.0;  ///< sin(-gmst)

  [[nodiscard]] EcefKm apply(const TemeKm& teme_km) const {
    const Vec3& v = teme_km.raw();
    return EcefKm(Vec3{cos_gmst * v.x - sin_gmst * v.y,
                       sin_gmst * v.x + cos_gmst * v.y, v.z});
  }
};

/// Precompute the TEME -> ECEF rotation for one instant.
[[nodiscard]] TemeToEcefRotation teme_to_ecef_rotation(
    const starlab::time::JulianDate& jd_utc);

/// ECEF position [km] -> TEME position [km] at the given UTC instant.
[[nodiscard]] TemeKm ecef_to_teme(const EcefKm& ecef_km,
                                  const starlab::time::JulianDate& jd_utc);

/// Rotate a vector about the z axis by `angle_rad` (right-handed).
[[nodiscard]] Vec3 rotate_z(const Vec3& v, double angle_rad);

}  // namespace starlab::geo
