#include "geo/topocentric.hpp"

#include <cmath>
#include <string>

#include "check/contracts.hpp"
#include "check/hotpath.hpp"
#include "geo/angles.hpp"

namespace starlab::geo {

namespace {

/// Rotate an ECEF difference vector into the observer's SEZ (south-east-
/// zenith) frame.
Vec3 ecef_to_sez(const Geodetic& obs, const Vec3& d) {
  const double lat = deg_to_rad(obs.latitude_deg);
  const double lon = deg_to_rad(obs.longitude_deg);
  const double sin_lat = std::sin(lat), cos_lat = std::cos(lat);
  const double sin_lon = std::sin(lon), cos_lon = std::cos(lon);

  return {sin_lat * cos_lon * d.x + sin_lat * sin_lon * d.y - cos_lat * d.z,
          -sin_lon * d.x + cos_lon * d.y,
          cos_lat * cos_lon * d.x + cos_lat * sin_lon * d.y + sin_lat * d.z};
}

/// Rotate an SEZ vector back into ECEF axes.
Vec3 sez_to_ecef(const Geodetic& obs, const Vec3& s) {
  const double lat = deg_to_rad(obs.latitude_deg);
  const double lon = deg_to_rad(obs.longitude_deg);
  const double sin_lat = std::sin(lat), cos_lat = std::cos(lat);
  const double sin_lon = std::sin(lon), cos_lon = std::cos(lon);

  return {sin_lat * cos_lon * s.x - sin_lon * s.y + cos_lat * cos_lon * s.z,
          sin_lat * sin_lon * s.x + cos_lon * s.y + cos_lat * sin_lon * s.z,
          -cos_lat * s.x + sin_lat * s.z};
}

}  // namespace

STARLAB_HOTPATH LookAngles look_angles(const Geodetic& observer,
                                       const EcefKm& target_ecef_km) {
  const EcefKm obs_ecef = geodetic_to_ecef(observer);
  const Vec3 sez = ecef_to_sez(observer, (target_ecef_km - obs_ecef).raw());

  LookAngles out;
  out.range_km = sez.norm();
  if (out.range_km <= 0.0) return out;

  out.elevation_deg = rad_to_deg(std::asin(sez.z / out.range_km));
  // Azimuth measured clockwise from north: north == -S axis, east == +E axis.
  out.azimuth_deg = wrap_360(rad_to_deg(std::atan2(sez.y, -sez.x)));

  STARLAB_ENSURE(out.elevation_deg >= -90.0 && out.elevation_deg <= 90.0,
                 "elevation out of [-90, 90]: " +
                     std::to_string(out.elevation_deg));
  STARLAB_ENSURE(out.azimuth_deg >= 0.0 && out.azimuth_deg < 360.0,
                 "azimuth out of [0, 360): " + std::to_string(out.azimuth_deg));
  return out;
}

EcefKm direction_from_look(const Geodetic& observer, Deg azimuth,
                           Deg elevation) {
  const double az = to_rad(azimuth).value();
  const double el = to_rad(elevation).value();
  // SEZ components of a unit vector at (az, el).
  const Vec3 sez{-std::cos(el) * std::cos(az), std::cos(el) * std::sin(az),
                 std::sin(el)};
  return EcefKm(sez_to_ecef(observer, sez));
}

Deg sky_separation(Deg az1_in, Deg el1_in, Deg az2_in, Deg el2_in) {
  const double az1 = to_rad(az1_in).value(), el1 = to_rad(el1_in).value();
  const double az2 = to_rad(az2_in).value(), el2 = to_rad(el2_in).value();
  // Spherical law of cosines on the observer's sky sphere.
  double c = std::sin(el1) * std::sin(el2) +
             std::cos(el1) * std::cos(el2) * std::cos(az1 - az2);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return to_deg(Rad(std::acos(c)));
}

}  // namespace starlab::geo
