#pragma once

// Frame-tagged 3-vectors. SGP4 emits TEME (inertial) positions; ground
// geometry lives in ECEF (Earth-fixed). Handing a TEME vector to an ECEF
// consumer is numerically plausible and silently wrong by up to the full
// rotation of the Earth — the exact bug class that corrupts trajectory
// matching. FrameVec3<TEME> and FrameVec3<ECEF> make that a compile error:
// the only bridges between the two are geo::teme_to_ecef / geo::ecef_to_teme
// (frames.hpp), which demand the time of the rotation.
//
// The wrapper is zero-overhead: a Vec3 by value, all operations constexpr
// passthroughs. Frame-preserving arithmetic (sums, scaling, cross products)
// stays typed; `raw()` is the explicit escape hatch at boundaries that are
// genuinely frame-agnostic (e.g. rotate_z).

#include "geo/units.hpp"
#include "geo/vec3.hpp"

namespace starlab::geo {

/// Frame tag: True Equator, Mean Equinox — SGP4's native inertial frame.
struct TEME {
  static constexpr const char* name = "TEME";
};
/// Frame tag: Earth-centred, Earth-fixed.
struct ECEF {
  static constexpr const char* name = "ECEF";
};

template <class Frame>
class FrameVec3 {
 public:
  constexpr FrameVec3() = default;
  constexpr FrameVec3(double x, double y, double z) : v_{x, y, z} {}
  /// Tagging an untyped vector is an explicit claim about its frame.
  explicit constexpr FrameVec3(const Vec3& v) : v_(v) {}

  [[nodiscard]] constexpr const Vec3& raw() const { return v_; }
  [[nodiscard]] constexpr double x() const { return v_.x; }
  [[nodiscard]] constexpr double y() const { return v_.y; }
  [[nodiscard]] constexpr double z() const { return v_.z; }

  [[nodiscard]] constexpr FrameVec3 operator+(const FrameVec3& o) const {
    return FrameVec3(v_ + o.v_);
  }
  [[nodiscard]] constexpr FrameVec3 operator-(const FrameVec3& o) const {
    return FrameVec3(v_ - o.v_);
  }
  [[nodiscard]] constexpr FrameVec3 operator*(double s) const {
    return FrameVec3(v_ * s);
  }
  [[nodiscard]] constexpr FrameVec3 operator/(double s) const {
    return FrameVec3(v_ / s);
  }
  [[nodiscard]] constexpr FrameVec3 operator-() const { return FrameVec3(-v_); }
  constexpr FrameVec3& operator+=(const FrameVec3& o) {
    v_ += o.v_;
    return *this;
  }
  constexpr FrameVec3& operator-=(const FrameVec3& o) {
    v_ -= o.v_;
    return *this;
  }

  [[nodiscard]] constexpr double dot(const FrameVec3& o) const {
    return v_.dot(o.v_);
  }
  [[nodiscard]] constexpr FrameVec3 cross(const FrameVec3& o) const {
    return FrameVec3(v_.cross(o.v_));
  }
  [[nodiscard]] double norm() const { return v_.norm(); }
  [[nodiscard]] constexpr double norm_sq() const { return v_.norm_sq(); }
  [[nodiscard]] FrameVec3 normalized() const { return FrameVec3(v_.normalized()); }
  /// Angle [rad] between this vector and another in the same frame.
  [[nodiscard]] Rad angle_to(const FrameVec3& o) const {
    return Rad(v_.angle_to(o.v_));
  }

 private:
  Vec3 v_;
};

template <class Frame>
[[nodiscard]] constexpr FrameVec3<Frame> operator*(double s,
                                                   const FrameVec3<Frame>& v) {
  return v * s;
}

/// A TEME-frame position/direction in kilometres.
using TemeKm = FrameVec3<TEME>;
/// An ECEF-frame position/direction in kilometres.
using EcefKm = FrameVec3<ECEF>;

}  // namespace starlab::geo
