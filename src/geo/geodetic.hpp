#pragma once

// Geodetic (latitude/longitude/height) coordinates on the WGS-84 ellipsoid
// and conversion to/from Earth-centred Earth-fixed (ECEF) Cartesian.

#include "geo/frame_vec.hpp"
#include "geo/vec3.hpp"

namespace starlab::geo {

/// A point on/above the WGS-84 ellipsoid.
struct Geodetic {
  double latitude_deg = 0.0;   ///< geodetic latitude, +north, [-90, 90]
  double longitude_deg = 0.0;  ///< longitude, +east, (-180, 180]
  double height_km = 0.0;      ///< height above the ellipsoid
};

/// Geodetic -> ECEF [km].
[[nodiscard]] EcefKm geodetic_to_ecef(const Geodetic& g);

/// ECEF [km] -> geodetic. Iterative (Bowring-style); converges to < 1e-9 rad
/// in a handful of iterations for any LEO/GSO altitude.
[[nodiscard]] Geodetic ecef_to_geodetic(const EcefKm& ecef_km);

}  // namespace starlab::geo
