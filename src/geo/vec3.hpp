#pragma once

// Minimal 3-vector for orbital mechanics. Value type, constexpr-friendly.

#include <cmath>

namespace starlab::geo {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }

  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }

  [[nodiscard]] constexpr double norm_sq() const { return dot(*this); }

  /// Unit vector. Returns the zero vector unchanged if the norm underflows.
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    if (n <= 0.0) return *this;
    return *this / n;
  }

  /// Angle in radians between this vector and another, in [0, pi].
  [[nodiscard]] double angle_to(const Vec3& o) const {
    const double denom = norm() * o.norm();
    if (denom <= 0.0) return 0.0;
    double c = dot(o) / denom;
    if (c > 1.0) c = 1.0;
    if (c < -1.0) c = -1.0;
    return std::acos(c);
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace starlab::geo
