#pragma once

// Topocentric look angles: where a satellite appears in an observer's sky.
// This is the geometry that obstruction maps, the field-of-view query and
// the scheduler-preference analyses (§5) are all expressed in.

#include "geo/geodetic.hpp"
#include "geo/vec3.hpp"

namespace starlab::geo {

/// A direction + distance in an observer's local sky.
struct LookAngles {
  double azimuth_deg = 0.0;    ///< clockwise from true north, [0, 360)
  double elevation_deg = 0.0;  ///< above the local horizon, [-90, 90]
  double range_km = 0.0;       ///< slant range observer -> target
};

/// Look angles from `observer` (geodetic) to `target_ecef` [km].
[[nodiscard]] LookAngles look_angles(const Geodetic& observer,
                                     const Vec3& target_ecef_km);

/// Inverse-ish helper: the ECEF unit direction corresponding to (az, el) in
/// the observer's sky. Used to project obstruction-map pixels back into 3-d.
[[nodiscard]] Vec3 direction_from_look(const Geodetic& observer,
                                       double azimuth_deg, double elevation_deg);

/// Angular separation [deg] between two sky directions (az/el pairs), treated
/// as points on the observer's celestial sphere.
[[nodiscard]] double sky_separation_deg(double az1_deg, double el1_deg,
                                        double az2_deg, double el2_deg);

}  // namespace starlab::geo
