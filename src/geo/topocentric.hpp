#pragma once

// Topocentric look angles: where a satellite appears in an observer's sky.
// This is the geometry that obstruction maps, the field-of-view query and
// the scheduler-preference analyses (§5) are all expressed in.

#include "geo/frame_vec.hpp"
#include "geo/geodetic.hpp"
#include "geo/units.hpp"
#include "geo/vec3.hpp"

namespace starlab::geo {

/// A direction + distance in an observer's local sky. The raw `*_deg`/`*_km`
/// fields are kept for plain-data serialization; unit-safe consumers go
/// through the typed accessors.
struct LookAngles {
  double azimuth_deg = 0.0;    ///< clockwise from true north, [0, 360)
  double elevation_deg = 0.0;  ///< above the local horizon, [-90, 90]
  double range_km = 0.0;       ///< slant range observer -> target

  [[nodiscard]] constexpr Deg azimuth() const { return Deg(azimuth_deg); }
  [[nodiscard]] constexpr Deg elevation() const { return Deg(elevation_deg); }
  [[nodiscard]] constexpr Km range() const { return Km(range_km); }
};

/// Look angles from `observer` (geodetic) to `target_ecef` [km]. The target
/// must already be Earth-fixed; a TEME position has to come through
/// geo::teme_to_ecef first (enforced at compile time).
[[nodiscard]] LookAngles look_angles(const Geodetic& observer,
                                     const EcefKm& target_ecef_km);

/// Inverse-ish helper: the ECEF unit direction corresponding to (az, el) in
/// the observer's sky. Used to project obstruction-map pixels back into 3-d.
[[nodiscard]] EcefKm direction_from_look(const Geodetic& observer, Deg azimuth,
                                         Deg elevation);

/// Angular separation between two sky directions (az/el pairs), treated as
/// points on the observer's celestial sphere.
[[nodiscard]] Deg sky_separation(Deg az1, Deg el1, Deg az2, Deg el2);

}  // namespace starlab::geo
