#include "geo/geodetic.hpp"

#include <cmath>

#include "geo/angles.hpp"
#include "geo/wgs.hpp"

namespace starlab::geo {

namespace {
constexpr double kA = kWgs84.radius_km;
constexpr double kF = kWgs84.flattening;
constexpr double kE2 = kF * (2.0 - kF);  // first eccentricity squared
}  // namespace

EcefKm geodetic_to_ecef(const Geodetic& g) {
  const double lat = deg_to_rad(g.latitude_deg);
  const double lon = deg_to_rad(g.longitude_deg);
  const double sin_lat = std::sin(lat);
  const double cos_lat = std::cos(lat);

  // Radius of curvature in the prime vertical.
  const double n = kA / std::sqrt(1.0 - kE2 * sin_lat * sin_lat);

  return {(n + g.height_km) * cos_lat * std::cos(lon),
          (n + g.height_km) * cos_lat * std::sin(lon),
          (n * (1.0 - kE2) + g.height_km) * sin_lat};
}

Geodetic ecef_to_geodetic(const EcefKm& ecef_km) {
  const Vec3& p = ecef_km.raw();
  const double lon = std::atan2(p.y, p.x);
  const double r_xy = std::hypot(p.x, p.y);

  // Initial guess: spherical latitude, then iterate on the standard
  // closed-loop geodetic relation.
  double lat = std::atan2(p.z, r_xy);
  double height = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double sin_lat = std::sin(lat);
    const double n = kA / std::sqrt(1.0 - kE2 * sin_lat * sin_lat);
    height = r_xy / std::cos(lat) - n;
    const double new_lat = std::atan2(p.z, r_xy * (1.0 - kE2 * n / (n + height)));
    if (std::fabs(new_lat - lat) < 1e-12) {
      lat = new_lat;
      break;
    }
    lat = new_lat;
  }

  return {rad_to_deg(lat), rad_to_deg(lon), height};
}

}  // namespace starlab::geo
