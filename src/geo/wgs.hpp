#pragma once

// Earth model constants.
//
// SGP4 is defined against WGS-72 (its coefficients were fitted to it; mixing
// models degrades accuracy), so the propagator uses Wgs72. Geodetic
// conversions for terminals use WGS-84, matching GPS-derived dish locations.

namespace starlab::geo {

struct EarthModel {
  double mu_km3_s2;        ///< gravitational parameter [km^3/s^2]
  double radius_km;        ///< equatorial radius [km]
  double j2;               ///< second zonal harmonic
  double j3;               ///< third zonal harmonic
  double j4;               ///< fourth zonal harmonic
  double flattening;       ///< ellipsoid flattening
};

inline constexpr EarthModel kWgs72{
    398600.8,      // mu
    6378.135,      // radius
    0.001082616,   // j2
    -0.00000253881,  // j3
    -0.00000165597,  // j4
    1.0 / 298.26,
};

inline constexpr EarthModel kWgs84{
    398600.5,      // mu
    6378.137,      // radius
    0.00108262998905,
    -0.00000253215306,
    -0.00000161098761,
    1.0 / 298.257223563,
};

/// Earth's rotation rate [rad/s] (IAU 1982, consistent with GMST).
inline constexpr double kEarthRotationRadPerSec = 7.292115146706979e-5;

/// Geostationary orbit radius [km] (circular, period == sidereal day).
inline constexpr double kGsoRadiusKm = 42164.0;

/// Speed of light [km/s]; used by the latency model.
inline constexpr double kSpeedOfLightKmPerSec = 299792.458;

}  // namespace starlab::geo
