#pragma once

// Deterministic counter-based randomness for the simulation oracles.
//
// The global and MAC schedulers must be *stateless functions of
// (entity, slot)* so that re-running a campaign — or probing the same slot
// from two code paths (RTT synthesis and obstruction-map painting) — sees
// the same world. splitmix64 over a mixed key gives i.i.d.-quality bits
// without any shared mutable RNG state.

#include <cstdint>

namespace starlab::scheduler {

/// splitmix64 finalizer: avalanche a 64-bit key.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine up to four 64-bit keys into one avalanche-mixed value.
[[nodiscard]] constexpr std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b,
                                               std::uint64_t c = 0,
                                               std::uint64_t d = 0) {
  std::uint64_t h = splitmix64(a);
  h = splitmix64(h ^ b);
  h = splitmix64(h ^ c);
  return splitmix64(h ^ d);
}

/// Uniform double in [0, 1) from a mixed key.
[[nodiscard]] constexpr double uniform01(std::uint64_t key) {
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

}  // namespace starlab::scheduler
