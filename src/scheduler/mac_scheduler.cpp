#include "scheduler/mac_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "scheduler/stochastic.hpp"

namespace starlab::scheduler {

int MacScheduler::cycle_length(int norad_id, time::SlotIndex slot) const {
  const double u = uniform01(mix_keys(seed_, 0xc7c1eULL,
                                      static_cast<std::uint64_t>(norad_id),
                                      static_cast<std::uint64_t>(slot)));
  const int span = config_.max_cycle - config_.min_cycle + 1;
  return config_.min_cycle + static_cast<int>(u * span);
}

int MacScheduler::rotation_position(int norad_id, std::uint64_t terminal_key,
                                    time::SlotIndex slot,
                                    Priority priority) const {
  const int cycle = cycle_length(norad_id, slot);
  const std::uint64_t h =
      mix_keys(seed_, terminal_key, static_cast<std::uint64_t>(norad_id),
               static_cast<std::uint64_t>(slot));
  const int base = static_cast<int>(h % static_cast<std::uint64_t>(cycle));
  if (cycle < 2 || priority == Priority::kStandard) return base;
  const int half = cycle / 2;
  if (priority == Priority::kPriority) {
    return base % std::max(1, half);  // front half of the cycle
  }
  return half + base % std::max(1, cycle - half);  // back half
}

double MacScheduler::miss_probability_for(Priority priority) const {
  double p = config_.miss_probability;
  if (priority == Priority::kPriority) p *= 0.5;
  if (priority == Priority::kBestEffort) p *= 1.5;
  return std::min(p, 0.95);
}

int MacScheduler::band_of_probe(int norad_id, std::uint64_t terminal_key,
                                time::SlotIndex slot, std::uint64_t probe_seq,
                                Priority priority) const {
  const int base = rotation_position(norad_id, terminal_key, slot, priority);

  // Geometric number of missed grants: P(k extra cycles) ~ (1-p) p^k.
  const double miss = miss_probability_for(priority);
  const double u = uniform01(
      mix_keys(seed_ ^ 0xbadbadULL, terminal_key ^ probe_seq,
               static_cast<std::uint64_t>(norad_id),
               static_cast<std::uint64_t>(slot)));
  int extra = 0;
  double tail = miss;
  double acc = 1.0 - miss;
  while (u >= acc && extra < 4) {
    ++extra;
    acc += (1.0 - miss) * tail;
    tail *= miss;
  }
  const int cycle = cycle_length(norad_id, slot);
  return base + extra * cycle;
}

double MacScheduler::queuing_delay_ms(int norad_id, std::uint64_t terminal_key,
                                      time::SlotIndex slot,
                                      std::uint64_t probe_seq,
                                      Priority priority) const {
  const int band = band_of_probe(norad_id, terminal_key, slot, probe_seq, priority);
  const double jitter =
      config_.intra_band_jitter_ms *
      uniform01(mix_keys(seed_ ^ 0x717e4ULL, terminal_key,
                         static_cast<std::uint64_t>(slot), probe_seq));
  return band * config_.frame_interval_ms + jitter;
}

}  // namespace starlab::scheduler
