#pragma once

// The on-satellite Medium Access Control scheduler.
//
// Within a 15-second allocation slot, the paper observes RTT samples forming
// parallel bands a few milliseconds apart (§3, Fig 2) and attributes them to
// an on-satellite controller that allocates radio frames to its attached
// terminals round-robin (the MAC scheduler of SpaceX's FCC filing / patent
// US 11,540,301). This model reproduces that observable: a terminal holds a
// rotation position in the satellite's frame cycle, and each probe departs
// on a grant a whole number of frame intervals after arrival — usually the
// terminal's own grant, occasionally one or more cycles later when the
// grant is missed. RTT samples therefore cluster on discrete levels spaced
// one frame interval apart: the parallel bands.

#include <cstdint>

#include "time/slot_grid.hpp"

namespace starlab::scheduler {

/// Service tiers (the FCC filing's MAC scheduler weighs "user priority"
/// among its inputs). Priority users are granted earlier positions in the
/// frame cycle and miss grants less often; best-effort users queue behind
/// everyone.
enum class Priority {
  kStandard,
  kPriority,
  kBestEffort,
};

struct MacConfig {
  double frame_interval_ms = 1.33;  ///< one radio frame (Ku-band frame time)
  int min_cycle = 2;                ///< terminals sharing the beam, lower bound
  int max_cycle = 8;                ///< and upper bound (load dependent)
  double miss_probability = 0.45;   ///< P(a grant is missed -> next band up)
  double intra_band_jitter_ms = 0.18;  ///< spread within one band
};

class MacScheduler {
 public:
  explicit MacScheduler(MacConfig config = {}, std::uint64_t seed = 11)
      : config_(config), seed_(seed) {}

  /// Number of terminals sharing the frame cycle on `norad_id` during
  /// `slot` (a function of the satellite's load).
  [[nodiscard]] int cycle_length(int norad_id, time::SlotIndex slot) const;

  /// The terminal's fixed position within the frame cycle for this slot,
  /// in [0, cycle_length). Priority terminals land in the front half of the
  /// cycle, best-effort ones in the back half.
  [[nodiscard]] int rotation_position(int norad_id, std::uint64_t terminal_key,
                                      time::SlotIndex slot,
                                      Priority priority = Priority::kStandard) const;

  /// Band index (0-based) the `probe_seq`-th probe of this terminal lands
  /// on: rotation position plus a geometrically distributed number of
  /// missed cycles. Deterministic in all arguments.
  [[nodiscard]] int band_of_probe(int norad_id, std::uint64_t terminal_key,
                                  time::SlotIndex slot, std::uint64_t probe_seq,
                                  Priority priority = Priority::kStandard) const;

  /// Queuing delay [ms] for one probe: band * frame_interval + jitter.
  [[nodiscard]] double queuing_delay_ms(int norad_id,
                                        std::uint64_t terminal_key,
                                        time::SlotIndex slot,
                                        std::uint64_t probe_seq,
                                        Priority priority = Priority::kStandard) const;

  /// Effective grant-miss probability for a tier (priority halves it,
  /// best-effort adds half again, clamped to [0, 0.95]).
  [[nodiscard]] double miss_probability_for(Priority priority) const;

  [[nodiscard]] const MacConfig& config() const { return config_; }

 private:
  MacConfig config_;
  std::uint64_t seed_;
};

}  // namespace starlab::scheduler
