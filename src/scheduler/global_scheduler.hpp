#pragma once

// The global satellite-to-terminal scheduler oracle.
//
// The paper reverse-engineers Starlink's (secret) global controller; starlab
// instantiates a controller with exactly the preferences the paper measured
// and then runs the paper's inference pipeline against it as a black box:
//
//   * re-allocates every terminal on the 15-second grid (:12/:27/:42/:57);
//   * hard constraints: AOE > 25 deg, local obstructions, GSO exclusion
//     (which forces >40 degN terminals to point high and north — §5.1);
//   * soft preferences: high angle of elevation, northern azimuth, recent
//     launch date (§5.2), sunlit satellites (§5.3) — with the energy-budget
//     twist that a *dark* satellite is only attractive when it is high in
//     the sky (lower RF power), reproducing Fig 7;
//   * per-satellite load balancing plus bounded decision noise standing in
//     for the load/priority inputs the paper could not observe (§6
//     "Limitations").
//
// The inference pipeline never reads this class's internals — only what a
// real vantage point could observe (RTT, obstruction maps, TLEs).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "constellation/catalog.hpp"
#include "ground/gateway.hpp"
#include "ground/terminal.hpp"
#include "time/slot_grid.hpp"

namespace starlab::scheduler {

/// Soft-preference weights. The defaults are calibrated so the measured
/// statistics land near the paper's (Figs 4-7); the ablation benches sweep
/// them.
struct SchedulerWeights {
  double elevation = 3.0;       ///< reward for normalized AOE
  double north = 0.9;           ///< reward for northern azimuth
  double recency = 0.5;         ///< reward for recent launch date
  double sunlit = 0.2;          ///< bonus when the satellite is in sunlight
  double dark_range_penalty = 2.6;  ///< penalty for *dark* satellites low in the sky
  double load_penalty = 0.8;    ///< penalty per unit of satellite load
  double noise = 0.55;          ///< Gumbel decision-noise scale (unobservable inputs)
  /// Energy-budget gate (§5.3): dark satellites are not considered at all
  /// unless at least this fraction of the slot's candidates is dark — the
  /// scheduler only dips into battery power when it has little choice.
  double dark_fraction_floor = 0.35;
};

/// One allocation decision, as recorded by the oracle's trace. Everything in
/// here except `catalog_index`/`norad_id` is also observable externally; the
/// identity fields are what §4's pipeline has to recover on its own.
struct Allocation {
  time::SlotIndex slot = 0;
  std::string terminal;
  int norad_id = 0;
  std::size_t catalog_index = 0;
  geo::LookAngles look;        ///< at the slot midpoint
  bool sunlit = true;
  double age_days = 0.0;
  int num_available = 0;       ///< usable candidates in this slot
  int num_sunlit_available = 0;
  int num_dark_available = 0;
};

class GlobalScheduler {
 public:
  GlobalScheduler(const constellation::Catalog& catalog,
                  SchedulerWeights weights = {},
                  time::SlotGrid grid = time::SlotGrid(),
                  std::uint64_t seed = 7);

  /// Allocate a satellite to `terminal` for `slot`. Returns nullopt when no
  /// usable candidate exists (fully obstructed sky). Deterministic in
  /// (terminal, slot, seed).
  [[nodiscard]] std::optional<Allocation> allocate(
      const ground::Terminal& terminal, time::SlotIndex slot) const;

  /// allocate() over an externally computed candidate set (campaigns reuse
  /// one catalog propagation across terminals). The decision is identical
  /// to allocate() given the same candidates.
  [[nodiscard]] std::optional<Allocation> allocate_from(
      const ground::Terminal& terminal, time::SlotIndex slot,
      const std::vector<ground::Candidate>& candidates) const;

  /// Scored view of one candidate (exposed for tests and ablations).
  [[nodiscard]] double score(const ground::Candidate& candidate,
                             const ground::Terminal& terminal,
                             time::SlotIndex slot) const;

  /// Synthetic per-satellite load in [0,1) for a slot: the stand-in for the
  /// congestion inputs the paper could not observe. Deterministic.
  [[nodiscard]] double satellite_load(int norad_id, time::SlotIndex slot) const;

  /// Attach a gateway network as an additional hard constraint: candidates
  /// that see no gateway are skipped (bent-pipe requirement, §2). Pass
  /// nullptr to disable. The network must outlive the scheduler.
  void set_gateway_network(const ground::GatewayNetwork* network) {
    gateways_ = network;
  }
  [[nodiscard]] const ground::GatewayNetwork* gateway_network() const {
    return gateways_;
  }

  [[nodiscard]] const time::SlotGrid& grid() const { return grid_; }
  [[nodiscard]] const SchedulerWeights& weights() const { return weights_; }
  [[nodiscard]] const constellation::Catalog& catalog() const {
    return catalog_;
  }

 private:
  const constellation::Catalog& catalog_;
  SchedulerWeights weights_;
  time::SlotGrid grid_;
  std::uint64_t seed_;
  double max_age_days_;  ///< normalization for the recency term
  const ground::GatewayNetwork* gateways_ = nullptr;
};

}  // namespace starlab::scheduler
