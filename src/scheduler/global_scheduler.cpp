#include "scheduler/global_scheduler.hpp"

#include <cmath>
#include <functional>

#include "geo/angles.hpp"
#include "geo/frames.hpp"
#include "scheduler/stochastic.hpp"

namespace starlab::scheduler {

namespace {

/// Stable 64-bit key for a terminal name.
std::uint64_t terminal_key(const std::string& name) {
  return std::hash<std::string>{}(name);
}

}  // namespace

GlobalScheduler::GlobalScheduler(const constellation::Catalog& catalog,
                                 SchedulerWeights weights, time::SlotGrid grid,
                                 std::uint64_t seed)
    : catalog_(catalog), weights_(weights), grid_(grid), seed_(seed) {
  // Normalize satellite ages against the ~5-year design life of a Starlink
  // satellite (the paper's §5.2 rationale for the recency preference): a
  // just-launched bird scores 1, an end-of-life one scores 0.
  max_age_days_ = 5.0 * 365.0;
}

double GlobalScheduler::satellite_load(int norad_id,
                                       time::SlotIndex slot) const {
  // Load varies per satellite and drifts slot to slot; mixing the slot at
  // coarse granularity (4 slots == 1 minute) gives it realistic temporal
  // correlation while staying stateless.
  const auto coarse_slot = static_cast<std::uint64_t>(slot) / 4;
  return uniform01(mix_keys(seed_, 0x10ad10ad10ad10adULL,
                            static_cast<std::uint64_t>(norad_id), coarse_slot));
}

double GlobalScheduler::score(const ground::Candidate& c,
                              const ground::Terminal& terminal,
                              time::SlotIndex slot) const {
  const geo::LookAngles& look = c.sky.look;

  // Elevation: 0 at the 25 deg floor, 1 at zenith.
  const double el_norm =
      (look.elevation_deg - terminal.min_elevation().value()) /
      (90.0 - terminal.min_elevation().value());

  // North preference: 1 due north, 0 due south.
  const double north_norm =
      0.5 * (1.0 + std::cos(geo::deg_to_rad(look.azimuth_deg)));

  // Recency: 1 for a just-launched satellite, 0 for the constellation's
  // oldest. Clamped — loaded catalogs may carry odd designators.
  const double age_norm =
      std::clamp(1.0 - c.sky.age_days / max_age_days_, 0.0, 1.0);

  // Energy model: a dark satellite low in the sky must burn scarce battery
  // on long-range RF, so darkness is penalized in proportion to how far
  // from zenith the bird sits (Fig 7's mechanism).
  const double sunlit_term = c.sky.sunlit ? weights_.sunlit : 0.0;
  const double dark_range_term =
      c.sky.sunlit ? 0.0 : weights_.dark_range_penalty * (1.0 - el_norm);

  const double load = satellite_load(c.sky.norad_id, slot);

  // Gumbel noise makes the argmax a softmax sample: the stand-in for
  // scheduler inputs no external observer can see.
  const double u = uniform01(
      mix_keys(seed_ ^ 0x5ced5ced5ced5cedULL, terminal_key(terminal.name()),
               static_cast<std::uint64_t>(c.sky.norad_id),
               static_cast<std::uint64_t>(slot)));
  const double gumbel = -std::log(-std::log(std::max(u, 1e-12)));

  return weights_.elevation * el_norm + weights_.north * north_norm +
         weights_.recency * age_norm + sunlit_term - dark_range_term -
         weights_.load_penalty * load + weights_.noise * gumbel;
}

std::optional<Allocation> GlobalScheduler::allocate(
    const ground::Terminal& terminal, time::SlotIndex slot) const {
  const time::JulianDate jd =
      time::JulianDate::from_unix_seconds(grid_.slot_mid(slot));
  return allocate_from(terminal, slot, terminal.candidates(catalog_, jd));
}

std::optional<Allocation> GlobalScheduler::allocate_from(
    const ground::Terminal& terminal, time::SlotIndex slot,
    const std::vector<ground::Candidate>& all) const {
  // Bent-pipe constraint: precompute which candidates currently see a
  // gateway (when a network is attached).
  std::vector<bool> has_gateway(all.size(), true);
  if (gateways_ != nullptr) {
    const time::JulianDate jd =
        time::JulianDate::from_unix_seconds(grid_.slot_mid(slot));
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (!all[i].usable()) continue;
      const geo::EcefKm ecef =
          geo::teme_to_ecef(all[i].sky.position_teme_km, jd);
      has_gateway[i] = gateways_->has_gateway(ecef);
    }
  }

  int usable = 0, sunlit = 0, dark = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const ground::Candidate& c = all[i];
    if (!c.usable() || !has_gateway[i]) continue;
    ++usable;
    if (c.sky.sunlit) {
      ++sunlit;
    } else {
      ++dark;
    }
  }
  if (usable == 0) return std::nullopt;

  // §5.3 energy gate: dark satellites only compete when the sky offers few
  // sunlit alternatives.
  const double dark_fraction = static_cast<double>(dark) / usable;
  const bool dark_allowed =
      sunlit == 0 || dark_fraction >= weights_.dark_fraction_floor;

  const ground::Candidate* best = nullptr;
  double best_score = -1e300;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const ground::Candidate& c = all[i];
    if (!c.usable() || !has_gateway[i]) continue;
    if (!c.sky.sunlit && !dark_allowed) continue;
    const double s = score(c, terminal, slot);
    if (s > best_score) {
      best_score = s;
      best = &c;
    }
  }
  if (best == nullptr) return std::nullopt;

  Allocation a;
  a.slot = slot;
  a.terminal = terminal.name();
  a.norad_id = best->sky.norad_id;
  a.catalog_index = best->sky.catalog_index;
  a.look = best->sky.look;
  a.sunlit = best->sky.sunlit;
  a.age_days = best->sky.age_days;
  a.num_available = usable;
  a.num_sunlit_available = sunlit;
  a.num_dark_available = dark;
  return a;
}

}  // namespace starlab::scheduler
