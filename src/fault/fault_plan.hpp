#pragma once

// Deterministic, seedable fault injection.
//
// Real Starlink campaigns are not clean: gRPC obstruction-map polls fail or
// return corrupted frames, probe streams suffer loss bursts beyond the
// nominal link loss, vantage-point clocks step and drift between NTP
// corrections, CelesTrak pulls go stale or arrive truncated, and satellites
// vanish from the usable set for a slot at a time. A FaultPlan describes all
// of those degradations in one place so a scenario, campaign or pipeline run
// can be stressed reproducibly: every injector draws its decisions from
// counter-based hashes of (plan seed, entity, slot), never from shared RNG
// state, so the same plan replays the same faults and `intensity == 0`
// is bit-identical to running with no plan at all.

#include <cstdint>
#include <string>

namespace starlab::fault {

/// Obstruction-map observation faults (the gRPC poll path).
struct FrameFaultConfig {
  /// Probability that a slot's end-of-slot frame poll returns nothing.
  double drop_rate = 0.0;
  /// Per-pixel probability that an observed frame arrives with that pixel
  /// flipped (transport/decoder corruption).
  double bit_flip_rate = 0.0;
};

/// Probe-stream faults layered over a recorded RTT series.
struct RttFaultConfig {
  /// Marginal loss rate added by a Gilbert-Elliott burst overlay (losses
  /// arrive in bursts, not independently).
  double extra_loss_rate = 0.0;
  /// Mean burst length of the overlay, in probes.
  double mean_burst_probes = 20.0;
  /// Probability that a received probe reports an outlier spike.
  double spike_rate = 0.0;
  /// Magnitude added to a spiked probe's RTT [ms].
  double spike_ms = 150.0;
};

/// Vantage-point clock faults (undisciplined intervals between NTP steps).
struct ClockFaultConfig {
  /// Magnitude of the offset redrawn at every sync epoch [ms]; the realized
  /// offset is uniform in [-step_ms, step_ms].
  double step_ms = 0.0;
  /// Spacing of sync epochs [s].
  double step_interval_sec = 3600.0;
  /// Frequency error accumulating between steps [ppm].
  double drift_ppm = 0.0;
};

/// TLE catalog faults (stale or damaged CelesTrak pulls).
struct TleFaultConfig {
  /// Probability that a record has one element-line character corrupted
  /// (breaking its checksum, so a strict parse rejects it).
  double corrupt_rate = 0.0;
  /// Probability that a record loses its second element line entirely.
  double truncate_rate = 0.0;
  /// Age every record's epoch by this many days (stale catalog; checksums
  /// are recomputed, so the records stay parseable but propagate badly).
  double stale_days = 0.0;
};

/// Per-slot satellite dropout: a candidate vanishes from the usable set for
/// one slot (thermal safe-mode, beam maintenance, telemetry gap).
struct DropoutFaultConfig {
  /// Probability that a given (satellite, slot) pair is dropped.
  double rate = 0.0;
};

/// Execution faults: supervised tasks (slot shards, per-terminal pipeline
/// passes) crashing mid-flight — the OOM kills and poisoned inputs the
/// resilience supervisor exists to absorb.
struct ExecFaultConfig {
  /// Probability that one attempt of a supervised task fails outright.
  /// Keyed by (task, attempt), so retries of a doomed attempt can succeed.
  double task_fail_rate = 0.0;
};

struct FaultPlan {
  std::uint64_t seed = 101;
  /// Global multiplier applied to every rate and magnitude above at
  /// injection time. 0 disables every injector exactly; 1 applies the
  /// configured values as-is. Sweeps scale this one knob.
  double intensity = 1.0;

  FrameFaultConfig frame;
  RttFaultConfig rtt;
  ClockFaultConfig clock;
  TleFaultConfig tle;
  DropoutFaultConfig dropout;
  ExecFaultConfig exec;

  /// True when at least one injector can fire at this intensity.
  [[nodiscard]] bool enabled() const;

  /// Copy with a different global intensity (sweep convenience).
  [[nodiscard]] FaultPlan with_intensity(double value) const;
};

/// Serialize as the `key = value` schema documented in docs/FORMATS.md
/// (only non-default fields are written; an empty string is the default
/// plan).
[[nodiscard]] std::string format_fault_plan(const FaultPlan& plan);

/// Parse the `key = value` schema. Unknown keys and malformed lines throw
/// std::runtime_error naming the offending line.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

}  // namespace starlab::fault
