#include "fault/injectors.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "scheduler/stochastic.hpp"
#include "tle/catalog_io.hpp"

namespace starlab::fault {

namespace {

// Per-injector key-domain tags: keeps the hash streams of the different
// injectors (and of the scheduler oracles, which share the same mixer)
// disjoint even under one seed.
constexpr std::uint64_t kTagFrameDrop = 0xFA01;
constexpr std::uint64_t kTagBitFlip = 0xFA02;
constexpr std::uint64_t kTagDropout = 0xFA03;
constexpr std::uint64_t kTagSpike = 0xFA04;
constexpr std::uint64_t kTagClockStep = 0xFA05;
constexpr std::uint64_t kTagGeSeed = 0xFA06;
constexpr std::uint64_t kTagTleLine = 0xFA07;
constexpr std::uint64_t kTagTaskFail = 0xFA08;

double draw(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
            std::uint64_t b = 0) {
  return scheduler::uniform01(scheduler::mix_keys(seed, tag, a, b));
}

int days_in_year(int year) {
  const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  return leap ? 366 : 365;
}

}  // namespace

bool FrameFaultInjector::frame_dropped(std::size_t terminal_index,
                                       time::SlotIndex slot) const {
  const double rate = plan_.frame.drop_rate * plan_.intensity;
  if (rate <= 0.0) return false;
  return draw(plan_.seed, kTagFrameDrop, terminal_index,
              static_cast<std::uint64_t>(slot)) < rate;
}

std::size_t FrameFaultInjector::corrupt(obsmap::ObstructionMap& frame,
                                        std::size_t terminal_index,
                                        time::SlotIndex slot) const {
  const double rate = plan_.frame.bit_flip_rate * plan_.intensity;
  if (rate <= 0.0) return 0;
  std::size_t flipped = 0;
  const std::uint64_t frame_key = scheduler::mix_keys(
      plan_.seed, kTagBitFlip, terminal_index, static_cast<std::uint64_t>(slot));
  for (int y = 0; y < obsmap::ObstructionMap::kSize; ++y) {
    for (int x = 0; x < obsmap::ObstructionMap::kSize; ++x) {
      const auto pixel_index = static_cast<std::uint64_t>(
          y * obsmap::ObstructionMap::kSize + x);
      if (scheduler::uniform01(scheduler::mix_keys(frame_key, pixel_index)) <
          rate) {
        frame.set(x, y, !frame.get(x, y));
        ++flipped;
      }
    }
  }
  return flipped;
}

bool TaskFaultInjector::fails(std::uint64_t task_key, int attempt) const {
  const double rate = plan_.exec.task_fail_rate * plan_.intensity;
  if (rate <= 0.0) return false;
  return draw(plan_.seed, kTagTaskFail, task_key,
              static_cast<std::uint64_t>(attempt)) < rate;
}

bool SlotDropoutInjector::dropped(int norad_id, time::SlotIndex slot) const {
  const double rate = plan_.dropout.rate * plan_.intensity;
  if (rate <= 0.0) return false;
  return draw(plan_.seed, kTagDropout, static_cast<std::uint64_t>(norad_id),
              static_cast<std::uint64_t>(slot)) < rate;
}

measurement::GilbertElliottConfig RttFaultInjector::overlay_config() const {
  // Bad state loses everything, Good state nothing; the dwell time in Bad
  // sets the burst length and the Good->Bad rate is solved so the stationary
  // loss equals the requested marginal rate.
  measurement::GilbertElliottConfig cfg;
  cfg.loss_bad = 1.0;
  cfg.loss_good = 0.0;
  const double mean_burst = std::max(1.0, plan_.rtt.mean_burst_probes);
  cfg.p_bad_to_good = 1.0 / mean_burst;
  const double target =
      std::clamp(plan_.rtt.extra_loss_rate * plan_.intensity, 0.0, 0.95);
  cfg.p_good_to_bad =
      target <= 0.0 ? 0.0 : cfg.p_bad_to_good * target / (1.0 - target);
  return cfg;
}

void RttFaultInjector::apply(measurement::RttSeries& series) const {
  const double loss = plan_.rtt.extra_loss_rate * plan_.intensity;
  const double spike_rate = plan_.rtt.spike_rate * plan_.intensity;
  if (loss <= 0.0 && spike_rate <= 0.0) return;

  measurement::GilbertElliott overlay(
      overlay_config(), scheduler::mix_keys(plan_.seed, kTagGeSeed));
  const double spike_ms = plan_.rtt.spike_ms * plan_.intensity;
  for (std::size_t i = 0; i < series.samples.size(); ++i) {
    measurement::RttSample& s = series.samples[i];
    if (loss > 0.0 && overlay.step() && !s.lost) {
      s.lost = true;
      s.rtt_ms = 0.0;
    }
    if (!s.lost && spike_rate > 0.0 &&
        draw(plan_.seed, kTagSpike, i) < spike_rate) {
      s.rtt_ms += spike_ms;
    }
  }
}

double ClockFaultInjector::offset_sec(double true_unix_sec) const {
  const double step_sec = plan_.clock.step_ms * plan_.intensity / 1000.0;
  const double drift = plan_.clock.drift_ppm * plan_.intensity * 1e-6;
  if (step_sec == 0.0 && drift == 0.0) return 0.0;
  const double interval = std::max(1.0, plan_.clock.step_interval_sec);
  const double epoch = std::floor(true_unix_sec / interval);
  const double u =
      draw(plan_.seed, kTagClockStep,
           static_cast<std::uint64_t>(static_cast<std::int64_t>(epoch)));
  const double since_sync = true_unix_sec - epoch * interval;
  return step_sec * (2.0 * u - 1.0) + drift * since_sync;
}

void ClockFaultInjector::apply(measurement::RttSeries& series) const {
  if (plan_.clock.step_ms * plan_.intensity == 0.0 &&
      plan_.clock.drift_ppm * plan_.intensity == 0.0) {
    return;
  }
  for (measurement::RttSample& s : series.samples) {
    s.unix_sec += offset_sec(s.unix_sec);
  }
}

std::string TleFaultInjector::corrupt_catalog(const std::string& text) const {
  const double corrupt_rate = plan_.tle.corrupt_rate * plan_.intensity;
  const double truncate_rate = plan_.tle.truncate_rate * plan_.intensity;
  const double stale_days = plan_.tle.stale_days * plan_.intensity;
  if (corrupt_rate <= 0.0 && truncate_rate <= 0.0 && stale_days <= 0.0) {
    return text;
  }

  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
    }
  }

  auto is_element_line = [](const std::string& s, char which) {
    return s.size() >= 2 && s[0] == which && s[1] == ' ';
  };

  std::ostringstream out;
  std::uint64_t record = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!(is_element_line(lines[i], '1') && i + 1 < lines.size() &&
          is_element_line(lines[i + 1], '2'))) {
      out << lines[i] << '\n';
      continue;
    }

    std::string line1 = lines[i];
    std::string line2 = lines[i + 1];
    ++i;  // consume line 2 as well
    const std::uint64_t r = record++;

    if (stale_days > 0.0) {
      try {
        tle::Tle t = tle::Tle::parse(line1, line2);
        t.epoch_day -= stale_days;
        while (t.epoch_day < 1.0) {
          --t.epoch_year;
          t.epoch_day += days_in_year(t.epoch_year);
        }
        line1 = t.format_line1();
        line2 = t.format_line2();
      } catch (const tle::TleParseError&) {
        // Already-damaged input records pass through untouched.
      }
    }

    if (draw(plan_.seed, kTagTleLine, r, 1) < truncate_rate) {
      out << line1 << '\n';  // line 2 lost in transit
      continue;
    }
    if (draw(plan_.seed, kTagTleLine, r, 2) < corrupt_rate) {
      // Flip one character of one element line to a different digit; any
      // such change breaks the record's mod-10 checksum.
      const std::uint64_t key = scheduler::mix_keys(plan_.seed, kTagTleLine, r, 3);
      std::string& victim = (key & 1) ? line2 : line1;
      if (victim.size() >= 69) {
        const auto pos = static_cast<std::size_t>((key >> 1) % 60) + 2;
        const char old = victim[pos];
        // Replacement chosen so the checksum contribution always changes by
        // exactly 1 (mod 10): '-' counts as 1, digits as themselves, other
        // characters as 0.
        if (old == '9') victim[pos] = '0';
        else if (old >= '0' && old <= '8') victim[pos] = static_cast<char>(old + 1);
        else if (old == '-') victim[pos] = '2';
        else victim[pos] = '1';
      }
    }
    out << line1 << '\n' << line2 << '\n';
  }
  return out.str();
}

}  // namespace starlab::fault
