#pragma once

// The fault injectors configured by a FaultPlan.
//
// Every injector is a pure function of (plan seed, entity, counter) via the
// same counter-based splitmix64 hashing the scheduler oracles use, so a
// faulted run replays exactly and two consumers asking about the same
// (terminal, slot) see the same fault. All rates and magnitudes are scaled
// by the plan's global intensity; at intensity 0 every injector is a no-op.

#include <cstdint>
#include <string>

#include "fault/fault_plan.hpp"
#include "measurement/loss_model.hpp"
#include "measurement/rtt_prober.hpp"
#include "obsmap/obstruction_map.hpp"
#include "time/slot_grid.hpp"

namespace starlab::fault {

/// Drops and corrupts observed obstruction-map frames.
class FrameFaultInjector {
 public:
  explicit FrameFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// True when the end-of-slot frame poll for (terminal, slot) fails.
  [[nodiscard]] bool frame_dropped(std::size_t terminal_index,
                                   time::SlotIndex slot) const;

  /// Flip pixels of an observed frame in place (per-pixel Bernoulli at the
  /// scaled bit-flip rate). Returns the number of flipped pixels; 0 leaves
  /// the frame bit-identical.
  std::size_t corrupt(obsmap::ObstructionMap& frame,
                      std::size_t terminal_index, time::SlotIndex slot) const;

 private:
  FaultPlan plan_;
};

/// Removes individual satellites from the usable set for single slots.
class SlotDropoutInjector {
 public:
  explicit SlotDropoutInjector(const FaultPlan& plan) : plan_(plan) {}

  /// True when `norad_id` is unavailable during `slot`.
  [[nodiscard]] bool dropped(int norad_id, time::SlotIndex slot) const;

 private:
  FaultPlan plan_;
};

/// Overlays Gilbert-Elliott burst loss and outlier spikes on an RTT series.
class RttFaultInjector {
 public:
  explicit RttFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// The overlay chain implied by the plan: loss_bad == 1, loss_good == 0,
  /// mean Bad dwell == mean_burst_probes, stationary loss == the scaled
  /// extra_loss_rate.
  [[nodiscard]] measurement::GilbertElliottConfig overlay_config() const;

  /// Mark additional (bursty) losses and add spikes, in place. Deterministic
  /// in the plan seed and the series length; a series already marked lost is
  /// left lost.
  void apply(measurement::RttSeries& series) const;

 private:
  FaultPlan plan_;
};

/// Clock step/drift error for a vantage point's local clock.
class ClockFaultInjector {
 public:
  explicit ClockFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Local-minus-true clock offset [s] at a true time: a per-sync-epoch
  /// uniform step in [-step_ms, step_ms] plus linear drift accumulated since
  /// the last sync.
  [[nodiscard]] double offset_sec(double true_unix_sec) const;

  /// Re-timestamp a series through the faulty clock, in place.
  void apply(measurement::RttSeries& series) const;

 private:
  FaultPlan plan_;
};

/// Damages TLE catalog text the way stale or truncated CelesTrak pulls do.
/// Pair with tle::read_catalog_lenient to measure skip-and-report behavior.
class TleFaultInjector {
 public:
  explicit TleFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Corrupt a 3-line/2-line catalog text: per-record character corruption
  /// (breaks the checksum), line-2 truncation, and epoch staleness (aged by
  /// stale_days with checksums recomputed, so stale records still parse).
  [[nodiscard]] std::string corrupt_catalog(const std::string& text) const;

 private:
  FaultPlan plan_;
};

}  // namespace starlab::fault
