#pragma once

// The fault injectors configured by a FaultPlan.
//
// Every injector is a pure function of (plan seed, entity, counter) via the
// same counter-based splitmix64 hashing the scheduler oracles use, so a
// faulted run replays exactly and two consumers asking about the same
// (terminal, slot) see the same fault. All rates and magnitudes are scaled
// by the plan's global intensity; at intensity 0 every injector is a no-op.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.hpp"
#include "measurement/loss_model.hpp"
#include "measurement/rtt_prober.hpp"
#include "obsmap/obstruction_map.hpp"
#include "time/slot_grid.hpp"

namespace starlab::fault {

/// Drops and corrupts observed obstruction-map frames.
class FrameFaultInjector {
 public:
  explicit FrameFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// True when the end-of-slot frame poll for (terminal, slot) fails.
  [[nodiscard]] bool frame_dropped(std::size_t terminal_index,
                                   time::SlotIndex slot) const;

  /// Flip pixels of an observed frame in place (per-pixel Bernoulli at the
  /// scaled bit-flip rate). Returns the number of flipped pixels; 0 leaves
  /// the frame bit-identical.
  std::size_t corrupt(obsmap::ObstructionMap& frame,
                      std::size_t terminal_index, time::SlotIndex slot) const;

 private:
  FaultPlan plan_;
};

/// Removes individual satellites from the usable set for single slots.
class SlotDropoutInjector {
 public:
  explicit SlotDropoutInjector(const FaultPlan& plan) : plan_(plan) {}

  /// True when `norad_id` is unavailable during `slot`.
  [[nodiscard]] bool dropped(int norad_id, time::SlotIndex slot) const;

 private:
  FaultPlan plan_;
};

/// Overlays Gilbert-Elliott burst loss and outlier spikes on an RTT series.
class RttFaultInjector {
 public:
  explicit RttFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// The overlay chain implied by the plan: loss_bad == 1, loss_good == 0,
  /// mean Bad dwell == mean_burst_probes, stationary loss == the scaled
  /// extra_loss_rate.
  [[nodiscard]] measurement::GilbertElliottConfig overlay_config() const;

  /// Mark additional (bursty) losses and add spikes, in place. Deterministic
  /// in the plan seed and the series length; a series already marked lost is
  /// left lost.
  void apply(measurement::RttSeries& series) const;

 private:
  FaultPlan plan_;
};

/// Clock step/drift error for a vantage point's local clock.
class ClockFaultInjector {
 public:
  explicit ClockFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Local-minus-true clock offset [s] at a true time: a per-sync-epoch
  /// uniform step in [-step_ms, step_ms] plus linear drift accumulated since
  /// the last sync.
  [[nodiscard]] double offset_sec(double true_unix_sec) const;

  /// Re-timestamp a series through the faulty clock, in place.
  void apply(measurement::RttSeries& series) const;

 private:
  FaultPlan plan_;
};

/// Damages TLE catalog text the way stale or truncated CelesTrak pulls do.
/// Pair with tle::read_catalog_lenient to measure skip-and-report behavior.
class TleFaultInjector {
 public:
  explicit TleFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Corrupt a 3-line/2-line catalog text: per-record character corruption
  /// (breaks the checksum), line-2 truncation, and epoch staleness (aged by
  /// stale_days with checksums recomputed, so stale records still parse).
  [[nodiscard]] std::string corrupt_catalog(const std::string& text) const;

 private:
  FaultPlan plan_;
};

/// Crashes supervised task attempts (the resilience supervisor's retry and
/// quarantine paths). Keyed by (task, attempt): the same plan crashes the
/// same attempts of the same tasks on every replay, and a task whose first
/// attempt is doomed may still succeed on retry.
class TaskFaultInjector {
 public:
  explicit TaskFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// True when `attempt` (1-based) of the task identified by `task_key`
  /// should fail.
  [[nodiscard]] bool fails(std::uint64_t task_key, int attempt) const;

 private:
  FaultPlan plan_;
};

/// Thrown when a WriteKillPoint budget runs out: the simulated process
/// death mid-write. Catch sites treat the writer as gone.
class WriteKilled : public std::runtime_error {
 public:
  explicit WriteKilled(std::uint64_t at_byte)
      : std::runtime_error("write kill-point fired at byte " +
                           std::to_string(at_byte)),
        at_byte_(at_byte) {}
  [[nodiscard]] std::uint64_t at_byte() const { return at_byte_; }

 private:
  std::uint64_t at_byte_;
};

/// Byte-budget write gate simulating a crash at an exact file offset: the
/// first `kill_after_bytes` bytes offered to grant() pass through, the rest
/// never happen. A durable writer consults the gate before each write and
/// persists exactly the granted prefix before dying, so torn-tail recovery
/// can be exercised at every byte boundary of the journal format.
class WriteKillPoint {
 public:
  explicit WriteKillPoint(std::uint64_t kill_after_bytes)
      : remaining_(kill_after_bytes) {}

  /// How many of `want` bytes may still be written. Decrements the budget;
  /// a return < want means the process dies after writing that prefix (the
  /// caller writes it, then throws WriteKilled).
  [[nodiscard]] std::uint64_t grant(std::uint64_t want) {
    const std::uint64_t granted = want < remaining_ ? want : remaining_;
    remaining_ -= granted;
    granted_ += granted;
    if (granted < want) killed_ = true;
    return granted;
  }

  [[nodiscard]] bool killed() const { return killed_; }
  /// Total bytes granted so far (== the kill offset once killed).
  [[nodiscard]] std::uint64_t granted() const { return granted_; }

 private:
  std::uint64_t remaining_;
  std::uint64_t granted_ = 0;
  bool killed_ = false;
};

}  // namespace starlab::fault
