#include "fault/fault_plan.hpp"

#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace starlab::fault {

namespace {

/// One schema entry: name plus accessor, shared by parse and format so the
/// two can never drift apart.
struct Field {
  const char* key;
  std::function<double&(FaultPlan&)> ref;
};

std::vector<Field> schema() {
  return {
      {"intensity", [](FaultPlan& p) -> double& { return p.intensity; }},
      {"frame.drop_rate",
       [](FaultPlan& p) -> double& { return p.frame.drop_rate; }},
      {"frame.bit_flip_rate",
       [](FaultPlan& p) -> double& { return p.frame.bit_flip_rate; }},
      {"rtt.extra_loss_rate",
       [](FaultPlan& p) -> double& { return p.rtt.extra_loss_rate; }},
      {"rtt.mean_burst_probes",
       [](FaultPlan& p) -> double& { return p.rtt.mean_burst_probes; }},
      {"rtt.spike_rate",
       [](FaultPlan& p) -> double& { return p.rtt.spike_rate; }},
      {"rtt.spike_ms", [](FaultPlan& p) -> double& { return p.rtt.spike_ms; }},
      {"clock.step_ms",
       [](FaultPlan& p) -> double& { return p.clock.step_ms; }},
      {"clock.step_interval_sec",
       [](FaultPlan& p) -> double& { return p.clock.step_interval_sec; }},
      {"clock.drift_ppm",
       [](FaultPlan& p) -> double& { return p.clock.drift_ppm; }},
      {"tle.corrupt_rate",
       [](FaultPlan& p) -> double& { return p.tle.corrupt_rate; }},
      {"tle.truncate_rate",
       [](FaultPlan& p) -> double& { return p.tle.truncate_rate; }},
      {"tle.stale_days",
       [](FaultPlan& p) -> double& { return p.tle.stale_days; }},
      {"dropout.rate", [](FaultPlan& p) -> double& { return p.dropout.rate; }},
      {"exec.task_fail_rate",
       [](FaultPlan& p) -> double& { return p.exec.task_fail_rate; }},
  };
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

bool FaultPlan::enabled() const {
  if (intensity <= 0.0) return false;
  return frame.drop_rate > 0.0 || frame.bit_flip_rate > 0.0 ||
         rtt.extra_loss_rate > 0.0 || rtt.spike_rate > 0.0 ||
         clock.step_ms > 0.0 || clock.drift_ppm > 0.0 ||
         tle.corrupt_rate > 0.0 || tle.truncate_rate > 0.0 ||
         tle.stale_days > 0.0 || dropout.rate > 0.0 ||
         exec.task_fail_rate > 0.0;
}

FaultPlan FaultPlan::with_intensity(double value) const {
  FaultPlan out = *this;
  out.intensity = value;
  return out;
}

std::string format_fault_plan(const FaultPlan& plan) {
  const FaultPlan defaults;
  FaultPlan mutable_plan = plan;
  FaultPlan mutable_defaults = defaults;
  std::ostringstream out;
  if (plan.seed != defaults.seed) out << "seed = " << plan.seed << '\n';
  for (const Field& f : schema()) {
    const double value = f.ref(mutable_plan);
    if (value == f.ref(mutable_defaults)) continue;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << f.key << " = " << buf << '\n';
  }
  return out.str();
}

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("fault plan line " + std::to_string(lineno) +
                               ": expected 'key = value', got '" + stripped +
                               "'");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    try {
      if (key == "seed") {
        plan.seed = static_cast<std::uint64_t>(std::stoull(value));
        continue;
      }
      bool matched = false;
      for (const Field& f : schema()) {
        if (key == f.key) {
          const double v = std::stod(value);
          if (!std::isfinite(v)) {
            throw std::runtime_error("fault plan line " +
                                     std::to_string(lineno) +
                                     ": non-finite value for '" + key + "'");
          }
          f.ref(plan) = v;
          matched = true;
          break;
        }
      }
      if (!matched) {
        throw std::runtime_error("fault plan line " + std::to_string(lineno) +
                                 ": unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("fault plan line " + std::to_string(lineno) +
                               ": bad value '" + value + "' for '" + key + "'");
    } catch (const std::out_of_range&) {
      throw std::runtime_error("fault plan line " + std::to_string(lineno) +
                               ": value out of range for '" + key + "'");
    }
  }
  return plan;
}

}  // namespace starlab::fault
