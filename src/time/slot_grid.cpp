#include "time/slot_grid.hpp"

#include <cmath>

namespace starlab::time {

SlotIndex SlotGrid::slot_of(double unix_sec) const {
  return static_cast<SlotIndex>(std::floor((unix_sec - offset_) / period_));
}

double SlotGrid::slot_start(SlotIndex slot) const {
  return offset_ + static_cast<double>(slot) * period_;
}

double SlotGrid::seconds_to_next_boundary(double unix_sec) const {
  const double start = slot_start(slot_of(unix_sec));
  double r = period_ - (unix_sec - start);
  if (r <= 0.0) r += period_;
  return r;
}

bool SlotGrid::near_boundary(double unix_sec, double tol_sec) const {
  const double start = slot_start(slot_of(unix_sec));
  const double into = unix_sec - start;
  return into <= tol_sec || (period_ - into) <= tol_sec;
}

}  // namespace starlab::time
