#include "time/gmst.hpp"

#include <cmath>
#include <numbers>

namespace starlab::time {

double gmst_radians(const JulianDate& jd_ut1) {
  constexpr double two_pi = 2.0 * std::numbers::pi;

  // Julian centuries of UT1 since J2000.0.
  const double tut1 =
      ((jd_ut1.day_part() - kJ2000Jd) + jd_ut1.frac_part()) / 36525.0;

  // IAU 1982 GMST polynomial (Vallado Eq. 3-47), in seconds of time.
  double gmst_sec = 67310.54841 +
                    (876600.0 * 3600.0 + 8640184.812866) * tut1 +
                    0.093104 * tut1 * tut1 - 6.2e-6 * tut1 * tut1 * tut1;

  // Convert seconds of time to radians (360 deg == 86400 s of time).
  double gmst = std::fmod(gmst_sec * (two_pi / 86400.0), two_pi);
  if (gmst < 0.0) gmst += two_pi;
  return gmst;
}

}  // namespace starlab::time
