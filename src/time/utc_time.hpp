#pragma once

// Broken-down UTC calendar time and conversions to/from Unix seconds and
// Julian dates. starlab treats UTC as a uniform timescale (no leap seconds);
// see julian_date.hpp for the rationale.

#include <string>

#include "time/julian_date.hpp"

namespace starlab::time {

/// Broken-down UTC instant (Gregorian calendar).
struct UtcTime {
  int year = 2000;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  double second = 0.0;

  /// Parse from the calendar fields of a Julian date.
  [[nodiscard]] static UtcTime from_julian(const JulianDate& jd);

  /// Parse from Unix seconds.
  [[nodiscard]] static UtcTime from_unix_seconds(double unix_sec) {
    return from_julian(JulianDate::from_unix_seconds(unix_sec));
  }

  [[nodiscard]] JulianDate to_julian() const {
    return JulianDate::from_calendar(year, month, day, hour, minute, second);
  }

  [[nodiscard]] double to_unix_seconds() const {
    return to_julian().to_unix_seconds();
  }

  /// Day of year, 1-based (Jan 1 == 1). Accounts for leap years.
  [[nodiscard]] int day_of_year() const;

  /// Fractional day of year (TLE epoch convention): day_of_year() plus the
  /// fraction of the current day elapsed.
  [[nodiscard]] double fractional_day_of_year() const;

  /// Build a UtcTime from a year and fractional day-of-year (TLE epoch
  /// convention, day 1.0 == Jan 1 00:00).
  [[nodiscard]] static UtcTime from_year_and_days(int year, double fractional_days);

  /// ISO-8601 "YYYY-MM-DDThh:mm:ss.mmmZ".
  [[nodiscard]] std::string to_iso8601() const;

  /// "hh:mm:ss" wall-clock string (used by the RTT figure axes).
  [[nodiscard]] std::string to_hms() const;
};

/// True if `year` is a Gregorian leap year.
[[nodiscard]] bool is_leap_year(int year);

/// Days in a given month (1..12) of a given year.
[[nodiscard]] int days_in_month(int year, int month);

}  // namespace starlab::time
