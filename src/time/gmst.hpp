#pragma once

// Greenwich Mean Sidereal Time (IAU 1982 model), used to rotate SGP4's TEME
// output frame into Earth-fixed coordinates.

#include "time/julian_date.hpp"

namespace starlab::time {

/// GMST in radians, normalized to [0, 2*pi), for a UT1 Julian date.
/// starlab approximates UT1 == UTC (|UT1-UTC| < 0.9 s, i.e. < 4e-5 rad of
/// Earth rotation — far below the obstruction-map pixel quantization).
[[nodiscard]] double gmst_radians(const JulianDate& jd_ut1);

}  // namespace starlab::time
