#include "time/utc_time.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace starlab::time {

namespace {
constexpr std::array<int, 12> kMonthDays = {31, 28, 31, 30, 31, 30,
                                            31, 31, 30, 31, 30, 31};
}  // namespace

bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || (year % 400 == 0);
}

int days_in_month(int year, int month) {
  if (month == 2 && is_leap_year(year)) return 29;
  return kMonthDays[static_cast<std::size_t>(month - 1)];
}

UtcTime UtcTime::from_julian(const JulianDate& jd) {
  // Vallado, Algorithm 22 (invjday), restructured to work on the split
  // day/fraction representation so sub-millisecond precision survives.
  const double jd_whole = jd.day_part();
  const double jd_frac = jd.frac_part();

  // Days since 1900-01-01 00:00.
  const double t1900 = (jd_whole + jd_frac - 2415019.5) / 365.25;
  int year = 1900 + static_cast<int>(std::floor(t1900));
  int leap_years = static_cast<int>(std::floor((year - 1901) * 0.25));
  double days = (jd_whole + jd_frac) - 2415019.5 -
                ((year - 1900) * 365.0 + leap_years);
  if (days < 1.0) {
    year -= 1;
    leap_years = static_cast<int>(std::floor((year - 1901) * 0.25));
    days = (jd_whole + jd_frac) - 2415019.5 -
           ((year - 1900) * 365.0 + leap_years);
  }

  UtcTime out = from_year_and_days(year, days);
  return out;
}

UtcTime UtcTime::from_year_and_days(int year, double fractional_days) {
  UtcTime out;
  out.year = year;

  int day_of_year = static_cast<int>(std::floor(fractional_days));
  double day_frac = fractional_days - day_of_year;

  int month = 1;
  int remaining = day_of_year;
  while (month <= 12 && remaining > days_in_month(year, month)) {
    remaining -= days_in_month(year, month);
    ++month;
  }
  out.month = month;
  out.day = remaining;

  const double total_seconds = day_frac * kSecondsPerDay;
  out.hour = static_cast<int>(std::floor(total_seconds / 3600.0));
  out.minute = static_cast<int>(std::floor((total_seconds - out.hour * 3600.0) / 60.0));
  out.second = total_seconds - out.hour * 3600.0 - out.minute * 60.0;

  // Guard against floating-point edges like second == 60.0000001.
  if (out.second >= 60.0 - 1e-9) {
    out.second = 0.0;
    out.minute += 1;
    if (out.minute == 60) {
      out.minute = 0;
      out.hour += 1;
    }
  }
  return out;
}

int UtcTime::day_of_year() const {
  int doy = day;
  for (int m = 1; m < month; ++m) doy += days_in_month(year, m);
  return doy;
}

double UtcTime::fractional_day_of_year() const {
  return day_of_year() +
         (hour * 3600.0 + minute * 60.0 + second) / kSecondsPerDay;
}

std::string UtcTime::to_iso8601() const {
  char buf[40];
  const int whole_sec = static_cast<int>(std::floor(second));
  const int millis = static_cast<int>(std::lround((second - whole_sec) * 1000.0));
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", year,
                month, day, hour, minute, whole_sec, millis);
  return buf;
}

std::string UtcTime::to_hms() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", hour, minute,
                static_cast<int>(std::floor(second)));
  return buf;
}

}  // namespace starlab::time
