#pragma once

// Julian-date arithmetic.
//
// All astronomical code in starlab (SGP4, GMST, solar ephemeris) works in
// Julian dates; everything user-facing works in Unix seconds. This header is
// the bridge. Leap seconds are deliberately ignored (UTC is treated as a
// uniform timescale): the paper's methodology is insensitive to sub-minute
// absolute-time offsets, and both real Starlink tooling (starlink-grpc-tools)
// and TLE epochs share this convention.

namespace starlab::time {

/// Julian date of the Unix epoch 1970-01-01T00:00:00Z.
inline constexpr double kUnixEpochJd = 2440587.5;

/// Julian date of the J2000.0 reference epoch 2000-01-01T12:00:00 TT.
inline constexpr double kJ2000Jd = 2451545.0;

/// Seconds per day.
inline constexpr double kSecondsPerDay = 86400.0;

/// Minutes per day (SGP4's native time unit).
inline constexpr double kMinutesPerDay = 1440.0;

/// A Julian date split into an integer-ish day part and a fractional part to
/// preserve sub-millisecond precision across decades-long spans.
class JulianDate {
 public:
  JulianDate() = default;

  /// Construct from a whole Julian date value (precision ~1e-6 day).
  explicit JulianDate(double jd) : day_(jd), frac_(0.0) { normalize(); }

  /// Construct from a split day/fraction pair (full double precision kept in
  /// the fraction).
  JulianDate(double day, double frac) : day_(day), frac_(frac) { normalize(); }

  /// Julian date from Unix seconds (UTC).
  [[nodiscard]] static JulianDate from_unix_seconds(double unix_sec);

  /// Julian date of a Gregorian calendar instant (proleptic, valid 1900-2100).
  [[nodiscard]] static JulianDate from_calendar(int year, int month, int day, int hour,
                                  int minute, double second);

  /// Combined value. Loses precision below ~1 microsecond for modern dates;
  /// fine for display and coarse math.
  [[nodiscard]] double value() const { return day_ + frac_; }

  [[nodiscard]] double day_part() const { return day_; }
  [[nodiscard]] double frac_part() const { return frac_; }

  /// Unix seconds (UTC) for this Julian date.
  [[nodiscard]] double to_unix_seconds() const;

  /// Days elapsed since another Julian date (this - other).
  [[nodiscard]] double days_since(const JulianDate& other) const {
    return (day_ - other.day_) + (frac_ - other.frac_);
  }

  /// Minutes elapsed since another Julian date (this - other).
  [[nodiscard]] double minutes_since(const JulianDate& other) const {
    return days_since(other) * kMinutesPerDay;
  }

  /// A new Julian date offset by a number of days.
  [[nodiscard]] JulianDate plus_days(double days) const {
    return JulianDate(day_, frac_ + days);
  }

  /// A new Julian date offset by a number of seconds.
  [[nodiscard]] JulianDate plus_seconds(double seconds) const {
    return plus_days(seconds / kSecondsPerDay);
  }

 private:
  void normalize();

  double day_ = kJ2000Jd;
  double frac_ = 0.0;
};

}  // namespace starlab::time
