#pragma once

// The paper's central empirical finding (§3): Starlink's global scheduler
// re-allocates satellites to terminals on a global 15-second grid whose epoch
// boundaries fall at the 12th, 27th, 42nd and 57th second past every minute.
// SlotGrid models that grid: a bijection between wall-clock instants and slot
// indices.

#include <cstdint>

namespace starlab::time {

/// Identifier of one 15-second scheduling slot. Slot k covers
/// [anchor + 15k, anchor + 15(k+1)).
using SlotIndex = std::int64_t;

class SlotGrid {
 public:
  /// @param period_sec   slot length (the paper measured 15 s).
  /// @param offset_sec   phase of the slot boundaries within the minute (the
  ///                     paper measured 12 s: boundaries at :12/:27/:42/:57).
  explicit SlotGrid(double period_sec = 15.0, double offset_sec = 12.0)
      : period_(period_sec), offset_(offset_sec) {}

  [[nodiscard]] double period_seconds() const { return period_; }
  [[nodiscard]] double offset_seconds() const { return offset_; }

  /// Slot containing the given Unix time.
  [[nodiscard]] SlotIndex slot_of(double unix_sec) const;

  /// Unix time at which a slot begins.
  [[nodiscard]] double slot_start(SlotIndex slot) const;

  /// Unix time at which a slot ends (== start of the next slot).
  [[nodiscard]] double slot_end(SlotIndex slot) const {
    return slot_start(slot + 1);
  }

  /// Midpoint of a slot; the representative instant at which satellite
  /// geometry is evaluated for that slot.
  [[nodiscard]] double slot_mid(SlotIndex slot) const {
    return slot_start(slot) + 0.5 * period_;
  }

  /// Seconds from the given time until the next slot boundary (0 < r <= period).
  [[nodiscard]] double seconds_to_next_boundary(double unix_sec) const;

  /// True if the given time is within `tol_sec` of a slot boundary; used by
  /// the measurement-side change-point analysis.
  [[nodiscard]] bool near_boundary(double unix_sec, double tol_sec) const;

 private:
  double period_;
  double offset_;
};

}  // namespace starlab::time
