#include "time/julian_date.hpp"

#include <cmath>

namespace starlab::time {

void JulianDate::normalize() {
  // Keep |frac_| < 1 and fold whole days into day_ so that the fraction
  // retains full precision.
  const double whole = std::floor(frac_);
  if (whole != 0.0) {
    day_ += whole;
    frac_ -= whole;
  }
}

JulianDate JulianDate::from_unix_seconds(double unix_sec) {
  const double days = unix_sec / kSecondsPerDay;
  const double whole = std::floor(days);
  return {kUnixEpochJd + whole, days - whole};
}

double JulianDate::to_unix_seconds() const {
  return ((day_ - kUnixEpochJd) + frac_) * kSecondsPerDay;
}

JulianDate JulianDate::from_calendar(int year, int month, int day, int hour,
                                     int minute, double second) {
  // Vallado, "Fundamentals of Astrodynamics and Applications", Algorithm 14.
  // Valid for the Gregorian calendar years 1900..2100, which covers every
  // epoch a Starlink TLE can carry.
  const double jd_day =
      367.0 * year -
      std::floor(7.0 * (year + std::floor((month + 9.0) / 12.0)) * 0.25) +
      std::floor(275.0 * month / 9.0) + day + 1721013.5;
  const double frac = (second + minute * 60.0 + hour * 3600.0) / kSecondsPerDay;
  return {jd_day, frac};
}

}  // namespace starlab::time
