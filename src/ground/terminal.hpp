#pragma once

// User terminals (dishes) and their field-of-view query.
//
// A terminal can physically connect to any satellite above 25 deg elevation
// that is neither behind a local obstruction nor inside the GSO exclusion
// zone (§2, §5.1). `candidates()` returns exactly the "available satellites"
// set that the paper's analyses compare scheduler picks against.

#include <memory>
#include <string>
#include <vector>

#include "constellation/catalog.hpp"
#include "geo/geodetic.hpp"
#include "geo/gso_arc.hpp"
#include "geo/units.hpp"
#include "ground/obstruction_mask.hpp"

namespace starlab::ground {

/// A visible satellite annotated with usability flags.
struct Candidate {
  constellation::SkyEntry sky;
  bool obstructed = false;    ///< hidden behind the local horizon profile
  bool gso_excluded = false;  ///< inside the GSO protection zone

  [[nodiscard]] bool usable() const { return !obstructed && !gso_excluded; }
};

struct TerminalConfig {
  std::string name = "terminal";
  geo::Geodetic site;
  ObstructionMask mask;                         ///< local horizon profile
  geo::Deg min_elevation = geo::Deg(25.0);      ///< hardware field-of-view limit
  geo::Deg gso_protection = geo::Deg(12.0);     ///< half-width of the GSO exclusion
  geo::Geodetic pop_site;               ///< the Starlink PoP serving this region
};

class Terminal {
 public:
  explicit Terminal(TerminalConfig config);

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const geo::Geodetic& site() const { return config_.site; }
  [[nodiscard]] const geo::Geodetic& pop_site() const { return config_.pop_site; }
  [[nodiscard]] const ObstructionMask& mask() const { return config_.mask; }
  [[nodiscard]] geo::Deg min_elevation() const {
    return config_.min_elevation;
  }
  [[nodiscard]] const geo::GsoArc& gso_arc() const { return *gso_arc_; }

  /// Everything above the hardware elevation floor, annotated with
  /// obstruction and GSO-exclusion flags. Includes unusable entries so the
  /// analyses can reason about "available but not selectable" satellites.
  [[nodiscard]] std::vector<Candidate> candidates(
      const constellation::Catalog& catalog, const time::JulianDate& jd) const;

  /// Only the usable candidates (what the scheduler may pick from).
  [[nodiscard]] std::vector<Candidate> usable_candidates(
      const constellation::Catalog& catalog, const time::JulianDate& jd) const;

  /// candidates() against catalog snapshots precomputed for this instant
  /// (campaigns share one propagate_all() across all terminals of a slot).
  [[nodiscard]] std::vector<Candidate> candidates_from_snapshots(
      const constellation::Catalog& catalog,
      std::span<const constellation::Catalog::Snapshot> snapshots,
      const time::JulianDate& jd) const;

 private:
  TerminalConfig config_;
  std::unique_ptr<geo::GsoArc> gso_arc_;  ///< precomputed per site
};

}  // namespace starlab::ground
