#pragma once

// The paper's four vantage points, preconfigured: Iowa (Midwest US),
// Ithaca NY (Northeast US, with the documented severe north-west tree
// obstruction), Madrid (Western Europe) and Seattle WA (Northwest US),
// each paired with the Starlink PoP serving its region.

#include <vector>

#include "ground/terminal.hpp"

namespace starlab::ground {

/// Identifier for the four measurement locations, in the order the paper's
/// figures list them.
enum class Site {
  kIowa,
  kNewYork,
  kMadrid,
  kWashington,
};

/// Human-readable name matching the figure legends.
[[nodiscard]] const char* site_name(Site site);

/// Terminal configuration for one of the paper's vantage points.
[[nodiscard]] TerminalConfig paper_terminal_config(Site site);

/// All four terminals, in figure-legend order.
[[nodiscard]] std::vector<Terminal> paper_terminals();

}  // namespace starlab::ground
