#include "ground/obstruction_mask.hpp"

#include <algorithm>
#include <cmath>

#include "geo/angles.hpp"

namespace starlab::ground {

namespace {
constexpr double kSectorWidth = 360.0 / ObstructionMask::kSectors;

std::size_t sector_of(double azimuth_deg) {
  const double az = geo::wrap_360(azimuth_deg);
  auto s = static_cast<std::size_t>(az / kSectorWidth);
  if (s >= ObstructionMask::kSectors) s = ObstructionMask::kSectors - 1;
  return s;
}
}  // namespace

void ObstructionMask::add_obstruction(double from_deg, double to_deg,
                                      double min_elevation_deg) {
  double from = geo::wrap_360(from_deg);
  double to = geo::wrap_360(to_deg);
  double span = to - from;
  if (span <= 0.0) span += 360.0;

  for (double az = from; az < from + span; az += kSectorWidth) {
    auto& h = horizon_[sector_of(az)];
    h = std::max(h, min_elevation_deg);
  }
}

double ObstructionMask::horizon_at(double azimuth_deg) const {
  return horizon_[sector_of(azimuth_deg)];
}

double ObstructionMask::obstructed_fraction(double floor_deg) const {
  // Solid angle of a band above elevation e (up to 90 deg) per unit azimuth
  // is proportional to (1 - sin e); integrate per sector.
  const double sin_floor = std::sin(geo::deg_to_rad(floor_deg));
  double blocked = 0.0;
  double total = 0.0;
  for (const double h : horizon_) {
    const double clamped = std::clamp(h, floor_deg, 90.0);
    const double sin_h = std::sin(geo::deg_to_rad(clamped));
    blocked += sin_h - sin_floor;
    total += 1.0 - sin_floor;
  }
  return total > 0.0 ? blocked / total : 0.0;
}

}  // namespace starlab::ground
