#include "ground/obstruction_mask.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "check/contracts.hpp"
#include "geo/angles.hpp"

namespace starlab::ground {

namespace {
constexpr double kSectorWidth = 360.0 / ObstructionMask::kSectors;

std::size_t sector_of(double azimuth_deg) {
  const double az = geo::wrap_360(azimuth_deg);
  auto s = static_cast<std::size_t>(az / kSectorWidth);
  if (s >= ObstructionMask::kSectors) s = ObstructionMask::kSectors - 1;
  return s;
}
}  // namespace

void ObstructionMask::add_obstruction(geo::Deg from, geo::Deg to,
                                      geo::Deg min_elevation) {
  STARLAB_EXPECT(
      min_elevation.value() >= -90.0 && min_elevation.value() <= 90.0,
      "obstruction horizon out of [-90, 90]: " +
          std::to_string(min_elevation.value()));
  const double from_deg = geo::wrap_360(from.value());
  const double to_deg = geo::wrap_360(to.value());
  double span = to_deg - from_deg;
  if (span <= 0.0) span += 360.0;

  for (double az = from_deg; az < from_deg + span; az += kSectorWidth) {
    auto& h = horizon_[sector_of(az)];
    h = std::max(h, min_elevation.value());
  }
}

geo::Deg ObstructionMask::horizon_at(geo::Deg azimuth) const {
  return geo::Deg(horizon_[sector_of(azimuth.value())]);
}

double ObstructionMask::obstructed_fraction(geo::Deg floor) const {
  // Solid angle of a band above elevation e (up to 90 deg) per unit azimuth
  // is proportional to (1 - sin e); integrate per sector.
  const double floor_deg = floor.value();
  const double sin_floor = std::sin(geo::deg_to_rad(floor_deg));
  double blocked = 0.0;
  double total = 0.0;
  for (const double h : horizon_) {
    const double clamped = std::clamp(h, floor_deg, 90.0);
    const double sin_h = std::sin(geo::deg_to_rad(clamped));
    blocked += sin_h - sin_floor;
    total += 1.0 - sin_floor;
  }
  return total > 0.0 ? blocked / total : 0.0;
}

}  // namespace starlab::ground
