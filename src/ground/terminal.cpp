#include "ground/terminal.hpp"

namespace starlab::ground {

Terminal::Terminal(TerminalConfig config)
    : config_(std::move(config)),
      gso_arc_(std::make_unique<geo::GsoArc>(config_.site)) {}

std::vector<Candidate> Terminal::candidates(
    const constellation::Catalog& catalog, const time::JulianDate& jd) const {
  std::vector<Candidate> out;
  for (constellation::SkyEntry& e :
       catalog.visible_from(config_.site, jd, config_.min_elevation)) {
    Candidate c;
    c.obstructed = config_.mask.blocked(e.look.azimuth(), e.look.elevation());
    c.gso_excluded = gso_arc_->excluded(e.look.azimuth(), e.look.elevation(),
                                        config_.gso_protection);
    c.sky = std::move(e);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Candidate> Terminal::candidates_from_snapshots(
    const constellation::Catalog& catalog,
    std::span<const constellation::Catalog::Snapshot> snapshots,
    const time::JulianDate& jd) const {
  std::vector<Candidate> out;
  for (constellation::SkyEntry& e : catalog.visible_from_snapshots(
           snapshots, config_.site, jd, config_.min_elevation)) {
    Candidate c;
    c.obstructed = config_.mask.blocked(e.look.azimuth(), e.look.elevation());
    c.gso_excluded = gso_arc_->excluded(e.look.azimuth(), e.look.elevation(),
                                        config_.gso_protection);
    c.sky = std::move(e);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Candidate> Terminal::usable_candidates(
    const constellation::Catalog& catalog, const time::JulianDate& jd) const {
  std::vector<Candidate> all = candidates(catalog, jd);
  std::erase_if(all, [](const Candidate& c) { return !c.usable(); });
  return all;
}

}  // namespace starlab::ground
