#include "ground/sites.hpp"

#include <stdexcept>

namespace starlab::ground {

const char* site_name(Site site) {
  switch (site) {
    case Site::kIowa: return "Iowa";
    case Site::kNewYork: return "New York";
    case Site::kMadrid: return "Madrid";
    case Site::kWashington: return "Washington";
  }
  throw std::invalid_argument("unknown site");
}

TerminalConfig paper_terminal_config(Site site) {
  TerminalConfig cfg;
  cfg.name = site_name(site);
  switch (site) {
    case Site::kIowa:
      // Iowa City; served via the Chicago PoP.
      cfg.site = {41.661, -91.530, 0.22};
      cfg.pop_site = {41.878, -87.630, 0.18};
      break;
    case Site::kNewYork:
      // Ithaca; served via the New York PoP. The dish sat under severe tree
      // cover to its north-west (§5.1): the horizon there rises to ~55 deg.
      cfg.site = {42.444, -76.500, 0.25};
      cfg.pop_site = {40.713, -74.006, 0.01};
      cfg.mask.add_obstruction(geo::Deg(270.0), geo::Deg(360.0), geo::Deg(70.0));
      cfg.mask.add_obstruction(geo::Deg(240.0), geo::Deg(270.0), geo::Deg(45.0));
      break;
    case Site::kMadrid:
      // Madrid; served via the Madrid PoP.
      cfg.site = {40.417, -3.704, 0.65};
      cfg.pop_site = {40.437, -3.680, 0.60};
      break;
    case Site::kWashington:
      // Seattle area; served via the Seattle PoP.
      cfg.site = {47.606, -122.332, 0.05};
      cfg.pop_site = {47.450, -122.300, 0.10};
      break;
  }
  return cfg;
}

std::vector<Terminal> paper_terminals() {
  std::vector<Terminal> out;
  out.reserve(4);
  for (Site s : {Site::kIowa, Site::kNewYork, Site::kMadrid, Site::kWashington}) {
    out.emplace_back(paper_terminal_config(s));
  }
  return out;
}

}  // namespace starlab::ground
