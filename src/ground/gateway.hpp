#pragma once

// Gateway (ground-station) network.
//
// Starlink of the paper's era is a bent pipe: a satellite can only serve a
// terminal while it simultaneously sees a gateway ground station (§2). This
// models the gateway side: a registry of ground-station sites and the
// connectivity predicate "does satellite X currently see any gateway?". The
// global scheduler can take the network as an additional hard constraint;
// with a realistically dense network the constraint rarely binds (most LEO
// satellites over CONUS/EU see several gateways), which is why the paper's
// analyses never had to model it — the sparse-network ablation in
// bench/ext_handover_throughput shows when it starts to matter.

#include <string>
#include <vector>

#include "geo/frame_vec.hpp"
#include "geo/geodetic.hpp"
#include "geo/units.hpp"
#include "geo/vec3.hpp"
#include "time/julian_date.hpp"

namespace starlab::ground {

struct Gateway {
  std::string name;
  geo::Geodetic site;
};

class GatewayNetwork {
 public:
  explicit GatewayNetwork(std::vector<Gateway> gateways,
                          geo::Deg min_elevation = geo::Deg(25.0));

  /// A realistic 2023-era subset: ~20 gateways across CONUS and Western
  /// Europe (the regions serving the paper's terminals).
  [[nodiscard]] static GatewayNetwork paper_region_network();

  /// A deliberately sparse network (a handful of sites) for ablations.
  [[nodiscard]] static GatewayNetwork sparse_network();

  /// True if the satellite at `sat_ecef_km` is above the elevation floor of
  /// at least one gateway.
  [[nodiscard]] bool has_gateway(const geo::EcefKm& sat_ecef_km) const;

  /// Number of gateways that currently see the satellite.
  [[nodiscard]] int visible_gateways(const geo::EcefKm& sat_ecef_km) const;

  [[nodiscard]] const std::vector<Gateway>& gateways() const {
    return gateways_;
  }
  [[nodiscard]] geo::Deg min_elevation() const { return min_elevation_; }

 private:
  std::vector<Gateway> gateways_;
  std::vector<geo::EcefKm> gateway_ecef_;
  geo::Deg min_elevation_;
};

}  // namespace starlab::ground
