#include "ground/gateway.hpp"

#include "geo/topocentric.hpp"

namespace starlab::ground {

GatewayNetwork::GatewayNetwork(std::vector<Gateway> gateways,
                               geo::Deg min_elevation)
    : gateways_(std::move(gateways)), min_elevation_(min_elevation) {
  gateway_ecef_.reserve(gateways_.size());
  for (const Gateway& g : gateways_) {
    gateway_ecef_.push_back(geo::geodetic_to_ecef(g.site));
  }
}

GatewayNetwork GatewayNetwork::paper_region_network() {
  return GatewayNetwork({
      // CONUS (approximate public gateway locations of the era).
      {"Merrillan WI", {44.45, -90.83, 0.3}},
      {"Greenville PA", {41.40, -80.39, 0.3}},
      {"Hawthorne CA", {33.92, -118.33, 0.02}},
      {"Redmond WA", {47.67, -122.12, 0.1}},
      {"Boca Chica TX", {25.99, -97.19, 0.0}},
      {"Conrad MT", {48.19, -111.95, 1.1}},
      {"Beekmantown NY", {44.75, -73.52, 0.1}},
      {"Hampton GA", {33.39, -84.28, 0.3}},
      {"Kuna ID", {43.49, -116.42, 0.8}},
      {"Loring ME", {46.94, -67.89, 0.2}},
      {"Colburn ID", {48.37, -116.48, 0.7}},
      {"Butte MT", {45.95, -112.50, 1.7}},
      {"Adelanto CA", {34.58, -117.41, 0.9}},
      {"Prosser WA", {46.21, -119.77, 0.3}},
      // Western Europe.
      {"Fawley UK", {50.82, -1.33, 0.0}},
      {"Aerzen DE", {52.05, 9.26, 0.2}},
      {"Villenave FR", {44.77, -0.55, 0.02}},
      {"Alhaurin ES", {36.66, -4.68, 0.1}},
      {"Benavente ES", {42.00, -5.68, 0.7}},
      {"Turin IT", {45.07, 7.69, 0.24}},
      {"Frankfurt DE", {50.11, 8.68, 0.11}},
  });
}

GatewayNetwork GatewayNetwork::sparse_network() {
  return GatewayNetwork({
      {"Hawthorne CA", {33.92, -118.33, 0.02}},
      {"Greenville PA", {41.40, -80.39, 0.3}},
      {"Fawley UK", {50.82, -1.33, 0.0}},
  });
}

bool GatewayNetwork::has_gateway(const geo::EcefKm& sat_ecef_km) const {
  for (const Gateway& g : gateways_) {
    if (geo::look_angles(g.site, sat_ecef_km).elevation_deg >=
        min_elevation_.value()) {
      return true;
    }
  }
  return false;
}

int GatewayNetwork::visible_gateways(const geo::EcefKm& sat_ecef_km) const {
  int n = 0;
  for (const Gateway& g : gateways_) {
    if (geo::look_angles(g.site, sat_ecef_km).elevation_deg >=
        min_elevation_.value()) {
      ++n;
    }
  }
  return n;
}

}  // namespace starlab::ground
