#pragma once

// Physical sky obstructions around a terminal (trees, buildings, terrain).
//
// The paper's Ithaca, NY terminal sat under severe tree cover to its
// north-west, which visibly bent the scheduler's choices (§5.1: only 9.7 %
// of its picks came from the NW vs 55.4 % at the unobstructed sites). The
// mask is an azimuth-sectored horizon profile: for each sector, the minimum
// elevation a satellite must clear to be usable.

#include <array>
#include <cstddef>

namespace starlab::ground {

class ObstructionMask {
 public:
  static constexpr std::size_t kSectors = 72;  ///< 5-degree azimuth sectors

  /// A clear sky: horizon at 0 deg everywhere.
  ObstructionMask() { horizon_.fill(0.0); }

  /// Raise the horizon to `min_elevation_deg` over the azimuth range
  /// [from_deg, to_deg) (wrapping through north allowed, e.g. 300 -> 30).
  void add_obstruction(double from_deg, double to_deg, double min_elevation_deg);

  /// True if a satellite at (az, el) is hidden behind an obstruction.
  [[nodiscard]] bool blocked(double azimuth_deg, double elevation_deg) const {
    return elevation_deg < horizon_at(azimuth_deg);
  }

  /// Horizon elevation at an azimuth.
  [[nodiscard]] double horizon_at(double azimuth_deg) const;

  /// Fraction of the sky dome (solid-angle weighted, above `floor_deg`)
  /// that is obstructed. Used to sanity-check site quality in tests.
  [[nodiscard]] double obstructed_fraction(double floor_deg = 25.0) const;

 private:
  std::array<double, kSectors> horizon_{};
};

}  // namespace starlab::ground
