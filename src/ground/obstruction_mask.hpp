#pragma once

// Physical sky obstructions around a terminal (trees, buildings, terrain).
//
// The paper's Ithaca, NY terminal sat under severe tree cover to its
// north-west, which visibly bent the scheduler's choices (§5.1: only 9.7 %
// of its picks came from the NW vs 55.4 % at the unobstructed sites). The
// mask is an azimuth-sectored horizon profile: for each sector, the minimum
// elevation a satellite must clear to be usable.

#include <array>
#include <cstddef>

#include "geo/units.hpp"

namespace starlab::ground {

class ObstructionMask {
 public:
  static constexpr std::size_t kSectors = 72;  ///< 5-degree azimuth sectors

  /// A clear sky: horizon at 0 deg everywhere.
  ObstructionMask() { horizon_.fill(0.0); }

  /// Raise the horizon to `min_elevation` over the azimuth range
  /// [from, to) (wrapping through north allowed, e.g. 300 -> 30).
  void add_obstruction(geo::Deg from, geo::Deg to, geo::Deg min_elevation);

  /// True if a satellite at (az, el) is hidden behind an obstruction.
  [[nodiscard]] bool blocked(geo::Deg azimuth, geo::Deg elevation) const {
    return elevation < horizon_at(azimuth);
  }

  /// Horizon elevation at an azimuth.
  [[nodiscard]] geo::Deg horizon_at(geo::Deg azimuth) const;

  /// Fraction of the sky dome (solid-angle weighted, above `floor`)
  /// that is obstructed. Used to sanity-check site quality in tests.
  [[nodiscard]] double obstructed_fraction(geo::Deg floor = geo::Deg(25.0)) const;

 private:
  std::array<double, kSectors> horizon_{};
};

}  // namespace starlab::ground
