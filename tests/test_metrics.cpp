#include "ml/metrics.hpp"

#include <gtest/gtest.h>

namespace starlab::ml {
namespace {

TEST(Metrics, TopKAccuracyBasics) {
  const std::vector<std::vector<int>> rankings{
      {2, 0, 1},  // truth 2 -> hit at k=1
      {0, 2, 1},  // truth 2 -> hit at k=2
      {0, 1, 2},  // truth 2 -> hit at k=3
  };
  const std::vector<int> labels{2, 2, 2};
  EXPECT_NEAR(top_k_accuracy(rankings, labels, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(top_k_accuracy(rankings, labels, 2), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(top_k_accuracy(rankings, labels, 3), 1.0, 1e-12);
}

TEST(Metrics, TopKIsMonotoneInK) {
  const std::vector<std::vector<int>> rankings{
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  const std::vector<int> labels{2, 2, 2, 2};
  double prev = 0.0;
  for (int k = 1; k <= 4; ++k) {
    const double acc = top_k_accuracy(rankings, labels, k);
    EXPECT_GE(acc, prev);
    prev = acc;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(Metrics, TopKBeyondRankingLengthIsSafe) {
  const std::vector<std::vector<int>> rankings{{0, 1}};
  const std::vector<int> labels{5};
  EXPECT_DOUBLE_EQ(top_k_accuracy(rankings, labels, 10), 0.0);
}

TEST(Metrics, TopKSizeMismatchThrows) {
  const std::vector<std::vector<int>> rankings{{0}};
  const std::vector<int> labels{0, 1};
  EXPECT_THROW((void)top_k_accuracy(rankings, labels, 1),
               std::invalid_argument);
}

TEST(Metrics, Accuracy) {
  const std::vector<int> pred{0, 1, 2, 1};
  const std::vector<int> truth{0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy(pred, truth), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  EXPECT_THROW((void)accuracy(pred, std::vector<int>{0}),
               std::invalid_argument);
}

TEST(Metrics, ConfusionMatrix) {
  const std::vector<int> pred{0, 1, 1, 2, 0};
  const std::vector<int> truth{0, 1, 2, 2, 1};
  const auto m = confusion_matrix(pred, truth, 3);
  EXPECT_EQ(m[0][0], 1u);  // truth 0 predicted 0
  EXPECT_EQ(m[1][1], 1u);
  EXPECT_EQ(m[1][0], 1u);  // truth 1 predicted 0
  EXPECT_EQ(m[2][1], 1u);
  EXPECT_EQ(m[2][2], 1u);
  std::size_t total = 0;
  for (const auto& row : m) {
    for (const std::size_t c : row) total += c;
  }
  EXPECT_EQ(total, 5u);
}

}  // namespace
}  // namespace starlab::ml
