#include "core/satellite_predictor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_helpers.hpp"

namespace starlab::core {
namespace {

using starlab::testing::small_scenario;

struct Fixture {
  CampaignData data;
  ml::RandomForest forest;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture out;
    CampaignConfig cfg;
    cfg.duration_hours = 4.0;
    out.data = run_campaign(small_scenario(), cfg);

    const ClusterFeaturizer featurizer;
    const ml::Dataset train = featurizer.build_dataset(out.data);
    ml::ForestConfig fc;
    fc.num_trees = 40;
    fc.tree.max_depth = 14;
    out.forest = ml::RandomForest(fc);
    out.forest.fit(train);
    return out;
  }();
  return f;
}

TEST(SatellitePredictor, RankingIsAPermutationOfCandidates) {
  const SatellitePredictor predictor(fixture().forest);
  for (const SlotObs& slot : fixture().data.slots) {
    if (slot.available.empty()) continue;
    const std::vector<int> ranked = predictor.rank_satellites(slot);
    ASSERT_EQ(ranked.size(), slot.available.size());
    std::set<int> from_rank(ranked.begin(), ranked.end());
    std::set<int> from_slot;
    for (const CandidateObs& c : slot.available) from_slot.insert(c.norad_id);
    EXPECT_EQ(from_rank, from_slot);
    break;
  }
}

TEST(SatellitePredictor, EmptySlotGivesEmptyRanking) {
  const SatellitePredictor predictor(fixture().forest);
  SlotObs empty;
  EXPECT_TRUE(predictor.rank_satellites(empty).empty());
}

TEST(SatellitePredictor, BeatsRandomGuessing) {
  const SatellitePredictor predictor(fixture().forest);
  const std::vector<double> topk =
      predictor.evaluate_top_k(fixture().data, 5);
  ASSERT_EQ(topk.size(), 5u);

  // Expected random top-1: mean of 1/|candidates|.
  double inv_sum = 0.0;
  std::size_t n = 0;
  for (const SlotObs& s : fixture().data.slots) {
    if (!s.has_choice()) continue;
    inv_sum += 1.0 / static_cast<double>(s.available.size());
    ++n;
  }
  const double random_top1 = inv_sum / static_cast<double>(n);
  EXPECT_GT(topk[0], 1.5 * random_top1);
}

TEST(SatellitePredictor, TopKMonotone) {
  const SatellitePredictor predictor(fixture().forest);
  const std::vector<double> topk =
      predictor.evaluate_top_k(fixture().data, 8);
  for (std::size_t k = 1; k < topk.size(); ++k) {
    EXPECT_GE(topk[k], topk[k - 1]);
  }
  EXPECT_GT(topk.back(), 0.5);  // top-8 of ~10 candidates: usually a hit
}

}  // namespace
}  // namespace starlab::core
