#include "constellation/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.hpp"

namespace starlab::constellation {
namespace {

const geo::Geodetic kIowa{41.661, -91.530, 0.22};

const Catalog& cat() { return starlab::testing::small_scenario().catalog(); }

time::JulianDate epoch_jd() {
  return time::JulianDate::from_unix_seconds(
      starlab::testing::small_scenario().epoch_unix());
}

TEST(Catalog, SizeMatchesConstellation) {
  EXPECT_GT(cat().size(), 900u);  // 4236 * 0.25 ~ 1059
  EXPECT_LT(cat().size(), 1200u);
}

TEST(Catalog, IndexOfFindsEverySatellite) {
  const auto& records = cat().records();
  for (std::size_t i = 0; i < records.size(); i += 97) {
    const auto idx = cat().index_of(records[i].tle.norad_id);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, i);
  }
  EXPECT_FALSE(cat().index_of(-1).has_value());
}

TEST(Catalog, VisibleFromReturnsPlausibleCount) {
  const auto visible = cat().visible_from(kIowa, epoch_jd());
  // Paper: ~40 in view at full scale; at 1/4 scale expect ~10 (wide margin).
  EXPECT_GT(visible.size(), 2u);
  EXPECT_LT(visible.size(), 40u);
}

TEST(Catalog, VisibleEntriesRespectElevationFloor) {
  for (const SkyEntry& e : cat().visible_from(kIowa, epoch_jd(), geo::Deg(25.0))) {
    EXPECT_GE(e.look.elevation_deg, 25.0);
    EXPECT_LE(e.look.elevation_deg, 90.0);
    EXPECT_GE(e.look.azimuth_deg, 0.0);
    EXPECT_LT(e.look.azimuth_deg, 360.0);
  }
}

TEST(Catalog, LowerFloorSeesMore) {
  const auto at25 = cat().visible_from(kIowa, epoch_jd(), geo::Deg(25.0));
  const auto at40 = cat().visible_from(kIowa, epoch_jd(), geo::Deg(40.0));
  EXPECT_GE(at25.size(), at40.size());
}

TEST(Catalog, VisibleRangesAreLeoSlant) {
  for (const SkyEntry& e : cat().visible_from(kIowa, epoch_jd())) {
    EXPECT_GT(e.look.range_km, 500.0);
    EXPECT_LT(e.look.range_km, 1500.0);
  }
}

TEST(Catalog, AgesAreNonNegativeAndBounded) {
  const double unix_sec = epoch_jd().to_unix_seconds();
  for (const SkyEntry& e : cat().visible_from(kIowa, epoch_jd())) {
    (void)unix_sec;
    EXPECT_GE(e.age_days, 0.0);
    EXPECT_LT(e.age_days, 5.0 * 365.0);  // ledger spans 2019-2023
  }
}

TEST(Catalog, SnapshotsMatchDirectQuery) {
  const auto jd = epoch_jd();
  const auto snaps = cat().propagate_all(jd);
  ASSERT_EQ(snaps.size(), cat().size());

  const auto direct = cat().visible_from(kIowa, jd);
  const auto via_snaps = cat().visible_from_snapshots(snaps, kIowa, jd);
  ASSERT_EQ(direct.size(), via_snaps.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].norad_id, via_snaps[i].norad_id);
    EXPECT_NEAR(direct[i].look.elevation_deg, via_snaps[i].look.elevation_deg,
                1e-9);
    EXPECT_EQ(direct[i].sunlit, via_snaps[i].sunlit);
  }
}

TEST(Catalog, VisibilityChangesOverTime) {
  const auto now = cat().visible_from(kIowa, epoch_jd());
  const auto later = cat().visible_from(kIowa, epoch_jd().plus_seconds(600.0));
  // LEO passes last a few minutes: 10 minutes on, the set must differ.
  std::set<int> a, b;
  for (const auto& e : now) a.insert(e.norad_id);
  for (const auto& e : later) b.insert(e.norad_id);
  EXPECT_NE(a, b);
}

TEST(Catalog, FromTlesReconstructsLaunchMetadata) {
  // Build a catalog from bare TLE text and check launch labels exist.
  std::vector<tle::Tle> tles;
  for (std::size_t i = 0; i < 20; ++i) {
    tles.push_back(cat().record(i).tle);
  }
  const Catalog rebuilt(tles);
  EXPECT_EQ(rebuilt.size(), 20u);
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_FALSE(rebuilt.record(i).launch_label.empty());
    EXPECT_GE(rebuilt.record(i).launch_date.year, 2019);
    EXPECT_LE(rebuilt.record(i).launch_date.year, 2023);
  }
  EXPECT_FALSE(rebuilt.launches().empty());
}

TEST(Catalog, LookAtAgreesWithVisibleFrom) {
  const auto jd = epoch_jd();
  for (const SkyEntry& e : cat().visible_from(kIowa, jd)) {
    const geo::LookAngles la = cat().look_at(e.catalog_index, kIowa, jd);
    EXPECT_NEAR(la.elevation_deg, e.look.elevation_deg, 1e-9);
    EXPECT_NEAR(la.azimuth_deg, e.look.azimuth_deg, 1e-9);
  }
}

}  // namespace
}  // namespace starlab::constellation
