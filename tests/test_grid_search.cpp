#include "ml/grid_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace starlab::ml {
namespace {

Dataset blobs2(int n_per_class, unsigned seed) {
  Dataset d(2, {"x", "y"}, {"a", "b"});
  std::mt19937 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (int i = 0; i < n_per_class; ++i) {
    d.add_row(std::vector<double>{noise(rng), noise(rng)}, 0);
    d.add_row(std::vector<double>{4.0 + noise(rng), noise(rng)}, 1);
  }
  return d;
}

TEST(CrossValidate, HighOnSeparableData) {
  const Dataset d = blobs2(60, 1);
  ForestConfig cfg;
  cfg.num_trees = 15;
  const double acc = cross_validate(d, cfg, 5, 7);
  EXPECT_GT(acc, 0.9);
  EXPECT_LE(acc, 1.0);
}

TEST(CrossValidate, DeterministicForSeed) {
  const Dataset d = blobs2(40, 2);
  ForestConfig cfg;
  cfg.num_trees = 10;
  EXPECT_DOUBLE_EQ(cross_validate(d, cfg, 5, 9), cross_validate(d, cfg, 5, 9));
}

TEST(GridSearch, EvaluatesFullGrid) {
  const Dataset d = blobs2(30, 3);
  GridSearchSpace space;
  space.num_trees = {5, 10};
  space.max_depth = {4, 8};
  space.min_samples_leaf = {1, 2};
  const GridSearchResult r = grid_search(d, space, {3, 11});
  EXPECT_EQ(r.all.size(), 8u);
  EXPECT_GT(r.best_cv_accuracy, 0.85);
}

TEST(GridSearch, BestIsArgmaxOfAll) {
  const Dataset d = blobs2(30, 4);
  GridSearchSpace space;
  space.num_trees = {5};
  space.max_depth = {2, 10};
  space.min_samples_leaf = {1};
  const GridSearchResult r = grid_search(d, space, {3, 13});
  double best = 0.0;
  for (const auto& [cfg, acc] : r.all) best = std::max(best, acc);
  EXPECT_DOUBLE_EQ(r.best_cv_accuracy, best);
}

TEST(GridSearch, BestConfigComesFromSpace) {
  const Dataset d = blobs2(25, 5);
  GridSearchSpace space;
  space.num_trees = {4, 6};
  space.max_depth = {3, 5};
  space.min_samples_leaf = {2};
  const GridSearchResult r = grid_search(d, space, {3, 17});
  EXPECT_TRUE(r.best_config.num_trees == 4 || r.best_config.num_trees == 6);
  EXPECT_TRUE(r.best_config.tree.max_depth == 3 ||
              r.best_config.tree.max_depth == 5);
  EXPECT_EQ(r.best_config.tree.min_samples_leaf, 2);
}

}  // namespace
}  // namespace starlab::ml
