// starlint's own tests: the scrubber, the layers.toml parser and its DAG
// validation, one fixture per rule (each must fire exactly once), the clean
// negative, the baseline ratchet, and the SARIF shape.
//
// Fixtures live in tests/lint_fixtures/ and are presented to the rules
// under synthetic src/<subsys>/ paths — the layering rule derives the
// including subsystem from the path, not from the filesystem.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline.hpp"
#include "config.hpp"
#include "rules.hpp"
#include "sarif.hpp"
#include "source_file.hpp"

namespace starlint {
namespace {

#ifndef STARLAB_LINT_FIXTURES
#error "STARLAB_LINT_FIXTURES must point at tests/lint_fixtures"
#endif

const std::string kFixtures = STARLAB_LINT_FIXTURES;

/// A miniature declared architecture covering the fixture subsystems.
LayersConfig test_config() {
  return parse_layers_config(R"(
[layers]
time = []
check = []
io = []
geo = ["time"]
tle = ["time"]
ground = ["check", "geo", "time"]
core = ["geo", "ground", "time", "tle"]

[starlint]
interface_headers = ["src/io/parse_report.hpp"]
getenv_allowlist = ["src/check/env_seam.cpp"]
)");
}

/// Findings for one on-disk fixture presented under `as_path`.
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& as_path) {
  const SourceFile file = SourceFile::load(kFixtures + "/" + name, as_path);
  return run_rules(file, test_config());
}

// --- scrubber ---------------------------------------------------------------

TEST(SourceFileTest, ScrubBlanksCommentsAndStrings) {
  const SourceFile f("src/time/x.cpp",
                     "int a; // rand()\n"
                     "const char* s = \"random_device\";\n"
                     "/* getenv */ int b;\n");
  EXPECT_EQ(f.scrubbed().find("rand"), std::string::npos);
  EXPECT_EQ(f.scrubbed().find("getenv"), std::string::npos);
  EXPECT_NE(f.scrubbed().find("int b;"), std::string::npos);
  // Newlines survive, so positions map to the same lines.
  EXPECT_EQ(f.line_of(f.scrubbed().find("int b;")), 3u);
}

TEST(SourceFileTest, ScrubHandlesRawStringsAndEscapes) {
  const SourceFile f("src/time/x.cpp",
                     "auto r = R\"(srand inside raw)\";\n"
                     "auto e = \"escaped \\\" srand\";\n"
                     "int after = 1;\n");
  EXPECT_EQ(f.scrubbed().find("srand"), std::string::npos);
  EXPECT_NE(f.scrubbed().find("int after"), std::string::npos);
}

TEST(SourceFileTest, AllowCommentCoversOwnAndNextLine) {
  const SourceFile f("src/time/x.cpp",
                     "// starlint:allow(det-rand)\n"
                     "int a;\n"
                     "int b;\n");
  EXPECT_TRUE(f.allowed("det-rand", 1));
  EXPECT_TRUE(f.allowed("det-rand", 2));
  EXPECT_FALSE(f.allowed("det-rand", 3));
  EXPECT_FALSE(f.allowed("det-getenv", 2));
}

// --- layers.toml ------------------------------------------------------------

TEST(LayersConfigTest, ParsesDepsAndAllowlists) {
  const LayersConfig c = test_config();
  EXPECT_TRUE(c.deps.at("time").empty());
  EXPECT_EQ(c.deps.at("core").count("tle"), 1u);
  EXPECT_EQ(c.interface_headers.count("src/io/parse_report.hpp"), 1u);
  EXPECT_EQ(c.getenv_allowlist.count("src/check/env_seam.cpp"), 1u);
}

TEST(LayersConfigTest, RejectsCycle) {
  EXPECT_THROW(parse_layers_config("[layers]\n"
                                   "a = [\"b\"]\n"
                                   "b = [\"a\"]\n"),
               std::runtime_error);
}

TEST(LayersConfigTest, RejectsUndeclaredDependency) {
  EXPECT_THROW(parse_layers_config("[layers]\na = [\"ghost\"]\n"),
               std::runtime_error);
}

TEST(LayersConfigTest, RejectsMalformedSyntax) {
  EXPECT_THROW(parse_layers_config("[layers]\na = 25\n"), std::runtime_error);
  EXPECT_THROW(parse_layers_config("[mystery]\nx = [\"y\"]\n"),
               std::runtime_error);
}

// --- one fixture per rule ---------------------------------------------------

void expect_single(const std::vector<Finding>& findings,
                   const std::string& rule) {
  ASSERT_EQ(findings.size(), 1u) << "rule " << rule;
  EXPECT_EQ(findings[0].rule, rule);
  EXPECT_GT(findings[0].line, 0u);
}

TEST(RulesTest, LayeringFixtureFiresOnce) {
  expect_single(lint_fixture("layering_bad.hpp", "src/tle/layering_bad.hpp"),
                "layering");
}

TEST(RulesTest, RandFixtureFiresOnce) {
  expect_single(lint_fixture("det_rand.cpp", "src/core/det_rand.cpp"),
                "det-rand");
}

TEST(RulesTest, RandomDeviceFixtureFiresOnce) {
  expect_single(
      lint_fixture("det_random_device.cpp", "src/core/det_random_device.cpp"),
      "det-random-device");
}

TEST(RulesTest, WallclockFixtureFiresOnce) {
  expect_single(
      lint_fixture("det_wallclock.cpp", "src/core/det_wallclock.cpp"),
      "det-wallclock");
}

TEST(RulesTest, GetenvFixtureFiresOnce) {
  expect_single(lint_fixture("det_getenv.cpp", "src/core/det_getenv.cpp"),
                "det-getenv");
}

TEST(RulesTest, GetenvAllowedInSanctionedSeam) {
  const SourceFile seam("src/check/env_seam.cpp",
                        "#include <cstdlib>\n"
                        "const char* v() { return std::getenv(\"X\"); }\n");
  EXPECT_TRUE(run_rules(seam, test_config()).empty());
}

TEST(RulesTest, UnorderedIterFixtureFiresOnce) {
  expect_single(
      lint_fixture("det_unordered_iter.cpp", "src/core/det_unordered_iter.cpp"),
      "det-unordered-iter");
}

TEST(RulesTest, RawUnitDoubleFixtureFiresOnce) {
  expect_single(
      lint_fixture("raw_unit_double.hpp", "src/core/raw_unit_double.hpp"),
      "raw-unit-double");
}

TEST(RulesTest, NodiscardLoaderFixtureFiresOnce) {
  expect_single(
      lint_fixture("nodiscard_loader.hpp", "src/core/nodiscard_loader.hpp"),
      "nodiscard-loader");
}

TEST(RulesTest, CleanFixtureIsClean) {
  EXPECT_TRUE(lint_fixture("clean.hpp", "src/ground/clean.hpp").empty());
}

// --- baseline ratchet -------------------------------------------------------

TEST(BaselineTest, RoundTripsThroughJson) {
  Baseline b;
  b["raw-unit-double"]["src/a.hpp"] = 3;
  b["det-rand"]["src/b.cpp"] = 1;
  EXPECT_EQ(parse_baseline(format_baseline(b)), b);
  EXPECT_EQ(parse_baseline("{}"), Baseline{});
}

TEST(BaselineTest, NewFindingIsARegression) {
  const std::vector<Finding> findings = {
      {"det-rand", "src/b.cpp", 10, "m"},
      {"det-rand", "src/b.cpp", 20, "m"},
  };
  Baseline b;
  b["det-rand"]["src/b.cpp"] = 1;
  const BaselineCheck check = check_against_baseline(findings, b);
  EXPECT_FALSE(check.ok());
  ASSERT_EQ(check.regressions.size(), 1u);
  EXPECT_TRUE(check.stale.empty());
}

TEST(BaselineTest, FixedFindingMakesBaselineStale) {
  Baseline b;
  b["det-rand"]["src/b.cpp"] = 2;
  const BaselineCheck check =
      check_against_baseline({{"det-rand", "src/b.cpp", 10, "m"}}, b);
  EXPECT_FALSE(check.ok());
  EXPECT_TRUE(check.regressions.empty());
  ASSERT_EQ(check.stale.size(), 1u);
}

TEST(BaselineTest, ExactMatchIsClean) {
  Baseline b;
  b["det-rand"]["src/b.cpp"] = 1;
  EXPECT_TRUE(
      check_against_baseline({{"det-rand", "src/b.cpp", 10, "m"}}, b).ok());
  EXPECT_TRUE(check_against_baseline({}, {}).ok());
}

// --- SARIF ------------------------------------------------------------------

TEST(SarifTest, EmitsRuleAndLocation) {
  const std::string sarif =
      format_sarif({{"det-rand", "src/b.cpp", 42, "say \"no\" to rand"}});
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"det-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 42"), std::string::npos);
  // Quotes in messages must be escaped.
  EXPECT_NE(sarif.find("say \\\"no\\\" to rand"), std::string::npos);
}

}  // namespace
}  // namespace starlint
