#include "sgp4/sgp4.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/wgs.hpp"
#include "tle/tle.hpp"

namespace starlab::sgp4 {
namespace {

tle::Tle vanguard() {
  return tle::Tle::parse(
      "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753",
      "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667");
}

tle::Tle starlink_like() {
  tle::Tle t;
  t.norad_id = 44000;
  t.intl_designator = "19029A";
  t.epoch_year = 2023;
  t.epoch_day = 152.0;
  t.bstar = 1.0e-4;
  t.inclination_deg = 53.0;
  t.raan_deg = 120.0;
  t.eccentricity = 0.0001;
  t.arg_perigee_deg = 90.0;
  t.mean_anomaly_deg = 10.0;
  t.mean_motion_rev_per_day = 15.06;  // ~550 km shell
  return t;
}

TEST(Sgp4, VanguardEpochStateMatchesReference) {
  // First row of the canonical SGP4 verification output for catalog 00005
  // (Vallado, "Revisiting Spacetrack Report #3", tsince = 0).
  const Sgp4 prop(vanguard());
  const StateVector st = prop.propagate(0.0);
  EXPECT_NEAR(st.position_km.x, 7022.46529266, 0.1);
  EXPECT_NEAR(st.position_km.y, -1400.08296755, 0.1);
  EXPECT_NEAR(st.position_km.z, 0.03995155, 0.1);
  EXPECT_NEAR(st.velocity_km_s.x, 1.893841015, 1e-3);
  EXPECT_NEAR(st.velocity_km_s.y, 6.405893759, 1e-3);
  EXPECT_NEAR(st.velocity_km_s.z, 4.534807250, 1e-3);
}

TEST(Sgp4, StarlinkAltitudeStaysInShell) {
  const Sgp4 prop(starlink_like());
  for (double t = 0.0; t <= 1440.0; t += 10.0) {
    const StateVector st = prop.propagate(t);
    const double alt = st.position_km.norm() - geo::kWgs72.radius_km;
    EXPECT_GT(alt, 500.0) << "t=" << t;
    EXPECT_LT(alt, 600.0) << "t=" << t;
  }
}

TEST(Sgp4, StarlinkSpeedIsOrbital) {
  const Sgp4 prop(starlink_like());
  for (double t = 0.0; t <= 200.0; t += 13.0) {
    const double v = prop.propagate(t).velocity_km_s.norm();
    EXPECT_NEAR(v, 7.59, 0.05) << "t=" << t;  // circular speed at 550 km
  }
}

TEST(Sgp4, PeriodMatchesMeanMotion) {
  const Sgp4 prop(starlink_like());
  const double period_min = 1440.0 / 15.06;
  const StateVector a = prop.propagate(0.0);
  const StateVector b = prop.propagate(period_min);
  // After one nodal period the position repeats to within J2-drift scale.
  EXPECT_LT((a.position_km - b.position_km).norm(), 60.0);
}

TEST(Sgp4, InclinationPreserved) {
  const Sgp4 prop(starlink_like());
  for (double t = 0.0; t <= 720.0; t += 45.0) {
    const StateVector st = prop.propagate(t);
    const geo::Vec3 h = st.position_km.cross(st.velocity_km_s);
    const double incl = std::acos(h.z / h.norm()) * 180.0 / M_PI;
    EXPECT_NEAR(incl, 53.0, 0.1) << "t=" << t;
  }
}

TEST(Sgp4, VelocityIsTimeDerivativeOfPosition) {
  const Sgp4 prop(starlink_like());
  const double dt_min = 1.0 / 600.0;  // 0.1 s
  const StateVector a = prop.propagate(100.0);
  const StateVector b = prop.propagate(100.0 + dt_min);
  const geo::Vec3 fd = (b.position_km - a.position_km) / (dt_min * 60.0);
  EXPECT_NEAR(fd.x, a.velocity_km_s.x, 1e-3);
  EXPECT_NEAR(fd.y, a.velocity_km_s.y, 1e-3);
  EXPECT_NEAR(fd.z, a.velocity_km_s.z, 1e-3);
}

TEST(Sgp4, EccentricOrbitRadiusRange) {
  const Sgp4 prop(vanguard());
  const double a_km = prop.semi_major_axis_km();
  const double e = 0.1859667;
  for (double t = 0.0; t <= 360.0; t += 7.0) {
    const double r = prop.propagate(t).position_km.norm();
    EXPECT_GT(r, a_km * (1.0 - e) * 0.99) << "t=" << t;
    EXPECT_LT(r, a_km * (1.0 + e) * 1.01) << "t=" << t;
  }
}

TEST(Sgp4, KozaiRecoveryDirection) {
  // For i < 54.7 deg (3cos^2 i - 1 > 0) the Brouwer mean motion is smaller
  // than the Kozai value.
  const Sgp4 prop(starlink_like());
  const double kozai_rad_min = 15.06 * 2.0 * M_PI / 1440.0;
  EXPECT_LT(prop.mean_motion_rad_min(), kozai_rad_min);
  EXPECT_NEAR(prop.mean_motion_rad_min(), kozai_rad_min, 1e-4);
}

TEST(Sgp4, SemiMajorAxisMatchesAltitude) {
  const Sgp4 prop(starlink_like());
  EXPECT_NEAR(prop.semi_major_axis_km() - geo::kWgs72.radius_km, 550.0, 15.0);
}

TEST(Sgp4, DragShrinksOrbitOverWeeks) {
  tle::Tle heavy_drag = starlink_like();
  heavy_drag.bstar = 5.0e-3;  // strong drag
  const Sgp4 prop(heavy_drag);
  const double r_now = prop.propagate(0.0).position_km.norm();
  const double r_later = prop.propagate(14.0 * 1440.0).position_km.norm();
  EXPECT_LT(r_later, r_now - 1.0);
}

TEST(Sgp4, BackwardPropagationWorks) {
  const Sgp4 prop(starlink_like());
  const StateVector st = prop.propagate(-60.0);
  const double alt = st.position_km.norm() - geo::kWgs72.radius_km;
  EXPECT_GT(alt, 500.0);
  EXPECT_LT(alt, 600.0);
}

TEST(Sgp4, DeepSpaceRejected) {
  tle::Tle gso = starlink_like();
  gso.mean_motion_rev_per_day = 1.0027;  // geosynchronous
  gso.eccentricity = 0.0002;
  try {
    const Sgp4 prop(gso);
    FAIL() << "deep-space element set should throw";
  } catch (const Sgp4Error& e) {
    EXPECT_EQ(e.code(), Sgp4Error::Code::kDeepSpaceUnsupported);
  }
}

TEST(Sgp4, InvalidEccentricityRejected) {
  tle::Tle bad = starlink_like();
  bad.eccentricity = 1.5;
  EXPECT_THROW(Sgp4{bad}, Sgp4Error);
}

TEST(Sgp4, NonPositiveMeanMotionRejected) {
  tle::Tle bad = starlink_like();
  bad.mean_motion_rev_per_day = -1.0;
  EXPECT_THROW(Sgp4{bad}, Sgp4Error);
}

TEST(Sgp4, PropagateToUsesEpoch) {
  const tle::Tle t = starlink_like();
  const Sgp4 prop(t);
  const StateVector a = prop.propagate(30.0);
  const StateVector b = prop.propagate_to(t.epoch_jd().plus_seconds(1800.0));
  EXPECT_NEAR((a.position_km - b.position_km).norm(), 0.0, 1e-6);
}

// Parameterized shell sweep: every Starlink shell inclination/altitude must
// propagate stably for a day.
struct ShellParam {
  double incl, alt_km;
};
class Sgp4ShellSweep : public ::testing::TestWithParam<ShellParam> {};

TEST_P(Sgp4ShellSweep, StaysNearNominalAltitude) {
  const auto [incl, alt] = GetParam();
  tle::Tle t = starlink_like();
  t.inclination_deg = incl;
  const double a = geo::kWgs72.radius_km + alt;
  const double n_rad_s = std::sqrt(geo::kWgs72.mu_km3_s2 / (a * a * a));
  t.mean_motion_rev_per_day = n_rad_s * 86400.0 / (2.0 * M_PI);

  const Sgp4 prop(t);
  for (double ts = 0.0; ts <= 1440.0; ts += 97.0) {
    const double r = prop.propagate(ts).position_km.norm();
    EXPECT_NEAR(r - geo::kWgs72.radius_km, alt, 40.0) << "t=" << ts;
  }
}

INSTANTIATE_TEST_SUITE_P(StarlinkShells, Sgp4ShellSweep,
                         ::testing::Values(ShellParam{53.0, 550.0},
                                           ShellParam{53.2, 540.0},
                                           ShellParam{70.0, 570.0},
                                           ShellParam{97.6, 560.0}));

}  // namespace
}  // namespace starlab::sgp4
