// Torn-write sweeps for the lenient parsers: a file truncated at ANY byte
// boundary — mid-row, mid-field, mid-header-comment — must load with the
// damaged tail skipped and reported, never throw and never fabricate a
// record. This is the crash model of satellite (c): a producer died while
// flushing, and the consumer still wants every intact record.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "io/campaign_io.hpp"
#include "io/parse_report.hpp"
#include "test_helpers.hpp"
#include "tle/catalog_io.hpp"

namespace starlab {
namespace {

using starlab::testing::tiny_scenario;

TEST(TornWrites, CampaignTruncatedAtEveryByteLoadsAPrefix) {
  core::CampaignConfig config;
  config.duration_hours = 0.01;  // 2 slots x 4 terminals
  const core::CampaignData data = core::run_campaign(tiny_scenario(), config);
  std::ostringstream out;
  io::save_campaign(out, data);
  const std::string full = std::move(out).str();
  ASSERT_GT(full.size(), 100u);

  const std::size_t header_len = full.find('\n') + 1;
  io::ParseReport clean_report;
  {
    std::istringstream in(full);
    const core::CampaignData whole =
        io::load_campaign_lenient(in, clean_report);
    ASSERT_EQ(whole.slots.size(), data.slots.size());
    ASSERT_TRUE(clean_report.clean());
  }

  for (std::size_t cut = header_len; cut <= full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    io::ParseReport report;
    core::CampaignData loaded;
    ASSERT_NO_THROW(loaded = io::load_campaign_lenient(in, report))
        << "cut=" << cut;
    // Never more slots than the intact file, and whatever loaded is a
    // prefix: same slot ids in the same order.
    ASSERT_LE(loaded.slots.size(), data.slots.size()) << "cut=" << cut;
    for (std::size_t i = 0; i < loaded.slots.size(); ++i) {
      EXPECT_EQ(loaded.slots[i].slot, data.slots[i].slot) << "cut=" << cut;
      EXPECT_EQ(loaded.slots[i].terminal_index, data.slots[i].terminal_index)
          << "cut=" << cut;
    }
    // At most the one torn row is lost; everything before the tear is kept.
    EXPECT_LE(report.records_skipped, 1u) << "cut=" << cut;
  }

  // A cut mid-field (inside a non-numeric column) is skip-and-report: the
  // torn row lands in the ParseReport with its row number, not in the data
  // and not in an exception. Cut inside the final row's terminal-name
  // column (column 3), which can never parse as a shorter valid row.
  const std::size_t last_row_start = full.rfind('\n', full.size() - 2) + 1;
  const std::size_t second_comma = full.find(',', full.find(',', last_row_start) + 1);
  ASSERT_NE(second_comma, std::string::npos);
  {
    std::istringstream in(full.substr(0, second_comma + 1));
    io::ParseReport report;
    const core::CampaignData loaded = io::load_campaign_lenient(in, report);
    EXPECT_EQ(report.records_skipped, 1u);
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_GT(report.issues[0].line, 1u);  // provenance: the torn row
  }
}

TEST(TornWrites, CatalogTruncatedAtEveryByteLoadsAPrefix) {
  // A 3-satellite catalog in the canonical 3-line format.
  const std::string full =
      "SAT A\n"
      "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753\n"
      "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667\n"
      "SAT B\n"
      "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753\n"
      "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667\n"
      "SAT C\n"
      "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753\n"
      "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667\n";
  io::ParseReport clean_report;
  const std::size_t total =
      tle::read_catalog_string_lenient(full, clean_report).size();
  ASSERT_EQ(total, 3u);

  const std::size_t record_len = full.size() / 3;  // identical 3-line records
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    io::ParseReport report;
    std::vector<tle::Tle> cat;
    ASSERT_NO_THROW(cat = tle::read_catalog_string_lenient(
                        full.substr(0, cut), report))
        << "cut=" << cut;
    EXPECT_LE(cat.size(), total) << "cut=" << cut;
    // Records fully before the tear all survive.
    EXPECT_GE(cat.size(), cut / record_len) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace starlab
