#include "measurement/loss_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace starlab::measurement {
namespace {

TEST(GilbertElliottTest, StationaryRateFormula) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.09;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  const GilbertElliott ge(cfg);
  EXPECT_NEAR(ge.stationary_loss_rate(), 0.1, 1e-12);
}

TEST(GilbertElliottTest, EmpiricalRateMatchesStationary) {
  GilbertElliott ge({}, 5);
  const int n = 400000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (ge.step()) ++lost;
  }
  const double rate = static_cast<double>(lost) / n;
  EXPECT_NEAR(rate, ge.stationary_loss_rate(),
              ge.stationary_loss_rate() * 0.3);
}

TEST(GilbertElliottTest, LossIsBursty) {
  // Compare the run-length distribution against an independent model of the
  // same rate: GE must produce much longer loss bursts.
  GilbertElliott ge({}, 7);
  const int n = 300000;
  std::vector<int> loss_runs;
  int run = 0;
  for (int i = 0; i < n; ++i) {
    if (ge.step()) {
      ++run;
    } else if (run > 0) {
      loss_runs.push_back(run);
      run = 0;
    }
  }
  ASSERT_FALSE(loss_runs.empty());
  int max_run = 0;
  double total = 0.0;
  for (const int r : loss_runs) {
    max_run = std::max(max_run, r);
    total += r;
  }
  const double mean_run = total / static_cast<double>(loss_runs.size());
  // Independent loss at ~1% would give mean run ~1.01 and max ~3-4.
  EXPECT_GT(mean_run, 1.3);
  EXPECT_GT(max_run, 5);
}

TEST(GilbertElliottTest, OverlayParametersProduceConfiguredBursts) {
  // The fault overlay's parameterization: loss_bad == 1 and loss_good == 0
  // make every loss run exactly a Bad-state dwell, so the mean burst length
  // must be 1/p_bad_to_good and the marginal loss the stationary rate.
  GilbertElliottConfig cfg;
  cfg.loss_bad = 1.0;
  cfg.loss_good = 0.0;
  cfg.p_bad_to_good = 1.0 / 12.0;                    // mean burst: 12 probes
  cfg.p_good_to_bad = cfg.p_bad_to_good * 0.05 / 0.95;  // stationary: 5 %
  GilbertElliott ge(cfg, 13);

  const int n = 500000;
  std::vector<int> runs;
  int run = 0, lost = 0;
  for (int i = 0; i < n; ++i) {
    if (ge.step()) {
      ++lost;
      ++run;
    } else if (run > 0) {
      runs.push_back(run);
      run = 0;
    }
  }
  ASSERT_GT(runs.size(), 100u);

  const double marginal = static_cast<double>(lost) / n;
  EXPECT_NEAR(ge.stationary_loss_rate(), 0.05, 1e-9);
  EXPECT_NEAR(marginal, 0.05, 0.05 * 0.2);

  double total = 0.0;
  for (const int r : runs) total += r;
  const double mean_burst = total / static_cast<double>(runs.size());
  EXPECT_NEAR(mean_burst, 12.0, 12.0 * 0.2);
}

TEST(GilbertElliottTest, StateTransitionsHappen) {
  GilbertElliott ge({}, 9);
  bool saw_bad = false, saw_good_after_bad = false;
  for (int i = 0; i < 200000; ++i) {
    (void)ge.step();
    if (ge.in_bad_state()) saw_bad = true;
    if (saw_bad && !ge.in_bad_state()) saw_good_after_bad = true;
  }
  EXPECT_TRUE(saw_bad);
  EXPECT_TRUE(saw_good_after_bad);
}

TEST(GilbertElliottTest, ResetRestartsSequence) {
  GilbertElliott a({}, 11);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(a.step());
  a.reset();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.step(), first[static_cast<std::size_t>(i)]) << "i=" << i;
  }
}

TEST(GilbertElliottTest, SeedChangesPattern) {
  GilbertElliott a({}, 1), b({}, 2);
  int diffs = 0;
  for (int i = 0; i < 50000; ++i) {
    if (a.step() != b.step()) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

}  // namespace
}  // namespace starlab::measurement
