#include "geo/geodetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/wgs.hpp"

namespace starlab::geo {
namespace {

TEST(Geodetic, EquatorPrimeMeridian) {
  const EcefKm p = geodetic_to_ecef({0.0, 0.0, 0.0});
  EXPECT_NEAR(p.x(), kWgs84.radius_km, 1e-6);
  EXPECT_NEAR(p.y(), 0.0, 1e-9);
  EXPECT_NEAR(p.z(), 0.0, 1e-9);
}

TEST(Geodetic, NorthPoleUsesPolarRadius) {
  const EcefKm p = geodetic_to_ecef({90.0, 0.0, 0.0});
  const double polar_radius = kWgs84.radius_km * (1.0 - kWgs84.flattening);
  EXPECT_NEAR(p.z(), polar_radius, 1e-6);
  EXPECT_NEAR(std::hypot(p.x(), p.y()), 0.0, 1e-6);
}

TEST(Geodetic, EastLongitudeIsPositiveY) {
  const EcefKm p = geodetic_to_ecef({0.0, 90.0, 0.0});
  EXPECT_NEAR(p.x(), 0.0, 1e-6);
  EXPECT_NEAR(p.y(), kWgs84.radius_km, 1e-6);
}

TEST(Geodetic, HeightAddsAlongNormal) {
  const EcefKm ground = geodetic_to_ecef({0.0, 0.0, 0.0});
  const EcefKm raised = geodetic_to_ecef({0.0, 0.0, 550.0});
  EXPECT_NEAR((raised - ground).norm(), 550.0, 1e-6);
}

// Round-trip property across the globe and LEO/GSO altitudes.
struct RoundTripCase {
  double lat, lon, h;
};

class GeodeticRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(GeodeticRoundTrip, EcefInverts) {
  const auto [lat, lon, h] = GetParam();
  const Geodetic g{lat, lon, h};
  const Geodetic back = ecef_to_geodetic(geodetic_to_ecef(g));
  EXPECT_NEAR(back.latitude_deg, lat, 1e-8);
  EXPECT_NEAR(back.longitude_deg, lon, 1e-8);
  EXPECT_NEAR(back.height_km, h, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Globe, GeodeticRoundTrip,
    ::testing::Values(RoundTripCase{41.661, -91.530, 0.22},   // Iowa
                      RoundTripCase{42.444, -76.500, 0.25},   // Ithaca
                      RoundTripCase{40.417, -3.704, 0.65},    // Madrid
                      RoundTripCase{47.606, -122.332, 0.05},  // Seattle
                      RoundTripCase{-33.9, 151.2, 0.1},       // Sydney
                      RoundTripCase{0.0, 179.9, 550.0},       // LEO, dateline
                      RoundTripCase{51.5, -0.1, 550.0},       // LEO
                      RoundTripCase{78.2, 15.6, 0.0},         // Svalbard
                      RoundTripCase{-89.0, 0.0, 0.0},         // near pole
                      RoundTripCase{10.0, 20.0, 35786.0}));   // GSO altitude

TEST(Geodetic, SurfacePointsLieOnEllipsoid) {
  // (x/a)^2 + (y/a)^2 + (z/b)^2 == 1 for h == 0.
  const double a = kWgs84.radius_km;
  const double b = a * (1.0 - kWgs84.flattening);
  for (double lat = -80.0; lat <= 80.0; lat += 20.0) {
    const Vec3 p = geodetic_to_ecef({lat, 45.0, 0.0}).raw();
    const double lhs =
        (p.x * p.x + p.y * p.y) / (a * a) + p.z * p.z / (b * b);
    EXPECT_NEAR(lhs, 1.0, 1e-12) << "lat " << lat;
  }
}

}  // namespace
}  // namespace starlab::geo
