#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/characterizer.hpp"
#include "test_helpers.hpp"

namespace starlab::core {
namespace {

using starlab::testing::small_scenario;

TEST(Pipeline, HighAccuracyAgainstOracle) {
  const InferencePipeline pipeline(small_scenario());
  const PipelineResult result = pipeline.run(0, 1200.0);  // 20 minutes
  EXPECT_GT(result.decided(), 60u);
  // Paper validates >99 % agreement; demand >=95 % here.
  EXPECT_GE(result.accuracy(), 0.95);
}

TEST(Pipeline, SkipsSlotAfterReset) {
  PipelineConfig cfg;
  cfg.reset_interval_sec = 300.0;  // 20 slots
  const InferencePipeline pipeline(small_scenario(), cfg);
  const PipelineResult result = pipeline.run(0, 600.0);
  // 40 slots total, minus the first (no prev) minus one per reset.
  EXPECT_LT(result.rows.size(), 40u);
  EXPECT_GT(result.rows.size(), 35u);
}

TEST(Pipeline, RowsCarryDiagnostics) {
  const InferencePipeline pipeline(small_scenario());
  const PipelineResult result = pipeline.run(0, 300.0);
  for (const SlotIdentification& row : result.rows) {
    if (row.inferred_norad.has_value()) {
      EXPECT_GT(row.num_candidates, 0);
      EXPECT_GT(row.trajectory_pixels, 0u);
      EXPECT_GE(row.dtw, 0.0);
    }
  }
}

TEST(Pipeline, AccuracyOnlyCountsDecidedSlots) {
  PipelineResult r;
  SlotIdentification good;
  good.truth_norad = 1;
  good.inferred_norad = 1;
  SlotIdentification bad;
  bad.truth_norad = 1;
  bad.inferred_norad = 2;
  SlotIdentification undecided;
  undecided.truth_norad = 1;
  r.rows = {good, good, bad, undecided};
  EXPECT_NEAR(r.accuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(r.decided(), 3u);
}

TEST(Pipeline, RecoveredGeometryWorksToo) {
  // Run the pipeline with §4.1-recovered geometry instead of the published
  // constants; accuracy must stay high.
  PipelineConfig cfg;
  cfg.recover_geometry = true;
  cfg.fill_hours = 4.0;
  const InferencePipeline pipeline(small_scenario(), cfg);
  EXPECT_NEAR(pipeline.geometry().center_x, 61.0, 3.0);
  const PipelineResult result = pipeline.run(0, 600.0);
  EXPECT_GE(result.accuracy(), 0.9);
}

TEST(Pipeline, WorksFromAllTerminals) {
  const InferencePipeline pipeline(small_scenario());
  for (std::size_t t = 0; t < 4; ++t) {
    const PipelineResult result = pipeline.run(t, 300.0);
    EXPECT_GE(result.accuracy(), 0.85) << "terminal " << t;
  }
}

TEST(Pipeline, InferredCampaignMatchesOracleCampaign) {
  // The paper's real data path: §5 statistics computed from §4-inferred
  // allocations must agree with the oracle-labeled campaign.
  const InferencePipeline pipeline(small_scenario());
  const CampaignData inferred = pipeline.run_inferred_campaign(1800.0);
  ASSERT_GT(inferred.slots.size(), 400u);

  // High labeling coverage...
  std::size_t chosen = 0;
  for (const SlotObs& s : inferred.slots) {
    if (s.has_choice()) ++chosen;
  }
  EXPECT_GT(static_cast<double>(chosen) / inferred.slots.size(), 0.85);

  // ...and labels that agree with the oracle on checked slots.
  int checked = 0, agree = 0;
  for (const SlotObs& s : inferred.slots) {
    if (!s.has_choice() || s.terminal_index != 0 || checked >= 25) continue;
    const auto truth = small_scenario().global_scheduler().allocate(
        small_scenario().terminal(0), s.slot);
    if (!truth) continue;
    ++checked;
    if (truth->norad_id == s.chosen_candidate().norad_id) ++agree;
  }
  ASSERT_GT(checked, 15);
  EXPECT_GE(static_cast<double>(agree) / checked, 0.9);

  // And the §5 headline statistic carries through.
  const SchedulerCharacterizer ch(inferred, small_scenario().catalog());
  EXPECT_GT(ch.aoe_stats(0).median_gap_deg, 5.0);
}

}  // namespace
}  // namespace starlab::core
