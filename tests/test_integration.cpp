// End-to-end integration: the full paper methodology on one simulated
// world — measure (§3), identify (§4), characterize (§5), model (§6) — all
// from externally observable data only.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "core/starlab.hpp"
#include "test_helpers.hpp"

namespace starlab {
namespace {

using starlab::testing::small_scenario;

TEST(Integration, Section3MeasurementFindsTheGrid) {
  const measurement::LatencyModel model(small_scenario().catalog(),
                                        small_scenario().mac_scheduler());
  const measurement::RttProber prober(small_scenario().global_scheduler(),
                                      model);
  const double t0 =
      small_scenario().grid().slot_start(small_scenario().first_slot());
  const measurement::RttSeries series =
      prober.run(small_scenario().terminal(2), t0, t0 + 240.0);

  // Mann-Whitney between consecutive slots (the paper's §3 statistical
  // check): most adjacent windows must differ at p < .05.
  std::map<time::SlotIndex, std::vector<double>> by_slot;
  for (const auto& s : series.received()) by_slot[s.slot].push_back(s.rtt_ms);

  int significant = 0, tested = 0;
  const std::vector<double>* prev = nullptr;
  for (const auto& [slot, vals] : by_slot) {
    if (prev != nullptr && prev->size() > 30 && vals.size() > 30) {
      ++tested;
      if (analysis::mann_whitney_u(*prev, vals).p_two_sided < 0.05) {
        ++significant;
      }
    }
    prev = &vals;
  }
  ASSERT_GT(tested, 8);
  EXPECT_GT(static_cast<double>(significant) / tested, 0.7);
}

TEST(Integration, Section4PipelineFeedsSection5Statistics) {
  // Use pipeline-inferred allocations (not the oracle) to recompute the
  // Fig 4 statistic and confirm the same conclusion emerges.
  const core::InferencePipeline pipeline(small_scenario());
  const core::PipelineResult inferred = pipeline.run(0, 1800.0);

  std::vector<double> chosen_el, available_el;
  for (const core::SlotIdentification& row : inferred.rows) {
    if (!row.inferred_norad.has_value()) continue;
    const auto jd = time::JulianDate::from_unix_seconds(
        small_scenario().grid().slot_mid(row.slot));
    for (const auto& c : small_scenario().terminal(0).usable_candidates(
             small_scenario().catalog(), jd)) {
      available_el.push_back(c.sky.look.elevation_deg);
      if (c.sky.norad_id == *row.inferred_norad) {
        chosen_el.push_back(c.sky.look.elevation_deg);
      }
    }
  }
  ASSERT_GT(chosen_el.size(), 50u);
  EXPECT_GT(analysis::median(chosen_el), analysis::median(available_el) + 5.0);
}

TEST(Integration, FullStudyReproducesHeadlineNumbersDirections) {
  core::CampaignConfig cfg;
  cfg.duration_hours = 4.0;
  const core::CampaignData data = core::run_campaign(small_scenario(), cfg);
  const core::SchedulerCharacterizer ch(data, small_scenario().catalog());

  // Every paper claim, directionally, in one place:
  const core::AoeStats fig4 = ch.aoe_stats(0);
  EXPECT_GT(fig4.median_gap_deg, 0.0);  // selected sit higher

  const core::AzimuthStats fig5 = ch.azimuth_stats(0);
  EXPECT_GT(fig5.north_share_chosen, fig5.north_share_available);  // north

  const core::ModelEvaluation fig8 = core::train_scheduler_model(data);
  ASSERT_FALSE(fig8.forest_top_k.empty());
  EXPECT_GT(fig8.forest_top_k[4], fig8.baseline_top_k[4]);  // model wins
}

TEST(Integration, CatalogSurvivesTextRoundTripIntoPipeline) {
  // Export the synthetic constellation as TLE text, reload it as a fresh
  // catalog (as a downstream user would from CelesTrak), and verify the
  // reloaded world produces identical look angles.
  std::ostringstream text;
  std::vector<tle::Tle> tles;
  for (std::size_t i = 0; i < 50; ++i) {
    tles.push_back(small_scenario().catalog().record(i).tle);
  }
  tle::write_catalog(text, tles);
  const constellation::Catalog reloaded(tle::read_catalog_string(text.str()));

  const auto jd = time::JulianDate::from_unix_seconds(
      small_scenario().epoch_unix() + 100.0);
  const geo::Geodetic site = small_scenario().terminal(0).site();
  for (std::size_t i = 0; i < reloaded.size(); i += 7) {
    const auto a = small_scenario().catalog().look_at(i, site, jd);
    const auto b = reloaded.look_at(i, site, jd);
    // TLE text quantizes elements (1e-4 deg, 1e-8 rev/day): look angles
    // agree to small fractions of a degree.
    EXPECT_NEAR(a.elevation_deg, b.elevation_deg, 0.2);
    EXPECT_NEAR(a.range_km, b.range_km, 5.0);
  }
}

}  // namespace
}  // namespace starlab
