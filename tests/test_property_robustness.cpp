// Seed-robustness property suite: the reproduced §5 findings must be
// properties of the modeled mechanisms, not artifacts of one random seed.
// Each property is asserted across several oracle/constellation seeds on a
// small scenario.

#include <gtest/gtest.h>

#include "core/starlab.hpp"

namespace starlab {
namespace {

struct WorldStats {
  double aoe_gap = 0.0;
  double north_lift = 0.0;  // picked north share minus available north share
  double dark_floor = 1.0;
  std::size_t slots = 0;
};

WorldStats measure_world(std::uint64_t seed) {
  core::ScenarioConfig cfg = core::Scenario::default_config(0.25);
  cfg.seed = seed;
  cfg.constellation.seed = seed ^ 0xabcdULL;
  const core::Scenario scenario(std::move(cfg));

  core::CampaignConfig cc;
  cc.duration_hours = 2.0;
  const core::CampaignData data = core::run_campaign(scenario, cc);
  const core::SchedulerCharacterizer ch(data, scenario.catalog());

  WorldStats out;
  out.slots = data.slots.size();
  int n = 0;
  for (const std::size_t t : {0u, 2u, 3u}) {
    const auto aoe = ch.aoe_stats(t);
    const auto az = ch.azimuth_stats(t);
    const auto sun = ch.sunlit_stats(t);
    out.aoe_gap += aoe.median_gap_deg;
    out.north_lift += az.north_share_chosen - az.north_share_available;
    if (sun.aoe_dark_chosen.size() > 5) {
      out.dark_floor =
          std::min(out.dark_floor, sun.min_dark_fraction_when_dark_picked);
    }
    ++n;
  }
  out.aoe_gap /= n;
  out.north_lift /= n;
  return out;
}

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, CoreFindingsHold) {
  const WorldStats w = measure_world(GetParam());
  ASSERT_GT(w.slots, 1000u);
  // Fig 4 direction: selected sit clearly higher.
  EXPECT_GT(w.aoe_gap, 8.0);
  // Fig 5 direction: picks skew north relative to availability.
  EXPECT_GT(w.north_lift, 0.0);
  // §5.3 gate: dark picks never happen in sunlit-dominated skies.
  EXPECT_GT(w.dark_floor, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(7ull, 99ull, 20260706ull));

TEST(DiurnalProperty, NightPicksAreDarkAndHigh) {
  // The mechanism behind local_hour's importance, checked directly: in
  // night hours the dark availability rises and the sunlit pick fraction
  // falls relative to midday.
  core::ScenarioConfig cfg = core::Scenario::default_config(0.25);
  const core::Scenario scenario(std::move(cfg));
  core::CampaignConfig cc;
  cc.duration_hours = 24.0;
  cc.slot_stride = 4;
  const core::CampaignData data = core::run_campaign(scenario, cc);
  const core::SchedulerCharacterizer ch(data, scenario.catalog());

  const core::DiurnalStats d = ch.diurnal_stats(0);  // Iowa
  // Compare a deep-night hour block with midday.
  auto block = [&](int h0, int h1) {
    double dark = 0.0, sunlit_pick = 0.0;
    int n = 0;
    for (int h = h0; h < h1; ++h) {
      const auto& bin = d.by_hour[static_cast<std::size_t>(h)];
      if (bin.slots == 0) continue;
      dark += bin.dark_available_fraction;
      sunlit_pick += bin.sunlit_pick_fraction;
      ++n;
    }
    return std::pair{dark / std::max(n, 1), sunlit_pick / std::max(n, 1)};
  };
  const auto [night_dark, night_sunlit_pick] = block(0, 4);
  const auto [noon_dark, noon_sunlit_pick] = block(11, 15);

  // June near-solstice at 41 degN: even at night much of the LEO shell
  // stays sunlit (shallow umbra), so "more dark at night" is a modest but
  // strictly positive effect.
  EXPECT_GT(night_dark, noon_dark + 0.1);
  EXPECT_LT(night_sunlit_pick, noon_sunlit_pick);
  // Midday June sky at 41N: everything is sunlit.
  EXPECT_GT(noon_sunlit_pick, 0.95);
  EXPECT_LT(noon_dark, 0.05);
}

TEST(GridProperty, EpochRecoveryHoldsAcrossGridPhases) {
  // The §3 inference must recover whatever grid the oracle uses, not just
  // the paper's :12 phase.
  for (const double offset : {0.0, 5.0, 12.0}) {
    core::ScenarioConfig cfg = core::Scenario::default_config(0.25);
    cfg.grid = time::SlotGrid(15.0, offset);
    const core::Scenario scenario(std::move(cfg));

    const measurement::LatencyModel model(scenario.catalog(),
                                          scenario.mac_scheduler());
    const measurement::RttProber prober(scenario.global_scheduler(), model);
    const double t0 = scenario.grid().slot_start(scenario.first_slot());
    const auto series = prober.run(scenario.terminal(0), t0, t0 + 300.0);

    const auto est =
        measurement::estimate_epoch(measurement::detect_change_points(series));
    EXPECT_NEAR(est.period_sec, 15.0, 0.5) << "offset " << offset;
    double phase = std::fmod(est.offset_sec - offset, 15.0);
    if (phase < 0.0) phase += 15.0;
    EXPECT_TRUE(phase < 1.26 || phase > 13.74)
        << "offset " << offset << " recovered phase error " << phase;
  }
}

}  // namespace
}  // namespace starlab
